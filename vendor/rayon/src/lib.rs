//! Vendored minimal stand-in for the `rayon` thread-pool crate.
//!
//! The build environment has no registry access, so — like `rand`,
//! `criterion`, and `proptest` under `vendor/` — this crate re-implements
//! just the slice of the upstream API the workspace uses, with upstream
//! semantics:
//!
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] — a pool configured for a fixed
//!   number of worker threads.
//! * [`ThreadPool::scope`] / the free [`scope`] function — structured
//!   fork/join: closures spawned inside the scope may borrow from the
//!   enclosing stack frame, and the scope does not return until every
//!   spawned task has finished.
//! * [`join`] — run two closures and return both results.
//!
//! Unlike upstream rayon there is no work-stealing deque: each
//! [`Scope::spawn`] runs on its own scoped OS thread (via
//! [`std::thread::scope`], so no `unsafe` is needed for non-`'static`
//! borrows). The intended usage pattern — and the only one the simulation
//! engine uses — is to spawn one long-lived task per worker which pulls
//! work items from a shared queue, so the thread-per-spawn cost is paid
//! `num_threads` times per scope, not per work item. [`join`] runs its
//! closures sequentially, which is always a legal rayon schedule.

use std::fmt;

/// Error returned by [`ThreadPoolBuilder::build`].
///
/// The vendored builder cannot actually fail; the type exists so call
/// sites match upstream's fallible signature.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    _private: (),
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds a [`ThreadPool`] with a configured degree of parallelism.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a new builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (`0` means "choose automatically",
    /// which resolves to [`std::thread::available_parallelism`]).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A handle describing a fixed degree of parallelism.
///
/// Worker threads are not kept alive between scopes: every
/// [`ThreadPool::scope`] call creates its scoped threads afresh and joins
/// them before returning (structured concurrency, no `'static` bounds).
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The configured number of worker threads.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` inside a fork/join scope; tasks spawned on the scope may
    /// borrow non-`'static` data. Returns once all spawned tasks finish.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        scope(f)
    }

    /// Runs `f` "inside" the pool. The vendored pool has no registry of
    /// persistent workers, so this simply invokes `f` on the current
    /// thread — equivalent for code that only uses `scope`/`join` within.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        f()
    }
}

/// A fork/join scope: see [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on the scope. The task may borrow anything that
    /// outlives the scope; the enclosing [`scope`] call joins it before
    /// returning. A panicking task propagates its panic out of `scope`.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let nested = Scope { inner };
            f(&nested);
        });
    }
}

/// Creates a fork/join scope on the current thread and runs `f` in it.
/// All tasks spawned via [`Scope::spawn`] complete before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    })
}

/// Runs both closures and returns their results.
///
/// Upstream rayon may run them on different threads; running them
/// sequentially on the caller's thread is one of rayon's permitted
/// schedules and is what this stand-in does.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn builder_reports_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let auto = ThreadPoolBuilder::new().build().unwrap();
        assert!(auto.current_num_threads() >= 1);
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scope_tasks_can_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = Mutex::new(0u64);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    *total.lock().unwrap() += sum;
                });
            }
        });
        assert_eq!(total.into_inner().unwrap(), 10);
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn scope_returns_closure_result() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let out = pool.scope(|_| 42);
        assert_eq!(out, 42);
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
