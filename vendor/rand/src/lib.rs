//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the small slice of the `rand 0.8` API that the workspace
//! actually uses is re-implemented here: [`RngCore`], [`SeedableRng`],
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`), the seedable generators
//! [`rngs::SmallRng`] and [`rngs::StdRng`], and [`seq::SliceRandom`].
//!
//! Streams are **not** bit-compatible with upstream `rand`; they are,
//! however, fully deterministic for a given seed, which is the property the
//! simulation engine (`sc_sim`) depends on.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::Standard;

/// The core of a random number generator: uniform raw output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience extension over [`RngCore`]: typed sampling.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::<T>::sample(&Standard, self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data (mirror of `RngCore::fill_bytes`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: seed expander (also used by `seed_from_u64`).
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        Self { state }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let cv: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(av, cv);
    }

    #[test]
    fn std_and_small_differ() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SmallRng::from_seed([0u8; 32]);
        let draws: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = r.gen_range(0..1);
            assert_eq!(y, 0);
            let f: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn float_gen_range_is_half_open_even_when_narrow() {
        // The only representable f64 in [1.0, next_up(1.0)) is 1.0 itself;
        // a naive lerp rounds up to the excluded endpoint about half the
        // time.
        let mut r = StdRng::seed_from_u64(3);
        let end = 1.0f64.next_up();
        for _ in 0..256 {
            assert_eq!(r.gen_range(1.0..end), 1.0);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "100 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn partial_shuffle_splits_correctly() {
        let mut r = SmallRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        let (shuffled, rest) = v.partial_shuffle(&mut r, 10);
        assert_eq!(shuffled.len(), 10);
        assert_eq!(rest.len(), 40);
    }

    /// Regression for upstream-compatible placement: the chosen elements
    /// must be uniform over the whole slice and land at the END (protocol
    /// code takes the tail via `split_off`, exactly as with real
    /// `rand 0.8`). A front-placement or biased implementation makes
    /// legacy Cyclon's `remove_random` re-pick the same slots nearly
    /// every exchange.
    #[test]
    fn partial_shuffle_tail_selection_is_uniform() {
        let mut rng = SmallRng::seed_from_u64(2024);
        let mut counts = [0u32; 10];
        const TRIALS: u32 = 10_000;
        for _ in 0..TRIALS {
            let mut v: Vec<usize> = (0..10).collect();
            let (chosen, rest) = v.partial_shuffle(&mut rng, 1);
            assert_eq!(chosen.len(), 1);
            assert_eq!(rest.len(), 9);
            counts[chosen[0]] += 1;
        }
        // Expected 1000 per slot; 3 sigma over a binomial is about ±90.
        for (value, &n) in counts.iter().enumerate() {
            assert!(
                (800..1200).contains(&n),
                "value {value} chosen {n}/{TRIALS} times; selection is biased"
            );
        }
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = SmallRng::seed_from_u64(17);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut r), Some(&42));
    }
}
