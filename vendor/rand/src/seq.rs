//! Slice sampling and shuffling ([`SliceRandom`]).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns one random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffles the whole slice in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Chooses `amount` elements uniformly from the slice and moves them
    /// to its **end**, matching upstream `rand 0.8` exactly; returns
    /// `(shuffled, rest)` where `shuffled` is that end section. Callers
    /// must use the returned slices (or the end placement) — upstream
    /// compatibility here is what keeps the advertised "swap back to the
    /// real crate" a behavior-preserving change.
    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let len = self.len();
        let k = amount.min(len);
        for i in (len - k..len).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
        let (rest, shuffled) = self.split_at_mut(len - k);
        (shuffled, rest)
    }
}
