//! The standard distribution and uniform range sampling.

use crate::RngCore;

/// A distribution over values of some type.
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: full range for integers, `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        Distribution::<u128>::sample(&Standard, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Distribution<[u8; N]> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// A range that can be sampled from directly (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a `u64` below `bound` (> 0) without modulo bias worth caring about
/// for simulation purposes: Lemire-style widening multiply.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: any value is uniform.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Distribution::sample(&Standard, rng);
                let v = self.start + unit * (self.end - self.start);
                // For narrow ranges the lerp can round up to `end`; keep
                // the half-open contract (upstream rand guarantees it).
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);
