//! Seedable generators: [`SmallRng`] (xoshiro256++) and [`StdRng`]
//! (xoshiro256**). Both take 32-byte seeds like their upstream namesakes.

use crate::{RngCore, SeedableRng, SplitMix64};

/// Shared 256-bit state with seed sanitisation.
#[derive(Clone, Debug)]
struct State256 {
    s: [u64; 4],
}

impl State256 {
    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // An all-zero state is a fixed point of the xoshiro family; remix
        // through SplitMix64 so that the zero seed still yields a usable
        // stream (and low-entropy seeds decorrelate).
        let mut sm = SplitMix64::new(
            s[0] ^ s[1].rotate_left(16) ^ s[2].rotate_left(32) ^ s[3].rotate_left(48),
        );
        for word in s.iter_mut() {
            *word ^= sm.next_u64();
        }
        if s == [0u64; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C908,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        Self { s }
    }

    #[inline]
    fn advance(&mut self) {
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
    }
}

/// A small, fast, non-cryptographic generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: State256,
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &self.state.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        self.state.advance();
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self {
            state: State256::from_seed_bytes(seed),
        }
    }
}

/// The default "strong" generator (xoshiro256**; *not* cryptographically
/// secure — this vendored stand-in is for deterministic simulation only).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: State256,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &self.state.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        self.state.advance();
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = State256::from_seed_bytes(seed);
        // Domain-separate from SmallRng so the same seed yields unrelated
        // streams in the two generator types.
        state.s[0] ^= 0x5354_4452_4E47_5F5F; // "STDRNG__"
        if state.s == [0u64; 4] {
            state.s[0] = 0x5354_4452_4E47_5F5F;
        }
        Self { state }
    }
}
