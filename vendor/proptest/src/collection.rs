//! Collection strategies (`proptest::collection::vec`).

use crate::runner::TestRng;
use crate::strategy::Strategy;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// An inclusive-exclusive length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi_exclusive, "empty size range");
        self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_and_elements_in_range() {
        let s = vec(0u8..10, 2..5);
        let mut r = TestRng::for_case("collection-tests", 0);
        for _ in 0..500 {
            let v = s.new_value(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn fixed_size_from_usize() {
        let s = vec(0u8..10, 4usize);
        let mut r = TestRng::for_case("collection-tests", 1);
        assert_eq!(s.new_value(&mut r).len(), 4);
    }
}
