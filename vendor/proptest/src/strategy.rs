//! The [`Strategy`] trait and the primitive strategies.

use crate::runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply produces a fresh value from the runner's deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).new_value(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // For narrow ranges the lerp can round up to `end`; keep the
        // half-open contract.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

// ---------------------------------------------------------------------------
// Just / tuples / oneof
// ---------------------------------------------------------------------------

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice between boxed strategies (see [`crate::prop_oneof!`]).
pub struct OneOf<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].new_value(rng)
    }
}

/// Builds a [`OneOf`] from boxed choices; panics if `choices` is empty.
pub fn one_of<V: Debug>(choices: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
    assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
    OneOf { choices }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let v = (3u8..9).new_value(&mut r);
            assert!((3..9).contains(&v));
            let w = (0usize..1).new_value(&mut r);
            assert_eq!(w, 0);
            let f = (0.0f64..1.0).new_value(&mut r);
            assert!((0.0..1.0).contains(&f));
            let x = (250u8..).new_value(&mut r);
            assert!(x >= 250);
        }
    }

    #[test]
    fn narrow_float_range_stays_half_open() {
        let mut r = rng();
        let end = 1.0f64.next_up();
        for _ in 0..256 {
            assert_eq!((1.0..end).new_value(&mut r), 1.0);
        }
    }

    #[test]
    fn ranges_cover_their_domain() {
        let mut r = rng();
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[(0u8..8).new_value(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
    }

    #[test]
    fn oneof_hits_every_choice() {
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.new_value(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_compose() {
        let s = (0u8..4, 10u64..20);
        let mut r = rng();
        let (a, b) = s.new_value(&mut r);
        assert!(a < 4 && (10..20).contains(&b));
    }
}
