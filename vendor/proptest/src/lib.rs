//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the subset of the
//! `proptest 1.x` surface used by this repository's test-suite is
//! re-implemented here:
//!
//! * the [`Strategy`] trait over integer/float ranges, tuples, [`Just`],
//!   [`collection::vec`], [`option::of`], [`array::uniform32`], and
//!   [`any`];
//! * the [`proptest!`] macro (with the `#![proptest_config(..)]` header),
//!   plus [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], and [`prop_oneof!`];
//! * a deterministic runner: each test derives its RNG stream from the
//!   test's name, so failures reproduce exactly on re-run.
//!
//! Shrinking is intentionally not implemented — on failure the runner
//! reports the generated values verbatim.

use std::fmt::Debug;

pub mod array;
pub mod collection;
pub mod option;
pub mod runner;
pub mod strategy;

pub use runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
pub use strategy::{any, one_of, Any, Arbitrary, Just, OneOf, Strategy};

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Boxes a strategy (helper for [`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
    S::Value: Debug,
{
    Box::new(s)
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::runner::run(&__config, stringify!($name), |__rng| {
                let mut __vals: Vec<String> = Vec::new();
                $(
                    let $arg = {
                        let __v = $crate::Strategy::new_value(&($strat), __rng);
                        __vals.push(format!("{} = {:?}", stringify!($arg), __v));
                        __v
                    };
                )+
                let __result: $crate::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                match __result {
                    Err($crate::TestCaseError::Fail(msg)) => {
                        Err($crate::TestCaseError::Fail(format!(
                            "{msg}\n    generated values:\n        {}",
                            __vals.join("\n        ")
                        )))
                    }
                    other => other,
                }
            });
        }
    )*};
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `(left == right)`\n     left: {l:?}\n    right: {r:?}"
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::Fail(format!(
                        "{}\n  assertion failed: `(left == right)`\n     left: {l:?}\n    right: {r:?}",
                        format!($($fmt)*)
                    )));
                }
            }
        }
    };
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `(left != right)`\n     both: {l:?}"
                    )));
                }
            }
        }
    };
}

/// Rejects (skips) the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Picks uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::boxed($strategy)),+])
    };
}
