//! Test-case runner and deterministic RNG.

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was violated; the test fails.
    Fail(String),
    /// The case did not satisfy an assumption; it is skipped.
    Reject(String),
}

/// Result type returned by the body of each generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected (assumed-away) cases across the whole run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Deterministic generator driving value production (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name and case index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

/// Drives `cases` successful executions of `body`, skipping rejected cases
/// and panicking (with the generated values) on the first failure.
pub fn run<F>(config: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        let mut rng = TestRng::for_case(test_name, attempt);
        attempt += 1;
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest `{test_name}`: too many rejected cases \
                         ({rejected}); last assumption: {why}"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{test_name}` failed at case {} (attempt {}):\n  {msg}",
                    passed + 1,
                    attempt
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a[0], c.next_u64());
    }

    #[test]
    fn runner_counts_only_passing_cases() {
        let mut calls = 0u32;
        run(&ProptestConfig::with_cases(10), "counting", |_| {
            calls += 1;
            if calls.is_multiple_of(3) {
                Err(TestCaseError::Reject("every third".into()))
            } else {
                Ok(())
            }
        });
        assert!(calls > 10, "rejections must not count toward cases");
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn runner_panics_on_failure() {
        run(&ProptestConfig::with_cases(5), "failing", |_| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }
}
