//! Fixed-size array strategies (`proptest::array::uniform32`).

use crate::runner::TestRng;
use crate::strategy::Strategy;
use std::fmt::Debug;

/// The strategy returned by the `uniformN` constructors.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N>
where
    S::Value: Debug,
{
    type Value = [S::Value; N];

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.new_value(rng))
    }
}

/// Generates `[T; 32]` with every element drawn from `element`.
pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
    UniformArray { element }
}

/// Generates `[T; 4]` with every element drawn from `element`.
pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
    UniformArray { element }
}

/// Generates `[T; 8]` with every element drawn from `element`.
pub fn uniform8<S: Strategy>(element: S) -> UniformArray<S, 8> {
    UniformArray { element }
}

/// Generates `[T; 16]` with every element drawn from `element`.
pub fn uniform16<S: Strategy>(element: S) -> UniformArray<S, 16> {
    UniformArray { element }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform32_fills_all_slots() {
        let s = uniform32(1u8..=255);
        let mut r = TestRng::for_case("array-tests", 0);
        let a = s.new_value(&mut r);
        assert_eq!(a.len(), 32);
        assert!(a.iter().all(|&b| b >= 1));
        // 32 independent draws over 255 values collide to a constant array
        // with negligible probability.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }
}
