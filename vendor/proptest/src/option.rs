//! Option strategies (`proptest::option::of`).

use crate::runner::TestRng;
use crate::strategy::Strategy;
use std::fmt::Debug;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
    some_probability: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S>
where
    S::Value: Debug,
{
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.chance(self.some_probability) {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}

/// Generates `None` or `Some(inner)` (3:1 in favour of `Some`, matching
/// upstream proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy {
        inner,
        some_probability: 0.75,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let s = of(0u8..10);
        let mut r = TestRng::for_case("option-tests", 0);
        let draws: Vec<Option<u8>> = (0..200).map(|_| s.new_value(&mut r)).collect();
        assert!(draws.iter().any(|d| d.is_none()));
        assert!(draws.iter().any(|d| d.is_some()));
    }
}
