//! Vendored, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of the `criterion 0.5` API used by `crates/bench`: the
//! [`Criterion`] driver, [`BenchmarkGroup`] (with `sample_size`,
//! `measurement_time`, `throughput`, `bench_function`, `bench_with_input`,
//! `finish`), [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — warm up, time a fixed number of
//! batches, report the median batch mean — which is plenty to compare hot
//! paths release-to-release without the statistical machinery of the real
//! crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from eliding a value (re-export of the std hint).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, used to report throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes, reported in decimal multiples.
    BytesDecimal(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id built from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id built from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        *self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: how many iterations fit in ~1/20 of the measurement time?
    let mut elapsed = Duration::ZERO;
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: &mut elapsed,
        };
        f(&mut b);
        if elapsed >= settings.measurement_time / 20 || iters >= 1 << 30 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let samples = settings.sample_size.max(2);
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: &mut elapsed,
        };
        f(&mut b);
        per_iter_ns.push(elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[0];
    let hi = per_iter_ns[per_iter_ns.len() - 1];

    let mut line = format!(
        "{id:<44} time: [{} {} {}]",
        format_ns(lo),
        format_ns(median),
        format_ns(hi)
    );
    if let Some(tp) = throughput {
        let (amount, unit) = match tp {
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (n as f64, "B"),
            Throughput::Elements(n) => (n as f64, "elem"),
        };
        let per_sec = amount / (median / 1e9);
        line.push_str(&format!("  thrpt: {per_sec:.0} {unit}/s"));
    }
    println!("{line}");
}

/// A named set of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.measurement_time = dur;
        self
    }

    /// Sets the throughput used when reporting subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.settings, self.throughput, f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.settings, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.settings, None, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            name: name.into(),
            settings,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Defines a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a real
            // argument parser is not needed for this stand-in.
            $($group();)+
        }
    };
}
