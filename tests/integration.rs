//! Cross-crate integration tests: the full stack working together through
//! the umbrella crate's public API.

use securecyclon::attacks::SecureAttack;
use securecyclon::core::{SecureConfig, SecureCyclonNode};
use securecyclon::crypto::{Keypair, Scheme};
use securecyclon::metrics::{rises_after, spike_then_decay, TimeSeries};
use securecyclon::sim::NetworkModel;
use securecyclon::testkit::{
    blacklist_coverage, build_secure_network, malicious_link_fraction, SecureNet, SecureNetParams,
};
use std::collections::{HashSet, VecDeque};

fn cfg() -> SecureConfig {
    SecureConfig::default().with_view_len(10).with_swap_len(3)
}

#[test]
fn defense_has_the_figure5_shape() {
    let mut params = SecureNetParams::new(200, 10, SecureAttack::Hub);
    params.cfg = cfg();
    params.attack_start = 20;
    params.seed = 1;
    let mut net = build_secure_network(params);
    let mut series = TimeSeries::new("malicious links %");
    for _ in 0..90 {
        net.engine.run_cycle();
        series.push(
            net.engine.cycle(),
            100.0 * malicious_link_fraction(&net.engine, &net.malicious_ids),
        );
    }
    // Rise above the 5% population share after the attack, settle near 0.
    let shape = spike_then_decay(&series, 20, 5.5, 3.0);
    assert!(shape.holds(), "{shape:?}");
}

#[test]
fn overlay_stays_connected_through_attack_and_eviction() {
    let mut params = SecureNetParams::new(200, 10, SecureAttack::Hub);
    params.cfg = cfg();
    params.attack_start = 20;
    params.seed = 2;
    let mut net = build_secure_network(params);
    net.engine.run_cycles(90);

    // Largest connected component over honest nodes only.
    let honest: Vec<u32> = net
        .engine
        .nodes()
        .filter(|(_, n)| !n.is_malicious())
        .map(|(a, _)| a)
        .collect();
    let honest_set: HashSet<u32> = honest.iter().copied().collect();
    let mut seen = HashSet::new();
    let mut q = VecDeque::from([honest[0]]);
    seen.insert(honest[0]);
    while let Some(a) = q.pop_front() {
        let node = net.engine.node(a).unwrap();
        if let Some(h) = node.honest() {
            for e in h.view().iter() {
                let peer = e.desc.addr();
                if honest_set.contains(&peer) && seen.insert(peer) {
                    q.push_back(peer);
                }
            }
        }
    }
    assert_eq!(
        seen.len(),
        honest.len(),
        "honest overlay remains one component after evicting the attackers"
    );
}

#[test]
fn late_joiner_is_sponsored_and_learns_the_blacklist() {
    let mut params = SecureNetParams::new(150, 8, SecureAttack::Hub);
    params.cfg = cfg();
    params.attack_start = 15;
    params.seed = 3;
    let mut net = build_secure_network(params);
    net.engine.run_cycles(60); // attack has happened; culprits evicted

    let coverage = blacklist_coverage(&net.engine, &net.malicious_ids);
    assert!(coverage > 0.9, "pre-join eviction done: {coverage}");

    // Build the joiner and sponsor it from three honest seeds.
    let joiner_kp = Keypair::from_seed(Scheme::KeyedHash, [0xAB; 32]);
    let joiner_id = joiner_kp.public();
    let cycle = net.engine.cycle();
    let now = net.engine.clock().now();
    let seeds: Vec<u32> = net
        .engine
        .nodes()
        .filter(|(_, n)| !n.is_malicious())
        .map(|(a, _)| a)
        .take(3)
        .collect();
    let mut grants = Vec::new();
    let mut proofs = Vec::new();
    for s in &seeds {
        let node = net.engine.node_mut(*s).unwrap();
        if let SecureNet::Honest(h) = node {
            if let Some(d) = h.sponsor_join(joiner_id, cycle, now) {
                grants.push(d);
            }
            proofs = h.export_proofs();
        }
    }
    assert!(!grants.is_empty(), "sponsors granted descriptors");

    let mut joiner = SecureCyclonNode::new(
        joiner_kp,
        net.engine.capacity() as u32,
        cfg(),
        [0x11; 32],
        7,
    );
    for d in grants {
        assert!(joiner.accept_bootstrap(d));
    }
    joiner.import_proofs(proofs, cycle);
    let known: usize = net
        .malicious_ids
        .iter()
        .filter(|m| joiner.blacklist().contains(m))
        .count();
    assert_eq!(known, net.malicious_ids.len(), "joiner knows every culprit");

    let addr = net
        .engine
        .spawn_with(|_| SecureNet::Honest(Box::new(joiner)));
    net.engine.run_cycles(30);
    let j = net.engine.node(addr).unwrap().honest().unwrap();
    assert!(
        j.view().len() >= 3,
        "joiner's view grows through gossip: {}",
        j.view().len()
    );
    assert!(j.proof_log().is_empty(), "joiner saw no new violations");
}

#[test]
fn lossy_network_under_attack_still_converges_on_eviction() {
    let mut params = SecureNetParams::new(150, 8, SecureAttack::Hub);
    params.cfg = cfg();
    params.attack_start = 15;
    params.seed = 4;
    params.net = NetworkModel::lossy(0.05);
    let mut net = build_secure_network(params);
    net.engine.run_cycles(90);
    let coverage = blacklist_coverage(&net.engine, &net.malicious_ids);
    assert!(
        coverage > 0.9,
        "eviction propagates despite 5% message loss: {coverage}"
    );
}

#[test]
fn legacy_takeover_has_the_figure3_shape() {
    use securecyclon::attacks::{
        build_legacy_network, legacy_malicious_link_fraction, LegacyNetParams,
    };
    let (mut engine, mal) = build_legacy_network(LegacyNetParams {
        n: 200,
        n_malicious: 10,
        cfg: securecyclon::cyclon::CyclonConfig {
            view_len: 10,
            swap_len: 5,
        },
        attack_start: 20,
        seed: 5,
    });
    let mut series = TimeSeries::new("legacy malicious links %");
    for c in 0..250 {
        engine.run_cycle();
        series.push(c, 100.0 * legacy_malicious_link_fraction(&engine, &mal));
    }
    let shape = rises_after(&series, 20, 95.0);
    assert!(shape.holds(), "{shape:?}");
}

#[test]
fn whole_stack_is_deterministic() {
    let fingerprint = |seed: u64| {
        let mut params = SecureNetParams::new(120, 12, SecureAttack::Hub);
        params.cfg = cfg();
        params.attack_start = 15;
        params.seed = seed;
        let mut net = build_secure_network(params);
        net.engine.run_cycles(50);
        let mut acc: u64 = 0;
        for (_, n) in net.engine.nodes() {
            if let Some(h) = n.honest() {
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(h.view().len() as u64)
                    .wrapping_add(h.blacklist().len() as u64 * 7)
                    .wrapping_add(h.stats().completed);
            }
        }
        acc
    };
    assert_eq!(fingerprint(99), fingerprint(99));
    assert_ne!(fingerprint(99), fingerprint(100), "seeds matter");
}
