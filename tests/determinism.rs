//! Determinism regression: `sim::Engine` promises bit-identical runs per
//! seed. Two networks built from identical parameters must agree on every
//! traffic counter and every node's view after the same number of cycles —
//! this is the baseline that future performance PRs regress against.

use securecyclon::attacks::SecureAttack;
use securecyclon::core::ViewEntry;
use securecyclon::sim::{Execution, TrafficStats};
use securecyclon::testkit::{build_secure_network, SecureNetParams, SecureNetwork};

fn params(seed: u64) -> SecureNetParams {
    let mut p = SecureNetParams::new(150, 10, SecureAttack::Hub);
    p.attack_start = 15;
    p.seed = seed;
    p
}

/// Per-node view contents: rendered descriptor + swappability, slot order.
type ViewSnapshot = Vec<(u32, Vec<(String, bool)>)>;

/// Everything observable about a run: engine counters plus every view.
fn snapshot(net: &SecureNetwork) -> (TrafficStats, ViewSnapshot) {
    let mut views = Vec::new();
    for (addr, node) in net.engine.nodes() {
        let entries: Vec<(String, bool)> = match node.honest() {
            Some(honest) => honest
                .view()
                .iter()
                .map(|e: &ViewEntry| (format!("{:?}", e.desc), e.non_swappable))
                .collect(),
            None => Vec::new(),
        };
        views.push((addr, entries));
    }
    (*net.engine.stats(), views)
}

fn run(seed: u64, cycles: u64) -> (TrafficStats, ViewSnapshot) {
    let mut net = build_secure_network(params(seed));
    net.engine.run_cycles(cycles);
    snapshot(&net)
}

#[test]
fn same_seed_same_universe() {
    let a = run(7, 40);
    let b = run(7, 40);
    assert_eq!(a.0, b.0, "traffic stats must be bit-identical per seed");
    assert_eq!(a.1, b.1, "every node's view must be bit-identical per seed");
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the test above has teeth: a different seed must
    // produce an observably different universe (views are packed with
    // random peers; collision across all 150 nodes is impossible in
    // practice).
    let a = run(7, 40);
    let c = run(8, 40);
    assert_ne!(a.1, c.1, "distinct seeds should yield distinct views");
}

/// Replays an honest-only network at population `n` under the given
/// scheduling mode.
fn run_large(
    n: usize,
    seed: u64,
    cycles: u64,
    execution: Execution,
) -> (TrafficStats, ViewSnapshot) {
    let mut p = SecureNetParams::new(n, 0, SecureAttack::Hub); // 0 malicious
    p.seed = seed;
    p.execution = execution;
    let mut net = build_secure_network(p);
    net.engine.run_cycles(cycles);
    snapshot(&net)
}

/// The scale-tier contract: a large run replays bit-for-bit, and the
/// striped scheduler honors its documented seed-stream contract —
/// `stripe_len == 1` is bit-identical to sequential, while any fixed
/// `(seed, stripe_len)` replays identically under any worker count
/// (worker count is explicitly *not* part of the stream).
#[test]
fn large_n_seed_replay() {
    // Debug builds pay ~5× per node-cycle; keep the same shape, smaller.
    let n = if cfg!(debug_assertions) { 400 } else { 10_000 };
    let cycles = 8;

    let seq_a = run_large(n, 11, cycles, Execution::Sequential);
    let seq_b = run_large(n, 11, cycles, Execution::Sequential);
    assert_eq!(seq_a, seq_b, "sequential replay must be bit-identical");

    let striped_unit = run_large(
        n,
        11,
        cycles,
        Execution::Striped {
            workers: 4,
            stripe_len: 1,
        },
    );
    assert_eq!(
        seq_a, striped_unit,
        "stripe_len == 1 must match sequential bit-for-bit"
    );

    let striped_w2 = run_large(
        n,
        11,
        cycles,
        Execution::Striped {
            workers: 2,
            stripe_len: 8,
        },
    );
    let striped_w4 = run_large(
        n,
        11,
        cycles,
        Execution::Striped {
            workers: 4,
            stripe_len: 8,
        },
    );
    assert_eq!(
        striped_w2, striped_w4,
        "the striped stream depends on (seed, stripe_len), not worker count"
    );
}

#[test]
fn determinism_survives_interleaved_construction() {
    // Building both networks before running either catches accidental
    // global state (thread-local RNGs, statics) shared between engines.
    let mut n1 = build_secure_network(params(21));
    let mut n2 = build_secure_network(params(21));
    for _ in 0..25 {
        n1.engine.run_cycle();
        n2.engine.run_cycle();
    }
    assert_eq!(snapshot(&n1), snapshot(&n2));
}
