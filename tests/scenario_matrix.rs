//! The deterministic adversarial scenario matrix.
//!
//! Sweeps every scenario in `sc_testkit::catalog` under every matrix seed
//! (≥ 30 scenario×seed combinations), checking the protocol invariant
//! oracles after every cycle. Any violation aborts with the scenario
//! name, seed, and cycle — and, because runs are deterministic, re-running
//! with that seed reproduces the failure bit-for-bit.
//!
//! Environment knobs:
//!
//! * `SC_MATRIX=full` — full-fidelity sizing (larger populations, longer
//!   horizons). The default — and what CI runs on every push — is the
//!   quick sizing: same scenarios, same seeds, same oracles, smaller
//!   runs.
//! * `SC_MATRIX=scale` — scale-tier sizing: the same scenarios at
//!   5k–20k nodes with sampled per-cycle oracles. Run it with
//!   `--release`; debug builds are an order of magnitude slower at these
//!   populations.
//! * `SC_SCENARIO=<name>` — run only the named scenario.
//! * `SC_SEED=<seed>` — run only the given seed.
//! * `SC_CYCLES=<n>` — override every scenario's run length (CI's
//!   scale-smoke job shortens one scale scenario this way; events
//!   scheduled past the new horizon simply never fire).
//!
//! Replaying a reported violation:
//!
//! ```text
//! SC_SCENARIO='honest-partition-heal' SC_SEED=2 \
//!     cargo test --test scenario_matrix -- --nocapture
//! ```

use securecyclon::testkit::{
    check_batched_intake_equivalence, run_scenario, standard_matrix, MatrixSize, MATRIX_SEEDS,
};

fn env_filter(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.is_empty())
}

#[test]
fn scenario_matrix_holds_all_oracles() {
    let size = match env_filter("SC_MATRIX").as_deref() {
        Some("full") => MatrixSize::full(),
        Some("scale") => MatrixSize::scale(),
        _ => MatrixSize::quick(),
    };
    let scenario_filter = env_filter("SC_SCENARIO");
    let seed_filter: Option<u64> = env_filter("SC_SEED").map(|s| {
        s.parse()
            .unwrap_or_else(|_| panic!("SC_SEED must be an integer, got '{s}'"))
    });
    let cycles_override: Option<u64> = env_filter("SC_CYCLES").map(|s| {
        s.parse()
            .unwrap_or_else(|_| panic!("SC_CYCLES must be an integer, got '{s}'"))
    });

    let mut scenarios = standard_matrix(size);
    if let Some(cycles) = cycles_override {
        for sc in &mut scenarios {
            sc.cycles = cycles;
        }
    }
    let combos: Vec<_> = scenarios
        .iter()
        .filter(|sc| scenario_filter.as_deref().is_none_or(|f| sc.name == f))
        .flat_map(|sc| {
            MATRIX_SEEDS
                .iter()
                .filter(|&&s| seed_filter.is_none_or(|f| s == f))
                .map(move |&s| (sc, s))
        })
        .collect();
    assert!(
        !combos.is_empty(),
        "no combination matches SC_SCENARIO={scenario_filter:?} SC_SEED={seed_filter:?}"
    );
    if scenario_filter.is_none() && seed_filter.is_none() {
        assert!(
            combos.len() >= 30,
            "the matrix must sweep at least 30 scenario×seed combinations, got {}",
            combos.len()
        );
    }

    let mut failures = Vec::new();
    for (scenario, seed) in combos {
        match run_scenario(scenario, seed) {
            Ok(summary) => {
                println!(
                    "ok   {:<24} seed {seed}: {} cycles, {} alive ({} honest, +{} joined, \
                     -{} departed), proofs {:?}, coverage {:.2}, mal-links {:.3}, ns {:.3}",
                    summary.scenario,
                    summary.steps,
                    summary.final_alive,
                    summary.final_honest,
                    summary.joined,
                    summary.departed,
                    summary.proofs,
                    summary.coverage,
                    summary.malicious_links,
                    summary.ns_links,
                );
            }
            Err(violation) => {
                println!("FAIL {violation}");
                failures.push(violation.to_string());
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} oracle violation(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn batched_intake_state_matches_sequential() {
    // The batched-verification equivalence oracle: every quick-tier
    // scenario, run once with pooled intake verification and once with
    // the sequential pipeline, must leave every honest node with
    // byte-identical final views and blacklists. Any verdict divergence
    // in `verify_batch_with` would alter gossip dynamics and show up
    // here as a state mismatch naming the first differing node.
    let scenarios = standard_matrix(MatrixSize::quick());
    assert_eq!(
        scenarios.len(),
        14,
        "the equivalence sweep covers the full matrix"
    );
    for scenario in &scenarios {
        check_batched_intake_equivalence(scenario, MATRIX_SEEDS[0])
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
    }
}

#[test]
fn replayed_runs_are_bit_identical() {
    // The contract behind the replay workflow: the same (scenario, seed)
    // pair produces the same summary, down to every counter.
    let size = MatrixSize::quick();
    let scenarios = standard_matrix(size);
    let scenario = scenarios
        .iter()
        .find(|s| s.name == "lossy-churn-hub")
        .expect("catalog names are stable");
    let a = run_scenario(scenario, MATRIX_SEEDS[0]).expect("clean run");
    let b = run_scenario(scenario, MATRIX_SEEDS[0]).expect("clean run");
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
