//! Smoke-executes every example end-to-end.
//!
//! Ignored by default because each test spawns a nested `cargo` (slow, and
//! it contends for the build lock under plain `cargo test`). CI runs them
//! via the "Examples run end-to-end" step; locally:
//!
//! ```text
//! cargo test --release --test examples_smoke -- --ignored --test-threads=1
//! ```

use std::process::Command;

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "--release", "--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        !output.stdout.is_empty(),
        "example {name} produced no output"
    );
}

#[test]
#[ignore = "spawns a nested cargo build; run via CI or with -- --ignored"]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
#[ignore = "spawns a nested cargo build; run via CI or with -- --ignored"]
fn descriptor_chain_runs() {
    run_example("descriptor_chain");
}

#[test]
#[ignore = "spawns a nested cargo build; run via CI or with -- --ignored"]
fn churn_healing_runs() {
    run_example("churn_healing");
}

#[test]
#[ignore = "spawns a nested cargo build; run via CI or with -- --ignored"]
fn hub_attack_demo_runs() {
    run_example("hub_attack_demo");
}

#[test]
#[ignore = "spawns a nested cargo build; run via CI or with -- --ignored"]
fn large_scale_runs() {
    run_example("large_scale");
}

#[test]
#[ignore = "spawns a nested cargo build; run via CI or with -- --ignored"]
fn loopback_cluster_runs() {
    run_example("loopback_cluster");
}
