//! Property-based tests over the core invariants of the system:
//! chain-of-ownership algebra, violation detection soundness and
//! completeness, wire-codec round trips, and signature behavior.

use proptest::prelude::*;
use securecyclon::core::{
    compare_chains, wire, ChainRelation, LinkKind, Observation, SampleCache, SecureDescriptor,
    Timestamp, VerifyMemo, ViolationProof,
};
use securecyclon::crypto::{sha256, Keypair, Scheme, Sha256, Signature};

const PERIOD: u64 = 1000;

fn kp(tag: u8) -> Keypair {
    Keypair::from_seed(Scheme::KeyedHash, [tag.wrapping_add(1); 32])
}

/// Builds a descriptor and walks it through `path` (indices into a fixed
/// keypair pool), returning every intermediate snapshot.
fn chain_snapshots(creator_tag: u8, ts: u64, path: &[u8]) -> Vec<SecureDescriptor> {
    let creator = kp(creator_tag);
    let mut cur = SecureDescriptor::create(&creator, creator_tag as u32, Timestamp(ts));
    let mut owner = creator;
    let mut out = vec![cur.clone()];
    for &next_tag in path {
        let next = kp(next_tag);
        if next.public() == owner.public() {
            continue; // transfer to current owner is illegal; skip
        }
        cur = cur.transfer(&owner, next.public()).expect("legal transfer");
        owner = next;
        out.push(cur.clone());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Chain algebra
    // ------------------------------------------------------------------

    #[test]
    fn legal_chains_always_verify(path in proptest::collection::vec(0u8..20, 0..12)) {
        let snaps = chain_snapshots(0, 5000, &path);
        for d in &snaps {
            prop_assert!(d.verify().is_ok());
        }
        let last = snaps.last().unwrap();
        prop_assert_eq!(last.owners().count(), last.chain().len() + 1);
    }

    #[test]
    fn snapshots_of_one_history_are_always_compatible(
        path in proptest::collection::vec(0u8..20, 0..12),
        i in 0usize..12,
        j in 0usize..12,
    ) {
        let snaps = chain_snapshots(0, 5000, &path);
        let a = &snaps[i.min(snaps.len() - 1)];
        let b = &snaps[j.min(snaps.len() - 1)];
        let rel = compare_chains(a, b).expect("same descriptor");
        let expected = match a.chain().len().cmp(&b.chain().len()) {
            std::cmp::Ordering::Equal => ChainRelation::Identical,
            std::cmp::Ordering::Greater => ChainRelation::LeftExtendsRight,
            std::cmp::Ordering::Less => ChainRelation::RightExtendsLeft,
        };
        prop_assert_eq!(rel, expected, "prefix snapshots never conflict");
    }

    #[test]
    fn double_spend_always_yields_a_proof_against_the_forker(
        prefix in proptest::collection::vec(0u8..20, 0..8),
        left in 0u8..20,
        right in 0u8..20,
    ) {
        let snaps = chain_snapshots(0, 5000, &prefix);
        let base = snaps.last().unwrap();
        let owner_tag_pool: Vec<u8> = (0..20).collect();
        // Find the actual current owner's keypair by searching the pool.
        let owner = owner_tag_pool
            .iter()
            .map(|&t| kp(t))
            .find(|k| k.public() == base.owner())
            .expect("owner is from the pool");
        let to_left = kp(left);
        let to_right = kp(right);
        prop_assume!(to_left.public() != to_right.public());
        prop_assume!(to_left.public() != base.owner() && to_right.public() != base.owner());

        let a = base.transfer(&owner, to_left.public()).unwrap();
        let b = base.transfer(&owner, to_right.public()).unwrap();
        match compare_chains(&a, &b).unwrap() {
            ChainRelation::Divergent { signer, ns_exception, .. } => {
                prop_assert_eq!(signer, base.owner(), "fork signer is the culprit");
                prop_assert!(!ns_exception);
            }
            other => prop_assert!(false, "expected divergence, got {other:?}"),
        }
        let proof = ViolationProof::cloning(a, b).expect("proof construction");
        prop_assert_eq!(proof.culprit(), base.owner());
        prop_assert_eq!(proof.validate(PERIOD).unwrap(), base.owner());
    }

    // ------------------------------------------------------------------
    // Sample-cache soundness (no false accusations) and completeness
    // ------------------------------------------------------------------

    #[test]
    fn honest_histories_never_trigger_violations(
        paths in proptest::collection::vec(
            (0u8..6, proptest::collection::vec(0u8..20, 0..8)),
            1..6
        ),
        order_seed in 0u64..1000,
    ) {
        // Several independent descriptors (distinct creators or distinct
        // timestamps a full period apart), all snapshots observed in a
        // scrambled order: a correct node must never "discover" anything.
        let mut cache = SampleCache::new(1000);
        let mut all = Vec::new();
        for (k, (creator, path)) in paths.iter().enumerate() {
            let ts = 5000 + (k as u64) * PERIOD; // frequency-legal spacing
            all.extend(chain_snapshots(*creator, ts, path));
        }
        // Deterministic scramble.
        let mut idx: Vec<usize> = (0..all.len()).collect();
        idx.sort_by_key(|&i| (i as u64).wrapping_mul(order_seed | 1) % 7919);
        for i in idx {
            let obs = cache.observe(&all[i], 0, PERIOD);
            prop_assert!(
                !matches!(obs, Observation::Violation(_)),
                "false accusation on honest history"
            );
        }
    }

    #[test]
    fn observed_double_spends_are_always_caught(
        prefix in proptest::collection::vec(0u8..20, 0..6),
        noise in proptest::collection::vec(0u8..20, 0..4),
    ) {
        let snaps = chain_snapshots(0, 5000, &prefix);
        let base = snaps.last().unwrap();
        let owner = (0u8..20)
            .map(kp)
            .find(|k| k.public() == base.owner())
            .unwrap();
        let fork_a = kp(40);
        let fork_b = kp(41);
        let a = base.transfer(&owner, fork_a.public()).unwrap();
        let b = base.transfer(&owner, fork_b.public()).unwrap();
        // Extend branch b further (noise): conflict must still be caught.
        let mut b_ext = b.clone();
        let mut cur_owner = fork_b;
        for &t in &noise {
            let next = kp(t);
            if next.public() == b_ext.owner() { continue; }
            b_ext = b_ext.transfer(&cur_owner, next.public()).unwrap();
            cur_owner = next;
        }
        let mut cache = SampleCache::new(1000);
        assert_eq!(cache.observe(&a, 0, PERIOD), Observation::New);
        match cache.observe(&b_ext, 0, PERIOD) {
            Observation::Violation(p) => {
                prop_assert_eq!(p.culprit(), base.owner());
            }
            other => prop_assert!(false, "double spend missed: {other:?}"),
        }
    }

    #[test]
    fn frequency_rule_matches_spacing(
        t1 in 0u64..50_000,
        dt in 0u64..3000,
    ) {
        let creator = kp(0);
        let d1 = SecureDescriptor::create(&creator, 0, Timestamp(t1));
        let d2 = SecureDescriptor::create(&creator, 0, Timestamp(t1 + dt));
        let mut cache = SampleCache::new(1000);
        cache.observe(&d1, 0, PERIOD);
        let obs = cache.observe(&d2, 0, PERIOD);
        if dt == 0 {
            // Same timestamp + same address ⇒ the very same descriptor.
            prop_assert_eq!(obs, Observation::AlreadyKnown);
        } else if dt < PERIOD {
            prop_assert!(matches!(obs, Observation::Violation(_)), "sub-period spacing");
        } else {
            prop_assert_eq!(obs, Observation::New, "legal spacing");
        }
    }

    // ------------------------------------------------------------------
    // Incremental (memoized) verification ≡ full verification
    // ------------------------------------------------------------------

    #[test]
    fn incremental_verify_matches_full_verify(
        path in proptest::collection::vec(0u8..20, 0..10),
        warm in proptest::collection::vec(0usize..11, 0..5),
        fork_tag in 20u8..30,
        redeem_kind in prop_oneof![Just(LinkKind::Redeem), Just(LinkKind::RedeemNonSwappable)],
        tamper_link in 0usize..10,
        // Keyed-hash signatures only populate bytes 0..33 (tag + digest);
        // flips beyond that are no-ops by construction, so stay inside.
        tamper_byte in 0usize..33,
    ) {
        // Random honest history plus a fork and a redemption off its tip,
        // checked against a memo warmed with a random subset of snapshots.
        let snaps = chain_snapshots(0, 5000, &path);
        let mut memo = VerifyMemo::new(512);
        for &w in &warm {
            let d = &snaps[w.min(snaps.len() - 1)];
            prop_assert_eq!(d.verify_with(&mut memo), d.verify());
        }
        let base = snaps.last().unwrap();
        let owner = (0u8..20).map(kp).find(|k| k.public() == base.owner()).unwrap();
        let mut variants: Vec<SecureDescriptor> = snaps.clone();
        if kp(fork_tag).public() != base.owner() {
            variants.push(base.transfer(&owner, kp(fork_tag).public()).unwrap());
        }
        if !base.chain().is_empty() {
            variants.push(base.redeem(&owner, redeem_kind).unwrap());
        }
        for d in &variants {
            prop_assert_eq!(d.verify_with(&mut memo), d.verify());
            prop_assert!(d.verify_with(&mut memo).is_ok());
        }
        // Tamper with one link signature of the longest variant (rebuilt
        // through from_parts, as off the wire): identical rejection.
        let victim = variants.last().unwrap();
        if !victim.chain().is_empty() {
            let mut links = victim.chain().to_vec();
            let i = tamper_link % links.len();
            let mut sig = *links[i].sig.as_bytes();
            sig[tamper_byte] ^= 0x01;
            links[i].sig = Signature::from_bytes(sig);
            let tampered = SecureDescriptor::from_parts(*victim.genesis(), links);
            prop_assert_eq!(tampered.verify_with(&mut memo), tampered.verify());
            prop_assert!(tampered.verify_with(&mut memo).is_err());
        }
    }

    #[test]
    fn extend_by_one_verify_is_constant_and_equivalent(
        path in proptest::collection::vec(0u8..20, 0..12),
        next_tag in 0u8..20,
    ) {
        // Appending one link to a fully memoized chain must (a) agree with
        // full verification and (b) cost exactly two memo lookups — the
        // tip miss plus the immediate-prefix hit — independent of chain
        // length, i.e. no O(chain) walk hides in the hot path.
        let snaps = chain_snapshots(0, 5000, &path);
        let base = snaps.last().unwrap();
        let mut memo = VerifyMemo::new(4096);
        prop_assert_eq!(base.verify_with(&mut memo), base.verify());
        if kp(next_tag).public() != base.owner() {
            let owner = (0u8..21).map(kp).find(|k| k.public() == base.owner()).unwrap();
            let extended = base.transfer(&owner, kp(next_tag).public()).unwrap();
            let lookups_before = memo.lookups();
            prop_assert_eq!(extended.verify_with(&mut memo), extended.verify());
            prop_assert!(extended.verify_with(&mut memo).is_ok());
            // First call: tip miss + prefix hit. Second call: tip hit.
            prop_assert_eq!(memo.lookups() - lookups_before, 3);
        }
    }

    #[test]
    fn memo_capacity_never_changes_verdicts(
        path in proptest::collection::vec(0u8..20, 0..10),
        capacity in 0usize..8,
    ) {
        // Tiny (even zero) memos may evict arbitrarily; the verdict must
        // be unaffected, only the amount of skipped work.
        let snaps = chain_snapshots(3, 9000, &path);
        let mut memo = VerifyMemo::new(capacity);
        for d in &snaps {
            prop_assert_eq!(d.verify_with(&mut memo), d.verify());
        }
        for d in snaps.iter().rev() {
            prop_assert_eq!(d.verify_with(&mut memo), d.verify());
        }
    }

    // ------------------------------------------------------------------
    // Wire codec
    // ------------------------------------------------------------------

    #[test]
    fn wire_roundtrip_arbitrary_chains(
        path in proptest::collection::vec(0u8..20, 0..10),
        redeem in proptest::option::of(prop_oneof![
            Just(LinkKind::Redeem),
            Just(LinkKind::RedeemNonSwappable)
        ]),
        addr in 0u32..100_000,
        ts in 0u64..u32::MAX as u64,
    ) {
        let creator = kp(0);
        let mut cur = SecureDescriptor::create(&creator, addr, Timestamp(ts));
        let mut owner = creator;
        for &t in &path {
            let next = kp(t);
            if next.public() == owner.public() { continue; }
            cur = cur.transfer(&owner, next.public()).unwrap();
            owner = next;
        }
        if let (Some(kind), true) = (redeem, !cur.chain().is_empty()) {
            cur = cur.redeem(&owner, kind).unwrap();
        }
        let mut buf = Vec::new();
        wire::encode_descriptor(&cur, &mut buf);
        prop_assert_eq!(buf.len(), wire::descriptor_wire_bytes(&cur));
        let (back, used) = wire::decode_descriptor(&buf).expect("decode");
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(&back, &cur);
        prop_assert!(back.verify().is_ok());
        // Paper size model is exact in the chain length.
        prop_assert_eq!(
            wire::paper_descriptor_bits(&cur),
            368 + 512 * cur.chain().len()
        );
    }

    #[test]
    fn truncated_wire_input_never_panics(
        path in proptest::collection::vec(0u8..20, 0..6),
        cut_fraction in 0.0f64..1.0,
    ) {
        let snaps = chain_snapshots(0, 5000, &path);
        let d = snaps.last().unwrap();
        let mut buf = Vec::new();
        wire::encode_descriptor(d, &mut buf);
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        if cut < buf.len() {
            prop_assert!(wire::decode_descriptor(&buf[..cut]).is_err());
        }
    }

    // ------------------------------------------------------------------
    // Crypto
    // ------------------------------------------------------------------

    #[test]
    fn signatures_verify_and_reject_tampering(
        seed in proptest::array::uniform32(0u8..),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
        flip in 0usize..256,
        scheme in prop_oneof![Just(Scheme::Schnorr61), Just(Scheme::KeyedHash)],
    ) {
        let keypair = Keypair::from_seed(scheme, seed);
        let sig = keypair.sign(&msg);
        prop_assert!(keypair.public().verify(&msg, &sig));
        if !msg.is_empty() {
            let mut tampered = msg.clone();
            let i = flip % tampered.len();
            tampered[i] ^= 0x01;
            prop_assert!(!keypair.public().verify(&tampered, &sig));
        }
    }

    #[test]
    fn sha256_chunking_is_irrelevant(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        splits in proptest::collection::vec(0usize..512, 0..6),
    ) {
        let oneshot = sha256(&data);
        let mut hasher = Sha256::new();
        let mut cuts: Vec<usize> = splits.iter().map(|&s| s % (data.len() + 1)).collect();
        cuts.push(0);
        cuts.push(data.len());
        cuts.sort_unstable();
        cuts.dedup();
        for w in cuts.windows(2) {
            hasher.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(hasher.finalize(), oneshot);
    }
}

// ---------------------------------------------------------------------------
// Satellite coverage: chain compatibility algebra & SHA-256 round trips
// ---------------------------------------------------------------------------

use securecyclon::core::CompareError;
use securecyclon::crypto::hex;

/// NIST FIPS 180-2 test vectors (plus the empty string).
#[test]
fn sha256_known_vectors() {
    let vectors: [(&[u8], &str); 3] = [
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
    ];
    for (input, expected) in vectors {
        assert_eq!(hex::to_hex(&sha256(input)), expected);
    }
    // The classic million-'a' vector, fed through the incremental API.
    let mut hasher = Sha256::new();
    for _ in 0..1000 {
        hasher.update(&[b'a'; 1000]);
    }
    assert_eq!(
        hex::to_hex(&hasher.finalize()),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Chain algebra: symmetry and single-step structure
    // ------------------------------------------------------------------

    #[test]
    fn compare_chains_mirrors_under_argument_swap(
        path in proptest::collection::vec(0u8..20, 0..10),
        i in 0usize..10,
        j in 0usize..10,
    ) {
        let snaps = chain_snapshots(3, 7000, &path);
        let a = &snaps[i.min(snaps.len() - 1)];
        let b = &snaps[j.min(snaps.len() - 1)];
        let ab = compare_chains(a, b).expect("same descriptor");
        let ba = compare_chains(b, a).expect("same descriptor");
        let mirrored = match ab {
            ChainRelation::LeftExtendsRight => ChainRelation::RightExtendsLeft,
            ChainRelation::RightExtendsLeft => ChainRelation::LeftExtendsRight,
            other => other,
        };
        prop_assert_eq!(ba, mirrored);
    }

    #[test]
    fn forks_diverge_symmetrically_with_the_same_culprit(
        prefix in proptest::collection::vec(0u8..20, 0..8),
        left in 20u8..30,
        right in 30u8..40,
    ) {
        // Forking tags are drawn from pools disjoint from the prefix pool
        // (and from each other), so both transfers are always legal.
        let snaps = chain_snapshots(0, 5000, &prefix);
        let base = snaps.last().unwrap();
        let owner = (0u8..20).map(kp).find(|k| k.public() == base.owner()).unwrap();
        let a = base.transfer(&owner, kp(left).public()).unwrap();
        let b = base.transfer(&owner, kp(right).public()).unwrap();
        let ab = compare_chains(&a, &b).unwrap();
        let ba = compare_chains(&b, &a).unwrap();
        prop_assert_eq!(ab, ba, "divergence is direction-independent");
        match ab {
            ChainRelation::Divergent { index, signer, ns_exception } => {
                prop_assert_eq!(index, base.chain().len());
                prop_assert_eq!(signer, base.owner());
                prop_assert!(!ns_exception);
            }
            other => prop_assert!(false, "expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn each_transfer_extends_the_chain_by_exactly_one(
        path in proptest::collection::vec(0u8..20, 1..10),
    ) {
        let snaps = chain_snapshots(5, 9000, &path);
        for w in snaps.windows(2) {
            prop_assert_eq!(w[1].chain().len(), w[0].chain().len() + 1);
            prop_assert_eq!(
                compare_chains(&w[0], &w[1]).unwrap(),
                ChainRelation::RightExtendsLeft
            );
        }
    }

    #[test]
    fn unrelated_descriptors_do_not_compare(
        a_tag in 0u8..10,
        b_tag in 10u8..20,
        ts in 0u64..1_000_000,
    ) {
        // Different creators produce different descriptor ids.
        let da = SecureDescriptor::create(&kp(a_tag), 1, Timestamp(ts));
        let db = SecureDescriptor::create(&kp(b_tag), 2, Timestamp(ts));
        prop_assert_eq!(compare_chains(&da, &db), Err(CompareError::DifferentIds));
    }

    // ------------------------------------------------------------------
    // SHA-256: hex round trip, determinism, sensitivity
    // ------------------------------------------------------------------

    #[test]
    fn sha256_hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let digest = sha256(&data);
        let encoded = hex::to_hex(&digest);
        prop_assert_eq!(encoded.len(), 64);
        let decoded = hex::from_hex(&encoded).expect("valid hex");
        prop_assert_eq!(decoded.as_slice(), &digest[..]);
    }

    #[test]
    fn sha256_is_deterministic_and_tamper_sensitive(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        flip in 0usize..256,
    ) {
        prop_assert_eq!(sha256(&data), sha256(&data));
        let mut tampered = data.clone();
        let i = flip % tampered.len();
        tampered[i] ^= 0x80;
        prop_assert_ne!(sha256(&tampered), sha256(&data));
    }
}
