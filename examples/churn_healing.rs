//! Self-healing under churn: nodes join and crash continuously, a
//! catastrophic failure wipes out a third of the network, and the overlay
//! keeps every survivor connected.
//!
//! ```text
//! cargo run --release --example churn_healing
//! ```

use securecyclon::attacks::SecureAttack;
use securecyclon::sim::Engine;
use securecyclon::testkit::{build_secure_network, SecureNet, SecureNetParams};
use std::collections::{HashSet, VecDeque};

/// Size of the largest weakly-connected component over honest views.
fn largest_component(engine: &Engine<SecureNet>) -> usize {
    let alive: Vec<u32> = engine.nodes().map(|(a, _)| a).collect();
    let alive_set: HashSet<u32> = alive.iter().copied().collect();
    let mut seen: HashSet<u32> = HashSet::new();
    let mut best = 0;
    for &start in &alive {
        if seen.contains(&start) {
            continue;
        }
        let mut q = VecDeque::from([start]);
        seen.insert(start);
        let mut size = 0;
        while let Some(a) = q.pop_front() {
            size += 1;
            let Some(node) = engine.node(a) else { continue };
            let Some(h) = node.honest() else { continue };
            for e in h.view().iter() {
                let peer = e.desc.addr();
                if alive_set.contains(&peer) && seen.insert(peer) {
                    q.push_back(peer);
                }
            }
        }
        best = best.max(size);
    }
    best
}

fn main() {
    let mut params = SecureNetParams::new(400, 0, SecureAttack::None);
    params.seed = 4;
    let mut net = build_secure_network(params);

    println!("converging a 400-node overlay…");
    net.engine.run_cycles(40);
    println!(
        "  alive {}, largest connected component {}",
        net.engine.alive_count(),
        largest_component(&net.engine)
    );

    println!("\ncatastrophe: killing 130 random nodes at once");
    for addr in (0..400u32).step_by(3).take(130) {
        net.engine.kill(addr);
    }
    println!(
        "  immediately after: alive {}, largest component {}",
        net.engine.alive_count(),
        largest_component(&net.engine)
    );

    net.engine.run_cycles(30);
    let alive = net.engine.alive_count();
    let comp = largest_component(&net.engine);
    println!("\nafter 30 healing cycles: alive {alive}, largest component {comp}");

    let mut dead_links = 0usize;
    let mut total = 0usize;
    for (_, n) in net.engine.nodes() {
        for e in n.honest().unwrap().view().iter() {
            total += 1;
            if !net.engine.is_alive(e.desc.addr()) {
                dead_links += 1;
            }
        }
    }
    println!(
        "dead links remaining in views: {dead_links}/{total} ({:.1}%)",
        100.0 * dead_links as f64 / total as f64
    );
    assert_eq!(comp, alive, "overlay stays in a single component");
    println!("\noverlay healed: every survivor remains connected ✓");
}
