//! Large-scale simulation: a 20,000-node SecureCyclon overlay driven
//! through the arena-backed engine, with a nodes-per-second readout.
//!
//! ```text
//! cargo run --release --example large_scale
//! ```
//!
//! Populations this size are why the engine stores nodes in an index
//! arena (no per-node heap graph), batches one-way traffic, and offers
//! striped execution: the same run replays bit-for-bit from one seed.

use securecyclon::attacks::SecureAttack;
use securecyclon::testkit::{build_secure_network, SecureNetParams};
use std::time::Instant;

fn main() {
    // Keep the default-build smoke test snappy; release runs the full
    // population (override with LARGE_SCALE_N).
    let n: usize = std::env::var("LARGE_SCALE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) {
            1_000
        } else {
            20_000
        });
    let cycles = 10u64;

    let mut params = SecureNetParams::new(n, 0, SecureAttack::None);
    params.seed = 42;

    let t0 = Instant::now();
    let mut net = build_secure_network(params);
    println!(
        "built a {}-node overlay in {:.2?} (capacity {}, all alive)",
        n,
        t0.elapsed(),
        net.engine.capacity()
    );

    let t1 = Instant::now();
    net.engine.run_cycles(cycles);
    let elapsed = t1.elapsed();
    let node_cycles = n as u64 * cycles;
    println!(
        "ran {cycles} gossip cycles in {:.2?} — {:.0} node-cycles/sec",
        elapsed,
        node_cycles as f64 / elapsed.as_secs_f64()
    );

    // The overlay is healthy: views full of live peers, no proofs in an
    // honest network, and the engine's counters account for the traffic.
    let stats = net.engine.stats();
    println!(
        "traffic: {} RPCs completed, {} unreachable, {} one-way datagrams",
        stats.rpcs_completed, stats.rpcs_unreachable, stats.oneways_delivered
    );
    let mut fills = 0usize;
    let mut slots = 0usize;
    for (_, node) in net.engine.nodes() {
        let h = node.honest().expect("all nodes honest");
        fills += h.view().len();
        slots += h.config().view_len;
        assert!(h.blacklist().is_empty(), "honest runs accuse nobody");
    }
    println!(
        "views: {:.1}% full across {} nodes",
        100.0 * fills as f64 / slots as f64,
        net.engine.alive_count()
    );
}
