//! A walkthrough of the paper's Figure 4: the chain of ownership, and how
//! conflicting chains expose a cloning violator.
//!
//! ```text
//! cargo run --release --example descriptor_chain
//! ```

use securecyclon::core::{LinkKind, SecureDescriptor, Timestamp, ViolationProof};
use securecyclon::crypto::{Keypair, Scheme};

fn main() {
    // Four nodes: A creates a descriptor, hands it to B, B to C, C to D.
    let a = Keypair::from_seed(Scheme::Schnorr61, [1; 32]);
    let b = Keypair::from_seed(Scheme::Schnorr61, [2; 32]);
    let c = Keypair::from_seed(Scheme::Schnorr61, [3; 32]);
    let d = Keypair::from_seed(Scheme::Schnorr61, [4; 32]);

    println!("Figure 4: a descriptor's chain of ownership\n");
    let desc = SecureDescriptor::create(&a, 42, Timestamp(9_000));
    println!(
        "A mints:        creator={} addr=42 t={}",
        a.public(),
        desc.created_at()
    );

    let desc = desc.transfer(&a, b.public()).expect("A owns it");
    let desc = desc.transfer(&b, c.public()).expect("B owns it");
    let desc = desc.transfer(&c, d.public()).expect("C owns it");
    println!("after A→B→C→D:  owner={}", desc.owner());
    for (i, link) in desc.chain().iter().enumerate() {
        println!(
            "  link {i}: signed by {}, hands to {} ({:?})",
            desc.owner_at(i),
            link.to,
            link.kind
        );
    }
    desc.verify().expect("every signature checks out");
    println!("full chain verifies ✓\n");

    // D redeems the descriptor back to A — its lifecycle ends.
    let redeemed = desc.redeem(&d, LinkKind::Redeem).expect("D owns it");
    println!(
        "D redeems to A: is_redeemed={} redeemer={}\n",
        redeemed.is_redeemed(),
        redeemed.redeemer().unwrap()
    );

    // Now the attack: B *clones* the descriptor it once owned, handing it
    // to two different parties. The two chains share the prefix A→B and
    // then diverge — both divergent links signed by B.
    println!("Cloning: B double-spends the descriptor it received from A");
    let at_b = SecureDescriptor::create(&a, 42, Timestamp(10_000))
        .transfer(&a, b.public())
        .unwrap();
    let to_c = at_b.transfer(&b, c.public()).unwrap();
    let to_d = at_b.transfer(&b, d.public()).unwrap();
    println!("  copy 1 chain: A→B→C");
    println!("  copy 2 chain: A→B→D");

    let proof = ViolationProof::cloning(to_c, to_d).expect("the copies conflict");
    println!(
        "\nany node holding both copies derives an indisputable proof:\n  culprit = {} (B is {})",
        proof.culprit(),
        b.public()
    );
    assert_eq!(proof.culprit(), b.public());

    // The proof is transferable: any third party can validate it from
    // scratch, with no trust in the accuser.
    let period_ticks = 1000;
    let culprit = proof
        .validate(period_ticks)
        .expect("third-party validation");
    println!("third-party validation confirms the culprit: {culprit} ✓");
}
