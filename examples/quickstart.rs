//! Quickstart: build a SecureCyclon overlay, run it, and use the peer
//! samples it produces.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use securecyclon::attacks::SecureAttack;
use securecyclon::metrics::Histogram;
use securecyclon::testkit::{build_secure_network, SecureNetParams};
use std::collections::HashMap;

fn main() {
    // 500 nodes, all honest, default paper parameters (ℓ=20, s=3, r=5).
    let mut params = SecureNetParams::new(500, 0, SecureAttack::None);
    params.seed = 1;
    let mut net = build_secure_network(params);

    println!(
        "running 100 gossip cycles over {} nodes…",
        net.engine.alive_count()
    );
    net.engine.run_cycles(100);

    // 1. Peer sampling: each node's view is a continuously refreshed
    //    random sample of the live network.
    let (addr, node) = net.engine.nodes().next().expect("network is non-empty");
    let node = node.honest().expect("all nodes honest");
    println!(
        "\nnode @{addr} currently samples {} peers:",
        node.view().len()
    );
    for entry in node.view().iter().take(5) {
        println!(
            "  → {} @addr {} (descriptor minted at {}, {} transfers)",
            entry.desc.creator(),
            entry.desc.addr(),
            entry.desc.created_at(),
            entry.desc.transfer_count()
        );
    }

    // 2. Overlay health: indegrees concentrate around the view length —
    //    the paper's Figure 2 signature of a random-graph-like overlay.
    let mut indeg: HashMap<_, u64> = HashMap::new();
    for (_, n) in net.engine.nodes() {
        for e in n.honest().unwrap().view().iter() {
            *indeg.entry(e.desc.creator()).or_default() += 1;
        }
    }
    let hist: Histogram = indeg.into_values().collect();
    println!(
        "\nindegree distribution: mean {:.1}, σ {:.1}, min {}, max {}",
        hist.mean(),
        hist.std_dev(),
        hist.min().unwrap_or(0),
        hist.max().unwrap_or(0)
    );

    // 3. Security: nothing to report in an honest network.
    let proofs: usize = net
        .engine
        .nodes()
        .map(|(_, n)| n.honest().unwrap().proof_log().len())
        .sum();
    println!("violation proofs generated: {proofs} (honest network ⇒ none)");
}
