//! A live SecureCyclon cluster on loopback sockets — the daemon's event
//! loop driven entirely through the library API.
//!
//! Eight nodes bind real TCP ports on 127.0.0.1, compute the shared ring
//! bootstrap from one seed, and gossip on a shared wall clock. The main
//! thread plays the role of an operator: it scrapes every node over the
//! control channel, prints the cluster's health, and shuts it down.
//!
//! ```text
//! cargo run --release --example loopback_cluster
//! ```

use securecyclon::core::SecureConfig;
use securecyclon::crypto::Scheme;
use securecyclon::node::{ControlClient, Daemon, NodeConfig};
use std::net::{Ipv4Addr, SocketAddrV4, TcpListener};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

const N: usize = 8;
const VIEW_LEN: usize = 4;
const CYCLE_MS: u64 = 50;
const RUN_CYCLES: u64 = 20;

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// First port `p` where `p..p+N` all bind cleanly.
fn free_port_block() -> u32 {
    let pid = std::process::id();
    for attempt in 0..64u32 {
        let base = 22_000 + (pid.wrapping_mul(131).wrapping_add(attempt * 977)) % 40_000;
        let ok = (base..base + N as u32)
            .all(|p| TcpListener::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, p as u16)).is_ok());
        if ok {
            return base;
        }
    }
    panic!("no free loopback port block");
}

fn main() {
    let base = free_port_block();
    let start_cycle = VIEW_LEN as u64; // ring bootstrap spans ℓ cycles
    let stop_cycle = start_cycle + RUN_CYCLES;
    let epoch = unix_ms() + 200; // start-up slack for the spawns

    println!(
        "spawning {N} daemons on 127.0.0.1:{base}..{}",
        base + N as u32
    );
    let handles: Vec<_> = (0..N)
        .map(|i| {
            let mut cfg = NodeConfig::new(base + i as u32, i);
            cfg.cluster_size = N;
            cfg.base_addr = base;
            cfg.cycle_ms = CYCLE_MS;
            cfg.epoch_millis = epoch;
            cfg.stop_cycle = stop_cycle;
            cfg.scheme = Scheme::KeyedHash;
            cfg.secure = SecureConfig::default()
                .with_view_len(VIEW_LEN)
                .with_swap_len(2);
            let mut daemon = Daemon::new(cfg).expect("bind daemon socket");
            std::thread::spawn(move || daemon.run())
        })
        .collect();

    // Let the cluster gossip to quiescence: every member stops firing at
    // the same shared-clock cycle and lingers serving control scrapes.
    let deadline = epoch + stop_cycle.saturating_sub(start_cycle) * CYCLE_MS + 400;
    std::thread::sleep(Duration::from_millis(deadline.saturating_sub(unix_ms())));

    println!("\nper-node state over the control channel:");
    let timeout = Duration::from_millis(500);
    for i in 0..N {
        let addr = base + i as u32;
        let mut client = ControlClient::connect(addr, timeout).expect("connect control");
        let r = client.status(timeout).expect("scrape status");
        println!(
            "  node {addr}: cycle {}, view {}/{VIEW_LEN}, exchanges {}/{} ok, \
             paper bytes out {}",
            r.cycle,
            r.view.len(),
            r.stats.completed,
            r.stats.initiated,
            r.stats.bytes_sent,
        );
        client.shutdown().expect("send shutdown");
    }

    let mut cycles = 0;
    for h in handles {
        let summary = h.join().expect("daemon thread");
        cycles += summary.cycles_run;
    }
    println!("\ncluster stopped cleanly after {cycles} node-cycles total");
}
