//! The paper's headline result, side by side: the same hub attack
//! destroys legacy Cyclon and bounces off SecureCyclon.
//!
//! ```text
//! cargo run --release --example hub_attack_demo
//! ```

use securecyclon::attacks::{
    build_legacy_network, legacy_malicious_link_fraction, LegacyNetParams, SecureAttack,
};
use securecyclon::cyclon::CyclonConfig;
use securecyclon::metrics::{ascii_chart, TimeSeries};
use securecyclon::testkit::{build_secure_network, malicious_link_fraction, SecureNetParams};

const N: usize = 400;
const MALICIOUS: usize = 12;
const VIEW: usize = 12;
const ATTACK_AT: u64 = 30;
const CYCLES: u64 = 160;

fn legacy_run() -> TimeSeries {
    let (mut engine, mal) = build_legacy_network(LegacyNetParams {
        n: N,
        n_malicious: MALICIOUS,
        cfg: CyclonConfig {
            view_len: VIEW,
            swap_len: 3,
        },
        attack_start: ATTACK_AT,
        seed: 9,
    });
    let mut series = TimeSeries::new("legacy Cyclon");
    for c in 0..CYCLES {
        engine.run_cycle();
        series.push(c, 100.0 * legacy_malicious_link_fraction(&engine, &mal));
    }
    series
}

fn secure_run() -> TimeSeries {
    let mut params = SecureNetParams::new(N, MALICIOUS, SecureAttack::Hub);
    params.cfg = params.cfg.with_view_len(VIEW).with_swap_len(3);
    params.attack_start = ATTACK_AT;
    params.seed = 9;
    let mut net = build_secure_network(params);
    let mut series = TimeSeries::new("SecureCyclon");
    for c in 0..CYCLES {
        net.engine.run_cycle();
        series.push(
            c,
            100.0 * malicious_link_fraction(&net.engine, &net.malicious_ids),
        );
    }
    series
}

fn main() {
    println!(
        "hub attack: {MALICIOUS} colluding nodes among {N}, attack starts at cycle {ATTACK_AT}\n"
    );
    let legacy = legacy_run();
    let secure = secure_run();

    println!("links routing to the attacker (% of honest views):\n");
    print!("{}", ascii_chart(&[legacy.clone(), secure.clone()], 64));

    println!(
        "\nlegacy Cyclon:  final {:.1}% — the attacker owns the overlay",
        legacy.last().unwrap_or(0.0)
    );
    println!(
        "SecureCyclon:   peak {:.1}%, final {:.1}% — violators proven, blacklisted, purged",
        secure.max().unwrap_or(0.0),
        secure.last().unwrap_or(0.0)
    );
}
