//! # securecyclon — dependable peer sampling
//!
//! A comprehensive Rust reproduction of **"SecureCyclon: Dependable Peer
//! Sampling"** (A. Antonov and S. Voulgaris, IEEE ICDCS 2023). SecureCyclon
//! hardens the Cyclon gossip-based peer-sampling protocol against Byzantine
//! participants by turning node descriptors into unforgeable, unclonable
//! tokens with signed chains of ownership: any attempt to over-represent
//! malicious nodes produces *indisputable, transferable proof* of the
//! violation, and the culprit is permanently evicted by every correct node.
//!
//! This crate re-exports the workspace:
//!
//! * [`crypto`] — SHA-256, keypairs, signatures (from scratch).
//! * [`sim`] — a deterministic cycle-driven P2P simulation engine.
//! * [`cyclon`] — the legacy Cyclon baseline.
//! * [`core`] — the SecureCyclon protocol itself.
//! * [`attacks`] — the paper's adversary suite.
//! * [`testkit`] — mixed-network builder, adversarial scenario harness,
//!   protocol invariant oracles, and the real-process loopback harness.
//! * [`node`] — the runnable `sc-node` daemon: the protocol on real
//!   TCP sockets, with framing, bootstrap, and a control channel.
//! * [`metrics`] — histograms, time series, and figure emission.
//!
//! # Quickstart
//!
//! ```
//! use securecyclon::attacks::SecureAttack;
//! use securecyclon::testkit::{build_secure_network, SecureNetParams};
//!
//! // A 200-node overlay, all honest, bootstrapped and converged.
//! let mut net = build_secure_network(SecureNetParams::new(200, 0, SecureAttack::None));
//! net.engine.run_cycles(30);
//!
//! // Every node now holds a random sample of live peers.
//! let (_, node) = net.engine.nodes().next().unwrap();
//! let view = node.honest().unwrap().view();
//! assert!(view.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sc_attacks as attacks;
pub use sc_core as core;
pub use sc_crypto as crypto;
pub use sc_cyclon as cyclon;
pub use sc_metrics as metrics;
pub use sc_node as node;
pub use sc_sim as sim;
pub use sc_testkit as testkit;
