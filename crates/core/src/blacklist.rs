//! The blacklist: permanent, proof-backed eviction of violators (§IV-C).
//!
//! A node lands here only with a validated [`ViolationProof`]; the
//! blacklist therefore never holds false positives — the property that
//! distinguishes SecureCyclon from the probabilistic defenses surveyed in
//! the paper's §VII. Proofs are retained so they can be re-served to
//! late-joining nodes during gossip.

use crate::proof::ViolationProof;
use sc_crypto::{FxHashSet, NodeId};

/// A registered proof together with when this node learned of it.
#[derive(Clone, Debug)]
pub struct StoredProof {
    /// The validated proof.
    pub proof: ViolationProof,
    /// Cycle at which this node validated and registered the proof.
    pub learned_cycle: u64,
}

/// Set of provably malicious nodes plus the evidence against them.
#[derive(Debug, Default)]
pub struct Blacklist {
    culprits: FxHashSet<NodeId>,
    proofs: Vec<StoredProof>,
}

impl Blacklist {
    /// Creates an empty blacklist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `id` has been proven malicious.
    pub fn contains(&self, id: &NodeId) -> bool {
        self.culprits.contains(id)
    }

    /// Number of blacklisted nodes.
    pub fn len(&self) -> usize {
        self.culprits.len()
    }

    /// Whether no node has been blacklisted.
    pub fn is_empty(&self) -> bool {
        self.culprits.is_empty()
    }

    /// Registers a proof. Returns `true` if the culprit is newly
    /// blacklisted, `false` if it was already known (the caller should not
    /// re-flood in that case — the paper's DoS guard, §IV-C).
    ///
    /// The proof must already be validated; this type does not re-check.
    pub fn register(&mut self, proof: ViolationProof, learned_cycle: u64) -> bool {
        if !self.culprits.insert(proof.culprit()) {
            return false;
        }
        self.proofs.push(StoredProof {
            proof,
            learned_cycle,
        });
        true
    }

    /// All stored proofs.
    pub fn proofs(&self) -> &[StoredProof] {
        &self.proofs
    }

    /// Proofs learned at or after `cycle` (for gossip piggybacking).
    pub fn proofs_since(&self, cycle: u64) -> impl Iterator<Item = &ViolationProof> {
        self.proofs
            .iter()
            .filter(move |p| p.learned_cycle >= cycle)
            .map(|p| &p.proof)
    }

    /// Iterates over blacklisted node IDs.
    pub fn culprits(&self) -> impl Iterator<Item = &NodeId> {
        self.culprits.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::SecureDescriptor;
    use crate::time::Timestamp;
    use sc_crypto::{Keypair, Scheme};

    fn proof(tag: u8, ts: u64) -> ViolationProof {
        let kp = Keypair::from_seed(Scheme::Schnorr61, [tag; 32]);
        let d1 = SecureDescriptor::create(&kp, 0, Timestamp(ts));
        let d2 = SecureDescriptor::create(&kp, 0, Timestamp(ts + 1));
        ViolationProof::frequency(d1, d2, 1000).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut bl = Blacklist::new();
        let p = proof(1, 0);
        let culprit = p.culprit();
        assert!(!bl.contains(&culprit));
        assert!(bl.register(p, 5));
        assert!(bl.contains(&culprit));
        assert_eq!(bl.len(), 1);
    }

    #[test]
    fn duplicate_culprit_not_reregistered() {
        let mut bl = Blacklist::new();
        assert!(bl.register(proof(1, 0), 5));
        assert!(!bl.register(proof(1, 5000), 6), "same culprit, new proof");
        assert_eq!(bl.len(), 1);
        assert_eq!(bl.proofs().len(), 1, "evidence not duplicated");
    }

    #[test]
    fn proofs_since_filters_by_cycle() {
        let mut bl = Blacklist::new();
        bl.register(proof(1, 0), 5);
        bl.register(proof(2, 0), 10);
        bl.register(proof(3, 0), 15);
        assert_eq!(bl.proofs_since(10).count(), 2);
        assert_eq!(bl.proofs_since(16).count(), 0);
        assert_eq!(bl.proofs_since(0).count(), 3);
    }

    #[test]
    fn empty_checks() {
        let bl = Blacklist::new();
        assert!(bl.is_empty());
        assert_eq!(bl.culprits().count(), 0);
    }
}
