//! The secure partial view.
//!
//! Like the legacy Cyclon view, but entries are owned
//! [`SecureDescriptor`]s and each carries the *non-swappable* marker of
//! §V-A: a non-swappable entry is a retained copy of a descriptor whose
//! ownership was transferred away; it may only be redeemed (used as a
//! gossiping token toward its creator), never swapped to a third party.
//!
//! Invariants:
//!
//! 1. at most `capacity` (ℓ) entries;
//! 2. no entry's descriptor was created by the view's owner;
//! 3. at most one entry per descriptor identity (two copies of one token
//!    in a single view would be self-made cloning evidence);
//! 4. every entry's descriptor is currently owned by the view's owner and
//!    is not redeemed.
//!
//! Unlike legacy Cyclon, the view does **not** dedup by creator: secure
//! descriptors are conserved single-owner tokens, so discarding one for
//! merely sharing a creator with an existing entry would permanently
//! destroy a link. Two live descriptors of the same creator are distinct
//! tokens and may coexist.

use crate::descriptor::SecureDescriptor;
use rand::seq::SliceRandom;
use rand::Rng;
use sc_crypto::NodeId;

/// A view slot: an owned descriptor plus its swappability.
#[derive(Clone, Debug)]
pub struct ViewEntry {
    /// The owned descriptor.
    pub desc: SecureDescriptor,
    /// Whether this is a retained non-swappable copy (§V-A).
    pub non_swappable: bool,
}

/// A bounded list of owned neighbor descriptors.
#[derive(Debug)]
pub struct SecureView {
    owner: NodeId,
    capacity: usize,
    entries: Vec<ViewEntry>,
}

impl SecureView {
    /// Creates an empty view for `owner` with `capacity` slots (ℓ).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        SecureView {
            owner,
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of entries held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum entries (ℓ).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Number of non-swappable entries (the Figure 6 metric).
    pub fn ns_count(&self) -> usize {
        self.entries.iter().filter(|e| e.non_swappable).count()
    }

    /// Whether a descriptor created by `creator` is present.
    pub fn contains_creator(&self, creator: &NodeId) -> bool {
        self.entries.iter().any(|e| e.desc.creator() == *creator)
    }

    /// Whether this exact descriptor identity is present.
    pub fn contains_id(&self, id: &crate::descriptor::DescriptorId) -> bool {
        self.entries.iter().any(|e| e.desc.id() == *id)
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &ViewEntry> {
        self.entries.iter()
    }

    /// Whether `desc` would be accepted by [`SecureView::insert`].
    pub fn can_insert(&self, desc: &SecureDescriptor) -> bool {
        desc.creator() != self.owner
            && desc.owner() == self.owner
            && !desc.is_redeemed()
            && !self.contains_id(&desc.id())
            && self.entries.len() < self.capacity
    }

    /// Inserts an owned descriptor; reports whether it was stored.
    ///
    /// Rejects entries violating the view invariants (see module docs).
    pub fn insert(&mut self, desc: SecureDescriptor, non_swappable: bool) -> bool {
        self.try_insert(desc, non_swappable).is_none()
    }

    /// Move-based insert: stores `desc` if the invariants allow, otherwise
    /// hands it back so the caller can route it elsewhere without cloning.
    pub fn try_insert(
        &mut self,
        desc: SecureDescriptor,
        non_swappable: bool,
    ) -> Option<SecureDescriptor> {
        if !self.can_insert(&desc) {
            return Some(desc);
        }
        self.entries.push(ViewEntry {
            desc,
            non_swappable,
        });
        None
    }

    /// Removes and returns the entry with the oldest creation timestamp —
    /// the descriptor SecureCyclon redeems next.
    pub fn remove_oldest(&mut self) -> Option<ViewEntry> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.desc.created_at())?
            .0;
        Some(self.entries.swap_remove(idx))
    }

    /// Removes and returns up to `k` random **swappable** descriptors
    /// (non-swappable entries may never be traded away).
    pub fn remove_random_swappable<R: Rng + ?Sized>(
        &mut self,
        k: usize,
        rng: &mut R,
    ) -> Vec<SecureDescriptor> {
        self.remove_random_swappable_filtered(k, rng, |_| true)
    }

    /// Like [`SecureView::remove_random_swappable`] but only considers
    /// entries matching `keep`. Used by exchanges to avoid handing a
    /// partner descriptors it created itself (a pointless link that would
    /// die on arrival).
    pub fn remove_random_swappable_filtered<R, F>(
        &mut self,
        k: usize,
        rng: &mut R,
        keep: F,
    ) -> Vec<SecureDescriptor>
    where
        R: Rng + ?Sized,
        F: Fn(&SecureDescriptor) -> bool,
    {
        let mut swappable: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.non_swappable && keep(&e.desc))
            .map(|(i, _)| i)
            .collect();
        let k = k.min(swappable.len());
        // Use the returned slice rather than assuming where the chosen
        // elements land; rand places them at the end, not the front.
        let (chosen, _) = swappable.partial_shuffle(rng, k);
        let mut picked: Vec<usize> = chosen.to_vec();
        // Remove from the back so earlier indices stay valid.
        picked.sort_unstable_by(|a, b| b.cmp(a));
        picked
            .into_iter()
            .map(|i| self.entries.swap_remove(i).desc)
            .collect()
    }

    /// Replaces a **non-swappable** entry for `desc`'s creator with the
    /// (swappable) `desc`. A retained NS copy is a phantom fallback; a
    /// real owned descriptor of the same creator is strictly better, so
    /// it takes the slot. Returns whether a replacement happened.
    pub fn replace_ns_with(&mut self, desc: SecureDescriptor) -> bool {
        self.try_replace_ns_with(desc).is_none()
    }

    /// Move-based variant of [`SecureView::replace_ns_with`]: returns the
    /// descriptor unchanged when no non-swappable slot matched.
    ///
    /// Identity care: when the incoming descriptor's identity is already
    /// present, only the entry holding that identity may be replaced (the
    /// retained NS copy of a descriptor now returning home). Replacing a
    /// *different* NS entry of the same creator would leave two copies of
    /// one token in the view — self-made cloning evidence, violating
    /// invariant 3. This exact corner was first caught by the sc-testkit
    /// `view-conservation` oracle under lossy-network scenarios, where a
    /// descriptor can legally revisit a former owner while that owner
    /// still retains NS copies of other tokens by the same creator.
    pub fn try_replace_ns_with(&mut self, desc: SecureDescriptor) -> Option<SecureDescriptor> {
        if desc.creator() == self.owner || desc.owner() != self.owner || desc.is_redeemed() {
            return Some(desc);
        }
        let id = desc.id();
        let same_id = self
            .entries
            .iter()
            .position(|e| e.non_swappable && e.desc.id() == id);
        let slot = match same_id {
            Some(i) => i,
            None => {
                if self.contains_id(&id) {
                    // The identity lives in a swappable slot; a second
                    // copy must not enter the view through any path.
                    return Some(desc);
                }
                match self
                    .entries
                    .iter()
                    .position(|e| e.non_swappable && e.desc.creator() == desc.creator())
                {
                    Some(i) => i,
                    None => return Some(desc),
                }
            }
        };
        self.entries[slot].desc = desc;
        self.entries[slot].non_swappable = false;
        None
    }

    /// Removes all entries created by `creator`; returns how many were
    /// dropped (post-blacklist purge).
    pub fn purge_creator(&mut self, creator: &NodeId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.desc.creator() != *creator);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sc_crypto::{Keypair, Scheme};

    fn kp(tag: u8) -> Keypair {
        Keypair::from_seed(Scheme::Schnorr61, [tag; 32])
    }

    /// A descriptor created by `creator_tag`, owned by `owner`.
    fn owned_desc(creator_tag: u8, ts: u64, owner: &Keypair) -> SecureDescriptor {
        let c = kp(creator_tag);
        SecureDescriptor::create(&c, creator_tag as u32, Timestamp(ts))
            .transfer(&c, owner.public())
            .unwrap()
    }

    #[test]
    fn insert_enforces_invariants() {
        let me = kp(0);
        let mut v = SecureView::new(me.public(), 2);

        // Own descriptor rejected.
        let own = SecureDescriptor::create(&me, 0, Timestamp(0));
        assert!(!v.insert(own, false));

        // Descriptor not owned by me rejected.
        let other = kp(9);
        let not_mine = owned_desc(1, 0, &other);
        assert!(!v.insert(not_mine, false));

        // Valid insert.
        let first = owned_desc(1, 0, &me);
        assert!(v.insert(first.clone(), false));
        // The same token twice is rejected…
        assert!(!v.insert(first, false));
        // …but a *distinct* token by the same creator is welcome.
        assert!(v.insert(owned_desc(1, 1000, &me), false));
        // Capacity enforced.
        assert!(!v.insert(owned_desc(3, 0, &me), false));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn redeemed_descriptor_rejected() {
        use crate::descriptor::LinkKind;
        let me = kp(0);
        let mut v = SecureView::new(me.public(), 4);
        let d = owned_desc(1, 0, &me).redeem(&me, LinkKind::Redeem).unwrap();
        assert!(!v.insert(d, false));
    }

    #[test]
    fn remove_oldest_by_creation_time() {
        let me = kp(0);
        let mut v = SecureView::new(me.public(), 4);
        v.insert(owned_desc(1, 5000, &me), false);
        v.insert(owned_desc(2, 1000, &me), false);
        v.insert(owned_desc(3, 9000, &me), false);
        let oldest = v.remove_oldest().unwrap();
        assert_eq!(oldest.desc.created_at(), Timestamp(1000));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn ns_entries_never_swapped() {
        let me = kp(0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v = SecureView::new(me.public(), 8);
        v.insert(owned_desc(1, 0, &me), true);
        v.insert(owned_desc(2, 0, &me), true);
        v.insert(owned_desc(3, 0, &me), false);
        let out = v.remove_random_swappable(5, &mut rng);
        assert_eq!(out.len(), 1, "only the swappable entry leaves");
        assert_eq!(v.ns_count(), 2);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn ns_entries_are_redeemable_via_oldest() {
        let me = kp(0);
        let mut v = SecureView::new(me.public(), 4);
        v.insert(owned_desc(1, 100, &me), true);
        v.insert(owned_desc(2, 900, &me), false);
        let e = v.remove_oldest().unwrap();
        assert!(e.non_swappable, "oldest entry may be non-swappable");
    }

    #[test]
    fn replace_ns_never_duplicates_an_identity() {
        // Regression (found by the sc-testkit view-conservation oracle
        // under loss): the view retains NS copies of two tokens J and K by
        // the same creator; token J returns to this node through a longer
        // chain. The replacement must hit the J slot, not the K slot.
        let me = kp(0);
        let other = kp(9);
        let mut v = SecureView::new(me.public(), 8);
        let j_pre = owned_desc(1, 100, &me);
        let k_pre = owned_desc(1, 200, &me);
        v.insert(j_pre.clone(), true);
        v.insert(k_pre, true);
        // J travels me → other → me (descriptors may revisit past owners).
        let j_back = j_pre
            .transfer(&me, other.public())
            .unwrap()
            .transfer(&other, me.public())
            .unwrap();
        assert!(v.replace_ns_with(j_back));
        let ids: Vec<_> = v.iter().map(|e| e.desc.id()).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "no duplicate identities");
        assert_eq!(v.ns_count(), 1, "only the J slot was upgraded");

        // And when the identity occupies a *swappable* slot, no NS entry
        // of the same creator may be clobbered into a duplicate either.
        let me2 = kp(0);
        let mut v2 = SecureView::new(me2.public(), 8);
        let l_pre = owned_desc(2, 300, &me2);
        v2.insert(l_pre.clone(), false); // swappable copy of L
        v2.insert(owned_desc(2, 400, &me2), true); // NS copy of M, same creator
        let l_back = l_pre
            .transfer(&me2, other.public())
            .unwrap()
            .transfer(&other, me2.public())
            .unwrap();
        assert!(!v2.replace_ns_with(l_back), "returned, not stored");
        assert_eq!(v2.ns_count(), 1);
        assert_eq!(v2.len(), 2);
    }

    #[test]
    fn purge_creator_counts() {
        let me = kp(0);
        let mut v = SecureView::new(me.public(), 4);
        v.insert(owned_desc(1, 0, &me), false);
        v.insert(owned_desc(2, 0, &me), false);
        let victim = kp(1).public();
        assert_eq!(v.purge_creator(&victim), 1);
        assert_eq!(v.purge_creator(&victim), 0);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn remove_random_swappable_caps_at_available() {
        let me = kp(0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut v = SecureView::new(me.public(), 8);
        for t in 1..=4u8 {
            v.insert(owned_desc(t, t as u64, &me), false);
        }
        let out = v.remove_random_swappable(3, &mut rng);
        assert_eq!(out.len(), 3);
        assert_eq!(v.len(), 1);
        // Removed descriptors are gone.
        for d in &out {
            assert!(!v.contains_creator(&d.creator()));
        }
    }
}
