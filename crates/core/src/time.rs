//! Descriptor timestamps.
//!
//! SecureCyclon descriptors carry a wall-clock creation timestamp (§IV-A)
//! used by the frequency check: two distinct descriptors from the same
//! creator whose timestamps are closer than the gossip period prove a
//! frequency violation (§IV-B). In simulation, timestamps are measured in
//! engine ticks; each node stamps `cycle · ticks_per_cycle + phase` with a
//! stable per-node phase, so honest creations are always spaced exactly one
//! period apart.

/// A point in simulated time, in engine ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Raw tick value.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// The cycle this timestamp falls in, at resolution `ticks_per_cycle`.
    pub fn cycle(self, ticks_per_cycle: u64) -> u64 {
        self.0 / ticks_per_cycle
    }

    /// Absolute distance to another timestamp, in ticks.
    pub fn distance(self, other: Timestamp) -> u64 {
        self.0.abs_diff(other.0)
    }

    /// Age relative to `now`, in whole cycles (0 if `now` is earlier).
    pub fn age_cycles(self, now: Timestamp, ticks_per_cycle: u64) -> u64 {
        now.0.saturating_sub(self.0) / ticks_per_cycle
    }
}

impl core::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_and_age() {
        let t = Timestamp(2500);
        assert_eq!(t.cycle(1000), 2);
        assert_eq!(t.age_cycles(Timestamp(5700), 1000), 3);
        assert_eq!(Timestamp(9000).age_cycles(Timestamp(100), 1000), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        assert_eq!(Timestamp(10).distance(Timestamp(25)), 15);
        assert_eq!(Timestamp(25).distance(Timestamp(10)), 15);
    }
}
