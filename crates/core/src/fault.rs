//! Deterministic fault-injection specifications.
//!
//! A [`FaultSpec`] describes everything a fault-injecting transport may
//! do to gossip frames — per-direction drop, bounded delay/reorder,
//! duplication, partition severing, forced connection resets, and a
//! bandwidth throttle — plus the seed every decision derives from. The
//! spec itself makes the decisions: [`FaultSpec::decide`] is a pure
//! counter-mode PRNG keyed by `(seed, direction, src, dst, frame_index)`,
//! the same replay discipline as the simulator's `NetworkModel`, so a
//! failing live run reproduces exactly from the printed seed and two
//! transports holding the same spec agree on every frame's fate.
//!
//! The module lives in `sc-core` (not `sc-node`) because the spec
//! crosses the wire: the daemon parses one from `--fault-spec`, and the
//! testkit harness ships new specs mid-run inside `CtrlFault` control
//! frames, both using the textual grammar of [`FaultSpec::parse`] /
//! `Display` and the binary codec of [`FaultSpec::encode`] /
//! [`FaultSpec::decode`].
//!
//! # Grammar
//!
//! Comma-separated `key=value` entries, all optional (an empty string is
//! the no-fault spec):
//!
//! ```text
//! seed=7,drop_in=0.1,drop_out=0.05,delay=0.2:4,dup=0.02,reset=0.01,
//! bw=65536,sever=41007+41008
//! ```
//!
//! * `seed` — decision seed (default 0)
//! * `drop_in` / `drop_out` / `drop` — per-direction (or both) frame
//!   drop probability
//! * `delay=p:w` — with probability `p`, hold an inbound frame for
//!   1..=`w` receive poll passes (bounded reorder)
//! * `dup` — outbound duplication probability
//! * `reset` — outbound forced-connection-reset probability
//! * `bw` — outbound bandwidth throttle in bytes/second (0 = unlimited)
//! * `sever` — `+`-separated peer addresses cut off entirely (partition)

use crate::wire::WireError;
use sc_sim::Addr;

/// Default reorder window when `delay=p` omits the `:w` suffix.
pub const DEFAULT_DELAY_WINDOW: u32 = 4;

/// Direction of a frame relative to the transport applying faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDir {
    /// A frame arriving from a peer.
    Inbound,
    /// A frame this node is sending.
    Outbound,
}

/// The fate [`FaultSpec::decide`] assigns one frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// Drop the frame silently.
    pub drop: bool,
    /// Send the frame twice (outbound only; ignored inbound).
    pub duplicate: bool,
    /// Hold the frame for this many receive poll passes before release
    /// (inbound only; 0 = deliver immediately).
    pub delay_polls: u32,
    /// Tear down the cached connection to the peer before sending
    /// (outbound only), forcing a redial.
    pub reset: bool,
}

/// A deterministic fault-injection specification.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Seed all per-frame decisions derive from.
    pub seed: u64,
    /// Probability an inbound frame is dropped.
    pub drop_in: f64,
    /// Probability an outbound frame is dropped (after being "sent").
    pub drop_out: f64,
    /// Probability an inbound frame is delayed.
    pub delay_prob: f64,
    /// Maximum delay in receive poll passes (the reorder bound).
    pub delay_max_polls: u32,
    /// Probability an outbound frame is duplicated.
    pub dup_prob: f64,
    /// Probability the cached connection is reset before an outbound
    /// frame.
    pub reset_prob: f64,
    /// Outbound bandwidth throttle in bytes/second (0 = unlimited).
    /// Wall-clock based, so excluded from the deterministic-decision
    /// contract; everything else replays exactly.
    pub bandwidth_bytes_per_sec: u64,
    /// Peer addresses severed entirely (both directions), kept sorted.
    pub severed: Vec<Addr>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            drop_in: 0.0,
            drop_out: 0.0,
            delay_prob: 0.0,
            delay_max_polls: DEFAULT_DELAY_WINDOW,
            dup_prob: 0.0,
            reset_prob: 0.0,
            bandwidth_bytes_per_sec: 0,
            severed: Vec::new(),
        }
    }
}

/// SplitMix64 finalizer: the counter-mode mixing primitive.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform value in `[0, 1)` from the decision counter
/// `(seed, salt, dir, src, dst, index)`. Pure: same inputs, same value.
fn unit(seed: u64, salt: u64, dir: u64, src: Addr, dst: Addr, index: u64) -> f64 {
    let mut h = mix64(seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(salt | 1));
    h = mix64(h ^ (((src as u64) << 32) | dst as u64) ^ (dir << 62));
    h = mix64(h ^ index);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_DROP: u64 = 1;
const SALT_DELAY: u64 = 2;
const SALT_DELAY_LEN: u64 = 3;
const SALT_DUP: u64 = 4;
const SALT_RESET: u64 = 5;

impl FaultSpec {
    /// Whether the spec injects nothing at all (exact pass-through).
    pub fn is_noop(&self) -> bool {
        self.drop_in == 0.0
            && self.drop_out == 0.0
            && self.delay_prob == 0.0
            && self.dup_prob == 0.0
            && self.reset_prob == 0.0
            && self.bandwidth_bytes_per_sec == 0
            && self.severed.is_empty()
    }

    /// Whether `peer` is on the severed side of the partition set.
    pub fn severs(&self, peer: Addr) -> bool {
        self.severed.binary_search(&peer).is_ok()
    }

    /// The fate of the `index`-th frame between `src` and `dst` in
    /// direction `dir`. Pure counter-mode PRNG: identical
    /// `(spec, dir, src, dst, index)` always yields the identical
    /// decision, independent of call order or wall clock.
    pub fn decide(&self, dir: FaultDir, src: Addr, dst: Addr, index: u64) -> FaultDecision {
        let d = match dir {
            FaultDir::Inbound => 0u64,
            FaultDir::Outbound => 1u64,
        };
        let drop_p = match dir {
            FaultDir::Inbound => self.drop_in,
            FaultDir::Outbound => self.drop_out,
        };
        let roll = |salt| unit(self.seed, salt, d, src, dst, index);
        let drop = drop_p > 0.0 && roll(SALT_DROP) < drop_p;
        let delay_polls = if !drop && self.delay_prob > 0.0 && roll(SALT_DELAY) < self.delay_prob {
            let w = self.delay_max_polls.max(1);
            1 + (roll(SALT_DELAY_LEN) * w as f64) as u32
        } else {
            0
        };
        FaultDecision {
            drop,
            duplicate: self.dup_prob > 0.0 && roll(SALT_DUP) < self.dup_prob,
            delay_polls: delay_polls.min(self.delay_max_polls.max(1)),
            reset: self.reset_prob > 0.0 && roll(SALT_RESET) < self.reset_prob,
        }
    }

    /// Clamps probabilities into `[0, 1]` (NaN → 0) and sorts the
    /// severed set; applied after parse/decode so hostile or sloppy
    /// input cannot produce out-of-contract decisions.
    pub fn sanitized(mut self) -> FaultSpec {
        let clamp = |p: f64| {
            if p.is_finite() {
                p.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        self.drop_in = clamp(self.drop_in);
        self.drop_out = clamp(self.drop_out);
        self.delay_prob = clamp(self.delay_prob);
        self.dup_prob = clamp(self.dup_prob);
        self.reset_prob = clamp(self.reset_prob);
        self.delay_max_polls = self.delay_max_polls.clamp(1, 1 << 16);
        self.severed.sort_unstable();
        self.severed.dedup();
        self
    }

    /// Parses the textual grammar (see module docs). Empty input is the
    /// no-fault spec.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending entry.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for entry in s.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (key, val) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault-spec entry '{entry}' is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                v.parse::<f64>()
                    .ok()
                    .filter(|p| p.is_finite() && (0.0..=1.0).contains(p))
                    .ok_or_else(|| format!("fault-spec {key}: '{v}' is not a probability"))
            };
            match key {
                "seed" => {
                    spec.seed = val
                        .parse()
                        .map_err(|_| format!("fault-spec seed: '{val}' is not a u64"))?;
                }
                "drop" => {
                    spec.drop_in = prob(val)?;
                    spec.drop_out = spec.drop_in;
                }
                "drop_in" => spec.drop_in = prob(val)?,
                "drop_out" => spec.drop_out = prob(val)?,
                "delay" => {
                    let (p, w) = match val.split_once(':') {
                        Some((p, w)) => (
                            p,
                            w.parse::<u32>().ok().filter(|&w| w >= 1).ok_or_else(|| {
                                format!("fault-spec delay window '{w}' is not a positive int")
                            })?,
                        ),
                        None => (val, DEFAULT_DELAY_WINDOW),
                    };
                    spec.delay_prob = prob(p)?;
                    spec.delay_max_polls = w;
                }
                "dup" => spec.dup_prob = prob(val)?,
                "reset" => spec.reset_prob = prob(val)?,
                "bw" => {
                    spec.bandwidth_bytes_per_sec = val
                        .parse()
                        .map_err(|_| format!("fault-spec bw: '{val}' is not a u64"))?;
                }
                "sever" => {
                    for a in val.split('+').filter(|a| !a.is_empty()) {
                        let addr: Addr = a
                            .parse()
                            .map_err(|_| format!("fault-spec sever: '{a}' is not an address"))?;
                        spec.severed.push(addr);
                    }
                }
                other => return Err(format!("unknown fault-spec key '{other}'")),
            }
        }
        Ok(spec.sanitized())
    }

    /// Appends the binary encoding (for `CtrlFault` frame payloads).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seed.to_be_bytes());
        for p in [
            self.drop_in,
            self.drop_out,
            self.delay_prob,
            self.dup_prob,
            self.reset_prob,
        ] {
            out.extend_from_slice(&p.to_bits().to_be_bytes());
        }
        out.extend_from_slice(&self.delay_max_polls.to_be_bytes());
        out.extend_from_slice(&self.bandwidth_bytes_per_sec.to_be_bytes());
        out.extend_from_slice(&(self.severed.len() as u16).to_be_bytes());
        for a in &self.severed {
            out.extend_from_slice(&a.to_be_bytes());
        }
    }

    /// Decodes a binary spec, returning it with the bytes consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] on truncation,
    /// [`WireError::ListTooLong`] on an oversized severed set. Field
    /// values are sanitized rather than rejected.
    pub fn decode(buf: &[u8]) -> Result<(FaultSpec, usize), WireError> {
        struct Cur<'a> {
            buf: &'a [u8],
            pos: usize,
        }
        impl Cur<'_> {
            fn bytes<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
                let b = self
                    .buf
                    .get(self.pos..self.pos + N)
                    .ok_or(WireError::UnexpectedEnd)?
                    .try_into()
                    .unwrap();
                self.pos += N;
                Ok(b)
            }
            fn u64(&mut self) -> Result<u64, WireError> {
                Ok(u64::from_be_bytes(self.bytes()?))
            }
        }
        let mut c = Cur { buf, pos: 0 };
        let seed = c.u64()?;
        let drop_in = f64::from_bits(c.u64()?);
        let drop_out = f64::from_bits(c.u64()?);
        let delay_prob = f64::from_bits(c.u64()?);
        let dup_prob = f64::from_bits(c.u64()?);
        let reset_prob = f64::from_bits(c.u64()?);
        let delay_max_polls = u32::from_be_bytes(c.bytes()?);
        let bandwidth_bytes_per_sec = c.u64()?;
        let n = u16::from_be_bytes(c.bytes()?) as usize;
        if n > 4096 {
            return Err(WireError::ListTooLong(n as u16));
        }
        let mut severed = Vec::with_capacity(n);
        for _ in 0..n {
            severed.push(u32::from_be_bytes(c.bytes()?));
        }
        let pos = c.pos;
        let spec = FaultSpec {
            seed,
            drop_in,
            drop_out,
            delay_prob,
            delay_max_polls,
            dup_prob,
            reset_prob,
            bandwidth_bytes_per_sec,
            severed,
        }
        .sanitized();
        Ok((spec, pos))
    }
}

impl core::fmt::Display for FaultSpec {
    /// Renders the spec in its own parse grammar (replay lines).
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if self.seed != 0 {
            parts.push(format!("seed={}", self.seed));
        }
        if self.drop_in > 0.0 && self.drop_in == self.drop_out {
            parts.push(format!("drop={}", self.drop_in));
        } else {
            if self.drop_in > 0.0 {
                parts.push(format!("drop_in={}", self.drop_in));
            }
            if self.drop_out > 0.0 {
                parts.push(format!("drop_out={}", self.drop_out));
            }
        }
        if self.delay_prob > 0.0 {
            parts.push(format!(
                "delay={}:{}",
                self.delay_prob, self.delay_max_polls
            ));
        }
        if self.dup_prob > 0.0 {
            parts.push(format!("dup={}", self.dup_prob));
        }
        if self.reset_prob > 0.0 {
            parts.push(format!("reset={}", self.reset_prob));
        }
        if self.bandwidth_bytes_per_sec > 0 {
            parts.push(format!("bw={}", self.bandwidth_bytes_per_sec));
        }
        if !self.severed.is_empty() {
            let addrs: Vec<String> = self.severed.iter().map(|a| a.to_string()).collect();
            parts.push(format!("sever={}", addrs.join("+")));
        }
        write!(f, "{}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grammar_roundtrips_through_display() {
        let spec = FaultSpec::parse(
            "seed=7,drop_in=0.1,drop_out=0.05,delay=0.2:3,dup=0.02,reset=0.01,\
             bw=65536,sever=41008+41007",
        )
        .unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.drop_in, 0.1);
        assert_eq!(spec.delay_max_polls, 3);
        assert_eq!(spec.severed, vec![41007, 41008], "severed set sorted");
        let again = FaultSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(again, spec);

        assert_eq!(FaultSpec::parse("").unwrap(), FaultSpec::default());
        assert!(FaultSpec::default().is_noop());
        assert!(FaultSpec::parse("drop=0.5").unwrap().drop_out == 0.5);
        assert_eq!(
            FaultSpec::parse("delay=0.5").unwrap().delay_max_polls,
            DEFAULT_DELAY_WINDOW
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSpec::parse("drop=1.5").is_err());
        assert!(FaultSpec::parse("drop=nan").is_err());
        assert!(FaultSpec::parse("nonsense").is_err());
        assert!(FaultSpec::parse("unknown=1").is_err());
        assert!(FaultSpec::parse("delay=0.5:0").is_err());
        assert!(FaultSpec::parse("sever=abc").is_err());
    }

    #[test]
    fn wire_roundtrips_and_rejects_truncation() {
        let spec = FaultSpec::parse("seed=9,drop=0.2,delay=0.1:8,sever=1+2+3").unwrap();
        let mut buf = vec![0xAA; 3]; // prefix noise: decode reports offset
        let start = buf.len();
        spec.encode(&mut buf);
        let (back, used) = FaultSpec::decode(&buf[start..]).unwrap();
        assert_eq!(back, spec);
        assert_eq!(used, buf.len() - start);
        for cut in [0, 8, used - 1] {
            assert_eq!(
                FaultSpec::decode(&buf[start..start + cut]).unwrap_err(),
                WireError::UnexpectedEnd
            );
        }
    }

    #[test]
    fn decisions_are_pure_counter_mode() {
        let spec = FaultSpec::parse("seed=3,drop=0.3,delay=0.4:6,dup=0.2,reset=0.1").unwrap();
        let a: Vec<FaultDecision> = (0..500)
            .map(|i| spec.decide(FaultDir::Inbound, 10, 20, i))
            .collect();
        let b: Vec<FaultDecision> = (0..500)
            .map(|i| spec.decide(FaultDir::Inbound, 10, 20, i))
            .collect();
        assert_eq!(a, b, "same counter, same decisions");

        // The streams actually vary across indices, directions, pairs,
        // and seeds (a constant PRNG would also be "deterministic").
        assert!(a.iter().any(|d| d.drop) && a.iter().any(|d| !d.drop));
        let flip_dir: Vec<FaultDecision> = (0..500)
            .map(|i| spec.decide(FaultDir::Outbound, 10, 20, i))
            .collect();
        assert_ne!(a, flip_dir);
        let other_seed = FaultSpec {
            seed: 4,
            ..spec.clone()
        };
        let c: Vec<FaultDecision> = (0..500)
            .map(|i| other_seed.decide(FaultDir::Inbound, 10, 20, i))
            .collect();
        assert_ne!(a, c);

        // Delays respect the reorder bound.
        assert!(a.iter().all(|d| d.delay_polls <= 6));
        assert!(a.iter().any(|d| d.delay_polls > 0));
    }

    #[test]
    fn zero_rates_decide_nothing() {
        let spec = FaultSpec::default();
        for i in 0..100 {
            assert_eq!(
                spec.decide(FaultDir::Outbound, 1, 2, i),
                FaultDecision::default()
            );
        }
        assert!(!spec.severs(7));
        assert!(FaultSpec::parse("sever=7").unwrap().severs(7));
    }
}
