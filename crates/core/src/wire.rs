//! Wire encoding and the paper's message-size model (§VI-A).
//!
//! Two size accountings are provided:
//!
//! * **Actual encoding** — a compact binary codec for descriptors and
//!   gossip messages ([`encode_descriptor`] / [`decode_descriptor`],
//!   [`message_wire_bytes`]). Used by the workspace's own traffic
//!   accounting and round-trip tested.
//! * **Paper model** — the analytic sizes of §VI-A, with 256-bit keys and
//!   256-bit signatures: a descriptor is `368 + 512·t` bits after `t`
//!   ownership transfers ([`paper_descriptor_bits`]). The `netcost`
//!   experiment reproduces the paper's ≈430-byte descriptor / ≈10.5 KB
//!   per-exchange estimates with this model.

use crate::descriptor::{ChainLink, Genesis, LinkKind, SecureDescriptor};
use crate::msg::{
    AcceptBody, JoinGrantBody, JoinPingBody, RequestBody, RoundBody, RoundReplyBody, SecureMsg,
};
use crate::proof::{ProofKind, ViolationProof};
use crate::time::Timestamp;
use sc_crypto::{PublicKey, Signature, PUBLIC_KEY_LEN, SIGNATURE_LEN};

/// Errors raised while decoding wire bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the structure was complete.
    UnexpectedEnd,
    /// A public key carried an unknown scheme tag.
    BadPublicKey,
    /// An unknown link-kind tag.
    BadLinkKind(u8),
    /// An unknown message-type tag.
    BadMessageTag(u8),
    /// An unknown proof-kind tag.
    BadProofKind(u8),
    /// A decoded proof's evidence does not support its claim.
    BadProof,
    /// Trailing bytes after a complete message.
    TrailingBytes,
    /// The frame exceeds [`WireLimits::max_frame_bytes`].
    FrameTooLarge {
        /// Size of the offered frame in bytes.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// A descriptor's ownership chain exceeds
    /// [`WireLimits::max_chain_links`].
    ChainTooLong(u16),
    /// A descriptor list exceeds [`WireLimits::max_list_len`].
    ListTooLong(u16),
    /// A proof list exceeds [`WireLimits::max_proofs`].
    TooManyProofs(u16),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of input"),
            WireError::BadPublicKey => write!(f, "invalid public key encoding"),
            WireError::BadLinkKind(t) => write!(f, "unknown link kind tag {t}"),
            WireError::BadMessageTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadProofKind(t) => write!(f, "unknown proof kind tag {t}"),
            WireError::BadProof => write!(f, "proof evidence does not validate"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::ChainTooLong(n) => write!(f, "ownership chain of {n} links over limit"),
            WireError::ListTooLong(n) => write!(f, "descriptor list of {n} entries over limit"),
            WireError::TooManyProofs(n) => write!(f, "proof list of {n} entries over limit"),
        }
    }
}

impl std::error::Error for WireError {}

/// Decode-side resource limits, enforced **before** any allocation.
///
/// Every length prefix on the wire is checked twice before a buffer is
/// reserved for it: once against the configured cap, and once against the
/// bytes actually remaining in the input (each chain link, descriptor, and
/// proof has a known minimum encoded size). A hostile peer therefore
/// cannot turn a 2-byte count into a multi-megabyte allocation — decoder
/// memory is bounded by `min(input length, max_frame_bytes)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireLimits {
    /// Maximum total frame size accepted by
    /// [`decode_message_with`], in bytes.
    pub max_frame_bytes: usize,
    /// Maximum ownership-chain length per descriptor.
    pub max_chain_links: usize,
    /// Maximum entries in one descriptor list (offers, samples,
    /// transfers).
    pub max_list_len: usize,
    /// Maximum violation proofs per message.
    pub max_proofs: usize,
}

impl WireLimits {
    /// Default limits: far above anything the protocol produces (views
    /// are tens of entries, chains tens of links) yet small enough that a
    /// maximal hostile frame stays in the low megabytes.
    pub const DEFAULT: WireLimits = WireLimits {
        max_frame_bytes: 4 << 20,
        max_chain_links: 4096,
        max_list_len: 4096,
        max_proofs: 1024,
    };
}

impl Default for WireLimits {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Minimum encoded size of one chain link.
const LINK_MIN_BYTES: usize = PUBLIC_KEY_LEN + 1 + SIGNATURE_LEN;
/// Minimum encoded size of one descriptor (genesis + empty chain).
const DESCRIPTOR_MIN_BYTES: usize = PUBLIC_KEY_LEN + 4 + 8 + SIGNATURE_LEN + 2;
/// Minimum encoded size of one proof (kind + two minimal descriptors).
const PROOF_MIN_BYTES: usize = 1 + 2 * DESCRIPTOR_MIN_BYTES;

/// Rejects a count whose elements cannot possibly fit in the remaining
/// input, so `Vec::with_capacity` never outruns the bytes backing it.
fn check_count(
    n: usize,
    max: usize,
    remaining: usize,
    min_elem: usize,
    over: WireError,
) -> Result<(), WireError> {
    if n > max {
        return Err(over);
    }
    if n.saturating_mul(min_elem) > remaining {
        return Err(WireError::UnexpectedEnd);
    }
    Ok(())
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::UnexpectedEnd);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn key(&mut self) -> Result<PublicKey, WireError> {
        let b = self.take(PUBLIC_KEY_LEN)?;
        let mut a = [0u8; PUBLIC_KEY_LEN];
        a.copy_from_slice(b);
        PublicKey::from_bytes(a).ok_or(WireError::BadPublicKey)
    }

    fn sig(&mut self) -> Result<Signature, WireError> {
        let b = self.take(SIGNATURE_LEN)?;
        let mut a = [0u8; SIGNATURE_LEN];
        a.copy_from_slice(b);
        Ok(Signature::from_bytes(a))
    }
}

fn kind_tag(kind: LinkKind) -> u8 {
    match kind {
        LinkKind::Transfer => 0,
        LinkKind::Redeem => 1,
        LinkKind::RedeemNonSwappable => 2,
    }
}

fn kind_from_tag(tag: u8) -> Result<LinkKind, WireError> {
    match tag {
        0 => Ok(LinkKind::Transfer),
        1 => Ok(LinkKind::Redeem),
        2 => Ok(LinkKind::RedeemNonSwappable),
        t => Err(WireError::BadLinkKind(t)),
    }
}

/// Serializes a descriptor into `out`.
pub fn encode_descriptor(desc: &SecureDescriptor, out: &mut Vec<u8>) {
    let g = desc.genesis();
    out.extend_from_slice(g.creator.as_bytes());
    out.extend_from_slice(&g.addr.to_be_bytes());
    out.extend_from_slice(&g.created_at.ticks().to_be_bytes());
    out.extend_from_slice(g.sig.as_bytes());
    out.extend_from_slice(&(desc.chain().len() as u16).to_be_bytes());
    for link in desc.chain() {
        out.extend_from_slice(link.to.as_bytes());
        out.push(kind_tag(link.kind));
        out.extend_from_slice(link.sig.as_bytes());
    }
}

/// Deserializes one descriptor from the front of `buf`, returning it and
/// the number of bytes consumed.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed input. The decoded descriptor is
/// *structurally* well-formed but not signature-verified; callers must run
/// [`SecureDescriptor::verify`].
pub fn decode_descriptor(buf: &[u8]) -> Result<(SecureDescriptor, usize), WireError> {
    decode_descriptor_with(buf, &WireLimits::DEFAULT)
}

/// [`decode_descriptor`] with caller-supplied [`WireLimits`].
///
/// # Errors
///
/// Returns a [`WireError`] on malformed input or when the chain length
/// prefix exceeds `limits.max_chain_links`.
pub fn decode_descriptor_with(
    buf: &[u8],
    limits: &WireLimits,
) -> Result<(SecureDescriptor, usize), WireError> {
    let mut r = Reader { buf, pos: 0 };
    let creator = r.key()?;
    let addr = r.u32()?;
    let created_at = Timestamp(r.u64()?);
    let sig = r.sig()?;
    let n = r.u16()? as usize;
    check_count(
        n,
        limits.max_chain_links,
        buf.len() - r.pos,
        LINK_MIN_BYTES,
        WireError::ChainTooLong(n as u16),
    )?;
    let mut chain = Vec::with_capacity(n);
    for _ in 0..n {
        let to = r.key()?;
        let kind = kind_from_tag(r.u8()?)?;
        let lsig = r.sig()?;
        chain.push(ChainLink {
            to,
            kind,
            sig: lsig,
        });
    }
    let genesis = Genesis {
        creator,
        addr,
        created_at,
        sig,
    };
    Ok((SecureDescriptor::from_parts(genesis, chain), r.pos))
}

/// Encoded size of a descriptor under this crate's codec, in bytes.
pub fn descriptor_wire_bytes(desc: &SecureDescriptor) -> usize {
    // genesis: key + addr + ts + sig, chain length prefix, then per link.
    (PUBLIC_KEY_LEN + 4 + 8 + SIGNATURE_LEN)
        + 2
        + desc.chain().len() * (PUBLIC_KEY_LEN + 1 + SIGNATURE_LEN)
}

/// Descriptor size in **bits** under the paper's §VI-A model:
/// 368 bits of node info plus 512 bits (key + signature) per transfer.
pub fn paper_descriptor_bits(desc: &SecureDescriptor) -> usize {
    368 + 512 * desc.chain().len()
}

/// Descriptor size in bytes under the paper's model (rounded up).
pub fn paper_descriptor_bytes(desc: &SecureDescriptor) -> usize {
    paper_descriptor_bits(desc).div_ceil(8)
}

fn body_descriptor_sizes<'a, F>(descs: impl Iterator<Item = &'a SecureDescriptor>, f: F) -> usize
where
    F: Fn(&SecureDescriptor) -> usize,
{
    descs.map(f).sum()
}

/// Total size of a message's descriptor payload under `sizer`
/// (e.g. [`paper_descriptor_bytes`] or [`descriptor_wire_bytes`]).
pub fn message_descriptor_bytes<F>(msg: &SecureMsg, sizer: F) -> usize
where
    F: Fn(&SecureDescriptor) -> usize + Copy,
{
    match msg {
        SecureMsg::Request(b) => {
            sizer(&b.redeemed)
                + sizer(&b.fresh)
                + body_descriptor_sizes(b.offered.iter(), sizer)
                + body_descriptor_sizes(b.samples.iter(), sizer)
                + b.proofs
                    .iter()
                    .map(|p| sizer(p.evidence().0) + sizer(p.evidence().1))
                    .sum::<usize>()
        }
        SecureMsg::Accept(b) => {
            body_descriptor_sizes(b.transfers.iter(), sizer)
                + body_descriptor_sizes(b.samples.iter(), sizer)
                + b.proofs
                    .iter()
                    .map(|p| sizer(p.evidence().0) + sizer(p.evidence().1))
                    .sum::<usize>()
        }
        SecureMsg::Round(b) => sizer(&b.transfer),
        SecureMsg::RoundReply(b) => b.transfer.as_ref().map(sizer).unwrap_or(0),
        SecureMsg::Proof(p) => sizer(p.evidence().0) + sizer(p.evidence().1),
        // A ping carries only the joiner's key — no descriptor payload.
        SecureMsg::JoinPing(_) => 0,
        SecureMsg::JoinGrant(b) => {
            sizer(&b.descriptor)
                + b.proofs
                    .iter()
                    .map(|p| sizer(p.evidence().0) + sizer(p.evidence().1))
                    .sum::<usize>()
        }
    }
}

/// Message size under this crate's codec (descriptor payload only; framing
/// overhead is a few bytes and ignored, as in the paper's estimate).
pub fn message_wire_bytes(msg: &SecureMsg) -> usize {
    message_descriptor_bytes(msg, descriptor_wire_bytes)
}

/// Message size under the paper's §VI-A model.
pub fn message_paper_bytes(msg: &SecureMsg) -> usize {
    message_descriptor_bytes(msg, paper_descriptor_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_crypto::{Keypair, Scheme};

    fn kp(tag: u8) -> Keypair {
        Keypair::from_seed(Scheme::Schnorr61, [tag; 32])
    }

    fn chained(n: usize) -> SecureDescriptor {
        let creator = kp(0);
        let mut d = SecureDescriptor::create(&creator, 42, Timestamp(7777));
        let mut owner = creator;
        for i in 0..n {
            let next = kp(i as u8 + 1);
            d = d.transfer(&owner, next.public()).unwrap();
            owner = next;
        }
        d
    }

    #[test]
    fn roundtrip_various_chain_lengths() {
        for n in [0usize, 1, 2, 6, 15] {
            let d = chained(n);
            let mut buf = Vec::new();
            encode_descriptor(&d, &mut buf);
            assert_eq!(buf.len(), descriptor_wire_bytes(&d), "len {n}");
            let (back, used) = decode_descriptor(&buf).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(back, d);
            back.verify().expect("decoded descriptor verifies");
        }
    }

    #[test]
    fn roundtrip_redeemed_descriptor() {
        let creator = kp(0);
        let b = kp(1);
        let d = SecureDescriptor::create(&creator, 1, Timestamp(0))
            .transfer(&creator, b.public())
            .unwrap()
            .redeem(&b, LinkKind::RedeemNonSwappable)
            .unwrap();
        let mut buf = Vec::new();
        encode_descriptor(&d, &mut buf);
        let (back, _) = decode_descriptor(&buf).unwrap();
        assert_eq!(back.redemption_kind(), Some(LinkKind::RedeemNonSwappable));
        assert_eq!(back, d);
    }

    #[test]
    fn truncated_input_rejected() {
        let d = chained(2);
        let mut buf = Vec::new();
        encode_descriptor(&d, &mut buf);
        for cut in [0, 10, 40, buf.len() - 1] {
            assert_eq!(
                decode_descriptor(&buf[..cut]).unwrap_err(),
                WireError::UnexpectedEnd,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn corrupt_key_tag_rejected() {
        let d = chained(1);
        let mut buf = Vec::new();
        encode_descriptor(&d, &mut buf);
        buf[0] = 0xff; // creator key scheme tag
        assert_eq!(
            decode_descriptor(&buf).unwrap_err(),
            WireError::BadPublicKey
        );
    }

    #[test]
    fn corrupt_link_kind_rejected() {
        let d = chained(1);
        let mut buf = Vec::new();
        encode_descriptor(&d, &mut buf);
        // link kind sits after genesis (108) + count (2) + key (32).
        let kind_pos = 108 + 2 + 32;
        buf[kind_pos] = 9;
        assert_eq!(
            decode_descriptor(&buf).unwrap_err(),
            WireError::BadLinkKind(9)
        );
    }

    #[test]
    fn paper_model_matches_section_vi_a() {
        // "a descriptor's size is 368 + 512·t bits" — at t = 6 that is
        // 3440 bits = 430 bytes.
        let d = chained(6);
        assert_eq!(paper_descriptor_bits(&d), 3440);
        assert_eq!(paper_descriptor_bytes(&d), 430);
        assert_eq!(paper_descriptor_bits(&chained(0)), 368);
    }

    #[test]
    fn message_sizes_sum_components() {
        let d = chained(2);
        let msg = SecureMsg::Round(Box::new(crate::msg::RoundBody {
            transfer: d.clone(),
        }));
        assert_eq!(message_wire_bytes(&msg), descriptor_wire_bytes(&d));
        assert_eq!(message_paper_bytes(&msg), paper_descriptor_bytes(&d));
        let empty = SecureMsg::RoundReply(Box::new(crate::msg::RoundReplyBody { transfer: None }));
        assert_eq!(message_wire_bytes(&empty), 0);
    }
}

// ----------------------------------------------------------------------
// Full message codec
// ----------------------------------------------------------------------

fn encode_vec(descs: &[SecureDescriptor], out: &mut Vec<u8>) {
    out.extend_from_slice(&(descs.len() as u16).to_be_bytes());
    for d in descs {
        encode_descriptor(d, out);
    }
}

fn decode_vec(
    buf: &[u8],
    limits: &WireLimits,
) -> Result<(Vec<SecureDescriptor>, usize), WireError> {
    if buf.len() < 2 {
        return Err(WireError::UnexpectedEnd);
    }
    let n = u16::from_be_bytes([buf[0], buf[1]]) as usize;
    let mut pos = 2;
    check_count(
        n,
        limits.max_list_len,
        buf.len() - pos,
        DESCRIPTOR_MIN_BYTES,
        WireError::ListTooLong(n as u16),
    )?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let (d, used) = decode_descriptor_with(&buf[pos..], limits)?;
        pos += used;
        out.push(d);
    }
    Ok((out, pos))
}

/// Serializes a violation proof (kind tag + the two evidence descriptors;
/// the culprit is recomputed on decode — proofs stay self-certifying on
/// the wire).
pub fn encode_proof(proof: &ViolationProof, out: &mut Vec<u8>) {
    out.push(match proof.kind() {
        ProofKind::Cloning => 0,
        ProofKind::Frequency => 1,
    });
    let (l, r) = proof.evidence();
    encode_descriptor(l, out);
    encode_descriptor(r, out);
}

/// Deserializes and **re-validates** a violation proof.
///
/// # Errors
///
/// [`WireError::BadProof`] if the evidence fails to prove the claimed
/// violation under `period_ticks` — forged proofs never survive decoding.
pub fn decode_proof(buf: &[u8], period_ticks: u64) -> Result<(ViolationProof, usize), WireError> {
    decode_proof_with(buf, period_ticks, &WireLimits::DEFAULT)
}

/// [`decode_proof`] with caller-supplied [`WireLimits`].
///
/// # Errors
///
/// As [`decode_proof`], plus the limit errors of
/// [`decode_descriptor_with`].
pub fn decode_proof_with(
    buf: &[u8],
    period_ticks: u64,
    limits: &WireLimits,
) -> Result<(ViolationProof, usize), WireError> {
    if buf.is_empty() {
        return Err(WireError::UnexpectedEnd);
    }
    let kind = buf[0];
    let mut pos = 1;
    let (l, used) = decode_descriptor_with(&buf[pos..], limits)?;
    pos += used;
    let (r, used) = decode_descriptor_with(&buf[pos..], limits)?;
    pos += used;
    let proof = match kind {
        0 => ViolationProof::cloning(l, r).map_err(|_| WireError::BadProof)?,
        1 => ViolationProof::frequency(l, r, period_ticks).map_err(|_| WireError::BadProof)?,
        t => return Err(WireError::BadProofKind(t)),
    };
    Ok((proof, pos))
}

fn encode_proofs(proofs: &[ViolationProof], out: &mut Vec<u8>) {
    out.extend_from_slice(&(proofs.len() as u16).to_be_bytes());
    for p in proofs {
        encode_proof(p, out);
    }
}

fn decode_proofs(
    buf: &[u8],
    period_ticks: u64,
    limits: &WireLimits,
) -> Result<(Vec<ViolationProof>, usize), WireError> {
    if buf.len() < 2 {
        return Err(WireError::UnexpectedEnd);
    }
    let n = u16::from_be_bytes([buf[0], buf[1]]) as usize;
    let mut pos = 2;
    check_count(
        n,
        limits.max_proofs,
        buf.len() - pos,
        PROOF_MIN_BYTES,
        WireError::TooManyProofs(n as u16),
    )?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let (p, used) = decode_proof_with(&buf[pos..], period_ticks, limits)?;
        pos += used;
        out.push(p);
    }
    Ok((out, pos))
}

const MSG_REQUEST: u8 = 1;
const MSG_ACCEPT: u8 = 2;
const MSG_ROUND: u8 = 3;
const MSG_ROUND_REPLY: u8 = 4;
const MSG_PROOF: u8 = 5;
const MSG_JOIN_PING: u8 = 6;
const MSG_JOIN_GRANT: u8 = 7;

/// Serializes a full SecureCyclon message.
pub fn encode_message(msg: &SecureMsg, out: &mut Vec<u8>) {
    match msg {
        SecureMsg::Request(b) => {
            out.push(MSG_REQUEST);
            encode_descriptor(&b.redeemed, out);
            encode_descriptor(&b.fresh, out);
            encode_vec(&b.offered, out);
            encode_vec(&b.samples, out);
            encode_proofs(&b.proofs, out);
        }
        SecureMsg::Accept(b) => {
            out.push(MSG_ACCEPT);
            encode_vec(&b.transfers, out);
            encode_vec(&b.samples, out);
            encode_proofs(&b.proofs, out);
        }
        SecureMsg::Round(b) => {
            out.push(MSG_ROUND);
            encode_descriptor(&b.transfer, out);
        }
        SecureMsg::RoundReply(b) => {
            out.push(MSG_ROUND_REPLY);
            match &b.transfer {
                Some(d) => {
                    out.push(1);
                    encode_descriptor(d, out);
                }
                None => out.push(0),
            }
        }
        SecureMsg::Proof(p) => {
            out.push(MSG_PROOF);
            encode_proof(p, out);
        }
        SecureMsg::JoinPing(b) => {
            out.push(MSG_JOIN_PING);
            out.extend_from_slice(b.joiner.as_bytes());
        }
        SecureMsg::JoinGrant(b) => {
            out.push(MSG_JOIN_GRANT);
            encode_descriptor(&b.descriptor, out);
            encode_proofs(&b.proofs, out);
        }
    }
}

/// Deserializes a full message, consuming the entire buffer.
///
/// Proof payloads are re-validated against `period_ticks` during decoding
/// (see [`decode_proof`]); descriptors are structurally checked but their
/// signatures are verified by the protocol layer, not the codec.
///
/// # Errors
///
/// Any [`WireError`]; trailing bytes are an error.
pub fn decode_message(buf: &[u8], period_ticks: u64) -> Result<SecureMsg, WireError> {
    decode_message_with(buf, period_ticks, &WireLimits::DEFAULT)
}

/// [`decode_message`] with caller-supplied [`WireLimits`].
///
/// The frame-size cap is checked before anything else — an oversized
/// input is rejected without reading a single structure — and every
/// length prefix inside is validated against both its cap and the
/// remaining bytes before allocation.
///
/// # Errors
///
/// Any [`WireError`]; trailing bytes are an error.
pub fn decode_message_with(
    buf: &[u8],
    period_ticks: u64,
    limits: &WireLimits,
) -> Result<SecureMsg, WireError> {
    if buf.len() > limits.max_frame_bytes {
        return Err(WireError::FrameTooLarge {
            len: buf.len(),
            max: limits.max_frame_bytes,
        });
    }
    if buf.is_empty() {
        return Err(WireError::UnexpectedEnd);
    }
    let tag = buf[0];
    let mut pos = 1;
    let msg = match tag {
        MSG_REQUEST => {
            let (redeemed, used) = decode_descriptor_with(&buf[pos..], limits)?;
            pos += used;
            let (fresh, used) = decode_descriptor_with(&buf[pos..], limits)?;
            pos += used;
            let (offered, used) = decode_vec(&buf[pos..], limits)?;
            pos += used;
            let (samples, used) = decode_vec(&buf[pos..], limits)?;
            pos += used;
            let (proofs, used) = decode_proofs(&buf[pos..], period_ticks, limits)?;
            pos += used;
            SecureMsg::Request(Box::new(RequestBody {
                redeemed,
                fresh,
                offered,
                samples,
                proofs,
            }))
        }
        MSG_ACCEPT => {
            let (transfers, used) = decode_vec(&buf[pos..], limits)?;
            pos += used;
            let (samples, used) = decode_vec(&buf[pos..], limits)?;
            pos += used;
            let (proofs, used) = decode_proofs(&buf[pos..], period_ticks, limits)?;
            pos += used;
            SecureMsg::Accept(Box::new(AcceptBody {
                transfers,
                samples,
                proofs,
            }))
        }
        MSG_ROUND => {
            let (transfer, used) = decode_descriptor_with(&buf[pos..], limits)?;
            pos += used;
            SecureMsg::Round(Box::new(RoundBody { transfer }))
        }
        MSG_ROUND_REPLY => {
            if buf.len() < 2 {
                return Err(WireError::UnexpectedEnd);
            }
            let transfer = match buf[1] {
                1 => {
                    pos = 2;
                    let (d, used) = decode_descriptor_with(&buf[pos..], limits)?;
                    pos += used;
                    Some(d)
                }
                0 => {
                    pos = 2;
                    None
                }
                t => return Err(WireError::BadMessageTag(t)),
            };
            SecureMsg::RoundReply(Box::new(RoundReplyBody { transfer }))
        }
        MSG_PROOF => {
            let (p, used) = decode_proof_with(&buf[pos..], period_ticks, limits)?;
            pos += used;
            SecureMsg::Proof(Box::new(p))
        }
        MSG_JOIN_PING => {
            if buf.len() - pos < PUBLIC_KEY_LEN {
                return Err(WireError::UnexpectedEnd);
            }
            let mut key = [0u8; PUBLIC_KEY_LEN];
            key.copy_from_slice(&buf[pos..pos + PUBLIC_KEY_LEN]);
            pos += PUBLIC_KEY_LEN;
            let joiner = PublicKey::from_bytes(key).ok_or(WireError::BadPublicKey)?;
            SecureMsg::JoinPing(Box::new(JoinPingBody { joiner }))
        }
        MSG_JOIN_GRANT => {
            let (descriptor, used) = decode_descriptor_with(&buf[pos..], limits)?;
            pos += used;
            let (proofs, used) = decode_proofs(&buf[pos..], period_ticks, limits)?;
            pos += used;
            SecureMsg::JoinGrant(Box::new(JoinGrantBody { descriptor, proofs }))
        }
        t => return Err(WireError::BadMessageTag(t)),
    };
    if pos != buf.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(msg)
}

#[cfg(test)]
mod message_tests {
    use super::*;
    use sc_crypto::{Keypair, Scheme};

    const PERIOD: u64 = 1000;

    fn kp(tag: u8) -> Keypair {
        Keypair::from_seed(Scheme::Schnorr61, [tag; 32])
    }

    fn sample_request() -> SecureMsg {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let token = SecureDescriptor::create(&a, 1, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let redeemed = token.redeem(&b, LinkKind::Redeem).unwrap();
        let fresh = SecureDescriptor::create(&b, 2, Timestamp(50_000))
            .transfer(&b, a.public())
            .unwrap();
        let sample = SecureDescriptor::create(&c, 3, Timestamp(2_000));
        let d1 = SecureDescriptor::create(&c, 3, Timestamp(9_000));
        let d2 = SecureDescriptor::create(&c, 3, Timestamp(9_500));
        let proof = ViolationProof::frequency(d1, d2, PERIOD).unwrap();
        SecureMsg::Request(Box::new(RequestBody {
            redeemed,
            fresh,
            offered: vec![],
            samples: vec![sample],
            proofs: vec![proof],
        }))
    }

    fn roundtrip(msg: &SecureMsg) -> SecureMsg {
        let mut buf = Vec::new();
        encode_message(msg, &mut buf);
        decode_message(&buf, PERIOD).expect("roundtrip")
    }

    fn assert_equivalent(a: &SecureMsg, b: &SecureMsg) {
        // Compare via re-encoding (SecureMsg has no PartialEq).
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        encode_message(a, &mut ba);
        encode_message(b, &mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn request_roundtrip_with_proofs() {
        let msg = sample_request();
        assert_equivalent(&msg, &roundtrip(&msg));
    }

    #[test]
    fn accept_and_rounds_roundtrip() {
        let a = kp(1);
        let d = SecureDescriptor::create(&a, 1, Timestamp(7));
        let accept = SecureMsg::Accept(Box::new(AcceptBody {
            transfers: vec![d.clone()],
            samples: vec![d.clone()],
            proofs: vec![],
        }));
        assert_equivalent(&accept, &roundtrip(&accept));
        let round = SecureMsg::Round(Box::new(RoundBody {
            transfer: d.clone(),
        }));
        assert_equivalent(&round, &roundtrip(&round));
        let reply_some = SecureMsg::RoundReply(Box::new(RoundReplyBody { transfer: Some(d) }));
        assert_equivalent(&reply_some, &roundtrip(&reply_some));
        let reply_none = SecureMsg::RoundReply(Box::new(RoundReplyBody { transfer: None }));
        assert_equivalent(&reply_none, &roundtrip(&reply_none));
    }

    #[test]
    fn forged_proofs_fail_decoding() {
        let (a, b) = (kp(1), kp(2));
        // Two legally spaced creations are no frequency violation; a
        // "proof" claiming so must fail to decode.
        let d1 = SecureDescriptor::create(&a, 1, Timestamp(0));
        let d2 = SecureDescriptor::create(&a, 1, Timestamp(5_000));
        let mut buf = vec![MSG_PROOF, 1];
        encode_descriptor(&d1, &mut buf);
        encode_descriptor(&d2, &mut buf);
        assert_eq!(
            decode_message(&buf, PERIOD).unwrap_err(),
            WireError::BadProof
        );
        // Unknown proof kind tag.
        let mut buf = vec![MSG_PROOF, 9];
        encode_descriptor(&d1, &mut buf);
        encode_descriptor(&d2, &mut buf);
        assert_eq!(
            decode_message(&buf, PERIOD).unwrap_err(),
            WireError::BadProofKind(9)
        );
        let _ = b;
    }

    #[test]
    fn trailing_bytes_rejected() {
        let msg = sample_request();
        let mut buf = Vec::new();
        encode_message(&msg, &mut buf);
        buf.push(0);
        assert_eq!(
            decode_message(&buf, PERIOD).unwrap_err(),
            WireError::TrailingBytes
        );
    }

    #[test]
    fn unknown_message_tag_rejected() {
        assert_eq!(
            decode_message(&[42], PERIOD).unwrap_err(),
            WireError::BadMessageTag(42)
        );
        assert_eq!(
            decode_message(&[], PERIOD).unwrap_err(),
            WireError::UnexpectedEnd
        );
    }

    #[test]
    fn oversized_frames_rejected_before_parsing() {
        let limits = WireLimits {
            max_frame_bytes: 64,
            ..WireLimits::DEFAULT
        };
        let msg = sample_request();
        let mut buf = Vec::new();
        encode_message(&msg, &mut buf);
        assert!(buf.len() > 64);
        assert_eq!(
            decode_message_with(&buf, PERIOD, &limits).unwrap_err(),
            WireError::FrameTooLarge {
                len: buf.len(),
                max: 64
            }
        );
    }

    #[test]
    fn hostile_length_prefixes_cannot_force_allocation() {
        // A descriptor claiming 65535 chain links backed by zero bytes:
        // the remaining-bytes check fires before any allocation.
        let d = SecureDescriptor::create(&kp(1), 1, Timestamp(0));
        let mut buf = Vec::new();
        encode_descriptor(&d, &mut buf);
        let count_pos = buf.len() - 2;
        buf[count_pos..].copy_from_slice(&u16::MAX.to_be_bytes());
        assert_eq!(
            decode_descriptor(&buf).unwrap_err(),
            WireError::ChainTooLong(u16::MAX)
        );
        // A count under the cap but with no backing bytes trips the
        // remaining-bytes check instead — still before allocation.
        buf[count_pos..].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(
            decode_descriptor(&buf).unwrap_err(),
            WireError::UnexpectedEnd
        );
    }

    #[test]
    fn list_and_proof_caps_enforced() {
        let a = kp(1);
        let d = SecureDescriptor::create(&a, 1, Timestamp(7));
        let limits = WireLimits {
            max_list_len: 1,
            max_proofs: 0,
            ..WireLimits::DEFAULT
        };
        let msg = SecureMsg::Accept(Box::new(AcceptBody {
            transfers: vec![d.clone(), d.clone()],
            samples: vec![],
            proofs: vec![],
        }));
        let mut buf = Vec::new();
        encode_message(&msg, &mut buf);
        assert_eq!(
            decode_message_with(&buf, PERIOD, &limits).unwrap_err(),
            WireError::ListTooLong(2)
        );
        // A hostile proof count with no backing bytes, kept under the
        // cap, is caught by the remaining-bytes check under default
        // limits too.
        let msg = SecureMsg::Accept(Box::new(AcceptBody {
            transfers: vec![],
            samples: vec![],
            proofs: vec![],
        }));
        let mut buf = Vec::new();
        encode_message(&msg, &mut buf);
        let n = buf.len();
        buf[n - 2..].copy_from_slice(&500u16.to_be_bytes());
        assert_eq!(
            decode_message(&buf, PERIOD).unwrap_err(),
            WireError::UnexpectedEnd
        );
        buf[n - 2..].copy_from_slice(&u16::MAX.to_be_bytes());
        assert_eq!(
            decode_message(&buf, PERIOD).unwrap_err(),
            WireError::TooManyProofs(u16::MAX)
        );
    }

    #[test]
    fn round_reply_option_tag_validated() {
        let bad = [MSG_ROUND_REPLY, 7];
        assert_eq!(
            decode_message(&bad, PERIOD).unwrap_err(),
            WireError::BadMessageTag(7)
        );
    }

    #[test]
    fn wire_size_accounting_matches_encoding() {
        let msg = sample_request();
        let mut buf = Vec::new();
        encode_message(&msg, &mut buf);
        // Payload accounting counts descriptor bytes only; framing is a
        // few tag/length bytes on top.
        let payload = message_wire_bytes(&msg);
        assert!(buf.len() > payload);
        assert!(buf.len() < payload + 32, "framing overhead is small");
    }
}
