//! The sample cache and the two violation checks of §IV-B.
//!
//! Every descriptor a node receives — owned or merely copied ("sample") —
//! is run through:
//!
//! * the **frequency check**: its creation timestamp is compared against
//!   all cached samples by the same creator; two distinct descriptors
//!   closer than the gossip period prove a frequency violation;
//! * the **ownership check**: if a sample with the same [`DescriptorId`]
//!   is cached, the two chains of ownership must be compatible (one a
//!   prefix of the other); divergence proves a cloning violation by the
//!   owner at the fork.
//!
//! Descriptors that pass are cached for future cross-checking. The cache
//! retains samples for a configurable number of cycles — descriptors live
//! ~ℓ cycles (§VI-A), so a few multiples of ℓ preserves every useful
//! conflict while bounding memory.
//!
//! # Lazy verification
//!
//! Samples are cached **without** verifying their signatures; the
//! expensive chain verification runs only when two copies actually
//! conflict, inside proof construction ([`ViolationProof`] re-validates
//! both sides). This is safe: a forged sample can never produce a valid
//! proof against anyone (proofs are self-certifying), and at conflict
//! time whichever side fails verification is simply evicted. Honest
//! networks therefore pay hashing costs only for owned descriptors, and
//! verification costs only under attack.

use crate::chain::{compare_chains, ChainRelation, CompareError};
use crate::descriptor::{DescriptorId, LinkKind, SecureDescriptor};
use crate::memo::VerifyMemo;
use crate::proof::ViolationProof;
use crate::time::Timestamp;
use sc_crypto::{FxHashMap, NodeId};
use std::collections::hash_map::Entry;
use std::collections::VecDeque;

/// Result of observing one descriptor against the cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Observation {
    /// First sighting; the descriptor was cached.
    New,
    /// A longer chain for a known descriptor; the cache was updated.
    Extended,
    /// Identical to or older than the cached copy; nothing to do.
    AlreadyKnown,
    /// The sanctioned transfer / non-swappable-redemption divergence
    /// (§V-A); the circulating (transfer-side) copy was retained.
    NsException,
    /// The descriptor conflicted with a cached sample, but one of the two
    /// copies fails signature verification — someone injected a forged
    /// descriptor. The forged side was evicted; no violation is provable.
    Forged,
    /// The descriptor conflicts with a cached sample: indisputable proof
    /// of a violation.
    Violation(Box<ViolationProof>),
}

struct Cached {
    desc: SecureDescriptor,
    last_seen: u64,
}

/// Cache of descriptor samples with the secondary index needed by the
/// frequency check.
pub struct SampleCache {
    by_id: FxHashMap<DescriptorId, Cached>,
    /// creator → sorted creation timestamps, for the frequency check's
    /// range query. The `DescriptorId` is reconstructible as `(creator,
    /// timestamp)`. A sorted `Vec` beats a tree here: per-creator entry
    /// counts are bounded by the retention window, so the O(n) insert /
    /// remove memmoves stay a few cache lines while lookups avoid
    /// pointer-chasing and per-node allocation entirely.
    by_creator: FxHashMap<NodeId, Vec<u64>>,
    /// Expiry wheel: `touched[i]` holds the ids sighted at cycle
    /// `touched_base + i`. An id re-sighted later simply appears in a
    /// later bucket too, so pruning a bucket checks the entry's actual
    /// `last_seen` before removing. This keeps [`SampleCache::prune`]
    /// amortized O(sightings) instead of a full-cache scan per cycle.
    touched: VecDeque<Vec<DescriptorId>>,
    /// Cycle the front bucket of `touched` corresponds to.
    touched_base: u64,
    retention_cycles: u64,
}

impl core::fmt::Debug for SampleCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SampleCache")
            .field("samples", &self.by_id.len())
            .field("creators", &self.by_creator.len())
            .field("retention_cycles", &self.retention_cycles)
            .finish()
    }
}

impl SampleCache {
    /// Creates an empty cache retaining samples for `retention_cycles`
    /// cycles after their last sighting.
    pub fn new(retention_cycles: u64) -> Self {
        SampleCache {
            by_id: FxHashMap::default(),
            by_creator: FxHashMap::default(),
            touched: VecDeque::new(),
            touched_base: 0,
            retention_cycles,
        }
    }

    /// Records a sighting of `id` at `now_cycle` in the expiry wheel.
    /// With the protocol's monotonic clock `now_cycle` never precedes
    /// `touched_base`; if a caller rewinds anyway the sighting lands in
    /// the earliest bucket, which at worst retains the entry past its
    /// window (never evicts it early).
    fn note_sighting(&mut self, id: DescriptorId, now_cycle: u64) {
        Self::note_sighting_in(&mut self.touched, &mut self.touched_base, id, now_cycle);
    }

    /// Field-level form of [`SampleCache::note_sighting`], for call sites
    /// that hold a mutable borrow into another field of the cache.
    fn note_sighting_in(
        touched: &mut VecDeque<Vec<DescriptorId>>,
        touched_base: &mut u64,
        id: DescriptorId,
        now_cycle: u64,
    ) {
        if touched.is_empty() {
            *touched_base = now_cycle;
        }
        let idx = now_cycle.saturating_sub(*touched_base) as usize;
        while touched.len() <= idx {
            touched.push_back(Vec::new());
        }
        touched[idx].push(id);
    }

    /// Number of cached samples.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Returns the cached copy of `id`, if any.
    pub fn get(&self, id: &DescriptorId) -> Option<&SecureDescriptor> {
        self.by_id.get(id).map(|c| &c.desc)
    }

    /// Iterates over the cached descriptors. Used by the §V-A rejoin
    /// trigger: a starved node mines its sample cache for the creator
    /// addresses it most recently heard from.
    pub fn descriptors(&self) -> impl Iterator<Item = &SecureDescriptor> {
        self.by_id.values().map(|c| &c.desc)
    }

    /// Runs both §IV-B checks on `desc` and caches it if it passes.
    ///
    /// Signature verification is lazy (see module docs): it runs only
    /// when `desc` conflicts with a cached copy, as part of proof
    /// construction.
    pub fn observe(
        &mut self,
        desc: &SecureDescriptor,
        now_cycle: u64,
        period_ticks: u64,
    ) -> Observation {
        self.observe_impl(desc, now_cycle, period_ticks, &mut None)
    }

    /// Like [`SampleCache::observe`], but routes the verification that
    /// conflict handling triggers through a verified-prefix memo, so
    /// proof construction only pays for links past the last verified
    /// prefix. This is the variant the protocol node uses.
    pub fn observe_with(
        &mut self,
        desc: &SecureDescriptor,
        now_cycle: u64,
        period_ticks: u64,
        memo: &mut VerifyMemo,
    ) -> Observation {
        self.observe_impl(desc, now_cycle, period_ticks, &mut Some(memo))
    }

    fn observe_impl(
        &mut self,
        desc: &SecureDescriptor,
        now_cycle: u64,
        period_ticks: u64,
        memo: &mut Option<&mut VerifyMemo>,
    ) -> Observation {
        let id = desc.id();

        // Ownership check against a cached copy of the same token. The
        // fields are destructured so the wheel can record the sighting
        // while the cached entry stays mutably borrowed — one hash lookup
        // per observation instead of a lookup for the wheel and another
        // for the entry.
        let Self {
            by_id,
            touched,
            touched_base,
            ..
        } = self;
        if let Some(cached) = by_id.get_mut(&id) {
            // One wheel entry per (id, cycle) sighting; re-sightings
            // within a cycle are deduplicated by the `last_seen` compare.
            if cached.last_seen != now_cycle {
                Self::note_sighting_in(touched, touched_base, id, now_cycle);
            }
            cached.last_seen = now_cycle;
            match compare_chains(&cached.desc, desc) {
                Ok(ChainRelation::Identical) | Ok(ChainRelation::LeftExtendsRight) => {
                    return Observation::AlreadyKnown;
                }
                Ok(ChainRelation::RightExtendsLeft) => {
                    cached.desc = desc.clone();
                    return Observation::Extended;
                }
                Ok(ChainRelation::Divergent {
                    index,
                    ns_exception: true,
                    ..
                }) => {
                    // Keep whichever copy continues circulating (the
                    // transfer side); the NS copy is terminal.
                    let cached_is_ns = cached
                        .desc
                        .chain()
                        .get(index)
                        .is_some_and(|l| l.kind == LinkKind::RedeemNonSwappable);
                    if cached_is_ns {
                        cached.desc = desc.clone();
                    }
                    return Observation::NsException;
                }
                Ok(ChainRelation::Divergent {
                    ns_exception: false,
                    ..
                }) => {
                    return match build_cloning(cached.desc.clone(), desc.clone(), memo) {
                        Ok(proof) => Observation::Violation(Box::new(proof)),
                        Err(_) => {
                            // One side is forged: keep whichever verifies.
                            if !verify_ok(&cached.desc, memo) && verify_ok(desc, memo) {
                                cached.desc = desc.clone();
                            }
                            Observation::Forged
                        }
                    };
                }
                Err(CompareError::GenesisMismatch) => {
                    // Two distinct creations with the same timestamp:
                    // a frequency violation with Δt = 0.
                    return match build_frequency(
                        cached.desc.clone(),
                        desc.clone(),
                        period_ticks,
                        memo,
                    ) {
                        Ok(proof) => Observation::Violation(Box::new(proof)),
                        Err(_) => {
                            if !verify_ok(&cached.desc, memo) && verify_ok(desc, memo) {
                                cached.desc = desc.clone();
                            }
                            Observation::Forged
                        }
                    };
                }
                Err(CompareError::DifferentIds) => unreachable!("looked up by id"),
            }
        }

        // First sighting of this id: record it in the wheel. A sighting
        // recorded for an observation that ends up not caching (violation,
        // forgery) leaves a stale id in the wheel, which `prune` skips.
        self.note_sighting(id, now_cycle);

        // Frequency check against other creations by the same creator.
        if let Some(conflict) = self.frequency_conflict(&id, period_ticks) {
            let other = self
                .by_id
                .get(&conflict)
                .expect("index entries always have samples")
                .desc
                .clone();
            return match build_frequency(other, desc.clone(), period_ticks, memo) {
                Ok(proof) => Observation::Violation(Box::new(proof)),
                Err(_) => {
                    // One of the two creations is forged; evict it if it
                    // is the cached one and the incoming verifies.
                    if verify_ok(desc, memo) {
                        let cached_forged = self
                            .by_id
                            .get(&conflict)
                            .is_some_and(|c| !verify_ok(&c.desc, memo));
                        if cached_forged {
                            self.remove_entry(&conflict);
                        }
                    }
                    Observation::Forged
                }
            };
        }

        let index = self.by_creator.entry(id.creator).or_default();
        let ts = id.created_at.ticks();
        let pos = index.partition_point(|&t| t < ts);
        if index.get(pos) != Some(&ts) {
            index.insert(pos, ts);
        }
        self.by_id.insert(
            id,
            Cached {
                desc: desc.clone(),
                last_seen: now_cycle,
            },
        );
        Observation::New
    }

    /// Finds a cached creation by the same creator strictly closer than
    /// one period to `id.created_at` (excluding `id` itself).
    fn frequency_conflict(&self, id: &DescriptorId, period_ticks: u64) -> Option<DescriptorId> {
        let index = self.by_creator.get(&id.creator)?;
        let ts = id.created_at.ticks();
        let lo = ts.saturating_sub(period_ticks - 1);
        let hi = ts.saturating_add(period_ticks - 1);
        let start = index.partition_point(|&t| t < lo);
        index[start..]
            .iter()
            .take_while(|&&t| t <= hi)
            .find(|&&t| t != ts)
            .map(|&t| DescriptorId {
                creator: id.creator,
                created_at: Timestamp(t),
            })
    }

    /// Removes a single entry and its index record.
    fn remove_entry(&mut self, id: &DescriptorId) {
        if self.by_id.remove(id).is_some() {
            Self::unindex(&mut self.by_creator, id);
        }
    }

    /// Drops `id`'s record from the creator index.
    fn unindex(by_creator: &mut FxHashMap<NodeId, Vec<u64>>, id: &DescriptorId) {
        if let Some(index) = by_creator.get_mut(&id.creator) {
            if let Ok(pos) = index.binary_search(&id.created_at.ticks()) {
                index.remove(pos);
            }
            if index.is_empty() {
                by_creator.remove(&id.creator);
            }
        }
    }

    /// Drops samples not seen for longer than the retention window.
    ///
    /// Amortized O(sightings that just expired): only the expiry-wheel
    /// buckets older than the horizon are walked, never the whole cache.
    /// An id re-sighted after a walked bucket's cycle has a later wheel
    /// entry, so its `last_seen` check here keeps it alive.
    pub fn prune(&mut self, now_cycle: u64) {
        let horizon = now_cycle.saturating_sub(self.retention_cycles);
        while self.touched_base < horizon {
            let Some(bucket) = self.touched.pop_front() else {
                break;
            };
            self.touched_base += 1;
            for id in bucket {
                // Entry API: one hash lookup covers both the expiry check
                // and the removal (most wheel entries this old do expire).
                if let Entry::Occupied(e) = self.by_id.entry(id) {
                    if e.get().last_seen < horizon {
                        e.remove();
                        Self::unindex(&mut self.by_creator, &id);
                    }
                }
            }
        }
    }

    /// Removes every sample created by `creator` (post-blacklist purge).
    /// The creator index names exactly the ids to drop (`remove_entry`
    /// keeps the two maps in lockstep), so this never scans the cache.
    pub fn purge_creator(&mut self, creator: &NodeId) {
        if let Some(index) = self.by_creator.remove(creator) {
            for ts in index {
                self.by_id.remove(&DescriptorId {
                    creator: *creator,
                    created_at: Timestamp(ts),
                });
            }
        }
    }
}

/// Verification routed through the memo when one is supplied.
fn verify_ok(desc: &SecureDescriptor, memo: &mut Option<&mut VerifyMemo>) -> bool {
    match memo {
        Some(m) => desc.verify_with(m).is_ok(),
        None => desc.verify().is_ok(),
    }
}

fn build_cloning(
    left: SecureDescriptor,
    right: SecureDescriptor,
    memo: &mut Option<&mut VerifyMemo>,
) -> Result<ViolationProof, crate::proof::ProofError> {
    match memo {
        Some(m) => ViolationProof::cloning_with(left, right, m),
        None => ViolationProof::cloning(left, right),
    }
}

fn build_frequency(
    left: SecureDescriptor,
    right: SecureDescriptor,
    period_ticks: u64,
    memo: &mut Option<&mut VerifyMemo>,
) -> Result<ViolationProof, crate::proof::ProofError> {
    match memo {
        Some(m) => ViolationProof::frequency_with(left, right, period_ticks, m),
        None => ViolationProof::frequency(left, right, period_ticks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::ProofKind;
    use sc_crypto::{Keypair, Scheme};

    const PERIOD: u64 = 1000;

    fn kp(tag: u8) -> Keypair {
        Keypair::from_seed(Scheme::Schnorr61, [tag; 32])
    }

    #[test]
    fn new_then_known() {
        let mut cache = SampleCache::new(60);
        let d = SecureDescriptor::create(&kp(1), 0, Timestamp(0));
        assert_eq!(cache.observe(&d, 0, PERIOD), Observation::New);
        assert_eq!(cache.observe(&d, 1, PERIOD), Observation::AlreadyKnown);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn longer_chain_extends() {
        let (a, b) = (kp(1), kp(2));
        let mut cache = SampleCache::new(60);
        let d = SecureDescriptor::create(&a, 0, Timestamp(0));
        let handed = d.transfer(&a, b.public()).unwrap();
        assert_eq!(cache.observe(&d, 0, PERIOD), Observation::New);
        assert_eq!(cache.observe(&handed, 1, PERIOD), Observation::Extended);
        // The shorter copy is now strictly older information.
        assert_eq!(cache.observe(&d, 2, PERIOD), Observation::AlreadyKnown);
        assert_eq!(cache.get(&d.id()).unwrap().transfer_count(), 1);
    }

    #[test]
    fn cloning_detected_with_correct_culprit() {
        let (a, b, c, d) = (kp(1), kp(2), kp(3), kp(4));
        let mut cache = SampleCache::new(60);
        let base = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let left = base.transfer(&b, c.public()).unwrap();
        let right = base.transfer(&b, d.public()).unwrap();
        assert_eq!(cache.observe(&left, 0, PERIOD), Observation::New);
        match cache.observe(&right, 1, PERIOD) {
            Observation::Violation(proof) => {
                assert_eq!(proof.kind(), ProofKind::Cloning);
                assert_eq!(proof.culprit(), b.public());
                assert!(proof.validate(PERIOD).is_ok());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn frequency_detected_across_distinct_ids() {
        let a = kp(1);
        let mut cache = SampleCache::new(60);
        let d1 = SecureDescriptor::create(&a, 0, Timestamp(5000));
        let d2 = SecureDescriptor::create(&a, 0, Timestamp(5999));
        assert_eq!(cache.observe(&d1, 0, PERIOD), Observation::New);
        match cache.observe(&d2, 0, PERIOD) {
            Observation::Violation(proof) => {
                assert_eq!(proof.kind(), ProofKind::Frequency);
                assert_eq!(proof.culprit(), a.public());
                assert!(proof.validate(PERIOD).is_ok());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn exact_period_spacing_is_legal() {
        let a = kp(1);
        let mut cache = SampleCache::new(60);
        for i in 0..5u64 {
            let d = SecureDescriptor::create(&a, 0, Timestamp(i * PERIOD + 137));
            assert_eq!(cache.observe(&d, i, PERIOD), Observation::New, "cycle {i}");
        }
    }

    #[test]
    fn same_timestamp_different_genesis_is_frequency() {
        let a = kp(1);
        let mut cache = SampleCache::new(60);
        let d1 = SecureDescriptor::create(&a, 0, Timestamp(5000));
        let d2 = SecureDescriptor::create(&a, 9, Timestamp(5000));
        cache.observe(&d1, 0, PERIOD);
        match cache.observe(&d2, 0, PERIOD) {
            Observation::Violation(proof) => {
                assert_eq!(proof.kind(), ProofKind::Frequency);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn ns_exception_keeps_circulating_copy() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let mut cache = SampleCache::new(60);
        let owned = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let ns_copy = owned.redeem(&b, LinkKind::RedeemNonSwappable).unwrap();
        let circulating = owned.transfer(&b, c.public()).unwrap();
        // NS copy arrives first, then the circulating one.
        assert_eq!(cache.observe(&ns_copy, 0, PERIOD), Observation::New);
        assert_eq!(
            cache.observe(&circulating, 0, PERIOD),
            Observation::NsException
        );
        assert_eq!(
            cache.get(&owned.id()).unwrap().chain().last().unwrap().kind,
            LinkKind::Transfer,
            "transfer side retained"
        );
        // Other order: circulating cached, NS observed later.
        let mut cache2 = SampleCache::new(60);
        assert_eq!(cache2.observe(&circulating, 0, PERIOD), Observation::New);
        assert_eq!(
            cache2.observe(&ns_copy, 0, PERIOD),
            Observation::NsException
        );
        assert_eq!(
            cache2
                .get(&owned.id())
                .unwrap()
                .chain()
                .last()
                .unwrap()
                .kind,
            LinkKind::Transfer
        );
    }

    #[test]
    fn prune_forgets_old_samples() {
        let a = kp(1);
        let mut cache = SampleCache::new(10);
        let d = SecureDescriptor::create(&a, 0, Timestamp(0));
        cache.observe(&d, 0, PERIOD);
        cache.prune(5);
        assert_eq!(cache.len(), 1, "within retention");
        cache.prune(11);
        assert_eq!(cache.len(), 0, "expired");
        // After pruning, re-observing is New again (index cleaned too).
        assert_eq!(cache.observe(&d, 12, PERIOD), Observation::New);
    }

    #[test]
    fn purge_creator_removes_their_samples() {
        let (a, b) = (kp(1), kp(2));
        let mut cache = SampleCache::new(60);
        cache.observe(&SecureDescriptor::create(&a, 0, Timestamp(0)), 0, PERIOD);
        cache.observe(&SecureDescriptor::create(&b, 0, Timestamp(0)), 0, PERIOD);
        cache.purge_creator(&a.public());
        assert_eq!(cache.len(), 1);
        assert!(cache
            .get(&DescriptorId {
                creator: b.public(),
                created_at: Timestamp(0)
            })
            .is_some());
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", SampleCache::new(3)).is_empty());
    }

    #[test]
    fn observe_with_memo_matches_plain_observe() {
        use crate::memo::VerifyMemo;
        let (a, b, c, d) = (kp(1), kp(2), kp(3), kp(4));
        let base = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let left = base.transfer(&b, c.public()).unwrap();
        let right = base.transfer(&b, d.public()).unwrap();
        let ns = base.redeem(&b, LinkKind::RedeemNonSwappable).unwrap();
        // New, Extended, AlreadyKnown, NsException, then a genuine
        // cloning violation — every observation class in one stream.
        let stream = [&base, &left, &base, &ns, &right];
        let mut plain = SampleCache::new(60);
        let mut memoized = SampleCache::new(60);
        let mut memo = VerifyMemo::new(256);
        for (i, desc) in stream.iter().enumerate() {
            let expect = plain.observe(desc, i as u64, PERIOD);
            let got = memoized.observe_with(desc, i as u64, PERIOD, &mut memo);
            assert_eq!(got, expect, "observation {i}");
        }
        assert!(memo.hits() > 0, "conflict handling exercised the memo");
    }
}
