//! Violation-free overlay bootstrap.
//!
//! SecureCyclon descriptors are rate-limited (one creation per creator per
//! cycle) and single-owner, so an initial overlay cannot simply hand every
//! node copies of the same descriptors — that would be cloning. This
//! module builds a *legal* starting state: during `view_len` pre-cycles
//! (timestamps in cycles `0..view_len`), each node mints one descriptor
//! per pre-cycle and transfers it to a ring neighbor. Every transfer is
//! unique, every creation respects the frequency rule, and each node ends
//! up owning exactly `view_len` descriptors from distinct creators.
//!
//! Simulations using this plan must start their engine clock at cycle
//! `view_len` (`SimConfig::start_cycle`) so live creations never collide
//! with bootstrap timestamps.

use crate::descriptor::SecureDescriptor;
use crate::time::Timestamp;
use sc_crypto::Keypair;
use sc_sim::Addr;

/// Deterministic per-node timestamp phase used across the workspace.
///
/// Any value `< ticks_per_cycle` works; this spreads nodes over the cycle.
pub fn default_phase(index: usize, ticks_per_cycle: u64) -> u64 {
    (index as u64).wrapping_mul(557) % ticks_per_cycle
}

/// The descriptors each node starts out owning: `per_node[i]` lists the
/// descriptors owned by node `i`.
#[derive(Debug)]
pub struct BootstrapPlan {
    /// Initial owned descriptors, indexed by node.
    pub per_node: Vec<Vec<SecureDescriptor>>,
    /// The cycle at which the live simulation must start.
    pub start_cycle: u64,
}

/// Builds a ring bootstrap: in pre-cycle `j`, node `i` creates a
/// descriptor and transfers it to node `(i + j + 1) mod n`.
///
/// `addrs[i]` is the engine address node `i` will live at, `phases[i]` its
/// timestamp phase.
///
/// # Panics
///
/// Panics if slice lengths differ, `view_len == 0`, or `view_len >= n`
/// (a node cannot hold `n-1` distinct creators plus itself).
pub fn ring_bootstrap(
    keypairs: &[Keypair],
    addrs: &[Addr],
    phases: &[u64],
    view_len: usize,
    ticks_per_cycle: u64,
) -> BootstrapPlan {
    let n = keypairs.len();
    assert_eq!(n, addrs.len(), "keypairs/addrs length mismatch");
    assert_eq!(n, phases.len(), "keypairs/phases length mismatch");
    assert!(view_len > 0, "view_len must be positive");
    assert!(view_len < n, "need more nodes than view slots");

    let mut per_node: Vec<Vec<SecureDescriptor>> = vec![Vec::with_capacity(view_len); n];
    for (i, kp) in keypairs.iter().enumerate() {
        for j in 0..view_len {
            let ts = Timestamp(j as u64 * ticks_per_cycle + phases[i]);
            let target = (i + j + 1) % n;
            let desc = SecureDescriptor::create(kp, addrs[i], ts);
            let handed = desc
                .transfer(kp, keypairs[target].public())
                .expect("creator owns its fresh descriptor");
            per_node[target].push(handed);
        }
    }
    BootstrapPlan {
        per_node,
        start_cycle: view_len as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_crypto::Scheme;
    use std::collections::HashSet;

    fn keypairs(n: usize) -> Vec<Keypair> {
        (0..n)
            .map(|i| {
                let mut seed = [0u8; 32];
                seed[..8].copy_from_slice(&(i as u64).to_le_bytes());
                Keypair::from_seed(Scheme::KeyedHash, seed)
            })
            .collect()
    }

    #[test]
    fn plan_is_legal_and_complete() {
        let n = 12;
        let view_len = 4;
        let tpc = 1000;
        let kps = keypairs(n);
        let addrs: Vec<Addr> = (0..n as Addr).collect();
        let phases: Vec<u64> = (0..n).map(|i| default_phase(i, tpc)).collect();
        let plan = ring_bootstrap(&kps, &addrs, &phases, view_len, tpc);

        assert_eq!(plan.start_cycle, view_len as u64);
        assert_eq!(plan.per_node.len(), n);
        let mut seen = HashSet::new();
        for (i, descs) in plan.per_node.iter().enumerate() {
            assert_eq!(descs.len(), view_len, "node {i} owns view_len descriptors");
            let mut creators = HashSet::new();
            for d in descs {
                d.verify().expect("bootstrap descriptor verifies");
                assert_eq!(d.owner(), kps[i].public());
                assert_ne!(d.creator(), kps[i].public(), "no self-links");
                assert!(creators.insert(d.creator()), "distinct creators per node");
                assert!(seen.insert(d.id()), "every descriptor id unique");
                assert!(d.created_at().cycle(tpc) < view_len as u64);
            }
        }
        // Each creator minted exactly view_len descriptors, spaced a full
        // period apart (no frequency violations).
        for kp in &kps {
            let mut ts: Vec<u64> = plan
                .per_node
                .iter()
                .flatten()
                .filter(|d| d.creator() == kp.public())
                .map(|d| d.created_at().ticks())
                .collect();
            ts.sort_unstable();
            assert_eq!(ts.len(), view_len);
            for w in ts.windows(2) {
                assert!(w[1] - w[0] >= tpc, "creations at least one period apart");
            }
        }
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn too_few_nodes_rejected() {
        let kps = keypairs(3);
        let addrs = [0, 1, 2];
        let phases = [0, 0, 0];
        ring_bootstrap(&kps, &addrs, &phases, 3, 1000);
    }
}
