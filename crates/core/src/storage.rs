//! Durable node state: storage backends and crash-restart recovery.
//!
//! SecureCyclon's accountability cuts both ways: the signed artifacts that
//! convict a violator (§IV-B) convict an *amnesiac honest node* just as
//! readily. A node that crashes after minting its per-cycle descriptor and
//! restarts without remembering it will mint a second one inside the same
//! gossip period — two genesis signatures by one key, less than a period
//! apart, which is precisely a frequency-violation proof. Durability is
//! therefore a protocol-correctness requirement, not an operational nicety.
//!
//! This module provides the [`StateBackend`] trait and two
//! implementations:
//!
//! * [`MemoryBackend`] — in-RAM, used by the simulator's crash-restart
//!   scenarios (state survives the *node object*, not the process);
//! * [`FileBackend`] — an append-only log of checksummed records with
//!   truncated-tail recovery, used by the `sc-node` daemon behind
//!   `--state-dir`.
//!
//! # What is persisted
//!
//! A [`PersistentState`] checkpoint carries everything whose loss is
//! either self-incriminating or monotone protocol knowledge: the view and
//! reserve (owned descriptor tokens — losing one permanently destroys a
//! link), the redemption cache (§V-C), the blacklist's proofs (§IV-C),
//! the spent-state digests (re-signing an already-continued state is
//! self-made *cloning* evidence), the regular/NS redemption replay
//! guards, and the per-cycle emission marker (the frequency bugfix).
//! Purely ephemeral machinery — open sessions, the sample cache, the
//! verify memo, pending floods — is deliberately rebuilt from gossip.
//!
//! # Log format
//!
//! Each record is framed as
//! `[u32 payload_len][u8 kind][u32 checksum][payload]` (big-endian),
//! where the checksum is the first four bytes of
//! `SHA-256(kind || payload)`. Small incremental records (`emit`,
//! `proof`, `spent`) are appended synchronously at the protocol points
//! where losing them would be incriminating; a full checkpoint record is
//! appended once per cycle. Recovery replays the log in order — a
//! checkpoint *replaces* the folded state, incremental records *merge*
//! into it — and stops at the first torn or corrupt record, so a partial
//! final record (the normal shape of a `kill -9` mid-append) is never
//! resurrected. When the log outgrows a threshold it is compacted to a
//! single checkpoint record via write-to-temp + rename.
//!
//! Durability target: surviving process death (`kill -9`) requires only
//! that the `write` syscall returned — the page cache outlives the
//! process. Surviving power loss would additionally need `fsync`, which
//! this backend deliberately skips to keep the per-cycle cost at one
//! buffered write.

use crate::descriptor::{DescriptorId, SecureDescriptor};
use crate::proof::ViolationProof;
use crate::time::Timestamp;
use crate::wire::{decode_descriptor_with, decode_proof_with, encode_descriptor, encode_proof};
use crate::wire::{WireError, WireLimits};
use sc_crypto::{sha256, Digest, NodeId, PUBLIC_KEY_LEN};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Record kind: a full [`PersistentState`] checkpoint.
const REC_CHECKPOINT: u8 = 1;
/// Record kind: the per-cycle descriptor-emission marker (`u64` cycle).
const REC_EMIT: u8 = 2;
/// Record kind: a learned violation proof (`u64` cycle + proof).
const REC_PROOF: u8 = 3;
/// Record kind: a spent state digest (`32B` digest + `u64` cycle).
const REC_SPENT: u8 = 4;

/// Bytes of record framing before the payload.
const RECORD_HEADER_BYTES: usize = 4 + 1 + 4;

/// Serialized-state format version (first payload byte of a checkpoint).
const STATE_VERSION: u8 = 1;

/// Everything a node persists across a crash.
///
/// Field order mirrors recovery priority: the emission marker is the
/// frequency bugfix, owned descriptors are irreplaceable tokens, the rest
/// is monotone knowledge that keeps the restarted node honest and
/// informed.
#[derive(Clone, Debug, Default)]
pub struct PersistentState {
    /// Cycle at which this checkpoint was taken.
    pub cycle: u64,
    /// Cycle whose fresh-descriptor budget was already spent (emission or
    /// sponsorship). Re-minting within this cycle would be a provable
    /// frequency violation.
    pub emitted_cycle: Option<u64>,
    /// View entries: owned descriptor + non-swappable marker (§V-A).
    pub view: Vec<(SecureDescriptor, bool)>,
    /// Owned descriptors waiting for a view slot.
    pub reserve: Vec<SecureDescriptor>,
    /// Redemption cache entries as `(redeemed_cycle, descriptor)` (§V-C).
    pub redemptions: Vec<(u64, SecureDescriptor)>,
    /// Blacklist evidence as `(learned_cycle, proof)` (§IV-C).
    pub proofs: Vec<(u64, ViolationProof)>,
    /// State digests already signed away, with the signing cycle.
    pub spent: Vec<(Digest, u64)>,
    /// Regular-redemption replay guard: redeemed own-descriptor identities
    /// with the acceptance cycle.
    pub redeemed_regular: Vec<(DescriptorId, u64)>,
    /// Own-descriptor identities ever redeemed non-swappably (§V-A).
    pub ns_redeemed: Vec<DescriptorId>,
    /// `(cycle, count)` of NS redemptions accepted in `cycle`.
    pub ns_accepted: (u64, u32),
}

impl PersistentState {
    /// Whether the state carries nothing worth restoring.
    pub fn is_trivial(&self) -> bool {
        self.emitted_cycle.is_none()
            && self.view.is_empty()
            && self.reserve.is_empty()
            && self.redemptions.is_empty()
            && self.proofs.is_empty()
            && self.spent.is_empty()
            && self.redeemed_regular.is_empty()
            && self.ns_redeemed.is_empty()
    }

    /// Merges an incremental emission record.
    fn merge_emission(&mut self, cycle: u64) {
        self.emitted_cycle = Some(self.emitted_cycle.map_or(cycle, |c| c.max(cycle)));
    }

    /// Merges an incremental proof record (dedup by culprit, like the
    /// in-memory blacklist).
    fn merge_proof(&mut self, proof: ViolationProof, learned_cycle: u64) {
        let culprit = proof.culprit();
        if self.proofs.iter().any(|(_, p)| p.culprit() == culprit) {
            return;
        }
        self.proofs.push((learned_cycle, proof));
    }

    /// Merges an incremental spent-digest record.
    fn merge_spent(&mut self, digest: Digest, cycle: u64) {
        if self.spent.iter().any(|(d, _)| *d == digest) {
            return;
        }
        self.spent.push((digest, cycle));
    }
}

/// A durable home for the incriminating-if-lost parts of a node's state.
///
/// All `record_*` methods are called synchronously at the protocol point
/// where the information becomes dangerous to forget — *before* the
/// corresponding artifact leaves the node. `save_checkpoint` runs once
/// per cycle and may compact. `load` is called once at construction.
pub trait StateBackend: Send {
    /// Records that `cycle`'s fresh-descriptor budget is spent. Must be
    /// durable before the descriptor (or sponsorship grant) is sent.
    fn record_emission(&mut self, cycle: u64) -> io::Result<()>;

    /// Records a validated violation proof learned at `learned_cycle`.
    fn record_proof(&mut self, proof: &ViolationProof, learned_cycle: u64) -> io::Result<()>;

    /// Records a state digest this node signed a continuation for.
    fn record_spent(&mut self, digest: &Digest, cycle: u64) -> io::Result<()>;

    /// Appends a full checkpoint (and may compact the log behind it).
    fn save_checkpoint(&mut self, state: &PersistentState) -> io::Result<()>;

    /// Folds the stored records into the state to restore, or `None` when
    /// nothing was ever recorded. `period_ticks` re-validates recovered
    /// proofs; `limits` bounds decoder allocations exactly as on the wire.
    fn load(
        &mut self,
        period_ticks: u64,
        limits: &WireLimits,
    ) -> io::Result<Option<PersistentState>>;
}

/// In-RAM backend: state survives the node *object*, not the process.
///
/// This is what the simulator's crash-restart scenarios use — the engine
/// rebuilds a `SecureCyclonNode` around the backend extracted from its
/// predecessor, modelling a daemon restarting from disk without any I/O.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    checkpoint: Option<PersistentState>,
    tail: Vec<TailRecord>,
}

#[derive(Debug)]
enum TailRecord {
    Emit(u64),
    Proof(Box<ViolationProof>, u64),
    Spent(Digest, u64),
}

impl MemoryBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateBackend for MemoryBackend {
    fn record_emission(&mut self, cycle: u64) -> io::Result<()> {
        self.tail.push(TailRecord::Emit(cycle));
        Ok(())
    }

    fn record_proof(&mut self, proof: &ViolationProof, learned_cycle: u64) -> io::Result<()> {
        self.tail
            .push(TailRecord::Proof(Box::new(proof.clone()), learned_cycle));
        Ok(())
    }

    fn record_spent(&mut self, digest: &Digest, cycle: u64) -> io::Result<()> {
        self.tail.push(TailRecord::Spent(*digest, cycle));
        Ok(())
    }

    fn save_checkpoint(&mut self, state: &PersistentState) -> io::Result<()> {
        // A checkpoint subsumes every record before it: compact eagerly.
        self.checkpoint = Some(state.clone());
        self.tail.clear();
        Ok(())
    }

    fn load(
        &mut self,
        _period_ticks: u64,
        _limits: &WireLimits,
    ) -> io::Result<Option<PersistentState>> {
        if self.checkpoint.is_none() && self.tail.is_empty() {
            return Ok(None);
        }
        let mut state = self.checkpoint.clone().unwrap_or_default();
        for rec in &self.tail {
            match rec {
                TailRecord::Emit(c) => state.merge_emission(*c),
                TailRecord::Proof(p, c) => state.merge_proof((**p).clone(), *c),
                TailRecord::Spent(d, c) => state.merge_spent(*d, *c),
            }
        }
        Ok(Some(state))
    }
}

/// Append-only log-file backend with checksummed records and
/// truncated-tail recovery. See the module docs for the format.
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    file: Option<File>,
    /// Bytes currently in the log (drives compaction).
    written: u64,
    /// Compact when the log exceeds this many bytes.
    compact_threshold: u64,
}

/// Default compaction threshold: a checkpoint of a full ℓ=20 view with
/// long chains is a few tens of KiB, so this keeps a handful of
/// checkpoints of slack before each rewrite.
const DEFAULT_COMPACT_THRESHOLD: u64 = 256 * 1024;

impl FileBackend {
    /// Opens (creating if absent) the log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (missing parent directory is created).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<FileBackend> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len();
        Ok(FileBackend {
            path,
            file: Some(file),
            written,
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
        })
    }

    /// Overrides the compaction threshold (tests use tiny values).
    pub fn with_compact_threshold(mut self, bytes: u64) -> FileBackend {
        self.compact_threshold = bytes.max(1);
        self
    }

    /// The log path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes currently in the log.
    pub fn log_bytes(&self) -> u64 {
        self.written
    }

    fn append(&mut self, kind: u8, payload: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.push(kind);
        frame.extend_from_slice(&record_checksum(kind, payload));
        frame.extend_from_slice(payload);
        let file = match self.file.as_mut() {
            Some(f) => f,
            None => {
                self.file = Some(
                    OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&self.path)?,
                );
                self.file.as_mut().expect("just opened")
            }
        };
        file.write_all(&frame)?;
        self.written += frame.len() as u64;
        Ok(())
    }

    /// Rewrites the log as a single checkpoint record (temp + rename).
    fn compact(&mut self, state: &PersistentState) -> io::Result<()> {
        let payload = encode_state(state);
        let mut frame = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.push(REC_CHECKPOINT);
        frame.extend_from_slice(&record_checksum(REC_CHECKPOINT, &payload));
        frame.extend_from_slice(&payload);
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&frame)?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Reopen the append handle on the new inode.
        self.file = Some(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)?,
        );
        self.written = frame.len() as u64;
        Ok(())
    }
}

impl StateBackend for FileBackend {
    fn record_emission(&mut self, cycle: u64) -> io::Result<()> {
        self.append(REC_EMIT, &cycle.to_be_bytes())
    }

    fn record_proof(&mut self, proof: &ViolationProof, learned_cycle: u64) -> io::Result<()> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&learned_cycle.to_be_bytes());
        encode_proof(proof, &mut payload);
        self.append(REC_PROOF, &payload)
    }

    fn record_spent(&mut self, digest: &Digest, cycle: u64) -> io::Result<()> {
        let mut payload = Vec::with_capacity(40);
        payload.extend_from_slice(digest);
        payload.extend_from_slice(&cycle.to_be_bytes());
        self.append(REC_SPENT, &payload)
    }

    fn save_checkpoint(&mut self, state: &PersistentState) -> io::Result<()> {
        if self.written >= self.compact_threshold {
            return self.compact(state);
        }
        self.append(REC_CHECKPOINT, &encode_state(state))
    }

    fn load(
        &mut self,
        period_ticks: u64,
        limits: &WireLimits,
    ) -> io::Result<Option<PersistentState>> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Ok(fold_log(&bytes, period_ticks, limits))
    }
}

fn record_checksum(kind: u8, payload: &[u8]) -> [u8; 4] {
    let digest = sha256(&{
        let mut msg = Vec::with_capacity(1 + payload.len());
        msg.push(kind);
        msg.extend_from_slice(payload);
        msg
    });
    [digest[0], digest[1], digest[2], digest[3]]
}

/// Folds a raw log into the recovered state. Scanning stops at the first
/// record that is torn (frame extends past the buffer), checksum-corrupt,
/// or undecodable — everything before that prefix is kept, nothing after
/// it is trusted. Returns `None` when not even one record survived.
fn fold_log(bytes: &[u8], period_ticks: u64, limits: &WireLimits) -> Option<PersistentState> {
    let mut state: Option<PersistentState> = None;
    let mut pos = 0usize;
    while bytes.len() - pos >= RECORD_HEADER_BYTES {
        let len = u32::from_be_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let kind = bytes[pos + 4];
        let sum = &bytes[pos + 5..pos + 9];
        let Some(end) = (pos + RECORD_HEADER_BYTES).checked_add(len) else {
            break;
        };
        if end > bytes.len() {
            break; // torn tail
        }
        let payload = &bytes[pos + RECORD_HEADER_BYTES..end];
        if record_checksum(kind, payload) != sum[..] {
            break; // bit rot / mid-record corruption
        }
        match kind {
            REC_CHECKPOINT => match decode_state(payload, period_ticks, limits) {
                Ok(s) => state = Some(s),
                Err(_) => break,
            },
            REC_EMIT => {
                if payload.len() != 8 {
                    break;
                }
                let mut c = [0u8; 8];
                c.copy_from_slice(payload);
                state
                    .get_or_insert_with(PersistentState::default)
                    .merge_emission(u64::from_be_bytes(c));
            }
            REC_PROOF => {
                if payload.len() < 8 {
                    break;
                }
                let mut c = [0u8; 8];
                c.copy_from_slice(&payload[..8]);
                match decode_proof_with(&payload[8..], period_ticks, limits) {
                    Ok((proof, used)) if used == payload.len() - 8 => {
                        state
                            .get_or_insert_with(PersistentState::default)
                            .merge_proof(proof, u64::from_be_bytes(c));
                    }
                    _ => break,
                }
            }
            REC_SPENT => {
                if payload.len() != 40 {
                    break;
                }
                let mut d = [0u8; 32];
                d.copy_from_slice(&payload[..32]);
                let mut c = [0u8; 8];
                c.copy_from_slice(&payload[32..]);
                state
                    .get_or_insert_with(PersistentState::default)
                    .merge_spent(d, u64::from_be_bytes(c));
            }
            _ => break, // unknown kind: future format or corruption
        }
        pos = end;
    }
    state
}

// ---- PersistentState (de)serialization -------------------------------
//
// Built on the wire codec's descriptor/proof encoders so the disk format
// inherits the same allocation bounds and validation the network path
// has. Counts are `u16`/`u32` big-endian; every length is re-checked
// against the remaining input before any buffer is reserved.

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn encode_state(state: &PersistentState) -> Vec<u8> {
    let mut out = Vec::with_capacity(512);
    out.push(STATE_VERSION);
    put_u64(&mut out, state.cycle);
    match state.emitted_cycle {
        Some(c) => {
            out.push(1);
            put_u64(&mut out, c);
        }
        None => out.push(0),
    }
    put_u16(&mut out, state.view.len() as u16);
    for (desc, ns) in &state.view {
        out.push(u8::from(*ns));
        encode_descriptor(desc, &mut out);
    }
    put_u16(&mut out, state.reserve.len() as u16);
    for desc in &state.reserve {
        encode_descriptor(desc, &mut out);
    }
    put_u16(&mut out, state.redemptions.len() as u16);
    for (cycle, desc) in &state.redemptions {
        put_u64(&mut out, *cycle);
        encode_descriptor(desc, &mut out);
    }
    put_u16(&mut out, state.proofs.len() as u16);
    for (cycle, proof) in &state.proofs {
        put_u64(&mut out, *cycle);
        encode_proof(proof, &mut out);
    }
    put_u32(&mut out, state.spent.len() as u32);
    for (digest, cycle) in &state.spent {
        out.extend_from_slice(digest);
        put_u64(&mut out, *cycle);
    }
    put_u32(&mut out, state.redeemed_regular.len() as u32);
    for (id, cycle) in &state.redeemed_regular {
        out.extend_from_slice(id.creator.as_bytes());
        put_u64(&mut out, id.created_at.0);
        put_u64(&mut out, *cycle);
    }
    put_u32(&mut out, state.ns_redeemed.len() as u32);
    for id in &state.ns_redeemed {
        out.extend_from_slice(id.creator.as_bytes());
        put_u64(&mut out, id.created_at.0);
    }
    put_u64(&mut out, state.ns_accepted.0);
    put_u32(&mut out, state.ns_accepted.1);
    out
}

/// A minimal bounds-checked cursor (the wire module's `Reader` is
/// private by design; this mirrors its discipline).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::UnexpectedEnd);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn key(&mut self) -> Result<NodeId, WireError> {
        let b = self.take(PUBLIC_KEY_LEN)?;
        let mut a = [0u8; PUBLIC_KEY_LEN];
        a.copy_from_slice(b);
        NodeId::from_bytes(a).ok_or(WireError::BadPublicKey)
    }

    fn digest(&mut self) -> Result<Digest, WireError> {
        let b = self.take(32)?;
        let mut a = [0u8; 32];
        a.copy_from_slice(b);
        Ok(a)
    }

    fn descriptor(&mut self, limits: &WireLimits) -> Result<SecureDescriptor, WireError> {
        let (desc, used) = decode_descriptor_with(&self.buf[self.pos..], limits)?;
        self.pos += used;
        Ok(desc)
    }

    fn proof(
        &mut self,
        period_ticks: u64,
        limits: &WireLimits,
    ) -> Result<ViolationProof, WireError> {
        let (proof, used) = decode_proof_with(&self.buf[self.pos..], period_ticks, limits)?;
        self.pos += used;
        Ok(proof)
    }

    /// Rejects a count whose minimal encoding cannot fit in the input.
    fn check_count(&self, n: usize, max: usize, min_elem: usize) -> Result<(), WireError> {
        if n > max {
            return Err(WireError::ListTooLong(n.min(u16::MAX as usize) as u16));
        }
        if n.saturating_mul(min_elem) > self.remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        Ok(())
    }
}

fn decode_state(
    buf: &[u8],
    period_ticks: u64,
    limits: &WireLimits,
) -> Result<PersistentState, WireError> {
    let mut c = Cursor { buf, pos: 0 };
    if c.u8()? != STATE_VERSION {
        return Err(WireError::BadMessageTag(buf[0]));
    }
    let mut state = PersistentState {
        cycle: c.u64()?,
        ..Default::default()
    };
    if c.u8()? != 0 {
        state.emitted_cycle = Some(c.u64()?);
    }

    let n = c.u16()? as usize;
    c.check_count(n, limits.max_list_len, 1)?;
    for _ in 0..n {
        let ns = c.u8()? != 0;
        state.view.push((c.descriptor(limits)?, ns));
    }

    let n = c.u16()? as usize;
    c.check_count(n, limits.max_list_len, 1)?;
    for _ in 0..n {
        state.reserve.push(c.descriptor(limits)?);
    }

    let n = c.u16()? as usize;
    c.check_count(n, limits.max_list_len, 8)?;
    for _ in 0..n {
        let cycle = c.u64()?;
        state.redemptions.push((cycle, c.descriptor(limits)?));
    }

    let n = c.u16()? as usize;
    c.check_count(n, limits.max_proofs, 8)?;
    for _ in 0..n {
        let cycle = c.u64()?;
        state.proofs.push((cycle, c.proof(period_ticks, limits)?));
    }

    let n = c.u32()? as usize;
    c.check_count(n, limits.max_list_len, 40)?;
    for _ in 0..n {
        let digest = c.digest()?;
        state.spent.push((digest, c.u64()?));
    }

    let n = c.u32()? as usize;
    c.check_count(n, limits.max_list_len, PUBLIC_KEY_LEN + 16)?;
    for _ in 0..n {
        let creator = c.key()?;
        let created_at = Timestamp(c.u64()?);
        let cycle = c.u64()?;
        state.redeemed_regular.push((
            DescriptorId {
                creator,
                created_at,
            },
            cycle,
        ));
    }

    let n = c.u32()? as usize;
    c.check_count(n, limits.max_list_len, PUBLIC_KEY_LEN + 8)?;
    for _ in 0..n {
        let creator = c.key()?;
        let created_at = Timestamp(c.u64()?);
        state.ns_redeemed.push(DescriptorId {
            creator,
            created_at,
        });
    }

    state.ns_accepted = (c.u64()?, c.u32()?);
    if c.remaining() != 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::SecureDescriptor;
    use sc_crypto::{Keypair, Scheme};

    const PERIOD: u64 = 1000;

    fn kp(tag: u8) -> Keypair {
        Keypair::from_seed(Scheme::Schnorr61, [tag; 32])
    }

    fn owned_desc(creator_tag: u8, ts: u64, owner: &Keypair) -> SecureDescriptor {
        let c = kp(creator_tag);
        SecureDescriptor::create(&c, creator_tag as u32, Timestamp(ts))
            .transfer(&c, owner.public())
            .unwrap()
    }

    fn freq_proof(tag: u8) -> ViolationProof {
        let culprit = kp(tag);
        let d1 = SecureDescriptor::create(&culprit, 9, Timestamp(100));
        let d2 = SecureDescriptor::create(&culprit, 9, Timestamp(101));
        ViolationProof::frequency(d1, d2, PERIOD).unwrap()
    }

    fn sample_state() -> PersistentState {
        let me = kp(0);
        let d1 = owned_desc(1, 500, &me);
        let d2 = owned_desc(2, 900, &me);
        let spent = d1.state_digest();
        PersistentState {
            cycle: 42,
            emitted_cycle: Some(42),
            view: vec![(d1.clone(), false), (d2, true)],
            reserve: vec![owned_desc(3, 1200, &me)],
            redemptions: vec![(41, owned_desc(4, 1500, &me))],
            proofs: vec![(40, freq_proof(7))],
            spent: vec![(spent, 41)],
            redeemed_regular: vec![(d1.id(), 39)],
            ns_redeemed: vec![d1.id()],
            ns_accepted: (42, 1),
        }
    }

    fn assert_states_equal(a: &PersistentState, b: &PersistentState) {
        assert_eq!(a.cycle, b.cycle);
        assert_eq!(a.emitted_cycle, b.emitted_cycle);
        assert_eq!(a.view.len(), b.view.len());
        for ((da, nsa), (db, nsb)) in a.view.iter().zip(&b.view) {
            assert_eq!(da.state_digest(), db.state_digest());
            assert_eq!(nsa, nsb);
        }
        assert_eq!(a.reserve.len(), b.reserve.len());
        for (da, db) in a.reserve.iter().zip(&b.reserve) {
            assert_eq!(da.state_digest(), db.state_digest());
        }
        assert_eq!(a.redemptions.len(), b.redemptions.len());
        for ((ca, da), (cb, db)) in a.redemptions.iter().zip(&b.redemptions) {
            assert_eq!(ca, cb);
            assert_eq!(da.state_digest(), db.state_digest());
        }
        assert_eq!(a.proofs.len(), b.proofs.len());
        for ((ca, pa), (cb, pb)) in a.proofs.iter().zip(&b.proofs) {
            assert_eq!(ca, cb);
            assert_eq!(pa.culprit(), pb.culprit());
        }
        assert_eq!(a.spent, b.spent);
        assert_eq!(a.redeemed_regular, b.redeemed_regular);
        assert_eq!(a.ns_redeemed, b.ns_redeemed);
        assert_eq!(a.ns_accepted, b.ns_accepted);
    }

    #[test]
    fn state_roundtrips_through_the_codec() {
        let state = sample_state();
        let bytes = encode_state(&state);
        let back = decode_state(&bytes, PERIOD, &WireLimits::DEFAULT).unwrap();
        assert_states_equal(&state, &back);
    }

    #[test]
    fn empty_state_roundtrips() {
        let state = PersistentState::default();
        assert!(state.is_trivial());
        let bytes = encode_state(&state);
        let back = decode_state(&bytes, PERIOD, &WireLimits::DEFAULT).unwrap();
        assert_states_equal(&state, &back);
    }

    #[test]
    fn memory_backend_folds_tail_into_checkpoint() {
        let mut be = MemoryBackend::new();
        assert!(be.load(PERIOD, &WireLimits::DEFAULT).unwrap().is_none());

        be.record_emission(5).unwrap();
        let got = be.load(PERIOD, &WireLimits::DEFAULT).unwrap().unwrap();
        assert_eq!(got.emitted_cycle, Some(5));

        let state = sample_state();
        be.save_checkpoint(&state).unwrap();
        be.record_emission(43).unwrap();
        be.record_spent(&[9u8; 32], 43).unwrap();
        be.record_proof(&freq_proof(8), 43).unwrap();
        // A proof against an already-known culprit is deduped on fold.
        be.record_proof(&freq_proof(8), 44).unwrap();

        let got = be.load(PERIOD, &WireLimits::DEFAULT).unwrap().unwrap();
        assert_eq!(got.emitted_cycle, Some(43));
        assert!(got.spent.iter().any(|(d, c)| *d == [9u8; 32] && *c == 43));
        assert_eq!(got.proofs.len(), state.proofs.len() + 1);
    }

    #[test]
    fn file_backend_roundtrips_checkpoint_and_tail() {
        let dir = std::env::temp_dir().join(format!("sc-storage-rt-{}", std::process::id()));
        let path = dir.join("node.log");
        let _ = std::fs::remove_file(&path);
        let state = sample_state();
        {
            let mut be = FileBackend::open(&path).unwrap();
            assert!(be.load(PERIOD, &WireLimits::DEFAULT).unwrap().is_none());
            be.save_checkpoint(&state).unwrap();
            be.record_emission(43).unwrap();
            be.record_spent(&[7u8; 32], 43).unwrap();
            be.record_proof(&freq_proof(8), 43).unwrap();
        }
        // Fresh handle: the moral equivalent of a restart.
        let mut be = FileBackend::open(&path).unwrap();
        let got = be.load(PERIOD, &WireLimits::DEFAULT).unwrap().unwrap();
        assert_eq!(got.cycle, state.cycle);
        assert_eq!(got.emitted_cycle, Some(43));
        assert!(got.spent.iter().any(|(d, _)| *d == [7u8; 32]));
        assert_eq!(got.proofs.len(), state.proofs.len() + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_not_resurrected() {
        let dir = std::env::temp_dir().join(format!("sc-storage-torn-{}", std::process::id()));
        let path = dir.join("node.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut be = FileBackend::open(&path).unwrap();
            be.save_checkpoint(&sample_state()).unwrap();
            be.record_emission(50).unwrap();
        }
        // Tear the final record mid-payload (kill -9 mid-append).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();

        let mut be = FileBackend::open(&path).unwrap();
        let got = be.load(PERIOD, &WireLimits::DEFAULT).unwrap().unwrap();
        assert_eq!(got.emitted_cycle, Some(42), "torn emit record ignored");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_corruption_stops_the_fold() {
        let dir = std::env::temp_dir().join(format!("sc-storage-sum-{}", std::process::id()));
        let path = dir.join("node.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut be = FileBackend::open(&path).unwrap();
            be.record_emission(5).unwrap();
            be.record_emission(6).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload bit of the *second* record.
        let second = bytes.len() - 1;
        bytes[second] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let mut be = FileBackend::open(&path).unwrap();
        let got = be.load(PERIOD, &WireLimits::DEFAULT).unwrap().unwrap();
        assert_eq!(
            got.emitted_cycle,
            Some(5),
            "corrupt record and tail dropped"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_rewrites_to_one_checkpoint() {
        let dir = std::env::temp_dir().join(format!("sc-storage-compact-{}", std::process::id()));
        let path = dir.join("node.log");
        let _ = std::fs::remove_file(&path);
        let state = sample_state();
        let mut be = FileBackend::open(&path).unwrap().with_compact_threshold(64);
        for _ in 0..8 {
            be.save_checkpoint(&state).unwrap();
        }
        let one_record = {
            let payload = encode_state(&state);
            (RECORD_HEADER_BYTES + payload.len()) as u64
        };
        assert_eq!(be.log_bytes(), one_record, "log compacted to one record");
        let got = be.load(PERIOD, &WireLimits::DEFAULT).unwrap().unwrap();
        assert_states_equal(&state, &got);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_proofs_are_revalidated() {
        // A proof record whose evidence does not validate must not fold.
        let dir = std::env::temp_dir().join(format!("sc-storage-proof-{}", std::process::id()));
        let path = dir.join("node.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut be = FileBackend::open(&path).unwrap();
            be.record_emission(1).unwrap();
            be.record_proof(&freq_proof(3), 2).unwrap();
        }
        // Load with a *smaller* period: the same evidence still validates
        // only if the two creations are within the period — dt here is 1
        // tick, so it survives any period > 1; with period 1 it must not.
        let mut be = FileBackend::open(&path).unwrap();
        let got = be.load(1, &WireLimits::DEFAULT).unwrap().unwrap();
        assert_eq!(got.emitted_cycle, Some(1), "prefix before bad proof kept");
        assert!(got.proofs.is_empty(), "invalid proof evidence dropped");
        std::fs::remove_dir_all(&dir).ok();
    }
}
