//! Bounded memo of *verified* chain prefixes — the incremental
//! verification cache behind `SecureDescriptor::verify_with`.
//!
//! Every descriptor carries a running state digest that commits to its
//! genesis record and every chain link (including signatures). Once a
//! node has fully verified a descriptor, the digest of each of its
//! prefixes identifies a byte-exact chain whose genesis signature, link
//! signatures, and structural rules are all known good. Re-encountering
//! any of those digests later — the same descriptor arriving again, an
//! extended snapshot of it, or a fork sharing the prefix — lets the
//! verifier skip straight to the links appended after the memoized
//! prefix, making intake verification amortized O(new links) instead of
//! O(chain length).
//!
//! # Safety argument
//!
//! The memo is sound because entries are inserted **only** after a full
//! local verification succeeds, and are keyed by a SHA-256 digest of the
//! entire prefix content. A tampered copy (flipped signature, spliced
//! prefix, forged genesis) necessarily hashes to different prefix
//! digests, misses the memo, and falls back to full verification — there
//! is no way to "poison" the memo with unverified material. Structural
//! rules are still enforced over the whole chain on every call (they are
//! hash-cheap), so a memoized redeemed prefix cannot hide an illegal
//! post-redemption extension. Third-party proof validation
//! (`ViolationProof::validate`) deliberately bypasses the memo and stays
//! fully self-certifying.
//!
//! The memo is bounded FIFO: beyond `capacity` digests the oldest entry
//! is dropped, degrading gracefully to full verification. A capacity of
//! zero disables memoization entirely.

use sc_crypto::{Digest, FxHashSet};
use std::collections::VecDeque;

/// Bounded FIFO set of state digests of verified chain prefixes.
///
/// Keys are SHA-256 digests, so the non-flooding-resistant
/// [`sc_crypto::fxhash`] hasher is safe here: biasing its 64-bit folds
/// would require grinding the underlying hash.
#[derive(Clone, Debug)]
pub struct VerifyMemo {
    set: FxHashSet<Digest>,
    fifo: VecDeque<Digest>,
    capacity: usize,
    lookups: u64,
    hits: u64,
}

impl VerifyMemo {
    /// Creates a memo retaining at most `capacity` prefix digests.
    /// `capacity == 0` disables memoization (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        VerifyMemo {
            set: FxHashSet::with_capacity_and_hasher(capacity.min(4096), Default::default()),
            fifo: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            lookups: 0,
            hits: 0,
        }
    }

    /// Whether `digest` identifies a verified prefix. Records hit/miss
    /// statistics, hence `&mut self`.
    pub fn contains(&mut self, digest: &Digest) -> bool {
        self.lookups += 1;
        let hit = self.set.contains(digest);
        if hit {
            self.hits += 1;
        }
        hit
    }

    /// Records a verified prefix digest, evicting the oldest entry when
    /// full. Crate-private on purpose: only `SecureDescriptor::verify_with`
    /// may call this, and only after a successful verification — exposing
    /// it would let external code poison the memo with unverified digests.
    pub(crate) fn insert(&mut self, digest: Digest) {
        if self.capacity == 0 || self.set.contains(&digest) {
            return;
        }
        if self.fifo.len() == self.capacity {
            if let Some(old) = self.fifo.pop_front() {
                self.set.remove(&old);
            }
        }
        self.set.insert(digest);
        self.fifo.push_back(digest);
    }

    /// Number of memoized prefix digests.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the memo holds nothing.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Maximum number of retained digests.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total lookups performed (for tests, benches, and observability).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found a verified prefix.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(tag: u8) -> Digest {
        [tag; 32]
    }

    #[test]
    fn insert_then_contains() {
        let mut m = VerifyMemo::new(8);
        assert!(!m.contains(&digest(1)));
        m.insert(digest(1));
        assert!(m.contains(&digest(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.lookups(), 2);
        assert_eq!(m.hits(), 1);
    }

    #[test]
    fn capacity_bounds_and_fifo_eviction() {
        let mut m = VerifyMemo::new(3);
        for t in 0..5u8 {
            m.insert(digest(t));
        }
        assert_eq!(m.len(), 3);
        assert!(!m.contains(&digest(0)), "oldest evicted");
        assert!(!m.contains(&digest(1)));
        assert!(m.contains(&digest(2)));
        assert!(m.contains(&digest(4)));
    }

    #[test]
    fn duplicate_insert_does_not_double_occupy() {
        let mut m = VerifyMemo::new(2);
        m.insert(digest(1));
        m.insert(digest(1));
        m.insert(digest(2));
        assert_eq!(m.len(), 2);
        assert!(m.contains(&digest(1)));
        assert!(m.contains(&digest(2)));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut m = VerifyMemo::new(0);
        m.insert(digest(1));
        assert!(m.is_empty());
        assert!(!m.contains(&digest(1)));
        assert_eq!(m.capacity(), 0);
    }
}
