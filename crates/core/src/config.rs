//! SecureCyclon protocol parameters.

/// Configuration shared by all correct SecureCyclon nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SecureConfig {
    /// View length ℓ.
    pub view_len: usize,
    /// Swap length s (descriptor ownerships moved per exchange, each way).
    pub swap_len: usize,
    /// Tick resolution of one gossip cycle; must match the engine's.
    pub ticks_per_cycle: u64,
    /// Redemption-cache retention r, in cycles (§V-C). 0 disables.
    pub redemption_cache_cycles: u64,
    /// Hard cap on redemption-cache entries, independent of age. Under
    /// heavy churn a single retention window can accumulate arbitrarily
    /// many redeemed descriptors; the cap evicts the oldest first so the
    /// cache degrades to the paper's steady-state behaviour instead of
    /// growing without bound. 0 disables the cap.
    pub redemption_cache_max_entries: usize,
    /// Sample-cache retention, in cycles (§IV-B "cache all descriptors
    /// seen", bounded in practice by descriptor lifetime ≈ ℓ).
    pub sample_retention_cycles: u64,
    /// Whether exchanges use the tit-for-tat round-trip protocol (§V-B).
    pub tit_for_tat: bool,
    /// Whether discovered violators are blacklisted, purged, and the proof
    /// flooded (§IV-C). Disabled only by the Figure 7 detection-ratio
    /// experiment, which must keep attackers alive to measure per-age
    /// detection probability.
    pub eviction_enabled: bool,
    /// Maximum accepted deviation between a *fresh* descriptor's timestamp
    /// and the receiver's clock, in ticks (§IV-A clock-skew review).
    pub max_skew_ticks: u64,
    /// Optional cap on descriptors swapped in an exchange initiated with a
    /// non-swappable redemption (§V-A, restriction 3).
    pub ns_swap_cap: Option<usize>,
    /// Maximum non-swappable redemptions a creator accepts per cycle
    /// (§V-A, restriction 2).
    pub max_ns_redemptions_per_cycle: u32,
    /// How many recently transferred descriptors to remember as candidates
    /// for non-swappable back-fill (§V-A repair).
    pub transfer_history_len: usize,
    /// Proofs learned within this many cycles are piggybacked on gossip
    /// messages (§IV-C, catching up absent/new nodes).
    pub proof_piggyback_cycles: u64,
    /// Capacity of the verified-prefix memo driving incremental descriptor
    /// verification (digests retained; 32 bytes each). Zero disables
    /// memoization and falls back to full from-genesis verification.
    pub verify_memo_capacity: usize,
    /// Whether message intake pools the signature checks of every
    /// descriptor it is about to rely on into one batched verification
    /// (`SecureDescriptor::verify_batch_with`) instead of verifying them
    /// one by one. Verdict-identical to the sequential path (asserted by
    /// the testkit scenario matrix); exists as a switch so equivalence
    /// oracles can run both pipelines side by side.
    pub batched_intake: bool,
}

impl Default for SecureConfig {
    fn default() -> Self {
        // The paper's proposed configuration (§VI-A): ℓ=20, s=3, r=5.
        SecureConfig {
            view_len: 20,
            swap_len: 3,
            ticks_per_cycle: 1000,
            redemption_cache_cycles: 5,
            redemption_cache_max_entries: 64,
            sample_retention_cycles: 60,
            tit_for_tat: true,
            eviction_enabled: true,
            max_skew_ticks: 1000,
            ns_swap_cap: None,
            max_ns_redemptions_per_cycle: 1,
            transfer_history_len: 8,
            proof_piggyback_cycles: 10,
            verify_memo_capacity: 4096,
            batched_intake: true,
        }
    }
}

impl SecureConfig {
    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if `swap_len` is zero or exceeds `view_len`, or if
    /// `ticks_per_cycle` is zero.
    pub fn validated(self) -> Self {
        assert!(self.swap_len > 0, "swap length must be positive");
        assert!(
            self.swap_len <= self.view_len,
            "swap length cannot exceed view length"
        );
        assert!(self.ticks_per_cycle > 0, "ticks_per_cycle must be positive");
        self
    }

    /// Builder-style override of the view length.
    pub fn with_view_len(mut self, view_len: usize) -> Self {
        self.view_len = view_len;
        self
    }

    /// Builder-style override of the swap length.
    pub fn with_swap_len(mut self, swap_len: usize) -> Self {
        self.swap_len = swap_len;
        self
    }

    /// Builder-style override of the redemption-cache retention.
    pub fn with_redemption_cache(mut self, cycles: u64) -> Self {
        self.redemption_cache_cycles = cycles;
        self
    }

    /// Builder-style override of the redemption-cache entry cap.
    pub fn with_redemption_cache_cap(mut self, max_entries: usize) -> Self {
        self.redemption_cache_max_entries = max_entries;
        self
    }

    /// Builder-style toggle of the tit-for-tat mechanism.
    pub fn with_tit_for_tat(mut self, enabled: bool) -> Self {
        self.tit_for_tat = enabled;
        self
    }

    /// Builder-style toggle of batched intake verification.
    pub fn with_batched_intake(mut self, enabled: bool) -> Self {
        self.batched_intake = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = SecureConfig::default().validated();
        assert_eq!(cfg.view_len, 20);
        assert_eq!(cfg.swap_len, 3);
        assert_eq!(cfg.redemption_cache_cycles, 5);
        assert!(cfg.tit_for_tat);
        assert!(cfg.eviction_enabled);
    }

    #[test]
    fn builders_compose() {
        let cfg = SecureConfig::default()
            .with_view_len(50)
            .with_swap_len(8)
            .with_redemption_cache(10)
            .with_tit_for_tat(false)
            .validated();
        assert_eq!(cfg.view_len, 50);
        assert_eq!(cfg.swap_len, 8);
        assert_eq!(cfg.redemption_cache_cycles, 10);
        assert!(!cfg.tit_for_tat);
    }

    #[test]
    #[should_panic(expected = "swap length")]
    fn oversized_swap_rejected() {
        SecureConfig::default().with_swap_len(21).validated();
    }
}
