//! SecureCyclon wire messages.
//!
//! A tit-for-tat gossip exchange (§V-B) is a sequence of `s` round trips:
//!
//! ```text
//! initiator                                   partner
//!   Request { redeemed, fresh, samples, … } ──▶
//!   ◀── Accept { transfers:[d₁], samples, … }
//!   Round { transfer: p₂ }                  ──▶
//!   ◀── RoundReply { transfer: Some(d₂) }
//!   …                                          (s − 1 Round trips)
//! ```
//!
//! With tit-for-tat disabled the initiator ships all its transfers inside
//! `Request::offered` and the partner answers with up to `s` in
//! `Accept::transfers` — the single-shot legacy shape that the
//! link-depletion attack of Figure 6 exploits.
//!
//! Violation proofs travel both as one-way floods ([`SecureMsg::Proof`])
//! and piggybacked on `Request`/`Accept`.
//!
//! A *starved* node — its view, reserve, and back-fill pools all empty,
//! e.g. after a partition outlasted its descriptors — re-enters the
//! overlay with the §V-A bootstrap applied in-protocol: it sends
//! [`SecureMsg::JoinPing`] one-ways to recently sampled addresses, and a
//! willing receiver answers with [`SecureMsg::JoinGrant`] carrying a
//! sponsored descriptor (spending that cycle's fresh-descriptor budget,
//! so the frequency rule is never violated).

use crate::descriptor::SecureDescriptor;
use crate::proof::ViolationProof;
use sc_crypto::NodeId;

/// Body of a gossip request (round 0).
#[derive(Clone, Debug)]
pub struct RequestBody {
    /// The descriptor being redeemed: created by the target, owned by the
    /// initiator, carrying a terminal redemption link. The "communication
    /// certificate" of §IV-A.
    pub redeemed: SecureDescriptor,
    /// The initiator's fresh self-descriptor, ownership already
    /// transferred to the target (the first tit-for-tat transfer).
    pub fresh: SecureDescriptor,
    /// Additional ownership transfers (non-tit-for-tat mode only).
    pub offered: Vec<SecureDescriptor>,
    /// Copies of the rest of the initiator's view plus its redemption
    /// cache — samples, no ownership attached (§IV-B).
    pub samples: Vec<SecureDescriptor>,
    /// Recently learned violation proofs (§IV-C piggyback).
    pub proofs: Vec<ViolationProof>,
}

/// Body of a gossip acceptance (the partner's half of round 1).
#[derive(Clone, Debug)]
pub struct AcceptBody {
    /// Ownership transfers to the initiator: exactly one in tit-for-tat
    /// mode, up to `s` otherwise.
    pub transfers: Vec<SecureDescriptor>,
    /// Copies of the rest of the partner's view plus its redemption cache.
    pub samples: Vec<SecureDescriptor>,
    /// Recently learned violation proofs.
    pub proofs: Vec<ViolationProof>,
}

/// One subsequent tit-for-tat round from the initiator.
#[derive(Clone, Debug)]
pub struct RoundBody {
    /// The initiator's next ownership transfer.
    pub transfer: SecureDescriptor,
}

/// The partner's reply to a [`RoundBody`].
#[derive(Clone, Debug)]
pub struct RoundReplyBody {
    /// The partner's next ownership transfer, or `None` if it has nothing
    /// left to give (ends the exchange).
    pub transfer: Option<SecureDescriptor>,
}

/// A starved node's plea for re-sponsorship (§V-A applied to rejoin).
#[derive(Clone, Debug)]
pub struct JoinPingBody {
    /// The starved node's identity — the key a sponsorship descriptor
    /// must be transferred to.
    pub joiner: NodeId,
}

/// A sponsor's answer to a [`JoinPingBody`].
#[derive(Clone, Debug)]
pub struct JoinGrantBody {
    /// A fresh descriptor created by the sponsor, ownership already
    /// transferred to the joiner (the §V-A bootstrap lifeline).
    pub descriptor: SecureDescriptor,
    /// Recently learned violation proofs, so the rejoiner catches up on
    /// blacklist state it missed while isolated (§IV-C).
    pub proofs: Vec<ViolationProof>,
}

/// All SecureCyclon messages.
#[derive(Clone, Debug)]
pub enum SecureMsg {
    /// Gossip request (RPC).
    Request(Box<RequestBody>),
    /// Gossip acceptance (RPC reply).
    Accept(Box<AcceptBody>),
    /// Tit-for-tat round (RPC).
    Round(Box<RoundBody>),
    /// Tit-for-tat round reply (RPC reply).
    RoundReply(Box<RoundReplyBody>),
    /// Flooded violation proof (one-way, §IV-C).
    Proof(Box<ViolationProof>),
    /// Starved-node re-sponsorship plea (one-way, §V-A rejoin).
    JoinPing(Box<JoinPingBody>),
    /// Sponsorship grant answering a ping (one-way, §V-A rejoin).
    JoinGrant(Box<JoinGrantBody>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use sc_crypto::{Keypair, Scheme};

    #[test]
    fn messages_are_cloneable_and_debuggable() {
        let kp = Keypair::from_seed(Scheme::Schnorr61, [1; 32]);
        let d = SecureDescriptor::create(&kp, 0, Timestamp(0));
        let msg = SecureMsg::Round(Box::new(RoundBody { transfer: d }));
        let copy = msg.clone();
        assert!(!format!("{copy:?}").is_empty());
    }
}
