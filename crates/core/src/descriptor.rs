//! Secure node descriptors with chains of ownership.
//!
//! This module implements §IV-A of the paper: descriptors are redefined
//! from plain contact records into "unique, unforgeable, and unclonable
//! tokens". A descriptor starts with a signed *genesis* record (creator's
//! public key, network address, creation timestamp). Every time ownership
//! moves, the current owner appends a [`ChainLink`] naming the new owner
//! and signs the entire structure; the result is the descriptor's **chain
//! of ownership** (Figure 4 of the paper).
//!
//! Redemption — spending the descriptor to gossip with its creator — is
//! modelled as a final link back to the creator ([`LinkKind::Redeem`] or
//! [`LinkKind::RedeemNonSwappable`]). This makes *every* double-use of a
//! descriptor (two transfers, a transfer plus a redemption, or two
//! redemptions) produce two links signed by the same owner over the same
//! chain prefix — the conflicting evidence that cloning proofs (§IV-B) are
//! built from.
//!
//! Signatures cover a running digest of everything before them, so a link
//! signature commits to the full history up to that point while signing
//! and verifying stay O(chain length).

use crate::memo::VerifyMemo;
use crate::time::Timestamp;
use sc_crypto::{sha256_concat, Digest, Keypair, NodeId, PublicKey, Signature};
use sc_sim::Addr;
use std::sync::Arc;

/// The globally unique identity of a descriptor: who created it and when.
///
/// Two valid descriptors sharing a [`DescriptorId`] are either copies of
/// the same token (compatible chains) or evidence of a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DescriptorId {
    /// The creator's public key.
    pub creator: NodeId,
    /// Creation timestamp.
    pub created_at: Timestamp,
}

/// The signed creation record at the root of every descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Genesis {
    /// Creator's public key (also the node's ID).
    pub creator: NodeId,
    /// Creator's network address at creation time.
    pub addr: Addr,
    /// Creation timestamp.
    pub created_at: Timestamp,
    /// Creator's signature over the genesis fields.
    pub sig: Signature,
}

/// How a chain link moves ownership.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Ordinary ownership transfer during a gossip exchange.
    Transfer,
    /// Redemption: the owner spends the descriptor to gossip with its
    /// creator. Terminal.
    Redeem,
    /// Redemption of a retained non-swappable copy (§V-A). Terminal, and
    /// the single kind allowed to conflict with one onward transfer.
    RedeemNonSwappable,
}

impl LinkKind {
    /// Whether this kind ends the descriptor's life.
    pub fn is_redemption(self) -> bool {
        matches!(self, LinkKind::Redeem | LinkKind::RedeemNonSwappable)
    }

    fn tag(self) -> u8 {
        match self {
            LinkKind::Transfer => 0,
            LinkKind::Redeem => 1,
            LinkKind::RedeemNonSwappable => 2,
        }
    }
}

/// One entry of a descriptor's chain of ownership.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainLink {
    /// The receiving owner.
    pub to: NodeId,
    /// Transfer or redemption.
    pub kind: LinkKind,
    /// Signature by the *previous* owner over the running digest plus
    /// `(to, kind)`.
    pub sig: Signature,
}

/// Errors from descriptor operations and verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DescriptorError {
    /// The genesis signature does not verify.
    BadGenesisSignature,
    /// A chain link's signature does not verify against its signer.
    BadLinkSignature {
        /// Index of the offending link.
        index: usize,
    },
    /// A redemption link appears before the end of the chain.
    RedemptionNotTerminal,
    /// A redemption link does not point back at the creator.
    RedemptionNotToCreator,
    /// A transfer hands the descriptor to its current owner.
    TransferToSelf,
    /// The keypair attempting an operation does not own the descriptor.
    NotOwner,
    /// The descriptor is already redeemed and cannot move further.
    AlreadyRedeemed,
}

impl core::fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DescriptorError::BadGenesisSignature => write!(f, "invalid genesis signature"),
            DescriptorError::BadLinkSignature { index } => {
                write!(f, "invalid signature on chain link {index}")
            }
            DescriptorError::RedemptionNotTerminal => {
                write!(f, "redemption link is not the last link")
            }
            DescriptorError::RedemptionNotToCreator => {
                write!(f, "redemption link does not point at the creator")
            }
            DescriptorError::TransferToSelf => write!(f, "transfer to current owner"),
            DescriptorError::NotOwner => write!(f, "operation requires descriptor ownership"),
            DescriptorError::AlreadyRedeemed => write!(f, "descriptor already redeemed"),
        }
    }
}

impl std::error::Error for DescriptorError {}

/// A SecureCyclon node descriptor: a signed genesis record plus the chain
/// of ownership accumulated over its life.
///
/// The chain is stored behind an [`Arc`]: descriptors are cloned heavily
/// on the gossip hot path (every view entry and redemption-cache entry is
/// copied into every outgoing sample set), and sharing the link storage
/// makes those clones O(1) instead of O(chain length). Appending a link
/// copies the links once (copy-on-write), which is no worse than the
/// descriptor clone the append used to require.
#[derive(Clone, Debug)]
pub struct SecureDescriptor {
    genesis: Genesis,
    chain: Arc<Vec<ChainLink>>,
    /// Memoized running digests over genesis + chain at **every** prefix
    /// length: `states[i]` commits to the genesis plus the first `i`
    /// links, and `states[chain.len()]` is the descriptor's state digest.
    /// A pure function of the other fields, maintained incrementally so
    /// that signing, transferring, *and incremental verification* are
    /// O(1) in chain length instead of O(chain) hashing per call. Shares
    /// storage across clones exactly like `chain`.
    states: Arc<Vec<Digest>>,
}

impl PartialEq for SecureDescriptor {
    fn eq(&self, other: &Self) -> bool {
        // `state` is derived; equality is over the authoritative fields.
        // Shared chain storage gives clones a pointer-equality fast path.
        self.genesis == other.genesis
            && (Arc::ptr_eq(&self.chain, &other.chain) || self.chain == other.chain)
    }
}

impl Eq for SecureDescriptor {}

fn genesis_message(creator: &NodeId, addr: Addr, created_at: Timestamp) -> Digest {
    sha256_concat(&[
        b"sc/genesis-msg",
        creator.as_bytes(),
        &addr.to_be_bytes(),
        &created_at.ticks().to_be_bytes(),
    ])
}

fn genesis_state(genesis: &Genesis) -> Digest {
    sha256_concat(&[
        b"sc/state0",
        &genesis_message(&genesis.creator, genesis.addr, genesis.created_at),
        genesis.sig.as_bytes(),
    ])
}

fn link_message(state: &Digest, to: &NodeId, kind: LinkKind) -> Digest {
    sha256_concat(&[b"sc/link-msg", state, to.as_bytes(), &[kind.tag()]])
}

fn next_state(state: &Digest, link: &ChainLink) -> Digest {
    sha256_concat(&[
        b"sc/state",
        state,
        link.to.as_bytes(),
        &[link.kind.tag()],
        link.sig.as_bytes(),
    ])
}

impl SecureDescriptor {
    /// Creates and self-signs a fresh descriptor.
    ///
    /// Per the protocol, "the descriptor of a node may be generated
    /// exclusively by the node itself" — `creator` signs the genesis.
    pub fn create(creator: &Keypair, addr: Addr, created_at: Timestamp) -> Self {
        let msg = genesis_message(&creator.public(), addr, created_at);
        let sig = creator.sign(&msg);
        let genesis = Genesis {
            creator: creator.public(),
            addr,
            created_at,
            sig,
        };
        let state = genesis_state(&genesis);
        SecureDescriptor {
            genesis,
            chain: Arc::new(Vec::new()),
            states: Arc::new(vec![state]),
        }
    }

    /// Reassembles a descriptor from decoded parts **without validation**.
    ///
    /// Used by the wire codec; the result must be checked with
    /// [`SecureDescriptor::verify`] before any protocol use.
    pub fn from_parts(genesis: Genesis, chain: Vec<ChainLink>) -> Self {
        // The one place the full hash walk is paid: decoding off the wire.
        // Everything downstream (verification, transfer, equality) reuses
        // these prefix digests.
        let mut states = Vec::with_capacity(chain.len() + 1);
        let mut state = genesis_state(&genesis);
        states.push(state);
        for link in &chain {
            state = next_state(&state, link);
            states.push(state);
        }
        SecureDescriptor {
            genesis,
            chain: Arc::new(chain),
            states: Arc::new(states),
        }
    }

    /// The descriptor's unique identity.
    pub fn id(&self) -> DescriptorId {
        DescriptorId {
            creator: self.genesis.creator,
            created_at: self.genesis.created_at,
        }
    }

    /// The signed genesis record.
    pub fn genesis(&self) -> &Genesis {
        &self.genesis
    }

    /// The node this descriptor points at (its creator).
    pub fn creator(&self) -> NodeId {
        self.genesis.creator
    }

    /// The creator's network address.
    pub fn addr(&self) -> Addr {
        self.genesis.addr
    }

    /// Creation timestamp.
    pub fn created_at(&self) -> Timestamp {
        self.genesis.created_at
    }

    /// The chain of ownership.
    pub fn chain(&self) -> &[ChainLink] {
        &self.chain
    }

    /// Number of ownership transfers the descriptor has undergone
    /// (the `t` of the paper's size model, §VI-A; includes redemption).
    pub fn transfer_count(&self) -> usize {
        self.chain.len()
    }

    /// The current owner: the target of the last link, or the creator for
    /// a freshly created descriptor. For a redeemed descriptor this is the
    /// creator (redemption hands the token back).
    pub fn owner(&self) -> NodeId {
        self.chain
            .last()
            .map(|l| l.to)
            .unwrap_or(self.genesis.creator)
    }

    /// The owner who performed the redemption (the signer of the terminal
    /// link), if the descriptor is redeemed.
    pub fn redeemer(&self) -> Option<NodeId> {
        if !self.is_redeemed() {
            return None;
        }
        Some(self.owner_at(self.chain.len() - 1))
    }

    /// Whether the descriptor has been redeemed (spent).
    pub fn is_redeemed(&self) -> bool {
        self.chain.last().is_some_and(|l| l.kind.is_redemption())
    }

    /// The kind of the terminal redemption link, if any.
    pub fn redemption_kind(&self) -> Option<LinkKind> {
        self.chain
            .last()
            .filter(|l| l.kind.is_redemption())
            .map(|l| l.kind)
    }

    /// The owner *before* link `index` executes — i.e. the signer of
    /// `chain[index]`.
    pub fn owner_at(&self, index: usize) -> NodeId {
        if index == 0 {
            self.genesis.creator
        } else {
            self.chain[index - 1].to
        }
    }

    /// Iterates over all owners in order: creator, then each link target.
    pub fn owners(&self) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::once(self.genesis.creator).chain(self.chain.iter().map(|l| l.to))
    }

    /// Age in whole cycles at time `now`.
    pub fn age_cycles(&self, now: Timestamp, ticks_per_cycle: u64) -> u64 {
        self.genesis.created_at.age_cycles(now, ticks_per_cycle)
    }

    /// Running digest over genesis and the full chain (identifies the exact
    /// byte content of this copy, unlike [`SecureDescriptor::id`]).
    pub fn state_digest(&self) -> Digest {
        self.states[self.chain.len()]
    }

    /// Running digest after the first `len` links (`len == 0` is the
    /// genesis digest). The digest commits to every field of every link
    /// up to `len`, so two copies with equal prefix digests have
    /// byte-identical prefixes.
    pub(crate) fn prefix_state(&self, len: usize) -> &Digest {
        &self.states[len]
    }

    /// Appends a signed ownership transfer to `to`, returning the extended
    /// descriptor. The caller should discard `self` afterwards — keeping
    /// and reusing it is exactly the cloning violation the protocol
    /// detects (honest exceptions: non-swappable copies, §V-A).
    ///
    /// # Errors
    ///
    /// Fails if `owner` does not currently own the descriptor, if the
    /// descriptor is already redeemed, or if `to` is the current owner.
    pub fn transfer(&self, owner: &Keypair, to: NodeId) -> Result<Self, DescriptorError> {
        self.append(owner, to, LinkKind::Transfer)
    }

    /// Appends a signed redemption link back to the creator.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SecureDescriptor::transfer`]; additionally a
    /// redemption must not target a descriptor the redeemer created (a node
    /// never gossips with itself).
    pub fn redeem(&self, owner: &Keypair, kind: LinkKind) -> Result<Self, DescriptorError> {
        debug_assert!(kind.is_redemption(), "redeem called with {kind:?}");
        self.append(owner, self.genesis.creator, kind)
    }

    fn append(&self, owner: &Keypair, to: NodeId, kind: LinkKind) -> Result<Self, DescriptorError> {
        if self.is_redeemed() {
            return Err(DescriptorError::AlreadyRedeemed);
        }
        if owner.public() != self.owner() {
            return Err(DescriptorError::NotOwner);
        }
        if to == self.owner() && !kind.is_redemption() {
            return Err(DescriptorError::TransferToSelf);
        }
        let state = self.state_digest();
        let msg = link_message(&state, &to, kind);
        let sig = owner.sign(&msg);
        let link = ChainLink { to, kind, sig };
        // Build the extended vectors directly at their final capacity:
        // the shared `Arc` storage is almost always aliased by view and
        // cache copies, so `Arc::make_mut` + `push` would copy at exact
        // capacity and then immediately reallocate to grow — two
        // copies per append instead of one.
        let mut states = Vec::with_capacity(self.states.len() + 1);
        states.extend_from_slice(&self.states);
        states.push(next_state(&state, &link));
        let mut chain = Vec::with_capacity(self.chain.len() + 1);
        chain.extend_from_slice(&self.chain);
        chain.push(link);
        Ok(SecureDescriptor {
            genesis: self.genesis,
            chain: Arc::new(chain),
            states: Arc::new(states),
        })
    }

    /// Fully verifies the descriptor: genesis signature, every link
    /// signature against the correct signer, and structural rules
    /// (redemptions are terminal and point at the creator; no transfer to
    /// the current owner).
    ///
    /// # Errors
    ///
    /// Returns the first failure encountered, in chain order.
    pub fn verify(&self) -> Result<(), DescriptorError> {
        let msg = genesis_message(
            &self.genesis.creator,
            self.genesis.addr,
            self.genesis.created_at,
        );
        if !self.genesis.creator.verify(&msg, &self.genesis.sig) {
            return Err(DescriptorError::BadGenesisSignature);
        }
        let mut state = genesis_state(&self.genesis);
        let mut owner: PublicKey = self.genesis.creator;
        for (i, link) in self.chain.iter().enumerate() {
            if link.kind.is_redemption() {
                if i != self.chain.len() - 1 {
                    return Err(DescriptorError::RedemptionNotTerminal);
                }
                if link.to != self.genesis.creator {
                    return Err(DescriptorError::RedemptionNotToCreator);
                }
            } else if link.to == owner {
                return Err(DescriptorError::TransferToSelf);
            }
            let msg = link_message(&state, &link.to, link.kind);
            if !owner.verify(&msg, &link.sig) {
                return Err(DescriptorError::BadLinkSignature { index: i });
            }
            state = next_state(&state, link);
            owner = link.to;
        }
        Ok(())
    }

    /// Incremental verification against a memo of previously verified
    /// prefixes: signature checks are skipped for the longest chain prefix
    /// whose running digest the memo recognizes, so re-verifying a known
    /// copy is O(1) and verifying an extended or forked copy costs only
    /// the links appended after the shared prefix. Prefix digests come
    /// straight from the descriptor's incrementally maintained cache
    /// (populated at creation, append, or wire decode), so there is **no**
    /// O(chain) hash walk here — extending a memoized chain by one link
    /// verifies with O(1) hashing and a single signature check.
    ///
    /// Returns **exactly** the same result as [`SecureDescriptor::verify`]
    /// for every input: memo entries are digests of byte-exact prefixes
    /// that passed full verification, so skipping their signatures can
    /// never change the verdict, and structural rules are re-checked over
    /// the whole chain unconditionally (they are hash-free comparisons; in
    /// particular a memoized redeemed prefix can never hide an illegal
    /// post-redemption extension). On success, every prefix digest past
    /// the memoized one is memoized for future calls.
    ///
    /// # Errors
    ///
    /// Identical to [`SecureDescriptor::verify`].
    pub fn verify_with(&self, memo: &mut VerifyMemo) -> Result<(), DescriptorError> {
        let n = self.chain.len();
        let states: &[Digest] = &self.states;
        debug_assert_eq!(states.len(), n + 1, "prefix digests out of sync");
        // Exact match: this byte content already passed full verification.
        if memo.contains(&states[n]) {
            return Ok(());
        }
        // Longest memoized prefix (in links), scanning from the tip so the
        // extend-by-few hot path hits after a couple of lookups. `None`
        // means not even the genesis is known good.
        let verified_prefix = (0..n).rev().find(|&i| memo.contains(&states[i]));
        if verified_prefix.is_none() {
            let msg = genesis_message(
                &self.genesis.creator,
                self.genesis.addr,
                self.genesis.created_at,
            );
            if !self.genesis.creator.verify(&msg, &self.genesis.sig) {
                return Err(DescriptorError::BadGenesisSignature);
            }
        }
        let skip = verified_prefix.unwrap_or(0);
        let mut owner: PublicKey = self.genesis.creator;
        for (i, link) in self.chain.iter().enumerate() {
            // Structural rules run over the whole chain, memoized or not:
            // they are hash-free, and re-checking them keeps a memoized
            // redeemed prefix from hiding a post-redemption extension.
            if link.kind.is_redemption() {
                if i != n - 1 {
                    return Err(DescriptorError::RedemptionNotTerminal);
                }
                if link.to != self.genesis.creator {
                    return Err(DescriptorError::RedemptionNotToCreator);
                }
            } else if link.to == owner {
                return Err(DescriptorError::TransferToSelf);
            }
            if i >= skip {
                let msg = link_message(&states[i], &link.to, link.kind);
                if !owner.verify(&msg, &link.sig) {
                    return Err(DescriptorError::BadLinkSignature { index: i });
                }
            }
            owner = link.to;
        }
        // Every prefix of a valid chain is itself a valid chain; memoize
        // the newly verified ones so extensions *and* forks hit the memo
        // later. Prefixes up to the memoized one are already represented
        // by its digest (re-inserting them would make the memoized
        // re-verify path O(chain) again).
        let first_new = verified_prefix.map_or(0, |i| i + 1);
        for s in &states[first_new..] {
            memo.insert(*s);
        }
        Ok(())
    }

    /// Verifies several descriptors at once against one memo, collecting
    /// every non-memoized signature check across the whole batch into a
    /// single [`sc_crypto::verify_batch`] call — one batched crypto bill
    /// for the entire received message instead of a signature-by-signature
    /// drip. Returns one verdict per descriptor, in input order.
    ///
    /// **Result-identical to the sequential path**: each verdict equals
    /// what `descs[i].verify_with(memo)` would return when the descriptors
    /// are processed one by one in input order, including *which* check a
    /// failing descriptor is blamed for. The argument:
    ///
    /// * Per descriptor, checks are collected in exactly the order
    ///   [`SecureDescriptor::verify_with`] would perform them (genesis
    ///   first when no prefix is memoized, then links past the memoized
    ///   prefix), and collection stops at the first structural error just
    ///   as the sequential walk would. The verdict is the positionally
    ///   first failing collected check, else the structural error, else
    ///   `Ok` — the same precedence the inline walk applies.
    /// * Signature validity is a pure function of `(key, message,
    ///   signature)`, and [`sc_crypto::verify_batch`] attributes failures
    ///   exactly (bisection confirmed by per-signature checks), so pooling
    ///   checks across descriptors cannot change any individual verdict.
    /// * Sequential interleaving — descriptor `k+1` seeing prefixes that
    ///   descriptor `k` just memoized — only ever lets the sequential path
    ///   *skip* checks that the batched path re-collects; those checks
    ///   belong to byte-identical prefixes already proven valid, so the
    ///   extra evaluations all pass and verdicts agree. Duplicate
    ///   descriptors (equal state digests) short-circuit to the first
    ///   copy's verdict, mirroring the sequential exact-hit.
    /// * The memo ends up with the same contents: successes memoize their
    ///   prefix digests in input order, failures memoize nothing, and
    ///   re-inserting an already-present digest is a no-op (so the FIFO
    ///   eviction order matches the sequential schedule too).
    pub fn verify_batch_with(
        descs: &[&Self],
        memo: &mut VerifyMemo,
    ) -> Vec<Result<(), DescriptorError>> {
        /// How one descriptor's verdict is determined after the pooled
        /// signature checks come back.
        enum Plan {
            /// Decided without any signature checks (exact memo hit).
            Done,
            /// Same state digest as an earlier descriptor in this batch:
            /// copy its verdict (the sequential path's exact-hit, or an
            /// identical re-walk after an identical failure).
            DupOf(usize),
            /// Pending signature checks `checks` (a range into the flat
            /// check arrays, in walk order), a structural error positioned
            /// after all of them (collection stopped there), and the index
            /// of the first prefix digest to memoize on success.
            Pending {
                checks: std::ops::Range<usize>,
                structural: Option<DescriptorError>,
                first_new: usize,
            },
        }

        let mut plans: Vec<Plan> = Vec::with_capacity(descs.len());
        let mut seen_tips: sc_crypto::FxHashMap<Digest, usize> =
            sc_crypto::FxHashMap::with_capacity_and_hasher(descs.len(), Default::default());
        // Flat parallel arrays of collected checks; contiguous per
        // descriptor because collection is descriptor-major.
        let mut check_pk: Vec<PublicKey> = Vec::new();
        let mut check_msg: Vec<Digest> = Vec::new();
        let mut check_sig: Vec<Signature> = Vec::new();
        let mut check_err: Vec<DescriptorError> = Vec::new();

        for (di, d) in descs.iter().enumerate() {
            let n = d.chain.len();
            let states: &[Digest] = &d.states;
            debug_assert_eq!(states.len(), n + 1, "prefix digests out of sync");
            if memo.contains(&states[n]) {
                plans.push(Plan::Done);
                continue;
            }
            if let Some(&first) = seen_tips.get(&states[n]) {
                plans.push(Plan::DupOf(first));
                continue;
            }
            seen_tips.insert(states[n], di);
            let verified_prefix = (0..n).rev().find(|&i| memo.contains(&states[i]));
            let start = check_pk.len();
            if verified_prefix.is_none() {
                check_pk.push(d.genesis.creator);
                check_msg.push(genesis_message(
                    &d.genesis.creator,
                    d.genesis.addr,
                    d.genesis.created_at,
                ));
                check_sig.push(d.genesis.sig);
                check_err.push(DescriptorError::BadGenesisSignature);
            }
            let skip = verified_prefix.unwrap_or(0);
            let mut structural = None;
            let mut owner: PublicKey = d.genesis.creator;
            for (i, link) in d.chain.iter().enumerate() {
                if link.kind.is_redemption() {
                    if i != n - 1 {
                        structural = Some(DescriptorError::RedemptionNotTerminal);
                        break;
                    }
                    if link.to != d.genesis.creator {
                        structural = Some(DescriptorError::RedemptionNotToCreator);
                        break;
                    }
                } else if link.to == owner {
                    structural = Some(DescriptorError::TransferToSelf);
                    break;
                }
                if i >= skip {
                    check_pk.push(owner);
                    check_msg.push(link_message(&states[i], &link.to, link.kind));
                    check_sig.push(link.sig);
                    check_err.push(DescriptorError::BadLinkSignature { index: i });
                }
                owner = link.to;
            }
            plans.push(Plan::Pending {
                checks: start..check_pk.len(),
                structural,
                first_new: verified_prefix.map_or(0, |i| i + 1),
            });
        }

        // One combined pass over every collected check. `verify_batch`
        // reports only the first invalid index, so confirmed-bad checks
        // are struck out and the remainder re-batched until the rest pass
        // — one extra round per forged signature, none in the honest case.
        let total = check_pk.len();
        let mut bad = vec![false; total];
        loop {
            let live: Vec<usize> = (0..total).filter(|&i| !bad[i]).collect();
            let view: Vec<(&PublicKey, &[u8], &Signature)> = live
                .iter()
                .map(|&i| (&check_pk[i], check_msg[i].as_slice(), &check_sig[i]))
                .collect();
            match sc_crypto::verify_batch(&view) {
                Ok(()) => break,
                Err(k) => bad[live[k]] = true,
            }
        }

        let mut results: Vec<Result<(), DescriptorError>> = Vec::with_capacity(descs.len());
        for (di, plan) in plans.iter().enumerate() {
            let res = match plan {
                Plan::Done => Ok(()),
                Plan::DupOf(first) => results[*first],
                Plan::Pending {
                    checks,
                    structural,
                    first_new,
                } => match checks.clone().find(|&i| bad[i]) {
                    Some(i) => Err(check_err[i]),
                    None => match structural {
                        Some(e) => Err(*e),
                        None => {
                            for s in &descs[di].states[*first_new..] {
                                memo.insert(*s);
                            }
                            Ok(())
                        }
                    },
                },
            };
            results.push(res);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_crypto::Scheme;

    pub(crate) fn kp(tag: u8) -> Keypair {
        Keypair::from_seed(Scheme::Schnorr61, [tag; 32])
    }

    #[test]
    fn create_verify_roundtrip() {
        let a = kp(1);
        let d = SecureDescriptor::create(&a, 7, Timestamp(1000));
        assert_eq!(d.creator(), a.public());
        assert_eq!(d.owner(), a.public());
        assert_eq!(d.transfer_count(), 0);
        assert!(!d.is_redeemed());
        d.verify().expect("fresh descriptor verifies");
    }

    #[test]
    fn figure4_chain_a_b_c_d() {
        // Reproduces Figure 4: A creates, hands to B, B to C, C to D.
        let (a, b, c, d) = (kp(1), kp(2), kp(3), kp(4));
        let desc = SecureDescriptor::create(&a, 0, Timestamp(0));
        let desc = desc.transfer(&a, b.public()).unwrap();
        let desc = desc.transfer(&b, c.public()).unwrap();
        let desc = desc.transfer(&c, d.public()).unwrap();
        desc.verify().expect("full chain verifies");
        let owners: Vec<NodeId> = desc.owners().collect();
        assert_eq!(owners, vec![a.public(), b.public(), c.public(), d.public()]);
        assert_eq!(desc.owner(), d.public());
        assert_eq!(desc.transfer_count(), 3);
    }

    #[test]
    fn transfer_requires_ownership() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let desc = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        assert_eq!(
            desc.transfer(&c, c.public()).unwrap_err(),
            DescriptorError::NotOwner
        );
    }

    #[test]
    fn transfer_to_current_owner_rejected() {
        let (a, b) = (kp(1), kp(2));
        let desc = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        assert_eq!(
            desc.transfer(&b, b.public()).unwrap_err(),
            DescriptorError::TransferToSelf
        );
    }

    #[test]
    fn redeem_then_no_more_moves() {
        let (a, b) = (kp(1), kp(2));
        let desc = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let redeemed = desc.redeem(&b, LinkKind::Redeem).unwrap();
        redeemed.verify().unwrap();
        assert!(redeemed.is_redeemed());
        assert_eq!(redeemed.redemption_kind(), Some(LinkKind::Redeem));
        assert_eq!(redeemed.redeemer(), Some(b.public()));
        assert_eq!(redeemed.owner(), a.public(), "token returns to creator");
        assert_eq!(
            redeemed.transfer(&a, b.public()).unwrap_err(),
            DescriptorError::AlreadyRedeemed
        );
    }

    #[test]
    fn tampered_genesis_fails() {
        let a = kp(1);
        let mut d = SecureDescriptor::create(&a, 0, Timestamp(0));
        d.genesis.addr = 99;
        assert_eq!(
            d.verify().unwrap_err(),
            DescriptorError::BadGenesisSignature
        );
    }

    #[test]
    fn tampered_link_target_fails() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let mut d = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        Arc::make_mut(&mut d.chain)[0].to = c.public();
        assert_eq!(
            d.verify().unwrap_err(),
            DescriptorError::BadLinkSignature { index: 0 }
        );
    }

    #[test]
    fn forged_appended_link_fails() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let d = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        // c forges a link claiming b handed it the descriptor, but signs
        // with its own key.
        let mut forged = d.clone();
        let state = d.state_digest();
        let msg = link_message(&state, &c.public(), LinkKind::Transfer);
        Arc::make_mut(&mut forged.chain).push(ChainLink {
            to: c.public(),
            kind: LinkKind::Transfer,
            sig: c.sign(&msg),
        });
        assert_eq!(
            forged.verify().unwrap_err(),
            DescriptorError::BadLinkSignature { index: 1 }
        );
    }

    #[test]
    fn signature_commits_to_full_history() {
        // Two descriptors identical except for an early link must produce
        // different states, so a later signature cannot be replayed.
        let (a, b, c, d) = (kp(1), kp(2), kp(3), kp(4));
        let base = SecureDescriptor::create(&a, 0, Timestamp(0));
        let via_b = base.transfer(&a, b.public()).unwrap();
        let via_c = base.transfer(&a, c.public()).unwrap();
        assert_ne!(via_b.state_digest(), via_c.state_digest());
        // Splice b's onward link onto the c-branch: must not verify.
        let onward = via_b.transfer(&b, d.public()).unwrap();
        let mut spliced = via_c.clone();
        Arc::make_mut(&mut spliced.chain).push(*onward.chain.last().unwrap());
        assert!(spliced.verify().is_err());
    }

    #[test]
    fn mid_chain_redemption_rejected() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let d = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let redeemed = d.redeem(&b, LinkKind::Redeem).unwrap();
        // Manually splice a transfer after the redemption.
        let mut bad = redeemed.clone();
        let state = redeemed.state_digest();
        let msg = link_message(&state, &c.public(), LinkKind::Transfer);
        Arc::make_mut(&mut bad.chain).push(ChainLink {
            to: c.public(),
            kind: LinkKind::Transfer,
            sig: a.sign(&msg),
        });
        assert_eq!(
            bad.verify().unwrap_err(),
            DescriptorError::RedemptionNotTerminal
        );
    }

    #[test]
    fn redemption_must_target_creator() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let d = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        // Forge a "redemption" pointing at a third party.
        let mut bad = d.clone();
        let state = d.state_digest();
        let msg = link_message(&state, &c.public(), LinkKind::Redeem);
        Arc::make_mut(&mut bad.chain).push(ChainLink {
            to: c.public(),
            kind: LinkKind::Redeem,
            sig: b.sign(&msg),
        });
        assert_eq!(
            bad.verify().unwrap_err(),
            DescriptorError::RedemptionNotToCreator
        );
    }

    #[test]
    fn ids_distinguish_creator_and_time() {
        let (a, b) = (kp(1), kp(2));
        let d1 = SecureDescriptor::create(&a, 0, Timestamp(0));
        let d2 = SecureDescriptor::create(&a, 0, Timestamp(1000));
        let d3 = SecureDescriptor::create(&b, 0, Timestamp(0));
        assert_ne!(d1.id(), d2.id());
        assert_ne!(d1.id(), d3.id());
        assert_eq!(d1.id(), d1.clone().id());
    }

    #[test]
    fn age_in_cycles() {
        let a = kp(1);
        let d = SecureDescriptor::create(&a, 0, Timestamp(3000));
        assert_eq!(d.age_cycles(Timestamp(8500), 1000), 5);
    }

    #[test]
    fn owner_at_indexes_signers() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let d = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap()
            .transfer(&b, c.public())
            .unwrap();
        assert_eq!(d.owner_at(0), a.public());
        assert_eq!(d.owner_at(1), b.public());
    }

    #[test]
    fn verify_with_memoizes_and_reuses_prefixes() {
        let (a, b, c, d) = (kp(1), kp(2), kp(3), kp(4));
        let mut memo = VerifyMemo::new(64);
        let desc = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap()
            .transfer(&b, c.public())
            .unwrap();
        desc.verify_with(&mut memo).unwrap();
        // Exact re-verification is a single memo hit.
        let hits_before = memo.hits();
        desc.verify_with(&mut memo).unwrap();
        assert_eq!(memo.hits(), hits_before + 1);
        // Extension: the shared prefix is found memoized.
        let extended = desc.transfer(&c, d.public()).unwrap();
        let hits_before = memo.hits();
        extended.verify_with(&mut memo).unwrap();
        assert!(memo.hits() > hits_before, "prefix served from the memo");
        // A fork off the same prefix also hits.
        let fork = desc.transfer(&c, kp(5).public()).unwrap();
        let hits_before = memo.hits();
        fork.verify_with(&mut memo).unwrap();
        assert!(memo.hits() > hits_before);
    }

    #[test]
    fn verify_with_matches_verify_on_valid_and_tampered_chains() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let good = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap()
            .transfer(&b, c.public())
            .unwrap();
        let mut memo = VerifyMemo::new(64);
        good.verify_with(&mut memo).unwrap();
        // Tamper with a memoized prefix link; rebuild via `from_parts` so
        // the state digest is consistent, exactly as a wire decode would.
        let mut links = good.chain().to_vec();
        let mut sig = *links[0].sig.as_bytes();
        sig[8] ^= 0x40;
        links[0].sig = Signature::from_bytes(sig);
        let tampered = SecureDescriptor::from_parts(*good.genesis(), links);
        assert_eq!(tampered.verify_with(&mut memo), tampered.verify());
        assert_eq!(
            tampered.verify_with(&mut memo).unwrap_err(),
            DescriptorError::BadLinkSignature { index: 0 }
        );
    }

    #[test]
    fn memoized_redeemed_prefix_rejects_post_redemption_extension() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let redeemed = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap()
            .redeem(&b, LinkKind::Redeem)
            .unwrap();
        let mut memo = VerifyMemo::new(64);
        redeemed.verify_with(&mut memo).unwrap();
        // Splice a transfer after the terminal redemption: every prefix of
        // this chain is memoized, but structure must still reject it.
        let mut links = redeemed.chain().to_vec();
        let msg = link_message(&redeemed.state_digest(), &c.public(), LinkKind::Transfer);
        links.push(ChainLink {
            to: c.public(),
            kind: LinkKind::Transfer,
            sig: a.sign(&msg),
        });
        let bad = SecureDescriptor::from_parts(*redeemed.genesis(), links);
        assert_eq!(
            bad.verify_with(&mut memo).unwrap_err(),
            DescriptorError::RedemptionNotTerminal
        );
        assert_eq!(bad.verify_with(&mut memo), bad.verify());
    }

    #[test]
    fn extend_by_one_verifies_in_constant_lookups() {
        // The extend-by-one hot path must not walk the chain: against a
        // warmed memo it costs exactly two memo lookups (miss on the tip,
        // hit on the immediate prefix) regardless of chain length, and
        // memoizes only the new tip.
        let keys: Vec<Keypair> = (0..8).map(kp).collect();
        for len in [1usize, 4, 16, 64] {
            let mut d = SecureDescriptor::create(&keys[0], 0, Timestamp(0));
            for i in 0..len {
                d = d
                    .transfer(&keys[i % 8], keys[(i + 1) % 8].public())
                    .unwrap();
            }
            let mut memo = VerifyMemo::new(1024);
            d.verify_with(&mut memo).unwrap();
            let extended = d
                .transfer(&keys[len % 8], keys[(len + 1) % 8].public())
                .unwrap();
            let lookups_before = memo.lookups();
            let entries_before = memo.len();
            extended.verify_with(&mut memo).unwrap();
            assert_eq!(
                memo.lookups() - lookups_before,
                2,
                "chain length {len}: tip miss + prefix hit, nothing else"
            );
            assert_eq!(
                memo.len() - entries_before,
                1,
                "chain length {len}: only the new tip is memoized"
            );
        }
    }

    #[test]
    fn prefix_digests_maintained_incrementally() {
        // The cached prefix digests equal what a fresh wire decode
        // computes, at every prefix length and through redemption.
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let d = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap()
            .transfer(&b, c.public())
            .unwrap()
            .redeem(&c, LinkKind::Redeem)
            .unwrap();
        let decoded = SecureDescriptor::from_parts(*d.genesis(), d.chain().to_vec());
        assert_eq!(*d.states, *decoded.states);
        assert_eq!(d.states.len(), d.chain().len() + 1);
        assert_eq!(d.state_digest(), decoded.state_digest());
    }

    #[test]
    fn clones_share_chain_storage() {
        let (a, b) = (kp(1), kp(2));
        let d = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let copy = d.clone();
        assert!(Arc::ptr_eq(&d.chain, &copy.chain));
        assert_eq!(d, copy);
        // Appending leaves the original untouched (copy-on-write).
        let extended = copy.transfer(&b, kp(3).public()).unwrap();
        assert_eq!(d.chain().len(), 1);
        assert_eq!(extended.chain().len(), 2);
    }

    /// Oracle: batched verification must equal one-by-one sequential
    /// `verify_with` — same verdicts in order, same final memo contents.
    fn assert_batch_matches_sequential(descs: &[&SecureDescriptor], capacity: usize) {
        let mut seq_memo = VerifyMemo::new(capacity);
        let expected: Vec<_> = descs.iter().map(|d| d.verify_with(&mut seq_memo)).collect();
        let mut batch_memo = VerifyMemo::new(capacity);
        let got = SecureDescriptor::verify_batch_with(descs, &mut batch_memo);
        assert_eq!(got, expected, "verdicts diverge from sequential");
        assert_eq!(
            batch_memo.len(),
            seq_memo.len(),
            "memo sizes diverge from sequential"
        );
        // Same contents: every digest the sequential path memoized must
        // hit in the batched memo (and sizes already match).
        for d in descs {
            for i in 0..=d.chain().len() {
                assert_eq!(
                    batch_memo.contains(&d.states[i]),
                    seq_memo.contains(&d.states[i]),
                    "memo contents diverge at prefix {i}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_sequential_on_valid_batches() {
        let keys: Vec<Keypair> = (0..8).map(kp).collect();
        let mut descs = Vec::new();
        for len in 0..6usize {
            let mut d = SecureDescriptor::create(&keys[len % 8], 0, Timestamp(len as u64));
            for i in 0..len {
                d = d
                    .transfer(&keys[(len + i) % 8], keys[(len + i + 1) % 8].public())
                    .unwrap();
            }
            descs.push(d);
        }
        let refs: Vec<&SecureDescriptor> = descs.iter().collect();
        assert_batch_matches_sequential(&refs, 64);
        // And with a tiny memo, exercising FIFO eviction mid-batch.
        assert_batch_matches_sequential(&refs, 3);
        // And with memoization disabled entirely.
        assert_batch_matches_sequential(&refs, 0);
    }

    #[test]
    fn batch_matches_sequential_with_forgeries_at_every_position() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let mut descs = Vec::new();
        for v in 0..4u8 {
            let d = SecureDescriptor::create(&a, Addr::from(v), Timestamp(v as u64))
                .transfer(&a, b.public())
                .unwrap()
                .transfer(&b, c.public())
                .unwrap();
            descs.push(d);
        }
        // For each victim descriptor and each tamper point (genesis or a
        // link), the batch must blame exactly the descriptor and check the
        // sequential path blames, and admit every honest one.
        for victim in 0..descs.len() {
            for tamper_link in [None, Some(0), Some(1)] {
                let mut batch = descs.clone();
                match tamper_link {
                    None => {
                        let mut g = *batch[victim].genesis();
                        g.addr ^= 1;
                        batch[victim] =
                            SecureDescriptor::from_parts(g, batch[victim].chain().to_vec());
                    }
                    Some(li) => {
                        let mut links = batch[victim].chain().to_vec();
                        let mut sig = *links[li].sig.as_bytes();
                        sig[8] ^= 0x40;
                        links[li].sig = Signature::from_bytes(sig);
                        batch[victim] =
                            SecureDescriptor::from_parts(*batch[victim].genesis(), links);
                    }
                }
                let refs: Vec<&SecureDescriptor> = batch.iter().collect();
                assert_batch_matches_sequential(&refs, 64);
            }
        }
    }

    #[test]
    fn batch_matches_sequential_on_structural_errors() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let redeemed = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap()
            .redeem(&b, LinkKind::Redeem)
            .unwrap();
        // Post-redemption extension (RedemptionNotTerminal).
        let mut links = redeemed.chain().to_vec();
        let msg = link_message(&redeemed.state_digest(), &c.public(), LinkKind::Transfer);
        links.push(ChainLink {
            to: c.public(),
            kind: LinkKind::Transfer,
            sig: a.sign(&msg),
        });
        let not_terminal = SecureDescriptor::from_parts(*redeemed.genesis(), links);
        // Redemption at a third party (RedemptionNotToCreator).
        let base = SecureDescriptor::create(&a, 1, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let mut links = base.chain().to_vec();
        let msg = link_message(&base.state_digest(), &c.public(), LinkKind::Redeem);
        links.push(ChainLink {
            to: c.public(),
            kind: LinkKind::Redeem,
            sig: b.sign(&msg),
        });
        let wrong_target = SecureDescriptor::from_parts(*base.genesis(), links);
        let good = SecureDescriptor::create(&c, 2, Timestamp(0));
        let refs: Vec<&SecureDescriptor> = vec![&not_terminal, &good, &wrong_target, &redeemed];
        assert_batch_matches_sequential(&refs, 64);
    }

    #[test]
    fn batch_matches_sequential_on_duplicates_and_shared_prefixes() {
        let keys: Vec<Keypair> = (0..8).map(kp).collect();
        let base = SecureDescriptor::create(&keys[0], 0, Timestamp(0))
            .transfer(&keys[0], keys[1].public())
            .unwrap();
        let extended = base.transfer(&keys[1], keys[2].public()).unwrap();
        let fork = base.transfer(&keys[1], keys[3].public()).unwrap();
        // Duplicates, a prefix after its extension, and two forks — the
        // interleaving cases where sequential memoization lets later
        // descriptors skip checks the batch re-collects.
        let refs: Vec<&SecureDescriptor> = vec![&extended, &base, &extended, &fork, &base];
        assert_batch_matches_sequential(&refs, 64);
        // Same batch but with the shared prefix carrying a forged link:
        // every chain built on it must be blamed identically.
        let mut links = extended.chain().to_vec();
        let mut sig = *links[0].sig.as_bytes();
        sig[3] ^= 2;
        links[0].sig = Signature::from_bytes(sig);
        let bad_ext = SecureDescriptor::from_parts(*extended.genesis(), links);
        let refs: Vec<&SecureDescriptor> = vec![&bad_ext, &base, &bad_ext, &fork];
        assert_batch_matches_sequential(&refs, 64);
    }

    #[test]
    fn batch_against_warm_memo_skips_memoized_prefixes() {
        let keys: Vec<Keypair> = (0..8).map(kp).collect();
        let mut d = SecureDescriptor::create(&keys[0], 0, Timestamp(0));
        for i in 0..16 {
            d = d
                .transfer(&keys[i % 8], keys[(i + 1) % 8].public())
                .unwrap();
        }
        let mut memo = VerifyMemo::new(1024);
        d.verify_with(&mut memo).unwrap();
        let extended = d.transfer(&keys[16 % 8], keys[17 % 8].public()).unwrap();
        // Exact hit plus extend-by-one: two lookups for the exact copy,
        // tip-miss + prefix-hit for the extension — no chain walk.
        let lookups_before = memo.lookups();
        let results = SecureDescriptor::verify_batch_with(&[&d, &extended], &mut memo);
        assert_eq!(results, vec![Ok(()), Ok(())]);
        assert_eq!(
            memo.lookups() - lookups_before,
            3,
            "exact hit (1) + tip miss and prefix hit (2)"
        );
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut memo = VerifyMemo::new(8);
        assert!(SecureDescriptor::verify_batch_with(&[], &mut memo).is_empty());
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            DescriptorError::BadGenesisSignature,
            DescriptorError::BadLinkSignature { index: 3 },
            DescriptorError::RedemptionNotTerminal,
            DescriptorError::RedemptionNotToCreator,
            DescriptorError::TransferToSelf,
            DescriptorError::NotOwner,
            DescriptorError::AlreadyRedeemed,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
