//! Violation proofs: transferable, independently verifiable evidence of
//! protocol misconduct (§IV-B, §IV-C of the paper).
//!
//! A proof is a pair of signed descriptors that cannot legally coexist.
//! Because both carry the violator's own signatures, "presenting the two
//! conflicting descriptors to any third node can prove to it the
//! offender's violation and its identity" — validation requires no trust
//! in the accuser.

use crate::chain::{compare_chains, ChainRelation, CompareError};
use crate::descriptor::{DescriptorError, SecureDescriptor};
use crate::memo::VerifyMemo;
use sc_crypto::{sha256_concat, Digest, NodeId};

/// The two classes of provable violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProofKind {
    /// The culprit transferred/redeemed the same descriptor twice along
    /// incompatible histories.
    Cloning,
    /// The culprit created two distinct descriptors closer together than
    /// the gossip period.
    Frequency,
}

/// Why a claimed proof failed validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// One of the two descriptors does not verify.
    BadDescriptor(DescriptorError),
    /// The descriptors do not conflict in the claimed way.
    NoConflict,
    /// The divergence is the sanctioned transfer/ns-redemption pair.
    SanctionedNsException,
    /// The two descriptors were not created by the same node.
    DifferentCreators,
}

impl core::fmt::Display for ProofError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProofError::BadDescriptor(e) => write!(f, "invalid descriptor in proof: {e}"),
            ProofError::NoConflict => write!(f, "descriptors do not conflict"),
            ProofError::SanctionedNsException => {
                write!(f, "divergence is a sanctioned non-swappable redemption")
            }
            ProofError::DifferentCreators => write!(f, "descriptors have different creators"),
        }
    }
}

impl std::error::Error for ProofError {}

impl From<DescriptorError> for ProofError {
    fn from(e: DescriptorError) -> Self {
        ProofError::BadDescriptor(e)
    }
}

/// Indisputable evidence of a protocol violation: two conflicting signed
/// descriptors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViolationProof {
    kind: ProofKind,
    culprit: NodeId,
    left: SecureDescriptor,
    right: SecureDescriptor,
}

impl ViolationProof {
    /// Builds a cloning proof from two copies with divergent chains.
    ///
    /// # Errors
    ///
    /// Fails if the pair does not actually prove a cloning violation
    /// (wrong ids, compatible chains, bad signatures, or the sanctioned
    /// non-swappable exception).
    pub fn cloning(left: SecureDescriptor, right: SecureDescriptor) -> Result<Self, ProofError> {
        let culprit = validate_cloning(&left, &right, &mut None)?;
        Ok(ViolationProof {
            kind: ProofKind::Cloning,
            culprit,
            left,
            right,
        })
    }

    /// Like [`ViolationProof::cloning`], but verifies the two descriptors
    /// through a local verified-prefix memo: the chains of a cloning pair
    /// share everything up to the fork, so with a warm memo only the
    /// divergent suffixes pay signature checks. Sound for local proof
    /// *construction* only — third parties re-validate from scratch via
    /// [`ViolationProof::validate`], which never consults a memo.
    pub fn cloning_with(
        left: SecureDescriptor,
        right: SecureDescriptor,
        memo: &mut VerifyMemo,
    ) -> Result<Self, ProofError> {
        let culprit = validate_cloning(&left, &right, &mut Some(memo))?;
        Ok(ViolationProof {
            kind: ProofKind::Cloning,
            culprit,
            left,
            right,
        })
    }

    /// Builds a frequency proof from two distinct descriptors created by
    /// the same node within one gossip period (`period_ticks`).
    ///
    /// # Errors
    ///
    /// Fails if the pair does not prove a frequency violation.
    pub fn frequency(
        left: SecureDescriptor,
        right: SecureDescriptor,
        period_ticks: u64,
    ) -> Result<Self, ProofError> {
        let culprit = validate_frequency(&left, &right, period_ticks, &mut None)?;
        Ok(ViolationProof {
            kind: ProofKind::Frequency,
            culprit,
            left,
            right,
        })
    }

    /// Memo-assisted variant of [`ViolationProof::frequency`] for local
    /// proof construction (see [`ViolationProof::cloning_with`]).
    pub fn frequency_with(
        left: SecureDescriptor,
        right: SecureDescriptor,
        period_ticks: u64,
        memo: &mut VerifyMemo,
    ) -> Result<Self, ProofError> {
        let culprit = validate_frequency(&left, &right, period_ticks, &mut Some(memo))?;
        Ok(ViolationProof {
            kind: ProofKind::Frequency,
            culprit,
            left,
            right,
        })
    }

    /// The violation class.
    pub fn kind(&self) -> ProofKind {
        self.kind
    }

    /// The provably guilty node.
    pub fn culprit(&self) -> NodeId {
        self.culprit
    }

    /// The two conflicting descriptors.
    pub fn evidence(&self) -> (&SecureDescriptor, &SecureDescriptor) {
        (&self.left, &self.right)
    }

    /// Re-validates the proof from scratch, as a third party receiving it
    /// over the network must (§IV-C: "legitimate nodes should check that
    /// each received proof has valid content"). Deliberately bypasses any
    /// verified-prefix memo so proofs remain self-certifying.
    ///
    /// # Errors
    ///
    /// Returns the reason the evidence fails to prove the claimed
    /// violation.
    pub fn validate(&self, period_ticks: u64) -> Result<NodeId, ProofError> {
        let culprit = match self.kind {
            ProofKind::Cloning => validate_cloning(&self.left, &self.right, &mut None)?,
            ProofKind::Frequency => {
                validate_frequency(&self.left, &self.right, period_ticks, &mut None)?
            }
        };
        if culprit != self.culprit {
            return Err(ProofError::NoConflict);
        }
        Ok(culprit)
    }

    /// A digest identifying this proof's evidence (used for de-duplication
    /// during flooding).
    pub fn digest(&self) -> Digest {
        sha256_concat(&[
            b"sc/proof",
            &[match self.kind {
                ProofKind::Cloning => 0u8,
                ProofKind::Frequency => 1u8,
            }],
            &self.left.state_digest(),
            &self.right.state_digest(),
        ])
    }
}

/// Verifies one evidence descriptor, through the memo when one is
/// supplied (local construction) and fully otherwise (third-party
/// re-validation).
fn verify_evidence(
    d: &SecureDescriptor,
    memo: &mut Option<&mut VerifyMemo>,
) -> Result<(), DescriptorError> {
    match memo {
        Some(m) => d.verify_with(m),
        None => d.verify(),
    }
}

fn validate_cloning(
    left: &SecureDescriptor,
    right: &SecureDescriptor,
    memo: &mut Option<&mut VerifyMemo>,
) -> Result<NodeId, ProofError> {
    verify_evidence(left, memo)?;
    verify_evidence(right, memo)?;
    match compare_chains(left, right) {
        Ok(ChainRelation::Divergent {
            signer,
            ns_exception: false,
            ..
        }) => Ok(signer),
        Ok(ChainRelation::Divergent {
            ns_exception: true, ..
        }) => Err(ProofError::SanctionedNsException),
        Ok(_) => Err(ProofError::NoConflict),
        Err(CompareError::DifferentIds) => Err(ProofError::NoConflict),
        // Same id, different genesis: that *is* a conflict, but of the
        // frequency class (two creations with one timestamp).
        Err(CompareError::GenesisMismatch) => Err(ProofError::NoConflict),
    }
}

fn validate_frequency(
    left: &SecureDescriptor,
    right: &SecureDescriptor,
    period_ticks: u64,
    memo: &mut Option<&mut VerifyMemo>,
) -> Result<NodeId, ProofError> {
    verify_evidence(left, memo)?;
    verify_evidence(right, memo)?;
    if left.creator() != right.creator() {
        return Err(ProofError::DifferentCreators);
    }
    // The evidence must show two *distinct* creations. Same timestamp is
    // allowed only when the genesis records differ (two tokens minted on
    // one timestamp); otherwise it is the same descriptor.
    let distinct = left.genesis() != right.genesis();
    if !distinct {
        return Err(ProofError::NoConflict);
    }
    let dt = left.created_at().distance(right.created_at());
    if dt >= period_ticks {
        return Err(ProofError::NoConflict);
    }
    Ok(left.creator())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::LinkKind;
    use crate::time::Timestamp;
    use sc_crypto::{Keypair, Scheme};

    const PERIOD: u64 = 1000;

    fn kp(tag: u8) -> Keypair {
        Keypair::from_seed(Scheme::Schnorr61, [tag; 32])
    }

    fn cloning_pair() -> (SecureDescriptor, SecureDescriptor, NodeId) {
        let (a, b, c, d) = (kp(1), kp(2), kp(3), kp(4));
        let ab = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let left = ab.transfer(&b, c.public()).unwrap();
        let right = ab.transfer(&b, d.public()).unwrap();
        (left, right, b.public())
    }

    #[test]
    fn cloning_proof_roundtrip() {
        let (left, right, culprit) = cloning_pair();
        let proof = ViolationProof::cloning(left, right).unwrap();
        assert_eq!(proof.kind(), ProofKind::Cloning);
        assert_eq!(proof.culprit(), culprit);
        assert_eq!(proof.validate(PERIOD).unwrap(), culprit);
    }

    #[test]
    fn cloning_rejects_compatible_chains() {
        let (a, b) = (kp(1), kp(2));
        let d = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let longer = d.transfer(&b, kp(3).public()).unwrap();
        assert_eq!(
            ViolationProof::cloning(d, longer).unwrap_err(),
            ProofError::NoConflict
        );
    }

    #[test]
    fn cloning_rejects_ns_exception() {
        let (a, b) = (kp(1), kp(2));
        let d = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let circulating = d.transfer(&b, kp(3).public()).unwrap();
        let ns = d.redeem(&b, LinkKind::RedeemNonSwappable).unwrap();
        assert_eq!(
            ViolationProof::cloning(circulating, ns).unwrap_err(),
            ProofError::SanctionedNsException
        );
    }

    #[test]
    fn transfer_then_regular_redeem_is_provable() {
        let (a, b) = (kp(1), kp(2));
        let d = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let circulating = d.transfer(&b, kp(3).public()).unwrap();
        let spent = d.redeem(&b, LinkKind::Redeem).unwrap();
        let proof = ViolationProof::cloning(circulating, spent).unwrap();
        assert_eq!(proof.culprit(), b.public());
    }

    #[test]
    fn frequency_proof_roundtrip() {
        let a = kp(1);
        let d1 = SecureDescriptor::create(&a, 0, Timestamp(5000));
        let d2 = SecureDescriptor::create(&a, 0, Timestamp(5400));
        let proof = ViolationProof::frequency(d1, d2, PERIOD).unwrap();
        assert_eq!(proof.kind(), ProofKind::Frequency);
        assert_eq!(proof.culprit(), a.public());
        assert_eq!(proof.validate(PERIOD).unwrap(), a.public());
    }

    #[test]
    fn frequency_requires_sub_period_spacing() {
        let a = kp(1);
        let d1 = SecureDescriptor::create(&a, 0, Timestamp(5000));
        let d2 = SecureDescriptor::create(&a, 0, Timestamp(6000));
        assert_eq!(
            ViolationProof::frequency(d1, d2, PERIOD).unwrap_err(),
            ProofError::NoConflict,
            "exactly one period apart is legal"
        );
    }

    #[test]
    fn frequency_same_timestamp_different_genesis() {
        let a = kp(1);
        let d1 = SecureDescriptor::create(&a, 0, Timestamp(5000));
        let d2 = SecureDescriptor::create(&a, 9, Timestamp(5000));
        let proof = ViolationProof::frequency(d1, d2, PERIOD).unwrap();
        assert_eq!(proof.culprit(), a.public());
    }

    #[test]
    fn frequency_rejects_identical_descriptor() {
        let a = kp(1);
        let d = SecureDescriptor::create(&a, 0, Timestamp(5000));
        assert_eq!(
            ViolationProof::frequency(d.clone(), d, PERIOD).unwrap_err(),
            ProofError::NoConflict
        );
    }

    #[test]
    fn frequency_rejects_different_creators() {
        let d1 = SecureDescriptor::create(&kp(1), 0, Timestamp(5000));
        let d2 = SecureDescriptor::create(&kp(2), 0, Timestamp(5100));
        assert_eq!(
            ViolationProof::frequency(d1, d2, PERIOD).unwrap_err(),
            ProofError::DifferentCreators
        );
    }

    #[test]
    fn memoized_construction_matches_full_construction() {
        use crate::memo::VerifyMemo;
        let (left, right, culprit) = cloning_pair();
        let mut memo = VerifyMemo::new(64);
        // Warm the memo with one side; the other shares its prefix.
        left.verify_with(&mut memo).unwrap();
        let hits_before = memo.hits();
        let fast = ViolationProof::cloning_with(left.clone(), right.clone(), &mut memo).unwrap();
        assert!(memo.hits() > hits_before, "shared prefix served from memo");
        let full = ViolationProof::cloning(left, right).unwrap();
        assert_eq!(fast, full);
        assert_eq!(fast.validate(PERIOD).unwrap(), culprit);

        let a = kp(1);
        let d1 = SecureDescriptor::create(&a, 0, Timestamp(5000));
        let d2 = SecureDescriptor::create(&a, 0, Timestamp(5400));
        let fast = ViolationProof::frequency_with(d1.clone(), d2.clone(), PERIOD, &mut memo);
        let full = ViolationProof::frequency(d1, d2, PERIOD);
        assert_eq!(fast, full);
    }

    #[test]
    fn memoized_construction_rejects_forged_evidence() {
        use crate::descriptor::ChainLink;
        use crate::memo::VerifyMemo;
        use sc_crypto::Signature;
        let (left, right, _) = cloning_pair();
        let mut memo = VerifyMemo::new(64);
        left.verify_with(&mut memo).unwrap();
        // Corrupt the non-memoized side's last link signature.
        let mut links: Vec<ChainLink> = right.chain().to_vec();
        let mut sig = *links.last().unwrap().sig.as_bytes();
        sig[9] ^= 0x01;
        links.last_mut().unwrap().sig = Signature::from_bytes(sig);
        let forged = SecureDescriptor::from_parts(*right.genesis(), links);
        assert!(matches!(
            ViolationProof::cloning_with(left, forged, &mut memo).unwrap_err(),
            ProofError::BadDescriptor(_)
        ));
    }

    #[test]
    fn tampered_evidence_fails_validation() {
        let (left, right, _) = cloning_pair();
        let proof = ViolationProof::cloning(left, right.clone()).unwrap();
        // Forge a proof claiming a different culprit.
        let mut forged = proof.clone();
        forged.culprit = kp(9).public();
        assert!(forged.validate(PERIOD).is_err());
    }

    #[test]
    fn digests_distinguish_proofs() {
        let (left, right, _) = cloning_pair();
        let p1 = ViolationProof::cloning(left.clone(), right.clone()).unwrap();
        let p2 = ViolationProof::cloning(right, left).unwrap();
        assert_ne!(p1.digest(), p2.digest());
        assert_eq!(p1.digest(), p1.clone().digest());
    }
}
