//! The SecureCyclon protocol node (§IV–§V of the paper).
//!
//! Once per cycle a correct node:
//!
//! 1. prunes its caches and back-fills empty view slots with non-swappable
//!    copies of recently transferred descriptors (§V-A);
//! 2. removes the oldest descriptor from its view and **redeems** it —
//!    sends it back to its creator as the certificate permitting a gossip
//!    exchange (§IV-A);
//! 3. runs the exchange: its fresh self-descriptor goes first, then, in
//!    tit-for-tat mode, one ownership transfer per round trip (§V-B);
//! 4. runs the frequency and ownership checks (§IV-B) on **every**
//!    descriptor it sees — owned transfers and samples alike; a conflict
//!    yields a [`ViolationProof`], the culprit is blacklisted, its
//!    descriptors purged, and the proof flooded one hop per cycle (§IV-C).
//!
//! As the passive party it validates redemption certificates (including
//! the §V-A non-swappable restrictions), mirrors the exchange, and ships
//! samples of its view plus its redemption cache (§V-C).

use crate::blacklist::Blacklist;
use crate::checks::{Observation, SampleCache};
use crate::config::SecureConfig;
use crate::descriptor::{DescriptorId, LinkKind, SecureDescriptor};
use crate::memo::VerifyMemo;
use crate::msg::{
    AcceptBody, JoinGrantBody, JoinPingBody, RequestBody, RoundBody, RoundReplyBody, SecureMsg,
};
use crate::proof::{ProofKind, ViolationProof};
use crate::redemption::RedemptionCache;
use crate::storage::{PersistentState, StateBackend};
use crate::time::Timestamp;
use crate::view::SecureView;
use crate::wire::{self, WireLimits};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sc_crypto::{FxHashMap, FxHashSet};
use sc_crypto::{Keypair, NodeId};
use sc_sim::{Addr, CycleCtx, NodeCtx, RpcOutcome, SimNode};
use std::collections::VecDeque;

/// Per-node protocol counters, exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SecureStats {
    /// Exchanges initiated.
    pub initiated: u64,
    /// Initiated exchanges that received an acceptance.
    pub completed: u64,
    /// Initiated exchanges that timed out or were refused.
    pub timeouts: u64,
    /// Exchanges answered as the passive party.
    pub answered: u64,
    /// Requests refused (invalid certificate, replay, NS limits, …).
    pub refused: u64,
    /// Cycles skipped because the view was empty.
    pub idle_cycles: u64,
    /// Ownership transfers sent (including fresh self-descriptors).
    pub transfers_sent: u64,
    /// Ownership transfers accepted into the view pipeline.
    pub transfers_received: u64,
    /// Transfers rejected by validation.
    pub transfers_rejected: u64,
    /// Owned descriptors dropped because their creator was already in the
    /// view or the view was full.
    pub dup_drops: u64,
    /// Samples processed through the §IV-B checks.
    pub samples_processed: u64,
    /// Descriptors that failed signature/structure verification.
    pub invalid_descriptors: u64,
    /// Cloning proofs generated locally.
    pub proofs_generated_cloning: u64,
    /// Frequency proofs generated locally.
    pub proofs_generated_frequency: u64,
    /// Valid, novel proofs learned from peers.
    pub proofs_received: u64,
    /// Proofs discarded as duplicates (culprit already blacklisted).
    pub proofs_duplicate: u64,
    /// Proofs that failed validation.
    pub proofs_invalid: u64,
    /// Empty view slots repaired with non-swappable copies.
    pub ns_backfills: u64,
    /// Non-swappable redemptions accepted as creator.
    pub ns_redemptions_accepted: u64,
    /// Estimated bytes sent (paper's §VI-A size model).
    pub bytes_sent: u64,
    /// Estimated bytes received (paper's §VI-A size model).
    pub bytes_received: u64,
    /// §V-A rejoin pings sent while starved.
    pub rejoin_pings: u64,
    /// §V-A rejoin sponsorships granted to starved peers.
    pub rejoin_grants: u64,
}

/// A locally *generated* (not merely received) violation proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProofRecord {
    /// Cycle of discovery.
    pub cycle: u64,
    /// Violation class.
    pub kind: ProofKind,
    /// The node proven guilty.
    pub culprit: NodeId,
    /// For cloning proofs, the identity of the cloned descriptor.
    pub descriptor: Option<DescriptorId>,
}

#[derive(Clone, Copy, Debug)]
struct Session {
    partner: NodeId,
    remaining: usize,
    cycle: u64,
}

/// A correct SecureCyclon node.
pub struct SecureCyclonNode {
    keypair: Keypair,
    id: NodeId,
    addr: Addr,
    cfg: SecureConfig,
    /// Stable per-node tick offset used in descriptor timestamps.
    phase: u64,
    view: SecureView,
    samples: SampleCache,
    /// Bounded memo of verified chain prefixes: every descriptor the node
    /// relies on is verified incrementally against it, so intake costs
    /// amortized O(links appended since last sighting) instead of
    /// O(chain) signature checks per message.
    verify_memo: VerifyMemo,
    redemptions: RedemptionCache,
    /// Pre-transfer copies of descriptors lost in failed exchanges — the
    /// first-priority candidates for non-swappable back-fill (§V-A). In a
    /// healthy network this stays empty, matching the paper's Figure 6
    /// baseline of ≈0% non-swappable links before the attack begins.
    pending_ns: VecDeque<SecureDescriptor>,
    /// Pre-transfer copies of descriptors transferred away in successful
    /// exchanges: the last-resort NS back-fill pool, for gaps whose own
    /// exchange shipped nothing reusable (e.g. an unreachable partner,
    /// §V-A case 1). Dormant while no gaps exist.
    transfer_history: VecDeque<SecureDescriptor>,
    blacklist: Blacklist,
    /// Owned descriptors waiting for a view slot (their creator was already
    /// in the view, or the view was full, when they arrived). Kept so that
    /// links are not destroyed by local placement conflicts.
    reserve: VecDeque<SecureDescriptor>,
    /// Our descriptors redeemed with a *regular* redemption (replay
    /// refusal), with the cycle the redemption was accepted.
    redeemed_regular: FxHashMap<DescriptorId, u64>,
    /// State digests this node has already signed a continuation for
    /// (transfer or redemption), with the signing cycle. Intake refuses a
    /// byte-identical copy of a spent state: with deterministic signatures
    /// an adversary can re-deliver the exact state a victim already
    /// continued, and a second innocent continuation would hand observers
    /// a valid §IV-B cloning proof *against the honest victim*. Pruned on
    /// the sample-retention horizon, like the caches the proofs feed on.
    spent_states: FxHashMap<sc_crypto::Digest, u64>,
    /// Descriptors of ours ever redeemed non-swappably (§V-A rule 1).
    ns_redeemed_ids: FxHashSet<DescriptorId>,
    /// (cycle, count) of NS redemptions accepted this cycle (§V-A rule 2).
    ns_accepted: (u64, u32),
    /// Open tit-for-tat exchanges, keyed by initiator address.
    sessions: FxHashMap<Addr, Session>,
    /// Cycle in which the last NS back-fill was performed (creation of NS
    /// copies is rate-limited to one per cycle, mirroring §V-A rule 2 on
    /// the acceptance side).
    last_ns_backfill: Option<u64>,
    /// Latest cycle whose fresh-descriptor budget was spent — by
    /// initiating an exchange *or* by sponsoring a joiner. Creating
    /// another descriptor inside that cycle would hand observers a valid
    /// §IV-B frequency proof, so every creation site checks this marker,
    /// and a durable backend records it *before* the descriptor leaves
    /// (the crash-restart bugfix: an amnesiac restart must not re-mint).
    emitted_cycle: Option<u64>,
    /// Durable home for the incriminating-if-lost state. `None` (the
    /// default) keeps the node memory-only and cost-free for simulation.
    backend: Option<Box<dyn StateBackend>>,
    /// Whether this node has ever held a view entry — distinguishes a
    /// *starved* node (was connected, drained to empty; §V-A rejoin fires)
    /// from one still awaiting its initial bootstrap.
    was_connected: bool,
    /// Cycle of the last rejoin ping volley (retry throttle).
    last_rejoin_ping: Option<u64>,
    /// Cycle of the last sponsorship granted to a starved peer's ping —
    /// grants are throttled so ping floods cannot starve this node's own
    /// exchange budget.
    last_join_grant: Option<u64>,
    /// Proofs awaiting flood dispatch.
    outbox: Vec<ViolationProof>,
    rng: SmallRng,
    stats: SecureStats,
    proof_log: Vec<ProofRecord>,
}

impl core::fmt::Debug for SecureCyclonNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SecureCyclonNode")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .field("view_len", &self.view.len())
            .field("blacklisted", &self.blacklist.len())
            .finish()
    }
}

impl SecureCyclonNode {
    /// Creates a node with an empty view.
    ///
    /// `phase` is the node's stable timestamp offset within a cycle and
    /// must be < `cfg.ticks_per_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `phase` out of range.
    pub fn new(
        keypair: Keypair,
        addr: Addr,
        cfg: SecureConfig,
        rng_seed: [u8; 32],
        phase: u64,
    ) -> Self {
        let cfg = cfg.validated();
        assert!(
            phase < cfg.ticks_per_cycle,
            "phase must be < ticks_per_cycle"
        );
        let id = keypair.public();
        SecureCyclonNode {
            keypair,
            id,
            addr,
            phase,
            view: SecureView::new(id, cfg.view_len),
            samples: SampleCache::new(cfg.sample_retention_cycles),
            verify_memo: VerifyMemo::new(cfg.verify_memo_capacity),
            redemptions: RedemptionCache::bounded(
                cfg.redemption_cache_cycles,
                cfg.redemption_cache_max_entries,
            ),
            pending_ns: VecDeque::with_capacity(cfg.transfer_history_len),
            transfer_history: VecDeque::with_capacity(cfg.transfer_history_len),
            blacklist: Blacklist::new(),
            reserve: VecDeque::new(),
            redeemed_regular: FxHashMap::default(),
            spent_states: FxHashMap::default(),
            ns_redeemed_ids: FxHashSet::default(),
            ns_accepted: (0, 0),
            sessions: FxHashMap::default(),
            last_ns_backfill: None,
            emitted_cycle: None,
            backend: None,
            was_connected: false,
            last_rejoin_ping: None,
            last_join_grant: None,
            outbox: Vec::new(),
            rng: SmallRng::from_seed(rng_seed),
            stats: SecureStats::default(),
            proof_log: Vec::new(),
            cfg,
        }
    }

    /// Creates a node wired to a durable [`StateBackend`], recovering any
    /// state the backend holds from a previous life.
    ///
    /// Recovery order matters: monotone knowledge first (blacklist
    /// proofs, spent-state digests, replay guards), then owned tokens —
    /// each re-verified and refused if its state digest was already
    /// signed away. That filter is a second self-incrimination guard: a
    /// stale checkpoint can contain a descriptor whose ownership left in
    /// a later, unpersisted exchange, and re-spending it after restart
    /// would be self-made §IV-B *cloning* evidence. The recovered
    /// emission marker (see [`SecureCyclonNode::last_emission`]) is the
    /// frequency half of the same guarantee.
    ///
    /// # Errors
    ///
    /// I/O failures from [`StateBackend::load`]. Corrupt or torn log
    /// tails are not errors — the backend recovers the valid prefix.
    ///
    /// # Panics
    ///
    /// As [`SecureCyclonNode::new`].
    pub fn with_backend(
        keypair: Keypair,
        addr: Addr,
        cfg: SecureConfig,
        rng_seed: [u8; 32],
        phase: u64,
        mut backend: Box<dyn StateBackend>,
    ) -> std::io::Result<Self> {
        let mut node = Self::new(keypair, addr, cfg, rng_seed, phase);
        if let Some(state) = backend.load(node.cfg.ticks_per_cycle, &WireLimits::DEFAULT)? {
            node.restore(state);
        }
        node.backend = Some(backend);
        Ok(node)
    }

    /// Rebuilds protocol state from a recovered checkpoint fold.
    fn restore(&mut self, state: PersistentState) {
        self.emitted_cycle = state.emitted_cycle;
        for (learned, proof) in state.proofs {
            if proof.validate(self.cfg.ticks_per_cycle).is_ok() {
                self.blacklist.register(proof, learned);
            }
        }
        for (digest, cycle) in state.spent {
            self.spent_states.insert(digest, cycle);
        }
        for (id, cycle) in state.redeemed_regular {
            self.redeemed_regular.insert(id, cycle);
        }
        for id in state.ns_redeemed {
            self.ns_redeemed_ids.insert(id);
        }
        self.ns_accepted = state.ns_accepted;
        for (desc, ns) in state.view {
            if !self.recoverable(&desc) {
                continue;
            }
            if let Some(d) = self.view.try_insert(desc, ns) {
                self.reserve.push_back(d);
            }
        }
        for desc in state.reserve {
            if !self.recoverable(&desc) {
                continue;
            }
            if self.reserve.len() < self.cfg.swap_len * 2 {
                self.reserve.push_back(desc);
            }
        }
        for (cycle, desc) in state.redemptions {
            if !self.blacklist.contains(&desc.creator()) && desc.verify().is_ok() {
                self.redemptions.push(desc, cycle);
            }
        }
        if !self.view.is_empty() {
            self.was_connected = true;
        }
    }

    /// Whether a persisted owned descriptor may safely re-enter the view
    /// pipeline after a restart.
    fn recoverable(&self, desc: &SecureDescriptor) -> bool {
        desc.owner() == self.id
            && desc.creator() != self.id
            && !desc.is_redeemed()
            && !self.blacklist.contains(&desc.creator())
            && !self.spent_states.contains_key(&desc.state_digest())
            && desc.verify().is_ok()
    }

    /// Detaches the backend (the simulator's crash-restart path: the
    /// "disk" survives into the replacement node object).
    pub fn take_backend(&mut self) -> Option<Box<dyn StateBackend>> {
        self.backend.take()
    }

    /// Whether a durable backend is attached.
    pub fn has_backend(&self) -> bool {
        self.backend.is_some()
    }

    /// Latest cycle whose fresh-descriptor budget is spent (recovered
    /// across restarts when a backend is attached).
    pub fn last_emission(&self) -> Option<u64> {
        self.emitted_cycle
    }

    /// Whether minting a fresh descriptor in `cycle` is frequency-legal.
    fn may_emit(&self, cycle: u64) -> bool {
        match self.emitted_cycle {
            Some(spent) => spent < cycle,
            None => true,
        }
    }

    /// Marks `cycle`'s budget spent, durably *before* the caller lets the
    /// descriptor leave. A backend write failure is deliberately
    /// swallowed: the in-memory marker still protects this life, only
    /// crash-recovery fidelity degrades.
    fn note_emission(&mut self, cycle: u64) {
        self.emitted_cycle = Some(cycle);
        if let Some(b) = self.backend.as_mut() {
            let _ = b.record_emission(cycle);
        }
    }

    /// Records a spent state digest, durably when a backend is attached
    /// (re-signing a restored copy would be cloning evidence).
    fn note_spent(&mut self, digest: sc_crypto::Digest, cycle: u64) {
        self.spent_states.insert(digest, cycle);
        if let Some(b) = self.backend.as_mut() {
            let _ = b.record_spent(&digest, cycle);
        }
    }

    /// Snapshots the durable slice of the node's state.
    fn persistent_state(&self, cycle: u64) -> PersistentState {
        PersistentState {
            cycle,
            emitted_cycle: self.emitted_cycle,
            view: self
                .view
                .iter()
                .map(|e| (e.desc.clone(), e.non_swappable))
                .collect(),
            reserve: self.reserve.iter().cloned().collect(),
            redemptions: self
                .redemptions
                .entries()
                .map(|(c, d)| (c, d.clone()))
                .collect(),
            proofs: self
                .blacklist
                .proofs()
                .iter()
                .map(|p| (p.learned_cycle, p.proof.clone()))
                .collect(),
            spent: self.spent_states.iter().map(|(d, c)| (*d, *c)).collect(),
            redeemed_regular: self
                .redeemed_regular
                .iter()
                .map(|(id, c)| (*id, *c))
                .collect(),
            ns_redeemed: self.ns_redeemed_ids.iter().copied().collect(),
            ns_accepted: self.ns_accepted,
        }
    }

    /// End-of-cycle checkpoint (no-op without a backend).
    fn checkpoint(&mut self, cycle: u64) {
        if self.backend.is_none() {
            return;
        }
        let state = self.persistent_state(cycle);
        if let Some(b) = self.backend.as_mut() {
            let _ = b.save_checkpoint(&state);
        }
    }

    /// The node's ID (public key).
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's network address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The node's timestamp phase.
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// The protocol configuration.
    pub fn config(&self) -> &SecureConfig {
        &self.cfg
    }

    /// The current view.
    pub fn view(&self) -> &SecureView {
        &self.view
    }

    /// The node's blacklist.
    pub fn blacklist(&self) -> &Blacklist {
        &self.blacklist
    }

    /// Number of cached samples.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Number of owned descriptors parked in the reserve.
    pub fn reserve_len(&self) -> usize {
        self.reserve.len()
    }

    /// Read-only view of the reserve: owned descriptors waiting for a view
    /// slot. Exposed so external invariant oracles can account for every
    /// live token the node holds.
    pub fn reserve(&self) -> impl Iterator<Item = &SecureDescriptor> {
        self.reserve.iter()
    }

    /// Number of pre-transfer copies retained from failed exchanges (the
    /// first-priority non-swappable back-fill pool, §V-A).
    pub fn pending_ns_len(&self) -> usize {
        self.pending_ns.len()
    }

    /// Number of pre-transfer copies remembered from successful exchanges
    /// (the last-resort non-swappable back-fill pool).
    pub fn transfer_history_len(&self) -> usize {
        self.transfer_history.len()
    }

    /// Number of redeemed copies circulating in the redemption cache
    /// (§V-C).
    pub fn redemption_count(&self) -> usize {
        self.redemptions.len()
    }

    /// Number of tit-for-tat sessions currently open on the passive side.
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Protocol counters.
    pub fn stats(&self) -> SecureStats {
        self.stats
    }

    /// Locally generated violation proofs, in discovery order.
    pub fn proof_log(&self) -> &[ProofRecord] {
        &self.proof_log
    }

    /// Installs a bootstrap descriptor (ownership must already point at
    /// this node). Returns whether it was stored.
    pub fn accept_bootstrap(&mut self, desc: SecureDescriptor) -> bool {
        debug_assert!(desc.verify().is_ok(), "bootstrap descriptors must verify");
        self.view.insert(desc, false)
    }

    /// Sponsors a joining node (§V-A bootstrap): spends this cycle's
    /// fresh-descriptor budget on a descriptor transferred to `joiner`
    /// instead of initiating a gossip exchange, so the frequency rule is
    /// never violated. Returns `None` if this cycle's budget is already
    /// spent.
    ///
    /// `cycle` and `now` must come from the engine clock (the same values
    /// the node would see in its `on_cycle`).
    pub fn sponsor_join(
        &mut self,
        joiner: NodeId,
        cycle: u64,
        now: u64,
    ) -> Option<SecureDescriptor> {
        if !self.may_emit(cycle) || joiner == self.id {
            return None;
        }
        // Durable before the grant leaves: a crash between the send and
        // the next checkpoint must not let a restarted self re-mint.
        self.note_emission(cycle);
        let fresh = SecureDescriptor::create(&self.keypair, self.addr, Timestamp(now + self.phase));
        let handed = fresh.transfer(&self.keypair, joiner).ok()?;
        self.stats.transfers_sent += 1;
        Some(handed)
    }

    /// Accepts a sponsorship descriptor mid-run (§V-A bootstrap applied to
    /// *rejoin*): after a long disconnection — e.g. a partition outlasting
    /// the descriptor lifetime, which consumes every cross-side link — an
    /// isolated node is reintroduced by redeeming a fresh descriptor some
    /// reachable node sponsored for it (see
    /// [`SecureCyclonNode::sponsor_join`]). Unlike
    /// [`SecureCyclonNode::accept_bootstrap`], the descriptor goes through
    /// the full §IV-B intake checks and is parked in the reserve when the
    /// view is full, so an established node never discards the lifeline.
    /// Returns whether the descriptor was kept.
    pub fn accept_sponsorship(&mut self, desc: SecureDescriptor, cycle: u64) -> bool {
        if desc.owner() != self.id || desc.creator() == self.id || desc.is_redeemed() {
            return false;
        }
        if !self.absorb_descriptor(&desc, cycle) {
            return false;
        }
        if let Some(desc) = self.view.try_insert(desc, false) {
            if let Some(desc) = self.view.try_replace_ns_with(desc) {
                self.push_reserve(desc);
            }
        }
        true
    }

    /// Exports every stored violation proof (for bootstrap synchronization
    /// of a joining node, §IV-C: proofs are exchanged so newcomers learn
    /// about already-discovered violators).
    pub fn export_proofs(&self) -> Vec<ViolationProof> {
        self.blacklist
            .proofs()
            .iter()
            .map(|p| p.proof.clone())
            .collect()
    }

    /// Validates and absorbs a batch of proofs (bootstrap synchronization).
    pub fn import_proofs(&mut self, proofs: Vec<ViolationProof>, cycle: u64) {
        self.process_proofs(proofs, cycle);
    }

    // ------------------------------------------------------------------
    // Violation handling
    // ------------------------------------------------------------------

    /// Handles a locally discovered violation: log it, and (when eviction
    /// is enabled) blacklist, purge, and queue the proof for flooding.
    fn discover_violation(&mut self, proof: ViolationProof, cycle: u64) {
        match proof.kind() {
            ProofKind::Cloning => self.stats.proofs_generated_cloning += 1,
            ProofKind::Frequency => self.stats.proofs_generated_frequency += 1,
        }
        let descriptor = match proof.kind() {
            ProofKind::Cloning => Some(proof.evidence().0.id()),
            ProofKind::Frequency => None,
        };
        self.proof_log.push(ProofRecord {
            cycle,
            kind: proof.kind(),
            culprit: proof.culprit(),
            descriptor,
        });
        self.apply_proof(proof, cycle);
    }

    /// Validates and absorbs a proof learned from a peer. Returns whether
    /// it was novel (and should be re-flooded).
    fn accept_remote_proof(&mut self, proof: ViolationProof, cycle: u64) -> bool {
        if self.blacklist.contains(&proof.culprit()) {
            self.stats.proofs_duplicate += 1;
            return false;
        }
        if proof.validate(self.cfg.ticks_per_cycle).is_err() {
            self.stats.proofs_invalid += 1;
            return false;
        }
        self.stats.proofs_received += 1;
        self.apply_proof(proof, cycle)
    }

    /// Registers a validated proof: blacklist, purge every trace of the
    /// culprit, and queue the proof for flooding. No-op in detection-only
    /// mode (Figure 7) or when the culprit is already listed.
    fn apply_proof(&mut self, proof: ViolationProof, cycle: u64) -> bool {
        if !self.cfg.eviction_enabled {
            return false;
        }
        let culprit = proof.culprit();
        if !self.blacklist.register(proof.clone(), cycle) {
            return false;
        }
        if let Some(b) = self.backend.as_mut() {
            let _ = b.record_proof(&proof, cycle);
        }
        self.view.purge_creator(&culprit);
        self.samples.purge_creator(&culprit);
        self.redemptions.purge_creator(&culprit);
        self.pending_ns.retain(|d| d.creator() != culprit);
        self.transfer_history.retain(|d| d.creator() != culprit);
        self.reserve.retain(|d| d.creator() != culprit);
        self.outbox.push(proof);
        true
    }

    /// Sends queued proofs to every current neighbor (§IV-C flooding).
    fn drain_floods(&mut self, send: &mut dyn FnMut(Addr, SecureMsg)) {
        if self.outbox.is_empty() {
            return;
        }
        let targets: Vec<Addr> = self.view.iter().map(|e| e.desc.addr()).collect();
        for proof in self.outbox.drain(..) {
            for &t in &targets {
                send(t, SecureMsg::Proof(Box::new(proof.clone())));
            }
        }
    }

    fn process_proofs(&mut self, proofs: Vec<ViolationProof>, cycle: u64) {
        for p in proofs {
            self.accept_remote_proof(p, cycle);
        }
    }

    fn recent_proofs(&self, cycle: u64) -> Vec<ViolationProof> {
        if !self.cfg.eviction_enabled {
            return Vec::new();
        }
        let since = cycle.saturating_sub(self.cfg.proof_piggyback_cycles);
        self.blacklist.proofs_since(since).cloned().collect()
    }

    // ------------------------------------------------------------------
    // Descriptor intake
    // ------------------------------------------------------------------

    /// Verifies a descriptor, then runs the §IV-B checks. Used for
    /// everything whose validity the node is about to rely on: incoming
    /// ownership transfers, fresh descriptors, redemption certificates.
    ///
    /// Verification is incremental against the verified-prefix memo:
    /// a byte-identical re-intake is an O(1) memo hit, an extended or
    /// forked chain pays only for the links past the last verified
    /// prefix, and a first sighting falls back to full verification.
    /// Unlike the byte-identical *sample* shortcut this replaces, the
    /// memo holds only locally verified prefixes, so an attacker cannot
    /// pre-seed the cache with a forged sample and then replay the same
    /// bytes as a transfer to dodge verification.
    fn absorb_descriptor(&mut self, desc: &SecureDescriptor, cycle: u64) -> bool {
        if self.blacklist.contains(&desc.creator()) {
            return false;
        }
        if desc.verify_with(&mut self.verify_memo).is_err() {
            self.stats.invalid_descriptors += 1;
            return false;
        }
        self.check_only(desc, cycle)
    }

    /// Runs the §IV-B checks without up-front signature verification —
    /// the lazy-verification path for samples (see `sc_core::checks`
    /// module docs: proofs re-verify, so forgeries cannot frame anyone).
    fn absorb_sample(&mut self, desc: &SecureDescriptor, cycle: u64) -> bool {
        if self.blacklist.contains(&desc.creator()) {
            return false;
        }
        self.check_only(desc, cycle)
    }

    /// Pools the signature checks of every descriptor a received message
    /// asks this node to rely on into **one** batched verification
    /// ([`SecureDescriptor::verify_batch_with`]), warming the
    /// verified-prefix memo so the per-descriptor intake gates that follow
    /// are O(1) exact hits. Samples deliberately contribute nothing here —
    /// they are verified lazily, only on §IV-B conflict (see
    /// `sc_core::checks`), so they carry no intake-time checks to pool.
    ///
    /// Verdict-neutral by construction: `verify_batch_with` returns
    /// per-descriptor results identical to sequential `verify_with`, and
    /// only genuinely verified prefixes enter the memo, so the gates that
    /// re-run afterwards decide exactly as the sequential pipeline does —
    /// this call just front-loads their crypto into one combined pass.
    fn prewarm_verify(&mut self, descs: &[&SecureDescriptor]) {
        if !self.cfg.batched_intake || descs.is_empty() {
            return;
        }
        let _ = SecureDescriptor::verify_batch_with(descs, &mut self.verify_memo);
    }

    fn check_only(&mut self, desc: &SecureDescriptor, cycle: u64) -> bool {
        self.stats.samples_processed += 1;
        match self.samples.observe_with(
            desc,
            cycle,
            self.cfg.ticks_per_cycle,
            &mut self.verify_memo,
        ) {
            Observation::Violation(proof) => {
                self.discover_violation(*proof, cycle);
                false
            }
            Observation::Forged => {
                self.stats.invalid_descriptors += 1;
                false
            }
            _ => true,
        }
    }

    /// Validates an incoming ownership transfer handed over by `from`.
    fn validate_transfer(&self, d: &SecureDescriptor, from: NodeId) -> bool {
        if d.is_redeemed() || d.owner() != self.id || d.creator() == self.id {
            return false;
        }
        // Replay guard: a state this node already continued must never be
        // accepted again — re-spending it would make this node the
        // provable culprit of a cloning violation. A legitimate return of
        // the same descriptor carries the extra links and hashes
        // differently.
        if self.spent_states.contains_key(&d.state_digest()) {
            return false;
        }
        let last = d.chain().len() - 1; // owner()==id ≠ creator ⇒ non-empty
        d.owner_at(last) == from
    }

    /// Full intake of an owned transfer: validate, check, insert.
    fn accept_transfer(&mut self, d: SecureDescriptor, from: NodeId, cycle: u64) {
        if !self.validate_transfer(&d, from) {
            self.stats.transfers_rejected += 1;
            return;
        }
        if !self.absorb_descriptor(&d, cycle) {
            return;
        }
        self.stats.transfers_received += 1;
        if let Some(d) = self.view.try_insert(d, false) {
            if let Some(d) = self.view.try_replace_ns_with(d) {
                self.push_reserve(d);
            }
        }
    }

    /// Parks an owned descriptor that currently has no view slot. The
    /// reserve is bounded; overflowing descriptors are dropped (they die
    /// early, exactly as a discarded duplicate would in legacy Cyclon).
    fn push_reserve(&mut self, d: SecureDescriptor) {
        self.stats.dup_drops += 1;
        if self.reserve.len() >= self.cfg.swap_len * 2 {
            self.reserve.pop_front();
        }
        self.reserve.push_back(d);
    }

    /// Copies of the current view plus the redemption cache (§IV-B, §V-C).
    fn collect_samples(&self) -> Vec<SecureDescriptor> {
        self.view
            .iter()
            .map(|e| e.desc.clone())
            .chain(self.redemptions.iter().cloned())
            .collect()
    }

    /// Records the pre-transfer copy of a descriptor whose ownership was
    /// handed over in an exchange that then failed: the node "is allowed
    /// to keep a copy of a descriptor whose ownership it has transferred
    /// to some other peer, marking it as non-swappable" (§V-A).
    fn lose_to_ns(&mut self, pre: SecureDescriptor, cycle: u64) {
        self.note_spent(pre.state_digest(), cycle);
        if self.pending_ns.len() == self.cfg.transfer_history_len {
            self.pending_ns.pop_front();
        }
        self.pending_ns.push_back(pre);
    }

    /// Remembers the pre-transfer copy of a successfully transferred
    /// descriptor as a last-resort NS back-fill candidate.
    fn remember_transfer(&mut self, pre: SecureDescriptor, cycle: u64) {
        self.note_spent(pre.state_digest(), cycle);
        if self.transfer_history.len() == self.cfg.transfer_history_len {
            self.transfer_history.pop_front();
        }
        self.transfer_history.push_back(pre);
    }

    /// Fills empty view slots: first with fully owned descriptors parked
    /// in the reserve (swappable), then — at most once per cycle — with a
    /// non-swappable copy of a recently transferred descriptor (§V-A).
    fn backfill(&mut self, cycle: u64) {
        if self.view.free_slots() > 0 && !self.reserve.is_empty() {
            let mut keep = VecDeque::with_capacity(self.reserve.len());
            while let Some(d) = self.reserve.pop_front() {
                if self.blacklist.contains(&d.creator()) {
                    continue;
                }
                // An adversary can deliver the same state twice in one
                // cycle — the duplicate parks here while the original is
                // spent from the view. Letting it re-circulate would make
                // this node double-sign that state (a provable cloning
                // violation against *us*), so a spent state dies in the
                // reserve.
                if self.spent_states.contains_key(&d.state_digest()) {
                    continue;
                }
                if self.view.can_insert(&d) {
                    self.view.insert(d, false);
                } else if let Some(d) = self.view.try_replace_ns_with(d) {
                    keep.push_back(d);
                }
            }
            self.reserve = keep;
        }
        if self.last_ns_backfill == Some(cycle) {
            return;
        }
        while self.view.free_slots() > 0 {
            let cand = match self.pending_ns.pop_back() {
                Some(c) => c,
                None => {
                    // The general history only repairs *persistent* damage
                    // (two or more missing slots); transient single-slot
                    // gaps heal through the reserve and ordinary exchanges,
                    // keeping non-swappable links at ≈0% in healthy
                    // networks (Figure 6 baseline).
                    if self.view.free_slots() < 2 {
                        return;
                    }
                    match self.transfer_history.pop_back() {
                        Some(c) => c,
                        None => return,
                    }
                }
            };
            if self.blacklist.contains(&cand.creator()) {
                continue;
            }
            if self.view.insert(cand, true) {
                self.stats.ns_backfills += 1;
                self.last_ns_backfill = Some(cycle);
                return;
            }
        }
    }

    /// Removes and returns the oldest non-blacklisted view entry.
    fn pick_oldest(&mut self) -> Option<crate::view::ViewEntry> {
        loop {
            let entry = self.view.remove_oldest()?;
            if !self.blacklist.contains(&entry.desc.creator()) {
                return Some(entry);
            }
        }
    }

    fn housekeeping(&mut self, cycle: u64) {
        self.samples.prune(cycle);
        self.redemptions.prune(cycle);
        self.sessions.retain(|_, s| s.cycle + 1 >= cycle);
        let horizon = cycle.saturating_sub(self.cfg.sample_retention_cycles);
        self.redeemed_regular.retain(|_, c| *c >= horizon);
        self.spent_states.retain(|_, c| *c >= horizon);
    }

    /// Total ownership transfers each side performs in one exchange,
    /// honoring the NS swap cap (§V-A rule 3).
    fn exchange_quota(&self, redemption: LinkKind) -> usize {
        match (redemption, self.cfg.ns_swap_cap) {
            (LinkKind::RedeemNonSwappable, Some(cap)) => self.cfg.swap_len.min(cap),
            _ => self.cfg.swap_len,
        }
    }

    // ------------------------------------------------------------------
    // Passive side
    // ------------------------------------------------------------------

    fn handle_request(
        &mut self,
        from: Addr,
        body: RequestBody,
        cycle: u64,
        now: u64,
    ) -> Option<SecureMsg> {
        let RequestBody {
            redeemed,
            fresh,
            offered,
            samples,
            proofs,
        } = body;

        // -- one batched crypto bill for the whole request --------------
        // Certificate, fresh descriptor, and any eagerly offered
        // transfers verify in one combined pass; the gates below then hit
        // the memo instead of paying per-signature. (Samples are lazily
        // verified and add no checks.)
        let mut to_verify: Vec<&SecureDescriptor> = Vec::with_capacity(2 + offered.len());
        to_verify.push(&redeemed);
        to_verify.push(&fresh);
        to_verify.extend(offered.iter());
        self.prewarm_verify(&to_verify);

        // -- validate the redemption certificate -----------------------
        // Incremental: the certificate's chain prefix is usually already
        // memoized from the sample stream, so only recent links pay.
        if redeemed.verify_with(&mut self.verify_memo).is_err() || redeemed.creator() != self.id {
            self.stats.refused += 1;
            return None;
        }
        let Some(kind) = redeemed.redemption_kind() else {
            self.stats.refused += 1;
            return None;
        };
        let Some(redeemer) = redeemed.redeemer() else {
            self.stats.refused += 1;
            return None;
        };

        // -- validate the initiator's fresh descriptor -----------------
        let fresh_ok = fresh.verify_with(&mut self.verify_memo).is_ok()
            && fresh.creator() == redeemer
            && fresh.owner() == self.id
            && fresh.chain().len() == 1
            && !fresh.is_redeemed()
            && fresh.created_at().distance(Timestamp(now))
                <= self.cfg.max_skew_ticks + self.cfg.ticks_per_cycle;
        if !fresh_ok {
            self.stats.refused += 1;
            return None;
        }

        // -- learn from piggybacked proofs before trusting the peer ----
        self.process_proofs(proofs, cycle);
        if self.blacklist.contains(&redeemer) {
            self.stats.refused += 1;
            return None;
        }

        // -- replay and §V-A non-swappable restrictions -----------------
        // A descriptor may legally be spent twice in total: once by its
        // final owner (regular redemption) and once by a past owner that
        // kept a non-swappable copy (§V-A). Each kind at most once.
        let id = redeemed.id();
        match kind {
            LinkKind::Redeem => {
                if self.redeemed_regular.contains_key(&id) {
                    self.stats.refused += 1;
                    return None;
                }
            }
            LinkKind::RedeemNonSwappable => {
                // Rule 1: at most one NS redemption per descriptor, ever.
                if self.ns_redeemed_ids.contains(&id) {
                    self.stats.refused += 1;
                    return None;
                }
                // Rule 2: at most a configured number of NS redemptions
                // accepted per cycle.
                if self.ns_accepted.0 == cycle
                    && self.ns_accepted.1 >= self.cfg.max_ns_redemptions_per_cycle
                {
                    self.stats.refused += 1;
                    return None;
                }
            }
            LinkKind::Transfer => unreachable!("redemption_kind is terminal"),
        }

        // -- §IV-B checks on everything received ------------------------
        // Observe each distinct descriptor exactly once: the honest
        // initiator's sample set legitimately repeats the redeemed
        // certificate (it enters the redemption cache before samples are
        // collected), and attackers pad their sample lists with arbitrary
        // byte-identical repeats. A repeat carries no new §IV-B
        // information, so skipping it changes no verdict — it only keeps
        // `samples_processed` honest and saves redundant cache walks.
        #[cfg(debug_assertions)]
        let samples_processed_before = self.stats.samples_processed;
        let mut observed: FxHashSet<sc_crypto::Digest> =
            FxHashSet::with_capacity_and_hasher(samples.len() + 2, Default::default());
        observed.insert(redeemed.state_digest());
        observed.insert(fresh.state_digest());
        let red_ok = self.absorb_descriptor(&redeemed, cycle);
        let fresh_clean = self.absorb_descriptor(&fresh, cycle);
        for s in &samples {
            if !observed.insert(s.state_digest()) {
                continue;
            }
            self.absorb_sample(s, cycle);
        }
        #[cfg(debug_assertions)]
        debug_assert!(
            self.stats.samples_processed - samples_processed_before <= observed.len() as u64,
            "samples_processed must increment at most once per observed descriptor"
        );
        if !red_ok || !fresh_clean || self.blacklist.contains(&redeemer) {
            self.stats.refused += 1;
            return None;
        }

        // -- commit the redemption --------------------------------------
        if kind == LinkKind::RedeemNonSwappable {
            if self.ns_accepted.0 != cycle {
                self.ns_accepted = (cycle, 0);
            }
            self.ns_accepted.1 += 1;
            self.ns_redeemed_ids.insert(id);
            self.stats.ns_redemptions_accepted += 1;
        } else {
            self.redeemed_regular.insert(id, cycle);
        }

        // -- select outgoing transfers ----------------------------------
        let quota = self.exchange_quota(kind);
        let immediate = if self.cfg.tit_for_tat { 1 } else { quota };
        let picked = self
            .view
            .remove_random_swappable_filtered(immediate, &mut self.rng, |d| {
                d.creator() != redeemer
            });
        let mut transfers = Vec::with_capacity(picked.len());
        for pre in picked {
            if let Ok(t) = pre.transfer(&self.keypair, redeemer) {
                self.stats.transfers_sent += 1;
                transfers.push(t);
                self.remember_transfer(pre, cycle);
            }
        }

        // -- store what we received -------------------------------------
        self.stats.transfers_received += 1;
        if let Some(fresh) = self.view.try_insert(fresh, false) {
            if let Some(fresh) = self.view.try_replace_ns_with(fresh) {
                // Usually an older descriptor of the initiator still
                // occupies the slot; park the fresh one until that one is
                // redeemed.
                self.push_reserve(fresh);
            }
        }
        if !self.cfg.tit_for_tat {
            for d in offered.into_iter().take(quota.saturating_sub(1)) {
                self.accept_transfer(d, redeemer, cycle);
            }
        }

        // -- open the tit-for-tat session -------------------------------
        if self.cfg.tit_for_tat && quota > 1 && !transfers.is_empty() {
            self.sessions.insert(
                from,
                Session {
                    partner: redeemer,
                    remaining: quota - 1,
                    cycle,
                },
            );
        }

        self.stats.answered += 1;
        Some(SecureMsg::Accept(Box::new(AcceptBody {
            transfers,
            samples: self.collect_samples(),
            proofs: self.recent_proofs(cycle),
        })))
    }

    fn handle_round(&mut self, from: Addr, body: RoundBody, cycle: u64) -> Option<SecureMsg> {
        let session = *self.sessions.get(&from)?;
        if session.remaining == 0 {
            self.sessions.remove(&from);
            return None;
        }
        // Free our slot before storing the incoming transfer, so it can
        // take the slot directly instead of bouncing through the reserve.
        let partner = session.partner;
        let reply = self
            .view
            .remove_random_swappable_filtered(1, &mut self.rng, |d| d.creator() != partner)
            .into_iter()
            .next()
            .and_then(|pre| {
                let out = pre.transfer(&self.keypair, partner).ok();
                if out.is_some() {
                    self.remember_transfer(pre, cycle);
                }
                out
            });
        self.accept_transfer(body.transfer, partner, cycle);
        if self.blacklist.contains(&partner) {
            self.sessions.remove(&from);
            return None;
        }
        if reply.is_some() {
            self.stats.transfers_sent += 1;
        }
        let remaining = session.remaining - 1;
        if remaining == 0 || reply.is_none() {
            self.sessions.remove(&from);
        } else if let Some(s) = self.sessions.get_mut(&from) {
            s.remaining = remaining;
        }
        Some(SecureMsg::RoundReply(Box::new(RoundReplyBody {
            transfer: reply,
        })))
    }

    // ------------------------------------------------------------------
    // Active side
    // ------------------------------------------------------------------

    fn run_exchange<N: SimNode<Msg = SecureMsg>>(
        &mut self,
        ctx: &mut CycleCtx<'_, N>,
        cycle: u64,
        now: u64,
    ) {
        let Some(entry) = self.pick_oldest() else {
            self.stats.idle_cycles += 1;
            return;
        };
        let partner_id = entry.desc.creator();
        let partner_addr = entry.desc.addr();
        let kind = if entry.non_swappable {
            LinkKind::RedeemNonSwappable
        } else {
            LinkKind::Redeem
        };
        let Ok(redeemed) = entry.desc.redeem(&self.keypair, kind) else {
            return;
        };
        self.note_spent(entry.desc.state_digest(), cycle);
        // Keep the redeemed copy circulating as a sample (§V-C).
        self.redemptions.push(redeemed.clone(), cycle);

        // Durable before the descriptor leaves (the crash-restart
        // frequency bugfix): once the marker is on disk, a `kill -9`
        // anywhere past this line cannot make the restarted self mint a
        // second descriptor inside this gossip period.
        self.note_emission(cycle);
        let fresh_ts = Timestamp(now + self.phase);
        let fresh = SecureDescriptor::create(&self.keypair, self.addr, fresh_ts);
        let Ok(fresh_out) = fresh.transfer(&self.keypair, partner_id) else {
            return;
        };
        self.stats.transfers_sent += 1;

        let quota = self.exchange_quota(kind);
        let mut offered = Vec::new();
        let mut offered_pre = Vec::new();
        if !self.cfg.tit_for_tat {
            for pre in self.view.remove_random_swappable_filtered(
                quota.saturating_sub(1),
                &mut self.rng,
                |d| d.creator() != partner_id,
            ) {
                if let Ok(t) = pre.transfer(&self.keypair, partner_id) {
                    self.stats.transfers_sent += 1;
                    offered.push(t);
                    offered_pre.push(pre);
                }
            }
        }

        let request = SecureMsg::Request(Box::new(RequestBody {
            redeemed,
            fresh: fresh_out,
            offered,
            samples: self.collect_samples(),
            proofs: self.recent_proofs(cycle),
        }));
        self.stats.initiated += 1;
        self.stats.bytes_sent += wire::message_paper_bytes(&request) as u64;
        let outcome = ctx.rpc(partner_addr, request);
        if let RpcOutcome::Reply(reply) = &outcome {
            self.stats.bytes_received += wire::message_paper_bytes(reply) as u64;
        }
        match outcome {
            RpcOutcome::Reply(SecureMsg::Accept(body)) => {
                self.stats.completed += 1;
                let AcceptBody {
                    transfers,
                    samples,
                    proofs,
                } = *body;
                self.process_proofs(proofs, cycle);
                for s in &samples {
                    self.absorb_sample(s, cycle);
                }
                if self.blacklist.contains(&partner_id) {
                    return;
                }
                for pre in offered_pre {
                    self.remember_transfer(pre, cycle);
                }
                let expect = if self.cfg.tit_for_tat { 1 } else { quota };
                let got_any = !transfers.is_empty();
                let incoming: Vec<&SecureDescriptor> = transfers.iter().take(expect).collect();
                self.prewarm_verify(&incoming);
                for t in transfers.into_iter().take(expect) {
                    self.accept_transfer(t, partner_id, cycle);
                }
                if self.cfg.tit_for_tat && got_any {
                    self.run_tft_rounds(ctx, partner_addr, partner_id, quota, cycle);
                }
            }
            RpcOutcome::Reply(_) | RpcOutcome::Timeout => {
                // §V-A cases 1 and 2: the redeemed descriptor is spent and
                // the fresh one may or may not have been delivered; the
                // view descriptors shipped alongside cannot be reused as
                // owned, but non-swappable copies may be retained.
                self.stats.timeouts += 1;
                for pre in offered_pre {
                    self.lose_to_ns(pre, cycle);
                }
            }
        }
    }

    fn run_tft_rounds<N: SimNode<Msg = SecureMsg>>(
        &mut self,
        ctx: &mut CycleCtx<'_, N>,
        partner_addr: Addr,
        partner_id: NodeId,
        quota: usize,
        cycle: u64,
    ) {
        for _round in 1..quota {
            let Some(pre) = self
                .view
                .remove_random_swappable_filtered(1, &mut self.rng, |d| d.creator() != partner_id)
                .into_iter()
                .next()
            else {
                return; // nothing left to trade
            };
            let Ok(out) = pre.transfer(&self.keypair, partner_id) else {
                return;
            };
            self.stats.transfers_sent += 1;
            let round = SecureMsg::Round(Box::new(RoundBody { transfer: out }));
            self.stats.bytes_sent += wire::message_paper_bytes(&round) as u64;
            let outcome = ctx.rpc(partner_addr, round);
            if let RpcOutcome::Reply(reply) = &outcome {
                self.stats.bytes_received += wire::message_paper_bytes(reply) as u64;
            }
            match outcome {
                RpcOutcome::Reply(SecureMsg::RoundReply(reply)) => match reply.transfer {
                    Some(d) => {
                        self.remember_transfer(pre, cycle);
                        self.accept_transfer(d, partner_id, cycle);
                    }
                    None => {
                        // Partner quit halfway: our transfer is gone, keep
                        // a non-swappable copy (§V-A).
                        self.lose_to_ns(pre, cycle);
                        return;
                    }
                },
                RpcOutcome::Reply(_) | RpcOutcome::Timeout => {
                    self.lose_to_ns(pre, cycle);
                    return;
                }
            }
            if self.blacklist.contains(&partner_id) {
                return;
            }
        }
    }
}

/// Cycles between rejoin-ping volleys while starved.
const REJOIN_RETRY_CYCLES: u64 = 2;
/// Addresses pinged per rejoin volley.
const REJOIN_FANOUT: usize = 3;
/// Minimum cycles between sponsorships granted to pings — a ping flood
/// must not permanently consume a node's per-cycle descriptor budget.
const JOIN_GRANT_GAP_CYCLES: u64 = 4;

impl SecureCyclonNode {
    /// The active-thread logic, generic over the hosting node type so that
    /// wrapper enums (mixed honest/malicious networks) can delegate.
    pub fn on_cycle_any<N: SimNode<Msg = SecureMsg>>(&mut self, ctx: &mut CycleCtx<'_, N>) {
        let cycle = ctx.cycle();
        let now = ctx.now();
        self.housekeeping(cycle);
        self.backfill(cycle);
        if !self.view.is_empty() {
            self.was_connected = true;
        }
        if self.may_emit(cycle) {
            self.run_exchange(ctx, cycle, now);
        }
        self.backfill(cycle);
        self.maybe_rejoin_ping(ctx, cycle);
        let mut sends: Vec<(Addr, SecureMsg)> = Vec::new();
        self.drain_floods(&mut |a, m| sends.push((a, m)));
        for (a, m) in sends {
            self.stats.bytes_sent += wire::message_paper_bytes(&m) as u64;
            ctx.send(a, m);
        }
        self.checkpoint(cycle);
    }

    /// §V-A re-sponsorship initiated by the starved node itself: a node
    /// that *was* connected but whose view, reserve, and back-fill pools
    /// have all drained (e.g. a partition outlasted every descriptor)
    /// pings a few recently sampled creator addresses asking to be
    /// sponsored back in. Receivers answer with a [`SecureMsg::JoinGrant`]
    /// processed in [`SecureCyclonNode::on_oneway_any`].
    fn maybe_rejoin_ping<N: SimNode<Msg = SecureMsg>>(
        &mut self,
        ctx: &mut CycleCtx<'_, N>,
        cycle: u64,
    ) {
        if !self.was_connected || !self.starved() {
            return;
        }
        if let Some(last) = self.last_rejoin_ping {
            if cycle < last.saturating_add(REJOIN_RETRY_CYCLES) {
                return;
            }
        }
        // Candidate sponsors: creators this node recently heard from.
        // Sorted before sampling so the choice depends only on the RNG
        // stream, not on hash-map iteration order.
        let mut candidates: Vec<Addr> = self
            .samples
            .descriptors()
            .chain(self.redemptions.iter())
            .filter(|d| d.creator() != self.id && !self.blacklist.contains(&d.creator()))
            .map(|d| d.addr())
            .filter(|a| *a != self.addr)
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            return;
        }
        let (chosen, _) = candidates.partial_shuffle(&mut self.rng, REJOIN_FANOUT);
        let targets: Vec<Addr> = chosen.to_vec();
        for addr in targets {
            let ping = SecureMsg::JoinPing(Box::new(JoinPingBody { joiner: self.id }));
            self.stats.bytes_sent += wire::message_paper_bytes(&ping) as u64;
            self.stats.rejoin_pings += 1;
            ctx.send(addr, ping);
        }
        self.last_rejoin_ping = Some(cycle);
    }

    /// Whether every source of view links has drained.
    fn starved(&self) -> bool {
        self.view.is_empty()
            && self.reserve.is_empty()
            && self.pending_ns.is_empty()
            && self.transfer_history.is_empty()
    }

    /// Answers a starved peer's rejoin ping with a sponsorship, throttled
    /// and frequency-legal (the grant spends this cycle's budget through
    /// [`SecureCyclonNode::sponsor_join`]).
    fn handle_join_ping(
        &mut self,
        from: Addr,
        joiner: NodeId,
        cycle: u64,
        ctx: &mut NodeCtx<'_, SecureMsg>,
    ) {
        if joiner == self.id || self.blacklist.contains(&joiner) {
            return;
        }
        if let Some(last) = self.last_join_grant {
            if cycle < last.saturating_add(JOIN_GRANT_GAP_CYCLES) {
                return;
            }
        }
        let now = ctx.now();
        if let Some(desc) = self.sponsor_join(joiner, cycle, now) {
            self.last_join_grant = Some(cycle);
            self.stats.rejoin_grants += 1;
            let grant = SecureMsg::JoinGrant(Box::new(JoinGrantBody {
                descriptor: desc,
                proofs: self.recent_proofs(cycle),
            }));
            self.stats.bytes_sent += wire::message_paper_bytes(&grant) as u64;
            ctx.send(from, grant);
        }
    }

    /// The RPC-server logic, reusable by wrapper enums.
    pub fn on_rpc_any(
        &mut self,
        from: Addr,
        msg: SecureMsg,
        ctx: &mut NodeCtx<'_, SecureMsg>,
    ) -> Option<SecureMsg> {
        let cycle = ctx.cycle();
        let now = ctx.now();
        self.stats.bytes_received += wire::message_paper_bytes(&msg) as u64;
        let reply = match msg {
            SecureMsg::Request(body) => self.handle_request(from, *body, cycle, now),
            SecureMsg::Round(body) => self.handle_round(from, *body, cycle),
            _ => None,
        };
        if let Some(r) = &reply {
            self.stats.bytes_sent += wire::message_paper_bytes(r) as u64;
        }
        let mut sends: Vec<(Addr, SecureMsg)> = Vec::new();
        self.drain_floods(&mut |a, m| sends.push((a, m)));
        for (a, m) in sends {
            self.stats.bytes_sent += wire::message_paper_bytes(&m) as u64;
            ctx.send(a, m);
        }
        reply
    }

    /// The datagram logic, reusable by wrapper enums.
    pub fn on_oneway_any(&mut self, from: Addr, msg: SecureMsg, ctx: &mut NodeCtx<'_, SecureMsg>) {
        let cycle = ctx.cycle();
        self.stats.bytes_received += wire::message_paper_bytes(&msg) as u64;
        match msg {
            SecureMsg::Proof(proof) => {
                self.accept_remote_proof(*proof, cycle);
            }
            SecureMsg::JoinPing(body) => {
                self.handle_join_ping(from, body.joiner, cycle, ctx);
            }
            SecureMsg::JoinGrant(body) => {
                let JoinGrantBody { descriptor, proofs } = *body;
                self.process_proofs(proofs, cycle);
                if self.accept_sponsorship(descriptor, cycle) {
                    self.was_connected = true;
                }
            }
            _ => return,
        }
        let mut sends: Vec<(Addr, SecureMsg)> = Vec::new();
        self.drain_floods(&mut |a, m| sends.push((a, m)));
        for (a, m) in sends {
            self.stats.bytes_sent += wire::message_paper_bytes(&m) as u64;
            ctx.send(a, m);
        }
    }
}

impl SimNode for SecureCyclonNode {
    type Msg = SecureMsg;

    fn on_cycle(&mut self, ctx: &mut CycleCtx<'_, Self>) {
        self.on_cycle_any(ctx);
    }

    fn on_rpc(
        &mut self,
        from: Addr,
        msg: Self::Msg,
        ctx: &mut NodeCtx<'_, Self::Msg>,
    ) -> Option<Self::Msg> {
        self.on_rpc_any(from, msg, ctx)
    }

    fn on_oneway(&mut self, from: Addr, msg: Self::Msg, ctx: &mut NodeCtx<'_, Self::Msg>) {
        self.on_oneway_any(from, msg, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::{default_phase, ring_bootstrap};
    use sc_crypto::Scheme;
    use sc_sim::{Engine, NetworkModel, SimConfig};
    use std::collections::HashMap;

    fn keypairs(n: usize) -> Vec<Keypair> {
        (0..n)
            .map(|i| {
                let mut seed = [0u8; 32];
                seed[..8].copy_from_slice(&(i as u64).to_le_bytes());
                Keypair::from_seed(Scheme::KeyedHash, seed)
            })
            .collect()
    }

    /// Builds an all-honest SecureCyclon network with a legal bootstrap.
    fn build(n: usize, cfg: SecureConfig, seed: u64) -> Engine<SecureCyclonNode> {
        build_net(n, cfg, seed, NetworkModel::reliable())
    }

    fn build_net(
        n: usize,
        cfg: SecureConfig,
        seed: u64,
        net: NetworkModel,
    ) -> Engine<SecureCyclonNode> {
        let cfg = cfg.validated();
        let kps = keypairs(n);
        let addrs: Vec<Addr> = (0..n as Addr).collect();
        let phases: Vec<u64> = (0..n)
            .map(|i| default_phase(i, cfg.ticks_per_cycle))
            .collect();
        let plan = ring_bootstrap(&kps, &addrs, &phases, cfg.view_len, cfg.ticks_per_cycle);
        let mut engine = Engine::new(SimConfig {
            seed,
            net,
            ticks_per_cycle: cfg.ticks_per_cycle,
            start_cycle: plan.start_cycle,
            execution: sc_sim::Execution::Sequential,
        });
        for (i, descs) in plan.per_node.into_iter().enumerate() {
            let mut node = SecureCyclonNode::new(
                kps[i].clone(),
                i as Addr,
                cfg,
                sc_sim::rng::derive_seed(seed, "node", i as u64),
                phases[i],
            );
            for d in descs {
                assert!(node.accept_bootstrap(d));
            }
            engine.spawn_with(|_| node);
        }
        engine
    }

    fn small_cfg() -> SecureConfig {
        SecureConfig::default().with_view_len(8).with_swap_len(3)
    }

    #[test]
    fn respent_state_is_refused_but_legitimate_return_is_not() {
        // With deterministic signatures an adversary can re-deliver the
        // byte-identical state a victim already continued; a second
        // innocent signature over it would be a valid cloning proof
        // *against the victim*. Intake must drop the replay — while still
        // accepting the same descriptor when it legitimately returns via
        // a longer chain.
        let kps = keypairs(3);
        let (creator, holder, next) = (&kps[0], &kps[1], &kps[2]);
        let mut node = SecureCyclonNode::new(holder.clone(), 1, small_cfg(), [7u8; 32], 0);

        let handed = SecureDescriptor::create(creator, 0, Timestamp(0))
            .transfer(creator, holder.public())
            .unwrap();
        node.accept_transfer(handed.clone(), creator.public(), 0);
        assert_eq!(node.view.len(), 1, "first intake accepted");

        // Spend it: sign a transfer onward, as an exchange would.
        let pre = node.view.remove_oldest().unwrap().desc;
        let onward = pre.transfer(holder, next.public()).unwrap();
        node.remember_transfer(pre, 0);

        // A byte-identical replay of the spent state is refused.
        let rejected_before = node.stats.transfers_rejected;
        node.accept_transfer(handed, creator.public(), 1);
        assert_eq!(node.stats.transfers_rejected, rejected_before + 1);
        assert_eq!(node.view.len(), 0, "replay must not re-enter the view");

        // The descriptor returning home through the next owner is legal:
        // its extra links hash to a different state.
        let returned = onward.transfer(next, holder.public()).unwrap();
        node.accept_transfer(returned, next.public(), 2);
        assert_eq!(node.view.len(), 1, "legitimate return accepted");
    }

    #[test]
    fn honest_network_runs_violation_free() {
        let mut eng = build(48, small_cfg(), 1);
        eng.run_cycles(60);
        for (_, node) in eng.nodes() {
            assert_eq!(node.blacklist().len(), 0, "no false accusations");
            assert!(node.proof_log().is_empty(), "no proofs generated");
            assert_eq!(node.stats().invalid_descriptors, 0);
        }
    }

    #[test]
    fn honest_views_stay_full_and_swappable() {
        let cfg = small_cfg();
        let mut eng = build(128, cfg, 2);
        eng.run_cycles(80);
        let mut total_ns = 0usize;
        let mut total_len = 0usize;
        for (_, node) in eng.nodes() {
            assert!(
                node.view().len() >= cfg.view_len / 2,
                "view at least half full: {}",
                node.view().len()
            );
            total_len += node.view().len();
            total_ns += node.view().ns_count();
        }
        let avg = total_len as f64 / 128.0;
        assert!(
            avg >= cfg.view_len as f64 * 0.7,
            "views near capacity on average: {avg}"
        );
        let ns_frac = total_ns as f64 / (128.0 * cfg.view_len as f64);
        assert!(ns_frac < 0.05, "non-swappable fraction {ns_frac}");
    }

    #[test]
    fn exchanges_actually_complete() {
        let mut eng = build(32, small_cfg(), 3);
        eng.run_cycles(40);
        let completed: u64 = eng.nodes().map(|(_, n)| n.stats().completed).sum();
        let initiated: u64 = eng.nodes().map(|(_, n)| n.stats().initiated).sum();
        assert!(initiated >= 32 * 39, "nodes initiate nearly every cycle");
        assert!(
            completed as f64 / initiated as f64 > 0.95,
            "exchanges succeed: {completed}/{initiated}"
        );
    }

    #[test]
    fn indegree_concentrates_like_figure_2() {
        let cfg = small_cfg();
        let mut eng = build(96, cfg, 4);
        eng.run_cycles(100);
        let mut indeg: HashMap<NodeId, usize> = HashMap::new();
        for (_, node) in eng.nodes() {
            for e in node.view().iter() {
                *indeg.entry(e.desc.creator()).or_default() += 1;
            }
        }
        assert_eq!(indeg.len(), 96, "every node has inbound links");
        let min = *indeg.values().min().unwrap();
        let max = *indeg.values().max().unwrap();
        assert!(min >= 2, "no starved nodes (min {min})");
        assert!(max <= cfg.view_len * 3, "no hubs (max {max})");
    }

    #[test]
    fn views_never_hold_self_dups_or_foreign_descriptors() {
        let mut eng = build(32, small_cfg(), 5);
        for _ in 0..30 {
            eng.run_cycle();
            for (_, node) in eng.nodes() {
                let mut ids = Vec::new();
                for e in node.view().iter() {
                    assert_ne!(e.desc.creator(), node.id(), "no self-links");
                    assert_eq!(e.desc.owner(), node.id(), "owns all view entries");
                    assert!(!e.desc.is_redeemed());
                    ids.push(e.desc.id());
                }
                let mut dedup = ids.clone();
                dedup.sort();
                dedup.dedup();
                assert_eq!(dedup.len(), ids.len(), "no duplicate descriptor ids");
            }
        }
    }

    #[test]
    fn descriptor_ages_bounded_in_equilibrium() {
        let cfg = small_cfg();
        let mut eng = build(48, cfg, 6);
        eng.run_cycles(120);
        let tpc = cfg.ticks_per_cycle;
        let now = Timestamp(eng.clock().now());
        let max_age = eng
            .nodes()
            .flat_map(|(_, n)| {
                n.view()
                    .iter()
                    .map(|e| e.desc.age_cycles(now, tpc))
                    .collect::<Vec<_>>()
            })
            .max()
            .unwrap();
        assert!(
            max_age < cfg.view_len as u64 * 8,
            "descriptor lifetime bounded (max {max_age})"
        );
    }

    #[test]
    fn lossy_network_heals_with_ns_descriptors() {
        let cfg = small_cfg();
        let mut eng = build_net(48, cfg, 7, NetworkModel::lossy(0.10));
        eng.run_cycles(80);
        // Despite 10% loss in every direction, no false proofs and views
        // recover through NS back-fill.
        let mut lens = Vec::new();
        for (_, node) in eng.nodes() {
            assert!(node.proof_log().is_empty(), "loss is not a violation");
            lens.push(node.view().len());
        }
        let avg = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(avg > cfg.view_len as f64 * 0.7, "avg view {avg}");
        let backfills: u64 = eng.nodes().map(|(_, n)| n.stats().ns_backfills).sum();
        assert!(backfills > 0, "NS repair actually used");
    }

    #[test]
    fn mass_failure_purges_dead_links() {
        let cfg = small_cfg();
        let mut eng = build(80, cfg, 8);
        eng.run_cycles(40);
        for a in 0..32u32 {
            eng.kill(a);
        }
        eng.run_cycles(60);
        let mut dead = 0usize;
        let mut total = 0usize;
        for (_, node) in eng.nodes() {
            for e in node.view().iter() {
                total += 1;
                if e.desc.addr() < 32 {
                    dead += 1;
                }
            }
        }
        assert!(
            (dead as f64 / total as f64) < 0.05,
            "dead links purged ({dead}/{total})"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let digest = |seed: u64| {
            let mut eng = build(24, small_cfg(), seed);
            eng.run_cycles(30);
            eng.nodes()
                .map(|(_, n)| {
                    (
                        n.stats().completed,
                        n.view().len(),
                        n.view()
                            .iter()
                            .map(|e| e.desc.created_at().ticks())
                            .sum::<u64>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(digest(42), digest(42));
    }

    #[test]
    fn samples_processed_counts_each_descriptor_once() {
        let kps = keypairs(3);
        let (a, b, c) = (kps[0].clone(), kps[1].clone(), kps[2].clone());
        let cfg = small_cfg().validated();
        let mut node = SecureCyclonNode::new(a.clone(), 0, cfg, [9u8; 32], 0);
        // B holds a descriptor created by A and redeems it back to A.
        let redeemed = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap()
            .redeem(&b, LinkKind::Redeem)
            .unwrap();
        let now = cfg.ticks_per_cycle;
        let fresh = SecureDescriptor::create(&b, 1, Timestamp(now))
            .transfer(&b, a.public())
            .unwrap();
        let sample = SecureDescriptor::create(&c, 2, Timestamp(500));
        let body = RequestBody {
            redeemed: redeemed.clone(),
            fresh,
            offered: Vec::new(),
            // The initiator's sample set repeats the redemption
            // certificate, exactly as the real initiator's
            // `collect_samples` does (the redeemed copy enters its
            // redemption cache before samples are collected).
            samples: vec![redeemed, sample],
            proofs: Vec::new(),
        };
        let reply = node.handle_request(7, body, 1, now);
        assert!(reply.is_some(), "exchange accepted");
        assert_eq!(
            node.stats().samples_processed,
            3,
            "redeemed + fresh + one distinct sample; the duplicate must not double-count"
        );
    }

    #[test]
    fn forged_sample_cannot_preverify_a_transfer() {
        use crate::descriptor::{ChainLink, Genesis};
        use sc_crypto::Signature;
        let kps = keypairs(3);
        let (a, c) = (kps[0].clone(), kps[2].clone());
        let mut node = SecureCyclonNode::new(a.clone(), 0, small_cfg(), [9u8; 32], 0);
        // A forged descriptor "created by" c and "owned by" a, with
        // garbage signatures throughout.
        let genesis = Genesis {
            creator: c.public(),
            addr: 2,
            created_at: Timestamp(0),
            sig: Signature::from_bytes([0u8; 64]),
        };
        let link = ChainLink {
            to: a.public(),
            kind: LinkKind::Transfer,
            sig: Signature::from_bytes([0u8; 64]),
        };
        let forged = SecureDescriptor::from_parts(genesis, vec![link]);
        // First shown as a sample: cached lazily, without verification.
        assert!(node.absorb_sample(&forged, 0));
        // Then replayed byte-identically as an ownership transfer: the
        // intake gate must still verify — and reject — it. (The old
        // byte-identical-sample shortcut skipped verification here.)
        node.accept_transfer(forged, c.public(), 0);
        assert_eq!(node.stats().invalid_descriptors, 1);
        assert_eq!(node.stats().transfers_received, 0);
        assert_eq!(node.view().len(), 0, "forgery never reaches the view");
    }

    #[test]
    fn samples_accumulate_and_prune() {
        let mut eng = build(32, small_cfg(), 9);
        eng.run_cycles(30);
        let counts: Vec<usize> = eng.nodes().map(|(_, n)| n.sample_count()).collect();
        assert!(counts.iter().all(|&c| c > 0), "caches in use");
        // Retention bounds memory: far fewer samples than total descriptors
        // ever created (32 nodes × 30 cycles plus bootstrap).
        assert!(counts.iter().all(|&c| c < 32 * 38));
    }

    #[test]
    fn restart_cannot_reopen_a_spent_emission_budget() {
        // THE crash-restart frequency bugfix: an honest node killed after
        // its descriptor left but before the cycle ended must not re-mint
        // on restart — two mints in one period are a valid §IV-B
        // frequency proof *against itself*.
        use crate::storage::MemoryBackend;
        let kps = keypairs(3);
        let cfg = small_cfg().validated();
        let mut node = SecureCyclonNode::with_backend(
            kps[0].clone(),
            0,
            cfg,
            [1u8; 32],
            0,
            Box::new(MemoryBackend::new()),
        )
        .unwrap();
        let grant = node.sponsor_join(kps[1].public(), 5, 5_000);
        assert!(grant.is_some(), "budget available before the crash");
        assert!(!node.may_emit(5));

        // kill -9: the node object dies, only the "disk" survives.
        let disk = node.take_backend().unwrap();
        let mut revived =
            SecureCyclonNode::with_backend(kps[0].clone(), 0, cfg, [2u8; 32], 0, disk).unwrap();
        assert_eq!(revived.last_emission(), Some(5), "marker recovered");
        assert!(!revived.may_emit(5), "budget stays spent across restart");
        assert!(
            revived.sponsor_join(kps[2].public(), 5, 5_100).is_none(),
            "a second emission in cycle 5 would be self-incriminating"
        );
        assert!(revived.may_emit(6), "next cycle's budget is untouched");

        // An amnesiac restart (no backend) is exactly the old bug: it
        // would have emitted again.
        let amnesiac = SecureCyclonNode::new(kps[0].clone(), 0, cfg, [3u8; 32], 0);
        assert!(
            amnesiac.may_emit(5),
            "without durable state the bug is live"
        );
    }

    #[test]
    fn restart_restores_view_blacklist_and_spent_guard() {
        use crate::storage::MemoryBackend;
        let kps = keypairs(4);
        let (me, peer, next) = (&kps[0], &kps[1], &kps[2]);
        let cfg = small_cfg().validated();
        let mut node = SecureCyclonNode::with_backend(
            me.clone(),
            0,
            cfg,
            [1u8; 32],
            0,
            Box::new(MemoryBackend::new()),
        )
        .unwrap();

        // A held descriptor, a blacklisted culprit, and a spent state.
        let held = SecureDescriptor::create(peer, 1, Timestamp(0))
            .transfer(peer, me.public())
            .unwrap();
        node.accept_transfer(held, peer.public(), 0);
        assert_eq!(node.view().len(), 1);

        let culprit_kp = &kps[3];
        let d1 = SecureDescriptor::create(culprit_kp, 3, Timestamp(0));
        let d2 = SecureDescriptor::create(culprit_kp, 3, Timestamp(cfg.ticks_per_cycle / 2));
        let proof = ViolationProof::frequency(d1, d2, cfg.ticks_per_cycle).unwrap();
        let culprit = proof.culprit();
        assert!(node.accept_remote_proof(proof, 2));

        let spent = SecureDescriptor::create(next, 2, Timestamp(10))
            .transfer(next, me.public())
            .unwrap();
        node.remember_transfer(spent.clone(), 2);
        node.checkpoint(2);

        let disk = node.take_backend().unwrap();
        let mut revived =
            SecureCyclonNode::with_backend(me.clone(), 0, cfg, [2u8; 32], 0, disk).unwrap();
        assert_eq!(revived.view().len(), 1, "held descriptor recovered");
        assert!(revived.blacklist().contains(&culprit), "blacklist survived");
        // Re-delivery of the already-signed-away state is refused: signing
        // it a second time would be self-made §IV-B cloning evidence.
        let rejected_before = revived.stats().transfers_rejected;
        revived.accept_transfer(spent, next.public(), 3);
        assert_eq!(
            revived.stats().transfers_rejected,
            rejected_before + 1,
            "spent-state guard survived the restart"
        );
    }
}
