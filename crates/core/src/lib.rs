//! # sc-core — SecureCyclon: dependable peer sampling
//!
//! A from-scratch Rust implementation of **SecureCyclon** (Antonov &
//! Voulgaris, IEEE ICDCS 2023), a Byzantine-hardened extension of the
//! Cyclon peer-sampling protocol that *deterministically eliminates* the
//! ability of malicious nodes to over-represent themselves in the overlay.
//!
//! The key idea: node descriptors become unforgeable, unclonable tokens
//! carrying a signed [chain of ownership](descriptor::SecureDescriptor).
//! Minting descriptors too fast or handing the same descriptor to two
//! peers produces two signed artifacts that together form an
//! [indisputable proof](proof::ViolationProof) of the violation; proofs
//! are flooded and the culprit is permanently
//! [blacklisted](blacklist::Blacklist) by every correct node.
//!
//! Module map (paper section in parentheses):
//!
//! * [`descriptor`] — secure descriptors and ownership chains (§IV-A)
//! * [`chain`] — chain compatibility algebra (§IV-B)
//! * [`checks`] — sample cache, frequency + ownership checks (§IV-B)
//! * [`memo`] — bounded verified-prefix memo for incremental verification
//! * [`proof`] — transferable violation proofs (§IV-B)
//! * [`blacklist`] — proof-backed eviction (§IV-C)
//! * [`view`] — the secure partial view with non-swappable slots (§V-A)
//! * [`redemption`] — the redemption cache (§V-C)
//! * [`node`] — the full protocol node with tit-for-tat exchanges (§V-B)
//! * [`bootstrap`] — violation-free initial overlays
//! * [`wire`] — wire encoding and the §VI-A message-size model
//! * [`storage`] — durable state backends and crash-restart recovery
//!
//! # Quickstart
//!
//! ```
//! use sc_core::{SecureDescriptor, Timestamp};
//! use sc_crypto::{Keypair, Scheme};
//!
//! // Figure 4 of the paper: A → B → C, with every hop signed.
//! let a = Keypair::from_seed(Scheme::Schnorr61, [1u8; 32]);
//! let b = Keypair::from_seed(Scheme::Schnorr61, [2u8; 32]);
//! let c = Keypair::from_seed(Scheme::Schnorr61, [3u8; 32]);
//! let d = SecureDescriptor::create(&a, 0, Timestamp(0));
//! let d = d.transfer(&a, b.public()).unwrap();
//! let d = d.transfer(&b, c.public()).unwrap();
//! assert!(d.verify().is_ok());
//! assert_eq!(d.owner(), c.public());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blacklist;
pub mod bootstrap;
pub mod chain;
pub mod checks;
pub mod config;
pub mod descriptor;
pub mod fault;
pub mod memo;
pub mod msg;
pub mod node;
pub mod proof;
pub mod redemption;
pub mod storage;
pub mod time;
pub mod view;
pub mod wire;

pub use blacklist::{Blacklist, StoredProof};
pub use bootstrap::{default_phase, ring_bootstrap, BootstrapPlan};
pub use chain::{compare_chains, ChainRelation, CompareError};
pub use checks::{Observation, SampleCache};
pub use config::SecureConfig;
pub use descriptor::{
    ChainLink, DescriptorError, DescriptorId, Genesis, LinkKind, SecureDescriptor,
};
pub use fault::{FaultDecision, FaultDir, FaultSpec};
pub use memo::VerifyMemo;
pub use msg::{
    AcceptBody, JoinGrantBody, JoinPingBody, RequestBody, RoundBody, RoundReplyBody, SecureMsg,
};
pub use node::{ProofRecord, SecureCyclonNode, SecureStats};
pub use proof::{ProofError, ProofKind, ViolationProof};
pub use redemption::RedemptionCache;
pub use storage::{FileBackend, MemoryBackend, PersistentState, StateBackend};
pub use time::Timestamp;
pub use view::{SecureView, ViewEntry};
