//! Chain-of-ownership comparison: the ownership check of §IV-B.
//!
//! Two copies of the same descriptor (same [`DescriptorId`], identical
//! genesis) must report *compatible* histories: either their chains are
//! identical, or one is a prefix of the other (the longer copy is simply a
//! later snapshot of the same token). Any divergence means the owner at
//! the divergence point signed two different continuations — indisputable
//! proof of a cloning violation, with that owner as the culprit.
//!
//! The single sanctioned exception (§V-A): an owner that transferred a
//! descriptor away may retain a *non-swappable* copy and later redeem it.
//! That produces exactly one divergence whose two sides are a
//! [`LinkKind::Transfer`] and a [`LinkKind::RedeemNonSwappable`] signed by
//! the same node — allowed, and bounded creator-side by the
//! once-per-descriptor / once-per-cycle acceptance rules.

use crate::descriptor::{ChainLink, LinkKind, SecureDescriptor};
use sc_crypto::NodeId;

/// Relation between two copies of the same descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainRelation {
    /// Byte-for-byte identical chains.
    Identical,
    /// The left copy extends the right (right is a strict prefix).
    LeftExtendsRight,
    /// The right copy extends the left (left is a strict prefix).
    RightExtendsLeft,
    /// The chains diverge: the same owner signed two different
    /// continuations at `index`.
    Divergent {
        /// Index of the first differing link.
        index: usize,
        /// The owner who signed both differing links.
        signer: NodeId,
        /// Whether the divergence is the sanctioned
        /// {transfer, non-swappable redemption} pair.
        ns_exception: bool,
    },
}

/// Errors from chain comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompareError {
    /// The descriptors have different IDs; they are unrelated tokens.
    DifferentIds,
    /// Same ID but different genesis records: the creator signed two
    /// distinct descriptors with the same timestamp. Not a chain matter —
    /// the caller should treat it as a frequency violation (Δt = 0).
    GenesisMismatch,
}

impl core::fmt::Display for CompareError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompareError::DifferentIds => write!(f, "descriptors have different ids"),
            CompareError::GenesisMismatch => {
                write!(f, "same id but conflicting genesis records")
            }
        }
    }
}

impl std::error::Error for CompareError {}

fn links_equal(a: &ChainLink, b: &ChainLink) -> bool {
    a.to == b.to && a.kind == b.kind && a.sig == b.sig
}

fn is_ns_pair(a: &ChainLink, b: &ChainLink) -> bool {
    matches!(
        (a.kind, b.kind),
        (LinkKind::Transfer, LinkKind::RedeemNonSwappable)
            | (LinkKind::RedeemNonSwappable, LinkKind::Transfer)
    )
}

/// Compares two copies of a descriptor and classifies their relation.
///
/// Does **not** verify signatures; callers are expected to have verified
/// both descriptors first (proof construction re-verifies).
///
/// # Errors
///
/// See [`CompareError`].
pub fn compare_chains(
    left: &SecureDescriptor,
    right: &SecureDescriptor,
) -> Result<ChainRelation, CompareError> {
    if left.id() != right.id() {
        return Err(CompareError::DifferentIds);
    }
    if left.genesis() != right.genesis() {
        return Err(CompareError::GenesisMismatch);
    }
    let lc = left.chain();
    let rc = right.chain();
    let common = lc.len().min(rc.len());
    // Fast path: the running state digest at `common` commits to every
    // field of every link up to that length, so equal digests mean the
    // whole common prefix is byte-identical — the dominant case (repeat
    // sightings of the same descriptor) is one 32-byte compare instead
    // of a link-by-link walk.
    if left.prefix_state(common) != right.prefix_state(common) {
        let i = (0..common)
            .find(|&i| !links_equal(&lc[i], &rc[i]))
            .expect("prefix digests differ, so some link differs");
        return Ok(ChainRelation::Divergent {
            index: i,
            signer: left.owner_at(i),
            ns_exception: is_ns_pair(&lc[i], &rc[i]),
        });
    }
    Ok(match lc.len().cmp(&rc.len()) {
        core::cmp::Ordering::Equal => ChainRelation::Identical,
        core::cmp::Ordering::Greater => ChainRelation::LeftExtendsRight,
        core::cmp::Ordering::Less => ChainRelation::RightExtendsLeft,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::SecureDescriptor;
    use crate::time::Timestamp;
    use sc_crypto::{Keypair, Scheme};

    fn kp(tag: u8) -> Keypair {
        Keypair::from_seed(Scheme::Schnorr61, [tag; 32])
    }

    fn base() -> (Keypair, Keypair, SecureDescriptor) {
        let a = kp(1);
        let b = kp(2);
        let d = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        (a, b, d)
    }

    #[test]
    fn identical_chains() {
        let (_, _, d) = base();
        assert_eq!(compare_chains(&d, &d.clone()), Ok(ChainRelation::Identical));
    }

    #[test]
    fn prefix_relations() {
        let (_, b, d) = base();
        let longer = d.transfer(&b, kp(3).public()).unwrap();
        assert_eq!(
            compare_chains(&longer, &d),
            Ok(ChainRelation::LeftExtendsRight)
        );
        assert_eq!(
            compare_chains(&d, &longer),
            Ok(ChainRelation::RightExtendsLeft)
        );
    }

    #[test]
    fn paper_example_divergence_blames_b() {
        // Paper §IV-B: A→B→C→D→E vs A→B→F→G proves B cloned.
        let (a, b, c, dd, e, f, g) = (kp(1), kp(2), kp(3), kp(4), kp(5), kp(6), kp(7));
        let ab = SecureDescriptor::create(&a, 0, Timestamp(0))
            .transfer(&a, b.public())
            .unwrap();
        let left = ab
            .transfer(&b, c.public())
            .unwrap()
            .transfer(&c, dd.public())
            .unwrap()
            .transfer(&dd, e.public())
            .unwrap();
        let right = ab
            .transfer(&b, f.public())
            .unwrap()
            .transfer(&f, g.public())
            .unwrap();
        match compare_chains(&left, &right).unwrap() {
            ChainRelation::Divergent {
                index,
                signer,
                ns_exception,
            } => {
                assert_eq!(index, 1);
                assert_eq!(signer, b.public(), "B is the culprit");
                assert!(!ns_exception);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn creator_cloning_blames_creator() {
        let (a, b, c) = (kp(1), kp(2), kp(3));
        let d = SecureDescriptor::create(&a, 0, Timestamp(0));
        let left = d.transfer(&a, b.public()).unwrap();
        let right = d.transfer(&a, c.public()).unwrap();
        match compare_chains(&left, &right).unwrap() {
            ChainRelation::Divergent { index, signer, .. } => {
                assert_eq!(index, 0);
                assert_eq!(signer, a.public());
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn ns_redemption_is_the_allowed_exception() {
        use crate::descriptor::LinkKind;
        let (_, b, d) = base();
        let circulating = d.transfer(&b, kp(3).public()).unwrap();
        let ns_copy = d.redeem(&b, LinkKind::RedeemNonSwappable).unwrap();
        match compare_chains(&circulating, &ns_copy).unwrap() {
            ChainRelation::Divergent {
                signer,
                ns_exception,
                ..
            } => {
                assert_eq!(signer, b.public());
                assert!(ns_exception, "transfer/ns-redeem pair is sanctioned");
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn transfer_plus_regular_redeem_is_a_violation() {
        use crate::descriptor::LinkKind;
        let (_, b, d) = base();
        let circulating = d.transfer(&b, kp(3).public()).unwrap();
        let spent = d.redeem(&b, LinkKind::Redeem).unwrap();
        match compare_chains(&circulating, &spent).unwrap() {
            ChainRelation::Divergent {
                ns_exception,
                signer,
                ..
            } => {
                assert!(!ns_exception, "double-spend via redeem is not excused");
                assert_eq!(signer, b.public());
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn different_ids_rejected() {
        let a = kp(1);
        let d1 = SecureDescriptor::create(&a, 0, Timestamp(0));
        let d2 = SecureDescriptor::create(&a, 0, Timestamp(1000));
        assert_eq!(compare_chains(&d1, &d2), Err(CompareError::DifferentIds));
    }

    #[test]
    fn genesis_mismatch_detected() {
        // Same creator, same timestamp, different address — the creator
        // minted two descriptors with one timestamp.
        let a = kp(1);
        let d1 = SecureDescriptor::create(&a, 0, Timestamp(0));
        let d2 = SecureDescriptor::create(&a, 9, Timestamp(0));
        assert_eq!(compare_chains(&d1, &d2), Err(CompareError::GenesisMismatch));
    }
}
