//! The redemption cache (§V-C).
//!
//! Old descriptors get redeemed almost as soon as they are received, so a
//! clone made at high age may vanish before ever being cross-checked. To
//! close that window, a node keeps each descriptor it redeems for a few
//! cycles and ships those copies as samples in every gossip message,
//! giving the network a post-mortem chance to match them against
//! still-circulating clones.

use crate::descriptor::SecureDescriptor;
use sc_crypto::NodeId;
use std::collections::VecDeque;

/// FIFO cache of recently redeemed descriptors.
///
/// Bounded two ways: by *age* (`prune` drops entries older than the
/// retention window) and by *count* (`push` evicts the oldest entry once
/// `max_entries` is reached). The age bound alone is not enough — under
/// heavy churn one retention window can see arbitrarily many redemptions,
/// and every entry is shipped as a sample in every gossip message, so an
/// unbounded cache inflates both memory and §VI-A traffic.
#[derive(Debug, Default)]
pub struct RedemptionCache {
    entries: VecDeque<(u64, SecureDescriptor)>,
    retention_cycles: u64,
    max_entries: usize,
}

impl RedemptionCache {
    /// Creates a cache retaining redeemed descriptors for
    /// `retention_cycles` cycles, with no entry cap. Zero disables the
    /// mechanism (the paper's "no redemption cache" baseline in Figure 7).
    pub fn new(retention_cycles: u64) -> Self {
        Self::bounded(retention_cycles, 0)
    }

    /// Creates a cache bounded by age *and* entry count. A
    /// `max_entries` of zero means "no cap".
    pub fn bounded(retention_cycles: u64, max_entries: usize) -> Self {
        RedemptionCache {
            entries: VecDeque::new(),
            retention_cycles,
            max_entries,
        }
    }

    /// Records a descriptor this node just redeemed, evicting the oldest
    /// entry if the cache is at its entry cap.
    pub fn push(&mut self, desc: SecureDescriptor, cycle: u64) {
        if self.retention_cycles == 0 {
            return;
        }
        while self.max_entries > 0 && self.entries.len() >= self.max_entries {
            self.entries.pop_front();
        }
        self.entries.push_back((cycle, desc));
    }

    /// The entry cap (0 = uncapped).
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Number of retained descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the retained descriptors (sent as gossip samples).
    pub fn iter(&self) -> impl Iterator<Item = &SecureDescriptor> {
        self.entries.iter().map(|(_, d)| d)
    }

    /// Iterates over `(redeemed_cycle, descriptor)` pairs — the shape a
    /// durable-state checkpoint persists.
    pub fn entries(&self) -> impl Iterator<Item = (u64, &SecureDescriptor)> {
        self.entries.iter().map(|(c, d)| (*c, d))
    }

    /// Drops entries older than the retention window.
    pub fn prune(&mut self, now_cycle: u64) {
        let horizon = now_cycle.saturating_sub(self.retention_cycles);
        while let Some((cycle, _)) = self.entries.front() {
            if *cycle < horizon {
                self.entries.pop_front();
            } else {
                break;
            }
        }
    }

    /// Removes entries created by `creator` (post-blacklist purge).
    pub fn purge_creator(&mut self, creator: &NodeId) {
        self.entries.retain(|(_, d)| d.creator() != *creator);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::LinkKind;
    use crate::time::Timestamp;
    use sc_crypto::{Keypair, Scheme};

    fn redeemed(tag: u8, ts: u64) -> SecureDescriptor {
        let a = Keypair::from_seed(Scheme::Schnorr61, [tag; 32]);
        let b = Keypair::from_seed(Scheme::Schnorr61, [tag + 100; 32]);
        SecureDescriptor::create(&a, 0, Timestamp(ts))
            .transfer(&a, b.public())
            .unwrap()
            .redeem(&b, LinkKind::Redeem)
            .unwrap()
    }

    #[test]
    fn push_and_prune() {
        let mut cache = RedemptionCache::new(5);
        cache.push(redeemed(1, 0), 10);
        cache.push(redeemed(2, 0), 12);
        assert_eq!(cache.len(), 2);
        cache.prune(16);
        assert_eq!(cache.len(), 1, "entry from cycle 10 expired");
        cache.prune(18);
        assert!(cache.is_empty());
    }

    #[test]
    fn zero_retention_disables() {
        let mut cache = RedemptionCache::new(0);
        cache.push(redeemed(1, 0), 10);
        assert!(cache.is_empty());
    }

    #[test]
    fn entry_cap_evicts_oldest_first() {
        let mut cache = RedemptionCache::bounded(5, 3);
        for tag in 1..=5u8 {
            cache.push(redeemed(tag, tag as u64 * 100), 10);
        }
        assert_eq!(cache.len(), 3, "cap enforced");
        let held: Vec<u64> = cache.iter().map(|d| d.created_at().0).collect();
        assert_eq!(held, vec![300, 400, 500], "oldest entries evicted");
        // Uncapped cache keeps everything within the window.
        let mut open = RedemptionCache::new(5);
        for tag in 1..=5u8 {
            open.push(redeemed(tag, tag as u64 * 100), 10);
        }
        assert_eq!(open.len(), 5);
    }

    #[test]
    fn purge_creator() {
        let mut cache = RedemptionCache::new(5);
        let d1 = redeemed(1, 0);
        let victim = d1.creator();
        cache.push(d1, 10);
        cache.push(redeemed(2, 0), 10);
        cache.purge_creator(&victim);
        assert_eq!(cache.len(), 1);
        assert!(cache.iter().all(|d| d.creator() != victim));
    }
}
