//! Durable-log corruption property tests: recovery from a damaged
//! `FileBackend` log must never panic and never resurrect a partial
//! record — for a torn final record, a bit-flip anywhere in the file,
//! and truncation at *every* byte offset, the fold recovers exactly the
//! longest intact prefix of records and nothing more.
//!
//! These mirror `wire_props.rs` for the disk format: the log inherits
//! the wire codec's allocation bounds, so a corrupt length prefix can
//! at most cost `min(file len, max_frame_bytes)` of memory.

use proptest::prelude::*;
use sc_core::wire::WireLimits;
use sc_core::{
    FileBackend, PersistentState, SecureDescriptor, StateBackend, Timestamp, ViolationProof,
};
use sc_crypto::{sha256, Keypair, Scheme};
use std::fs;
use std::path::{Path, PathBuf};

const PERIOD: u64 = 1000;

fn kp(tag: u8) -> Keypair {
    Keypair::from_seed(Scheme::KeyedHash, [tag.wrapping_add(1); 32])
}

/// A descriptor created by `kp(tag)` and owned by `kp(200)`.
fn owned(tag: u8, ts: u64) -> SecureDescriptor {
    let creator = kp(tag);
    let me = kp(200);
    SecureDescriptor::create(&creator, tag as u32, Timestamp(ts))
        .transfer(&creator, me.public())
        .expect("legal transfer")
}

fn frequency_proof(tag: u8, ts: u64) -> ViolationProof {
    let c = kp(tag);
    let d1 = SecureDescriptor::create(&c, 1, Timestamp(ts));
    let d2 = SecureDescriptor::create(&c, 1, Timestamp(ts + PERIOD / 2));
    ViolationProof::frequency(d1, d2, PERIOD).expect("genuine violation")
}

/// Builds a representative log — checkpoint plus a mixed tail — and
/// returns its raw bytes together with every record boundary offset
/// (including 0 and the full length).
fn reference_log(dir: &Path) -> (Vec<u8>, Vec<usize>) {
    let path = dir.join("reference.log");
    let _ = fs::remove_file(&path);
    let mut backend = FileBackend::open(&path).expect("open");
    let mut bounds = vec![0usize];
    let mut state = PersistentState {
        cycle: 7,
        emitted_cycle: Some(7),
        ..Default::default()
    };
    state.view.push((owned(1, 100), false));
    state.view.push((owned(2, 200), true));
    state.reserve.push(owned(3, 300));
    state.redemptions.push((5, owned(4, 400)));
    state.spent.push(([9u8; 32], 6));
    backend.save_checkpoint(&state).expect("checkpoint");
    bounds.push(backend.log_bytes() as usize);
    backend.record_emission(8).expect("emit");
    bounds.push(backend.log_bytes() as usize);
    backend
        .record_spent(&sha256(b"spent-state"), 8)
        .expect("spent");
    bounds.push(backend.log_bytes() as usize);
    backend
        .record_proof(&frequency_proof(100, 0), 8)
        .expect("proof");
    bounds.push(backend.log_bytes() as usize);
    backend.record_emission(9).expect("emit");
    bounds.push(backend.log_bytes() as usize);
    let bytes = fs::read(&path).expect("read back");
    assert_eq!(*bounds.last().unwrap(), bytes.len());
    (bytes, bounds)
}

/// Writes `bytes` as a log file and runs recovery over it.
fn recover(path: &Path, bytes: &[u8]) -> Option<PersistentState> {
    fs::write(path, bytes).expect("write corrupted log");
    let mut backend = FileBackend::open(path).expect("open");
    backend
        .load(PERIOD, &WireLimits::DEFAULT)
        .expect("load is Ok even on corrupt content")
}

/// Comparable digest of a recovery result (`PersistentState` itself has
/// no `PartialEq`; identity is checked through counts and spent set).
type Summary = Option<(
    u64,
    Option<u64>,
    usize,
    usize,
    usize,
    usize,
    Vec<([u8; 32], u64)>,
)>;

fn summarize(state: &Option<PersistentState>) -> Summary {
    state.as_ref().map(|s| {
        (
            s.cycle,
            s.emitted_cycle,
            s.view.len(),
            s.reserve.len(),
            s.redemptions.len(),
            s.proofs.len(),
            s.spent.clone(),
        )
    })
}

fn scratch_dir(test: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sc-storage-props-{}-{}", test, std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Truncation at *every* byte offset — exhaustive, not sampled: the
/// recovered state is exactly the fold of the longest record-aligned
/// prefix. A torn final record is dropped, never half-applied.
#[test]
fn truncation_at_every_offset_recovers_the_longest_intact_prefix() {
    let dir = scratch_dir("trunc");
    let (bytes, bounds) = reference_log(&dir);
    let case = dir.join("case.log");
    // Expected result for each aligned prefix, computed once.
    let expected: Vec<Summary> = bounds
        .iter()
        .map(|&b| summarize(&recover(&case, &bytes[..b])))
        .collect();
    for cut in 0..=bytes.len() {
        let aligned = bounds.iter().rposition(|&b| b <= cut).unwrap();
        let got = summarize(&recover(&case, &bytes[..cut]));
        assert_eq!(
            got, expected[aligned],
            "truncation at byte {cut} must recover the prefix ending at record boundary {}",
            bounds[aligned]
        );
    }
    // Sanity: the full log actually recovers the tail records.
    let full = expected
        .last()
        .unwrap()
        .as_ref()
        .expect("full log recovers");
    assert_eq!(full.1, Some(9), "both emission records folded in");
    assert_eq!(full.5, 1, "proof record folded in");
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single flipped byte anywhere in the log: recovery never panics
    /// and the result is the fold of SOME record-aligned prefix of the
    /// original — corruption can only shorten history, never invent it.
    #[test]
    fn bit_flips_never_panic_and_never_extend_recovery(
        pos_seed in proptest::any::<u64>(),
        flip in 1u8..=255,
    ) {
        let dir = scratch_dir("flip");
        let (bytes, bounds) = reference_log(&dir);
        let case = dir.join("case.log");
        let prefixes: Vec<Summary> = bounds
            .iter()
            .map(|&b| summarize(&recover(&case, &bytes[..b])))
            .collect();
        let mut corrupt = bytes.clone();
        let pos = (pos_seed % corrupt.len() as u64) as usize;
        corrupt[pos] ^= flip;
        let got = summarize(&recover(&case, &corrupt));
        prop_assert!(
            prefixes.contains(&got),
            "flip at byte {pos} produced a state that matches no intact prefix"
        );
    }

    /// Garbage appended after the intact log (a crash mid-append wrote
    /// junk) leaves the recovered state identical to the clean log's.
    #[test]
    fn appended_garbage_never_changes_the_recovered_state(
        junk in proptest::collection::vec(proptest::any::<u8>(), 1..64),
    ) {
        let dir = scratch_dir("junk");
        let (bytes, _) = reference_log(&dir);
        let case = dir.join("case.log");
        let clean = summarize(&recover(&case, &bytes));
        let mut extended = bytes.clone();
        extended.extend_from_slice(&junk);
        let got = summarize(&recover(&case, &extended));
        prop_assert_eq!(got, clean);
    }

    /// A log of pure random bytes: recovery never panics and almost
    /// always finds nothing (a 4-byte checksum guards every record).
    #[test]
    fn random_bytes_never_panic(
        bytes in proptest::collection::vec(proptest::any::<u8>(), 0..512),
    ) {
        let dir = scratch_dir("random");
        let case = dir.join("case.log");
        let _ = recover(&case, &bytes);
    }
}
