//! Protocol-level security tests: crafted requests fed directly into the
//! passive-side handler, asserting each acceptance and refusal rule of
//! §IV-A (redemption certificates) and §V-A (non-swappable restrictions).

use sc_core::{
    LinkKind, RequestBody, SecureConfig, SecureCyclonNode, SecureDescriptor, SecureMsg, Timestamp,
    ViolationProof,
};
use sc_crypto::{Keypair, Scheme};
use sc_sim::testkit::with_node_ctx;
use sc_sim::{Addr, NodeCtx, SimNode};

const TPC: u64 = 1000;

fn kp(tag: u8) -> Keypair {
    Keypair::from_seed(Scheme::KeyedHash, [tag; 32])
}

fn cfg() -> SecureConfig {
    SecureConfig::default().with_view_len(8).with_swap_len(3)
}

/// A creator node ("Carol") plus helpers to craft exchanges against it.
struct Harness {
    carol: SecureCyclonNode,
    carol_kp: Keypair,
    cycle: u64,
}

impl Harness {
    fn new() -> Self {
        let carol_kp = kp(1);
        let mut carol = SecureCyclonNode::new(carol_kp.clone(), 1, cfg(), [9; 32], 0);
        // Give Carol a working view so she can answer exchanges.
        for t in 10u8..16 {
            let peer = kp(t);
            let d = SecureDescriptor::create(&peer, t as Addr, Timestamp(0))
                .transfer(&peer, carol_kp.public())
                .unwrap();
            assert!(carol.accept_bootstrap(d));
        }
        Harness {
            carol,
            carol_kp,
            cycle: 50,
        }
    }

    fn now(&self) -> u64 {
        self.cycle * TPC
    }

    /// A descriptor Carol created, owned by `holder` (one hop).
    fn carol_token(&self, holder: &Keypair, ts: u64) -> SecureDescriptor {
        SecureDescriptor::create(&self.carol_kp, 1, Timestamp(ts))
            .transfer(&self.carol_kp, holder.public())
            .unwrap()
    }

    /// Builds a well-formed request from `initiator` redeeming `token`.
    fn request(
        &self,
        initiator: &Keypair,
        token: &SecureDescriptor,
        kind: LinkKind,
    ) -> RequestBody {
        let redeemed = token.redeem(initiator, kind).expect("holder redeems");
        let fresh = SecureDescriptor::create(initiator, 99, Timestamp(self.now() + 7))
            .transfer(initiator, self.carol_kp.public())
            .expect("fresh handed to creator");
        RequestBody {
            redeemed,
            fresh,
            offered: Vec::new(),
            samples: Vec::new(),
            proofs: Vec::new(),
        }
    }

    /// Delivers a request to Carol; returns her reply, if any.
    fn deliver(&mut self, from: Addr, body: RequestBody) -> Option<SecureMsg> {
        let cycle = self.cycle;
        let carol = &mut self.carol;
        let (reply, _sends) = with_node_ctx(cycle, TPC, 1, |ctx: &mut NodeCtx<'_, SecureMsg>| {
            carol.on_rpc(from, SecureMsg::Request(Box::new(body)), ctx)
        });
        reply
    }

    fn next_cycle(&mut self) {
        self.cycle += 1;
    }
}

fn accepted(reply: &Option<SecureMsg>) -> bool {
    matches!(reply, Some(SecureMsg::Accept(_)))
}

#[test]
fn valid_redemption_is_accepted() {
    let mut h = Harness::new();
    let bob = kp(2);
    let token = h.carol_token(&bob, 1000);
    let reply = h.deliver(2, h.request(&bob, &token, LinkKind::Redeem));
    assert!(accepted(&reply));
    if let Some(SecureMsg::Accept(body)) = reply {
        assert_eq!(body.transfers.len(), 1, "tit-for-tat: one transfer first");
        assert!(!body.samples.is_empty(), "samples of the rest of the view");
    }
}

#[test]
fn foreign_certificate_is_refused() {
    // A descriptor created by someone else is not a certificate for Carol.
    let mut h = Harness::new();
    let bob = kp(2);
    let mallory = kp(3);
    let foreign = SecureDescriptor::create(&mallory, 3, Timestamp(1000))
        .transfer(&mallory, bob.public())
        .unwrap();
    let redeemed = foreign.redeem(&bob, LinkKind::Redeem).unwrap();
    let fresh = SecureDescriptor::create(&bob, 99, Timestamp(h.now() + 7))
        .transfer(&bob, h.carol_kp.public())
        .unwrap();
    let reply = h.deliver(
        2,
        RequestBody {
            redeemed,
            fresh,
            offered: vec![],
            samples: vec![],
            proofs: vec![],
        },
    );
    assert!(reply.is_none(), "wrong creator refused");
}

#[test]
fn unredeemed_certificate_is_refused() {
    // Presenting an owned descriptor without the terminal redemption link.
    let mut h = Harness::new();
    let bob = kp(2);
    let token = h.carol_token(&bob, 1000);
    let fresh = SecureDescriptor::create(&bob, 99, Timestamp(h.now() + 7))
        .transfer(&bob, h.carol_kp.public())
        .unwrap();
    let reply = h.deliver(
        2,
        RequestBody {
            redeemed: token,
            fresh,
            offered: vec![],
            samples: vec![],
            proofs: vec![],
        },
    );
    assert!(reply.is_none());
}

#[test]
fn regular_replay_is_refused() {
    let mut h = Harness::new();
    let bob = kp(2);
    let token = h.carol_token(&bob, 1000);
    let body = h.request(&bob, &token, LinkKind::Redeem);
    assert!(accepted(&h.deliver(2, body.clone())));
    h.next_cycle();
    assert!(
        h.deliver(2, body).is_none(),
        "same certificate cannot be spent twice"
    );
}

#[test]
fn regular_plus_ns_redemption_both_accepted() {
    // §V-A: the final owner redeems normally AND a past owner redeems a
    // retained non-swappable copy — the one sanctioned double-spend.
    let mut h = Harness::new();
    let bob = kp(2); // past owner, keeps the NS copy
    let dave = kp(3); // final owner
    let at_bob = h.carol_token(&bob, 1000);
    let at_dave = at_bob.transfer(&bob, dave.public()).unwrap();

    let reply = h.deliver(3, h.request(&dave, &at_dave, LinkKind::Redeem));
    assert!(
        accepted(&reply),
        "final owner's regular redemption accepted"
    );

    h.next_cycle();
    let reply = h.deliver(2, h.request(&bob, &at_bob, LinkKind::RedeemNonSwappable));
    assert!(
        accepted(&reply),
        "past owner's single NS redemption accepted"
    );
}

#[test]
fn ns_rule_1_one_ns_redemption_per_descriptor() {
    // A gang passes one descriptor around so several members hold NS
    // copies (the §V-A abuse); only the first NS redemption is accepted.
    let mut h = Harness::new();
    let b1 = kp(2);
    let b2 = kp(3);
    let at_b1 = h.carol_token(&b1, 1000);
    let at_b2 = at_b1.transfer(&b1, b2.public()).unwrap();

    let reply = h.deliver(2, h.request(&b1, &at_b1, LinkKind::RedeemNonSwappable));
    assert!(accepted(&reply), "first NS redemption accepted");

    h.next_cycle();
    let reply = h.deliver(3, h.request(&b2, &at_b2, LinkKind::RedeemNonSwappable));
    assert!(
        reply.is_none(),
        "second NS redemption of the same id refused"
    );
}

#[test]
fn ns_rule_2_one_ns_redemption_per_cycle() {
    // Two *different* descriptors NS-redeemed within one cycle: the
    // second is refused; next cycle it is welcome.
    let mut h = Harness::new();
    let b1 = kp(2);
    let b2 = kp(3);
    let t1 = h.carol_token(&b1, 1000);
    let t2 = h.carol_token(&b2, 2000);

    assert!(accepted(
        &h.deliver(2, h.request(&b1, &t1, LinkKind::RedeemNonSwappable))
    ));
    let again = h.request(&b2, &t2, LinkKind::RedeemNonSwappable);
    assert!(
        h.deliver(3, again.clone()).is_none(),
        "second NS redemption in the same cycle refused"
    );
    h.next_cycle();
    assert!(
        accepted(&h.deliver(3, again)),
        "accepted in the following cycle"
    );
}

#[test]
fn ns_rule_3_swap_cap_limits_ns_exchanges() {
    // With ns_swap_cap = 1, an NS-initiated exchange trades exactly one
    // descriptor: no tit-for-tat session is opened for more.
    let carol_kp = kp(1);
    let mut cfg = cfg();
    cfg.ns_swap_cap = Some(1);
    let mut carol = SecureCyclonNode::new(carol_kp.clone(), 1, cfg, [9; 32], 0);
    for t in 10u8..16 {
        let peer = kp(t);
        let d = SecureDescriptor::create(&peer, t as Addr, Timestamp(0))
            .transfer(&peer, carol_kp.public())
            .unwrap();
        carol.accept_bootstrap(d);
    }
    let bob = kp(2);
    let token = SecureDescriptor::create(&carol_kp, 1, Timestamp(1000))
        .transfer(&carol_kp, bob.public())
        .unwrap();
    let redeemed = token.redeem(&bob, LinkKind::RedeemNonSwappable).unwrap();
    let fresh = SecureDescriptor::create(&bob, 99, Timestamp(50 * TPC + 7))
        .transfer(&bob, carol_kp.public())
        .unwrap();
    let body = RequestBody {
        redeemed,
        fresh,
        offered: vec![],
        samples: vec![],
        proofs: vec![],
    };
    let (reply, _) = with_node_ctx(50, TPC, 1, |ctx: &mut NodeCtx<'_, SecureMsg>| {
        carol.on_rpc(2, SecureMsg::Request(Box::new(body)), ctx)
    });
    assert!(accepted(&reply));

    // A follow-up round must be rejected: the cap closed the session.
    let next = SecureDescriptor::create(&kp(20), 20, Timestamp(3000))
        .transfer(&kp(20), bob.public())
        .unwrap()
        .transfer(&bob, carol_kp.public())
        .unwrap();
    let (round_reply, _) = with_node_ctx(50, TPC, 1, |ctx: &mut NodeCtx<'_, SecureMsg>| {
        carol.on_rpc(
            2,
            SecureMsg::Round(Box::new(sc_core::RoundBody { transfer: next })),
            ctx,
        )
    });
    assert!(round_reply.is_none(), "no session beyond the NS cap");
}

#[test]
fn stale_fresh_descriptor_is_refused() {
    // Fresh descriptor with a timestamp far outside the skew window.
    let mut h = Harness::new();
    let bob = kp(2);
    let token = h.carol_token(&bob, 1000);
    let redeemed = token.redeem(&bob, LinkKind::Redeem).unwrap();
    let stale_fresh = SecureDescriptor::create(&bob, 99, Timestamp(5 * TPC))
        .transfer(&bob, h.carol_kp.public())
        .unwrap();
    let reply = h.deliver(
        2,
        RequestBody {
            redeemed,
            fresh: stale_fresh,
            offered: vec![],
            samples: vec![],
            proofs: vec![],
        },
    );
    assert!(
        reply.is_none(),
        "cycle-50 exchange with a cycle-5 fresh refused"
    );
}

#[test]
fn fresh_from_third_party_is_refused() {
    // The fresh descriptor must be created by the redeemer itself.
    let mut h = Harness::new();
    let bob = kp(2);
    let eve = kp(4);
    let token = h.carol_token(&bob, 1000);
    let redeemed = token.redeem(&bob, LinkKind::Redeem).unwrap();
    let eve_fresh = SecureDescriptor::create(&eve, 99, Timestamp(h.now() + 7))
        .transfer(&eve, h.carol_kp.public())
        .unwrap();
    let reply = h.deliver(
        2,
        RequestBody {
            redeemed,
            fresh: eve_fresh,
            offered: vec![],
            samples: vec![],
            proofs: vec![],
        },
    );
    assert!(reply.is_none());
}

#[test]
fn round_without_session_is_ignored() {
    let mut h = Harness::new();
    let bob = kp(2);
    let d = h.carol_token(&bob, 1000);
    let transfer = d; // owned by bob, handed to carol? craft a transfer to carol
    let to_carol = transfer.transfer(&bob, h.carol_kp.public()).unwrap();
    let carol = &mut h.carol;
    let (reply, _) = with_node_ctx(50, TPC, 1, |ctx: &mut NodeCtx<'_, SecureMsg>| {
        carol.on_rpc(
            2,
            SecureMsg::Round(Box::new(sc_core::RoundBody { transfer: to_carol })),
            ctx,
        )
    });
    assert!(reply.is_none(), "rounds require an open exchange");
}

#[test]
fn piggybacked_proof_blacklists_the_requester() {
    // Bob commits a frequency violation elsewhere; the proof arrives
    // piggybacked on Bob's own request. Carol must refuse him.
    let mut h = Harness::new();
    let bob = kp(2);
    let d1 = SecureDescriptor::create(&bob, 2, Timestamp(7000));
    let d2 = SecureDescriptor::create(&bob, 2, Timestamp(7300));
    let proof = ViolationProof::frequency(d1, d2, TPC).unwrap();

    let token = h.carol_token(&bob, 1000);
    let mut body = h.request(&bob, &token, LinkKind::Redeem);
    body.proofs = vec![proof];
    let reply = h.deliver(2, body);
    assert!(reply.is_none(), "self-incriminating request refused");
    assert!(h.carol.blacklist().contains(&bob.public()));
}

#[test]
fn blacklisted_requester_stays_refused() {
    let mut h = Harness::new();
    let bob = kp(2);
    let d1 = SecureDescriptor::create(&bob, 2, Timestamp(7000));
    let d2 = SecureDescriptor::create(&bob, 2, Timestamp(7300));
    let proof = ViolationProof::frequency(d1, d2, TPC).unwrap();
    h.carol.import_proofs(vec![proof], h.cycle);

    let token = h.carol_token(&bob, 1000);
    let reply = h.deliver(2, h.request(&bob, &token, LinkKind::Redeem));
    assert!(reply.is_none());
    h.next_cycle();
    let token2 = h.carol_token(&bob, 2000);
    let reply = h.deliver(2, h.request(&bob, &token2, LinkKind::Redeem));
    assert!(reply.is_none(), "eviction is permanent");
}

#[test]
fn sponsor_join_respects_the_frequency_budget() {
    let mut h = Harness::new();
    let joiner = kp(7).public();
    let other = kp(8).public();
    let d1 = h.carol.sponsor_join(joiner, h.cycle, h.now());
    assert!(d1.is_some());
    let d1 = d1.unwrap();
    assert_eq!(d1.owner(), joiner);
    d1.verify().unwrap();
    assert!(
        h.carol.sponsor_join(other, h.cycle, h.now()).is_none(),
        "one creation per cycle, spent"
    );
    h.next_cycle();
    assert!(h.carol.sponsor_join(other, h.cycle, h.now()).is_some());
}
