//! Wire-codec property tests: round-trip identity for arbitrary valid
//! messages, and graceful rejection (no panic, no unbounded allocation)
//! of truncated, bit-flipped, or outright random input — over every
//! [`SecureMsg`] variant and both [`ViolationProof`] kinds.
//!
//! These back the adversarial-input guarantee of `wire::WireLimits`:
//! decoder memory is bounded by `min(input len, max_frame_bytes)` no
//! matter what a hostile peer puts in a length prefix.

use proptest::prelude::*;
use sc_core::wire::{self, WireError, WireLimits};
use sc_core::{
    AcceptBody, JoinGrantBody, JoinPingBody, LinkKind, RequestBody, RoundBody, RoundReplyBody,
    SecureDescriptor, SecureMsg, Timestamp, ViolationProof,
};
use sc_crypto::{Keypair, Scheme};

const PERIOD: u64 = 1000;

fn kp(tag: u8) -> Keypair {
    Keypair::from_seed(Scheme::KeyedHash, [tag.wrapping_add(1); 32])
}

/// Builds a descriptor owned by `kp(path.last())` after walking the
/// transfer `path`, optionally redeemed at the end.
fn descriptor(
    creator_tag: u8,
    addr: u32,
    ts: u64,
    path: &[u8],
    redeem: Option<LinkKind>,
) -> SecureDescriptor {
    let creator = kp(creator_tag);
    let mut d = SecureDescriptor::create(&creator, addr, Timestamp(ts));
    let mut owner = creator;
    for &next_tag in path {
        let next = kp(next_tag);
        if next.public() == owner.public() {
            continue;
        }
        d = d.transfer(&owner, next.public()).expect("legal transfer");
        owner = next;
    }
    if let Some(kind) = redeem {
        d = d.redeem(&owner, kind).expect("legal redemption");
    }
    d
}

/// A frequency violation: two descriptors minted by the same creator
/// closer together than `PERIOD`.
fn frequency_proof(creator_tag: u8, ts: u64) -> ViolationProof {
    let d1 = descriptor(creator_tag, 1, ts, &[], None);
    let d2 = descriptor(creator_tag, 1, ts + PERIOD / 2, &[], None);
    ViolationProof::frequency(d1, d2, PERIOD).expect("genuine violation")
}

/// A cloning violation: the same descriptor handed to two different
/// next owners.
fn cloning_proof(creator_tag: u8, ts: u64, left_tag: u8, right_tag: u8) -> ViolationProof {
    let creator = kp(creator_tag);
    let base = SecureDescriptor::create(&creator, 2, Timestamp(ts));
    let (lt, rt) = if left_tag == right_tag {
        (left_tag, left_tag.wrapping_add(1))
    } else {
        (left_tag, right_tag)
    };
    let l = base.transfer(&creator, kp(lt).public()).unwrap();
    let r = base.transfer(&creator, kp(rt).public()).unwrap();
    ViolationProof::cloning(l, r).expect("genuine violation")
}

/// Deterministically assembles one message from raw generated inputs,
/// cycling through every variant and both proof kinds.
#[allow(clippy::too_many_arguments)]
fn build_message(
    variant: u8,
    creator_tag: u8,
    addr: u32,
    ts: u64,
    path: Vec<u8>,
    extra: Vec<u8>,
    proof_kind: bool,
    with_option: bool,
) -> SecureMsg {
    // Tags 0..16 transfer among a pool disjoint from the proof creators
    // (100..) so proofs stay self-consistent.
    let d = |p: &[u8]| descriptor(creator_tag % 16, addr, ts, p, None);
    let proof = if proof_kind {
        SecureMsg::Proof(Box::new(frequency_proof(100 + (creator_tag % 16), ts)))
    } else {
        SecureMsg::Proof(Box::new(cloning_proof(
            100 + (creator_tag % 16),
            ts,
            extra.first().copied().unwrap_or(3) % 16,
            extra.get(1).copied().unwrap_or(7) % 16,
        )))
    };
    match variant % 7 {
        0 => {
            let token = descriptor(creator_tag % 16, addr, ts, &path, Some(LinkKind::Redeem));
            SecureMsg::Request(Box::new(RequestBody {
                redeemed: token,
                fresh: d(&extra),
                offered: extra.iter().map(|&t| d(&[t % 16])).collect(),
                samples: path.iter().map(|&t| d(&[t % 16])).collect(),
                proofs: match proof {
                    SecureMsg::Proof(p) => vec![*p],
                    _ => unreachable!(),
                },
            }))
        }
        1 => SecureMsg::Accept(Box::new(AcceptBody {
            transfers: path.iter().map(|&t| d(&[t % 16])).collect(),
            samples: extra.iter().map(|&t| d(&[t % 16])).collect(),
            proofs: match proof {
                SecureMsg::Proof(p) => vec![*p],
                _ => unreachable!(),
            },
        })),
        2 => SecureMsg::Round(Box::new(RoundBody { transfer: d(&path) })),
        3 => SecureMsg::RoundReply(Box::new(RoundReplyBody {
            transfer: with_option.then(|| d(&path)),
        })),
        4 => SecureMsg::JoinPing(Box::new(JoinPingBody {
            joiner: kp(creator_tag % 16).public(),
        })),
        5 => SecureMsg::JoinGrant(Box::new(JoinGrantBody {
            descriptor: d(&path),
            proofs: match proof {
                SecureMsg::Proof(p) => vec![*p],
                _ => unreachable!(),
            },
        })),
        _ => proof,
    }
}

fn encode(msg: &SecureMsg) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::encode_message(msg, &mut buf);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_is_identity_for_all_variants(
        variant in 0u8..7,
        creator_tag in 0u8..16,
        addr in proptest::any::<u32>(),
        ts in 0u64..1_000_000,
        path in proptest::collection::vec(0u8..16, 0..6),
        extra in proptest::collection::vec(0u8..16, 0..4),
        proof_kind in proptest::any::<bool>(),
        with_option in proptest::any::<bool>(),
    ) {
        let msg = build_message(
            variant, creator_tag, addr, ts, path, extra, proof_kind, with_option,
        );
        let buf = encode(&msg);
        let back = wire::decode_message(&buf, PERIOD);
        prop_assert!(back.is_ok(), "roundtrip failed: {:?}", back.err());
        // SecureMsg has no PartialEq; identity is checked through the
        // canonical encoding.
        prop_assert_eq!(encode(&back.unwrap()), buf);
    }

    #[test]
    fn truncation_always_errors_never_panics(
        variant in 0u8..7,
        creator_tag in 0u8..16,
        ts in 0u64..1_000_000,
        path in proptest::collection::vec(0u8..16, 0..5),
        cut_seed in proptest::any::<u64>(),
        proof_kind in proptest::any::<bool>(),
    ) {
        let msg = build_message(
            variant, creator_tag, 9, ts, path, vec![1, 2], proof_kind, true,
        );
        let buf = encode(&msg);
        // Every proper prefix must fail: the full parse consumed the
        // whole buffer, so a shorter one always runs out of input.
        let step = (buf.len() / 64).max(1);
        let offset = (cut_seed % step as u64) as usize;
        let mut cut = offset;
        while cut < buf.len() {
            let r = wire::decode_message(&buf[..cut], PERIOD);
            prop_assert!(r.is_err(), "prefix of {cut}/{} decoded", buf.len());
            cut += step;
        }
    }

    #[test]
    fn bit_flips_never_panic_and_successes_reencode_identically(
        variant in 0u8..7,
        creator_tag in 0u8..16,
        ts in 0u64..1_000_000,
        path in proptest::collection::vec(0u8..16, 0..5),
        pos_seed in proptest::any::<u64>(),
        flip in 1u8..=255,
        proof_kind in proptest::any::<bool>(),
    ) {
        let msg = build_message(
            variant, creator_tag, 9, ts, path, vec![1, 2], proof_kind, true,
        );
        let mut buf = encode(&msg);
        let pos = (pos_seed % buf.len() as u64) as usize;
        buf[pos] ^= flip;
        // A flipped signature or timestamp byte may still decode (the
        // codec checks structure, not signatures) — but then the codec's
        // canonicity demands the re-encoding reproduce the flipped bytes.
        if let Ok(back) = wire::decode_message(&buf, PERIOD) {
            prop_assert_eq!(encode(&back), buf);
        }
    }

    #[test]
    fn random_bytes_never_panic_and_respect_the_frame_cap(
        bytes in proptest::collection::vec(proptest::any::<u8>(), 0..512),
    ) {
        let limits = WireLimits { max_frame_bytes: 256, ..WireLimits::DEFAULT };
        let r = wire::decode_message_with(&bytes, PERIOD, &limits);
        if bytes.len() > limits.max_frame_bytes {
            prop_assert_eq!(
                r.unwrap_err(),
                WireError::FrameTooLarge { len: bytes.len(), max: 256 }
            );
        }
        // Under the cap: Ok or a typed error, never a panic. Random
        // bytes essentially never form a valid message, but either way
        // allocation was bounded by the 512-byte input.
        let _ = wire::decode_message(&bytes, PERIOD);
    }
}
