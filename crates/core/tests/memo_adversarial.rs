//! Adversarial tests for the verified-prefix memo: whatever an attacker
//! does to a chain *after* its honest prefix was memoized, incremental
//! verification must reject exactly what full verification rejects.
//!
//! Tampered copies are rebuilt through `SecureDescriptor::from_parts` —
//! the same constructor the wire codec uses — so their state digests are
//! consistent with their (malicious) content, exactly as they would be
//! arriving off the network.

use sc_core::descriptor::{ChainLink, Genesis};
use sc_core::{DescriptorError, LinkKind, SecureDescriptor, Timestamp, VerifyMemo};
use sc_crypto::{Keypair, Scheme, Signature};

fn kp(tag: u8) -> Keypair {
    Keypair::from_seed(Scheme::Schnorr61, [tag; 32])
}

/// An honest chain A → B → C → D, fully verified into `memo`.
fn memoized_chain(memo: &mut VerifyMemo) -> SecureDescriptor {
    let (a, b, c, d) = (kp(1), kp(2), kp(3), kp(4));
    let desc = SecureDescriptor::create(&a, 7, Timestamp(0))
        .transfer(&a, b.public())
        .unwrap()
        .transfer(&b, c.public())
        .unwrap()
        .transfer(&c, d.public())
        .unwrap();
    desc.verify_with(memo).unwrap();
    assert!(!memo.is_empty());
    desc
}

fn flip_sig(sig: &Signature, byte: usize) -> Signature {
    let mut bytes = *sig.as_bytes();
    bytes[byte] ^= 0x01;
    Signature::from_bytes(bytes)
}

#[test]
fn flipped_link_signature_in_memoized_prefix_is_rejected() {
    let mut memo = VerifyMemo::new(256);
    let honest = memoized_chain(&mut memo);
    for index in 0..honest.chain().len() {
        let mut links = honest.chain().to_vec();
        links[index].sig = flip_sig(&links[index].sig, 3);
        let tampered = SecureDescriptor::from_parts(*honest.genesis(), links);
        assert_eq!(
            tampered.verify_with(&mut memo).unwrap_err(),
            DescriptorError::BadLinkSignature { index },
            "tampered link {index}"
        );
        assert_eq!(tampered.verify_with(&mut memo), tampered.verify());
    }
}

#[test]
fn spliced_prefix_from_another_descriptor_is_rejected() {
    let mut memo = VerifyMemo::new(256);
    let honest = memoized_chain(&mut memo);
    // A second descriptor by the same creator, also fully memoized.
    let (a, b) = (kp(1), kp(2));
    let other = SecureDescriptor::create(&a, 7, Timestamp(5000))
        .transfer(&a, b.public())
        .unwrap();
    other.verify_with(&mut memo).unwrap();
    // Graft the honest chain onto the other genesis: every ingredient is
    // individually memoized, but the combination was never verified and
    // the link signatures commit to the original genesis digest.
    let spliced = SecureDescriptor::from_parts(*other.genesis(), honest.chain().to_vec());
    assert_eq!(
        spliced.verify_with(&mut memo).unwrap_err(),
        DescriptorError::BadLinkSignature { index: 0 }
    );
    assert_eq!(spliced.verify_with(&mut memo), spliced.verify());
}

#[test]
fn forged_genesis_under_memoized_chain_is_rejected() {
    let mut memo = VerifyMemo::new(256);
    let honest = memoized_chain(&mut memo);
    let mut genesis = *honest.genesis();
    genesis.addr = 999; // genesis signature no longer covers the content
    let forged = SecureDescriptor::from_parts(genesis, honest.chain().to_vec());
    assert_eq!(
        forged.verify_with(&mut memo).unwrap_err(),
        DescriptorError::BadGenesisSignature
    );
    assert_eq!(forged.verify_with(&mut memo), forged.verify());
}

#[test]
fn wholly_forged_genesis_signature_is_rejected() {
    let mut memo = VerifyMemo::new(256);
    let c = kp(9);
    let genesis = Genesis {
        creator: c.public(),
        addr: 1,
        created_at: Timestamp(0),
        sig: Signature::from_bytes([0xa5; 64]),
    };
    let forged = SecureDescriptor::from_parts(genesis, Vec::new());
    assert_eq!(
        forged.verify_with(&mut memo).unwrap_err(),
        DescriptorError::BadGenesisSignature
    );
    assert!(memo.is_empty(), "failed verification memoizes nothing");
}

#[test]
fn post_redemption_extension_rejected_despite_memoized_prefix() {
    let mut memo = VerifyMemo::new(256);
    let (a, b, c) = (kp(1), kp(2), kp(3));
    let redeemed = SecureDescriptor::create(&a, 7, Timestamp(0))
        .transfer(&a, b.public())
        .unwrap()
        .redeem(&b, LinkKind::Redeem)
        .unwrap();
    redeemed.verify_with(&mut memo).unwrap();
    // Append a transfer after the terminal redemption. Every prefix —
    // including the complete redeemed chain — is memoized, yet the
    // structural walk must still reject the extension.
    let mut links = redeemed.chain().to_vec();
    links.push(ChainLink {
        to: c.public(),
        kind: LinkKind::Transfer,
        sig: Signature::from_bytes([0x11; 64]),
    });
    let bad = SecureDescriptor::from_parts(*redeemed.genesis(), links);
    assert_eq!(
        bad.verify_with(&mut memo).unwrap_err(),
        DescriptorError::RedemptionNotTerminal
    );
    assert_eq!(bad.verify_with(&mut memo), bad.verify());
}

#[test]
fn forged_fork_off_memoized_prefix_is_rejected() {
    let mut memo = VerifyMemo::new(256);
    let honest = memoized_chain(&mut memo);
    // An attacker (E) forges a continuation of the honest prefix signed
    // with its own key instead of the owner's.
    let e = kp(5);
    let mut links = honest.chain().to_vec();
    links.pop();
    let forged_link = ChainLink {
        to: e.public(),
        kind: LinkKind::Transfer,
        sig: e.sign(b"not even the right message"),
    };
    links.push(forged_link);
    let forged = SecureDescriptor::from_parts(*honest.genesis(), links);
    assert_eq!(
        forged.verify_with(&mut memo).unwrap_err(),
        DescriptorError::BadLinkSignature {
            index: honest.chain().len() - 1
        }
    );
    assert_eq!(forged.verify_with(&mut memo), forged.verify());
}

#[test]
fn failed_incremental_verification_never_poisons_the_memo() {
    let mut memo = VerifyMemo::new(256);
    let honest = memoized_chain(&mut memo);
    let len_after_honest = memo.len();
    let mut links = honest.chain().to_vec();
    links[1].sig = flip_sig(&links[1].sig, 5);
    let tampered = SecureDescriptor::from_parts(*honest.genesis(), links);
    assert!(tampered.verify_with(&mut memo).is_err());
    assert_eq!(
        memo.len(),
        len_after_honest,
        "rejection must not insert tampered prefixes"
    );
    // And the tampered full digest itself must still miss.
    assert!(tampered.verify_with(&mut memo).is_err());
}

#[test]
fn memo_eviction_degrades_to_full_verification() {
    // A memo of capacity 2 cannot hold a 4-link chain's prefixes; the
    // verifier must still accept valid chains and reject tampered ones.
    let mut memo = VerifyMemo::new(2);
    let honest = memoized_chain(&mut memo);
    assert!(honest.verify_with(&mut memo).is_ok());
    let mut links = honest.chain().to_vec();
    links[0].sig = flip_sig(&links[0].sig, 0);
    let tampered = SecureDescriptor::from_parts(*honest.genesis(), links);
    assert_eq!(
        tampered.verify_with(&mut memo).unwrap_err(),
        DescriptorError::BadLinkSignature { index: 0 }
    );
}
