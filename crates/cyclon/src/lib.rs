//! # sc-cyclon — the legacy Cyclon peer-sampling baseline
//!
//! A faithful implementation of the original Cyclon shuffle protocol
//! (Voulgaris, Gavidia & van Steen, 2005) as described in §II-B of the
//! SecureCyclon paper. It exists for two reasons:
//!
//! 1. it is the substrate SecureCyclon extends, and
//! 2. it is the **baseline** of the paper's evaluation — Figure 2
//!    (indegree distribution) and Figure 3 (hub-attack takeover) are
//!    measured on this protocol.
//!
//! The crate deliberately reproduces legacy Cyclon's *lack* of defenses:
//! descriptors are unauthenticated and nodes trust whatever their gossip
//! partners present.
//!
//! # Example
//!
//! ```
//! use sc_cyclon::{CyclonConfig, CyclonNode};
//! use sc_crypto::{Keypair, Scheme};
//!
//! let kp = Keypair::from_seed(Scheme::KeyedHash, [1u8; 32]);
//! let node = CyclonNode::new(kp.public(), 0, CyclonConfig::default(), [0u8; 32]);
//! assert_eq!(node.view().capacity(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptor;
pub mod node;
pub mod view;

pub use descriptor::LegacyDescriptor;
pub use node::{CyclonConfig, CyclonMsg, CyclonNode, CyclonStats};
pub use view::View;
