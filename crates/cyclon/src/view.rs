//! The partial view: a node's bounded list of neighbor descriptors.
//!
//! Invariants maintained at all times:
//!
//! 1. at most `capacity` (the paper's ℓ, "view length") entries;
//! 2. no entry points at the view's owner;
//! 3. at most one entry per node ID.

use crate::descriptor::LegacyDescriptor;
use rand::seq::SliceRandom;
use rand::Rng;
use sc_crypto::NodeId;

/// A bounded, duplicate-free list of neighbor descriptors.
#[derive(Clone, Debug)]
pub struct View {
    owner: NodeId,
    capacity: usize,
    entries: Vec<LegacyDescriptor>,
}

impl View {
    /// Creates an empty view for `owner` holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        View {
            owner,
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of descriptors currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of descriptors (the paper's ℓ).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of free slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Whether a descriptor for `id` is present.
    pub fn contains(&self, id: &NodeId) -> bool {
        self.entries.iter().any(|d| d.id == *id)
    }

    /// Iterates over the descriptors.
    pub fn iter(&self) -> impl Iterator<Item = &LegacyDescriptor> {
        self.entries.iter()
    }

    /// Inserts `d` if it respects the invariants; reports whether it was
    /// stored.
    pub fn insert(&mut self, d: LegacyDescriptor) -> bool {
        if d.id == self.owner || self.contains(&d.id) || self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push(d);
        true
    }

    /// Increments the age of every descriptor (start-of-cycle bookkeeping).
    pub fn increment_ages(&mut self) {
        for d in &mut self.entries {
            d.age = d.age.saturating_add(1);
        }
    }

    /// Removes and returns the oldest descriptor (ties broken arbitrarily).
    pub fn remove_oldest(&mut self) -> Option<LegacyDescriptor> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| d.age)?
            .0;
        Some(self.entries.swap_remove(idx))
    }

    /// Removes and returns up to `k` uniformly random descriptors.
    pub fn remove_random<R: Rng + ?Sized>(
        &mut self,
        k: usize,
        rng: &mut R,
    ) -> Vec<LegacyDescriptor> {
        let k = k.min(self.entries.len());
        // rand's partial_shuffle moves the k chosen elements to the END of
        // the slice; split_off takes exactly that section.
        self.entries.partial_shuffle(rng, k);
        let split = self.entries.len() - k;
        self.entries.split_off(split)
    }

    /// Removes the descriptor for `id`, if present.
    pub fn remove_id(&mut self, id: &NodeId) -> Option<LegacyDescriptor> {
        let idx = self.entries.iter().position(|d| d.id == *id)?;
        Some(self.entries.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sc_crypto::{Keypair, Scheme};

    fn id(tag: u8) -> NodeId {
        Keypair::from_seed(Scheme::KeyedHash, [tag; 32]).public()
    }

    fn desc(tag: u8, age: u32) -> LegacyDescriptor {
        LegacyDescriptor {
            id: id(tag),
            addr: tag as u32,
            age,
        }
    }

    #[test]
    fn rejects_self_duplicates_and_overflow() {
        let mut v = View::new(id(0), 2);
        assert!(!v.insert(desc(0, 1)), "own descriptor rejected");
        assert!(v.insert(desc(1, 1)));
        assert!(!v.insert(desc(1, 5)), "duplicate id rejected");
        assert!(v.insert(desc(2, 1)));
        assert!(!v.insert(desc(3, 1)), "capacity enforced");
        assert_eq!(v.len(), 2);
        assert_eq!(v.free_slots(), 0);
    }

    #[test]
    fn remove_oldest_picks_max_age() {
        let mut v = View::new(id(0), 4);
        v.insert(desc(1, 3));
        v.insert(desc(2, 9));
        v.insert(desc(3, 5));
        assert_eq!(v.remove_oldest().unwrap().id, id(2));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn remove_oldest_empty_is_none() {
        let mut v = View::new(id(0), 4);
        assert!(v.remove_oldest().is_none());
    }

    #[test]
    fn remove_random_respects_k_and_removes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v = View::new(id(0), 8);
        for t in 1..=6u8 {
            v.insert(desc(t, t as u32));
        }
        let out = v.remove_random(4, &mut rng);
        assert_eq!(out.len(), 4);
        assert_eq!(v.len(), 2);
        for d in &out {
            assert!(!v.contains(&d.id));
        }
    }

    #[test]
    fn remove_random_caps_at_len() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v = View::new(id(0), 8);
        v.insert(desc(1, 1));
        let out = v.remove_random(5, &mut rng);
        assert_eq!(out.len(), 1);
        assert!(v.is_empty());
    }

    #[test]
    fn ages_increment() {
        let mut v = View::new(id(0), 4);
        v.insert(desc(1, 0));
        v.increment_ages();
        v.increment_ages();
        assert_eq!(v.iter().next().unwrap().age, 2);
    }

    #[test]
    fn remove_id_works() {
        let mut v = View::new(id(0), 4);
        v.insert(desc(1, 0));
        v.insert(desc(2, 0));
        assert_eq!(v.remove_id(&id(1)).unwrap().id, id(1));
        assert!(v.remove_id(&id(1)).is_none());
        assert_eq!(v.len(), 1);
    }
}
