//! The legacy Cyclon protocol node.
//!
//! Implements the shuffle protocol of §II-B of the SecureCyclon paper
//! (after Voulgaris et al., 2005): once per cycle a node ages its view,
//! redeems its oldest descriptor to initiate an exchange, sends a fresh
//! self-descriptor plus `s − 1` random descriptors, and merges whatever
//! comes back. No authentication, no checks — the baseline that Figure 3
//! shows being taken over by a handful of malicious nodes.

use crate::descriptor::LegacyDescriptor;
use crate::view::View;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_crypto::NodeId;
use sc_sim::{Addr, CycleCtx, NodeCtx, RpcOutcome, SimNode};

/// Protocol parameters shared by all correct nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CyclonConfig {
    /// View length ℓ: number of neighbors each node maintains.
    pub view_len: usize,
    /// Swap length s: descriptors exchanged per gossip.
    pub swap_len: usize,
}

impl Default for CyclonConfig {
    fn default() -> Self {
        // The paper's reference configuration (§VI-A).
        CyclonConfig {
            view_len: 20,
            swap_len: 3,
        }
    }
}

impl CyclonConfig {
    /// Validates parameter sanity (0 < s ≤ ℓ).
    ///
    /// # Panics
    ///
    /// Panics on invalid combinations.
    pub fn validated(self) -> Self {
        assert!(self.swap_len > 0, "swap length must be positive");
        assert!(
            self.swap_len <= self.view_len,
            "swap length cannot exceed view length"
        );
        self
    }
}

/// Wire messages of the legacy protocol.
#[derive(Clone, Debug)]
pub enum CyclonMsg {
    /// Gossip request carrying the initiator's offered descriptors
    /// (a fresh self-descriptor plus `s − 1` random ones).
    Shuffle {
        /// Offered descriptors.
        descriptors: Vec<LegacyDescriptor>,
    },
    /// Gossip response carrying the partner's `s` random descriptors.
    ShuffleResponse {
        /// Returned descriptors.
        descriptors: Vec<LegacyDescriptor>,
    },
}

/// Per-node protocol counters (used by experiments and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CyclonStats {
    /// Exchanges this node initiated.
    pub initiated: u64,
    /// Initiated exchanges that completed with a response.
    pub completed: u64,
    /// Initiated exchanges that timed out.
    pub timeouts: u64,
    /// Exchanges this node answered as the passive party.
    pub answered: u64,
}

/// A correct legacy-Cyclon node.
#[derive(Debug)]
pub struct CyclonNode {
    id: NodeId,
    addr: Addr,
    cfg: CyclonConfig,
    view: View,
    rng: SmallRng,
    stats: CyclonStats,
}

impl CyclonNode {
    /// Creates a node with an empty view.
    pub fn new(id: NodeId, addr: Addr, cfg: CyclonConfig, rng_seed: [u8; 32]) -> Self {
        let cfg = cfg.validated();
        CyclonNode {
            id,
            addr,
            view: View::new(id, cfg.view_len),
            cfg,
            rng: SmallRng::from_seed(rng_seed),
            stats: CyclonStats::default(),
        }
    }

    /// The node's ID (public key).
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's network address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The node's current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Protocol counters.
    pub fn stats(&self) -> CyclonStats {
        self.stats
    }

    /// Seeds the view with bootstrap contacts (up to the free capacity).
    pub fn bootstrap(&mut self, peers: impl IntoIterator<Item = (NodeId, Addr)>) {
        for (id, addr) in peers {
            self.view.insert(LegacyDescriptor::fresh(id, addr));
        }
    }

    fn fresh_descriptor(&self) -> LegacyDescriptor {
        LegacyDescriptor::fresh(self.id, self.addr)
    }

    /// Merges received descriptors, then refills leftover slots from the
    /// descriptors we shipped out (`backup`), per the Cyclon merge rule:
    /// received entries take priority over sent ones.
    fn merge(&mut self, received: Vec<LegacyDescriptor>, backup: &[LegacyDescriptor]) {
        for d in received {
            self.view.insert(d);
        }
        for d in backup {
            self.view.insert(*d);
        }
    }
}

impl CyclonNode {
    /// The active-thread logic, generic over the hosting node type so that
    /// wrapper enums (mixed honest/malicious networks) can delegate.
    pub fn on_cycle_any<N: SimNode<Msg = CyclonMsg>>(&mut self, ctx: &mut CycleCtx<'_, N>) {
        self.view.increment_ages();
        let Some(oldest) = self.view.remove_oldest() else {
            // Empty view: the node is isolated and cannot gossip.
            return;
        };
        let removed = self
            .view
            .remove_random(self.cfg.swap_len - 1, &mut self.rng);
        let mut offered = Vec::with_capacity(removed.len() + 1);
        offered.push(self.fresh_descriptor());
        offered.extend(removed.iter().copied());

        self.stats.initiated += 1;
        match ctx.rpc(
            oldest.addr,
            CyclonMsg::Shuffle {
                descriptors: offered,
            },
        ) {
            RpcOutcome::Reply(CyclonMsg::ShuffleResponse { descriptors }) => {
                self.stats.completed += 1;
                self.merge(descriptors, &removed);
            }
            RpcOutcome::Reply(_) | RpcOutcome::Timeout => {
                // Unreachable partner (§V-A case 1): the redeemed descriptor
                // is dropped; in *legacy* Cyclon the shipped descriptors may
                // be safely retained since nothing forbids reuse.
                self.stats.timeouts += 1;
                self.merge(Vec::new(), &removed);
            }
        }
    }

    /// The RPC-server logic, reusable by wrapper enums.
    pub fn on_rpc_any(
        &mut self,
        _from: Addr,
        msg: CyclonMsg,
        _ctx: &mut NodeCtx<'_, CyclonMsg>,
    ) -> Option<CyclonMsg> {
        match msg {
            CyclonMsg::Shuffle { descriptors } => {
                self.stats.answered += 1;
                let removed = self.view.remove_random(self.cfg.swap_len, &mut self.rng);
                self.merge(descriptors, &removed);
                Some(CyclonMsg::ShuffleResponse {
                    descriptors: removed,
                })
            }
            CyclonMsg::ShuffleResponse { .. } => None,
        }
    }
}

impl SimNode for CyclonNode {
    type Msg = CyclonMsg;

    fn on_cycle(&mut self, ctx: &mut CycleCtx<'_, Self>) {
        self.on_cycle_any(ctx);
    }

    fn on_rpc(
        &mut self,
        from: Addr,
        msg: Self::Msg,
        ctx: &mut NodeCtx<'_, Self::Msg>,
    ) -> Option<Self::Msg> {
        self.on_rpc_any(from, msg, ctx)
    }

    fn on_oneway(&mut self, _from: Addr, _msg: Self::Msg, _ctx: &mut NodeCtx<'_, Self::Msg>) {
        // Legacy Cyclon has no one-way traffic.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_crypto::{Keypair, Scheme};
    use sc_sim::{Engine, SimConfig};
    use std::collections::HashMap;

    fn keypair(i: u64) -> Keypair {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&i.to_le_bytes());
        Keypair::from_seed(Scheme::KeyedHash, seed)
    }

    /// Builds a ring-bootstrapped network of `n` correct nodes.
    fn build(n: usize, cfg: CyclonConfig, seed: u64) -> Engine<CyclonNode> {
        let ids: Vec<NodeId> = (0..n as u64).map(|i| keypair(i).public()).collect();
        let mut eng = Engine::new(SimConfig::seeded(seed));
        for i in 0..n {
            let id = ids[i];
            let mut node = CyclonNode::new(
                id,
                i as Addr,
                cfg,
                sc_sim::rng::derive_seed(seed, "node", i as u64),
            );
            // Ring bootstrap: a few successors.
            let boots: Vec<(NodeId, Addr)> = (1..=3)
                .map(|k| {
                    let j = (i + k) % n;
                    (ids[j], j as Addr)
                })
                .collect();
            node.bootstrap(boots);
            eng.spawn_with(|_| node);
        }
        eng
    }

    fn indegrees(eng: &Engine<CyclonNode>) -> HashMap<NodeId, usize> {
        let mut map: HashMap<NodeId, usize> = HashMap::new();
        for (_, node) in eng.nodes() {
            for d in node.view().iter() {
                *map.entry(d.id).or_default() += 1;
            }
        }
        map
    }

    #[test]
    fn network_converges_to_full_views() {
        let cfg = CyclonConfig {
            view_len: 8,
            swap_len: 3,
        };
        let mut eng = build(64, cfg, 11);
        eng.run_cycles(50);
        for (_, node) in eng.nodes() {
            assert_eq!(node.view().len(), cfg.view_len, "views fill up");
        }
    }

    #[test]
    fn indegree_concentrates_around_view_len() {
        let cfg = CyclonConfig {
            view_len: 8,
            swap_len: 3,
        };
        let mut eng = build(128, cfg, 3);
        eng.run_cycles(100);
        let deg = indegrees(&eng);
        assert_eq!(deg.len(), 128, "every node is somebody's neighbor");
        let min = *deg.values().min().unwrap();
        let max = *deg.values().max().unwrap();
        assert!(min >= 1, "no starved nodes (min {min})");
        assert!(max <= cfg.view_len * 4, "no hubs (max {max})");
    }

    #[test]
    fn views_never_hold_self_or_duplicates() {
        let cfg = CyclonConfig {
            view_len: 6,
            swap_len: 2,
        };
        let mut eng = build(40, cfg, 5);
        for _ in 0..30 {
            eng.run_cycle();
            for (_, node) in eng.nodes() {
                let ids: Vec<NodeId> = node.view().iter().map(|d| d.id).collect();
                assert!(!ids.contains(&node.id()));
                let mut dedup = ids.clone();
                dedup.sort();
                dedup.dedup();
                assert_eq!(dedup.len(), ids.len());
            }
        }
    }

    #[test]
    fn ages_stay_bounded_in_healthy_network() {
        let cfg = CyclonConfig {
            view_len: 8,
            swap_len: 4,
        };
        let mut eng = build(64, cfg, 7);
        eng.run_cycles(120);
        let max_age = eng
            .nodes()
            .flat_map(|(_, n)| n.view().iter().map(|d| d.age))
            .max()
            .unwrap();
        // A descriptor lives ~ℓ cycles on average; 6× is a generous bound.
        assert!(max_age < cfg.view_len as u32 * 6, "max age {max_age}");
    }

    #[test]
    fn overlay_self_heals_after_mass_failure() {
        let cfg = CyclonConfig {
            view_len: 8,
            swap_len: 3,
        };
        let mut eng = build(100, cfg, 13);
        eng.run_cycles(50);
        // Kill 40% of the network.
        for a in 0..40u32 {
            eng.kill(a);
        }
        eng.run_cycles(60);
        // Remaining nodes should have purged dead links almost entirely.
        let mut dead_links = 0usize;
        let mut total = 0usize;
        for (_, node) in eng.nodes() {
            for d in node.view().iter() {
                total += 1;
                if d.addr < 40 {
                    dead_links += 1;
                }
            }
        }
        let ratio = dead_links as f64 / total as f64;
        assert!(ratio < 0.05, "dead link ratio {ratio}");
        // And views should be full again (healing, not shrinking).
        let avg: f64 =
            eng.nodes().map(|(_, n)| n.view().len() as f64).sum::<f64>() / eng.alive_count() as f64;
        assert!(avg > cfg.view_len as f64 * 0.9, "avg view {avg}");
    }

    #[test]
    fn stats_count_exchanges() {
        let cfg = CyclonConfig {
            view_len: 4,
            swap_len: 2,
        };
        let mut eng = build(16, cfg, 17);
        eng.run_cycles(10);
        let total_initiated: u64 = eng.nodes().map(|(_, n)| n.stats().initiated).sum();
        assert_eq!(total_initiated, 160);
        let completed: u64 = eng.nodes().map(|(_, n)| n.stats().completed).sum();
        let answered: u64 = eng.nodes().map(|(_, n)| n.stats().answered).sum();
        assert_eq!(completed, answered);
        assert!(completed > 0);
    }

    #[test]
    #[should_panic(expected = "swap length")]
    fn invalid_config_rejected() {
        CyclonConfig {
            view_len: 4,
            swap_len: 5,
        }
        .validated();
    }
}
