//! Legacy Cyclon node descriptors.
//!
//! In the original Cyclon protocol (Voulgaris et al., 2005) a descriptor is
//! a plain record: the node's ID, its network address, and an *age* counter
//! incremented once per cycle. Nothing is signed — which is precisely the
//! weakness SecureCyclon addresses. This type is the baseline against which
//! the paper's Figure 3 attack is demonstrated.

use sc_crypto::NodeId;
use sc_sim::Addr;

/// A legacy (unsecured) Cyclon descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LegacyDescriptor {
    /// Unique ID of the node this descriptor points at.
    pub id: NodeId,
    /// Network address of that node.
    pub addr: Addr,
    /// Cycles since the descriptor was created (0 = fresh).
    pub age: u32,
}

impl LegacyDescriptor {
    /// Creates a fresh (age 0) descriptor.
    pub fn fresh(id: NodeId, addr: Addr) -> Self {
        LegacyDescriptor { id, addr, age: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_crypto::{Keypair, Scheme};

    #[test]
    fn fresh_has_zero_age() {
        let id = Keypair::from_seed(Scheme::KeyedHash, [1; 32]).public();
        let d = LegacyDescriptor::fresh(id, 4);
        assert_eq!(d.age, 0);
        assert_eq!(d.addr, 4);
        assert_eq!(d.id, id);
    }
}
