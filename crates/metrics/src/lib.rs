//! # sc-metrics — measurement and reporting for the SecureCyclon evaluation
//!
//! Protocol-agnostic analysis tools behind every figure of the paper's
//! evaluation (§VI):
//!
//! * [`histogram`] — integer histograms (Figure 2's indegree
//!   distribution), with quantiles and concentration checks.
//! * [`series`] — named per-cycle time series (the lines of Figures 3,
//!   5, 6).
//! * [`stats`] — summary statistics and *shape assertions*: the
//!   qualitative claims ("spikes then decays", "stays below") that define
//!   what reproducing a figure means when absolute numbers depend on the
//!   substrate.
//! * [`output`] — CSV emitters (one file per figure) and compact ASCII
//!   charts for terminal inspection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod output;
pub mod series;
pub mod stats;

pub use histogram::Histogram;
pub use output::{
    ascii_chart, save_histogram_csv, save_series_csv, write_histogram_csv, write_series_csv,
};
pub use series::TimeSeries;
pub use stats::{rises_after, spike_then_decay, stays_below, summarize, Shape, Summary};
