//! Experiment output: CSV files (one column per series) and simple
//! terminal rendering, so every figure of the paper can be regenerated as
//! both a machine-readable file and a human-skimmable chart.

use crate::histogram::Histogram;
use crate::series::TimeSeries;
use std::io::Write;
use std::path::Path;

/// Writes aligned time series as CSV: `cycle,<series...>`.
///
/// Series may have different cycle sets; missing values are left empty.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_series_csv<W: Write>(mut w: W, series: &[TimeSeries]) -> std::io::Result<()> {
    let mut cycles: Vec<u64> = series
        .iter()
        .flat_map(|s| s.points().iter().map(|&(c, _)| c))
        .collect();
    cycles.sort_unstable();
    cycles.dedup();

    write!(w, "cycle")?;
    for s in series {
        write!(w, ",{}", s.name())?;
    }
    writeln!(w)?;
    for &c in &cycles {
        write!(w, "{c}")?;
        for s in series {
            match s.points().iter().find(|&&(pc, _)| pc == c) {
                Some(&(_, v)) => write!(w, ",{v}")?,
                None => write!(w, ",")?,
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Writes aligned series to a file path, creating parent directories.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_series_csv(path: impl AsRef<Path>, series: &[TimeSeries]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    write_series_csv(std::io::BufWriter::new(file), series)
}

/// Writes a histogram as CSV: `value,count`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_histogram_csv<W: Write>(mut w: W, hist: &Histogram) -> std::io::Result<()> {
    writeln!(w, "value,count")?;
    for (v, c) in hist.iter() {
        writeln!(w, "{v},{c}")?;
    }
    Ok(())
}

/// Writes a histogram to a file path, creating parent directories.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_histogram_csv(path: impl AsRef<Path>, hist: &Histogram) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    write_histogram_csv(std::io::BufWriter::new(file), hist)
}

/// Renders series as a compact ASCII chart (rows = series, sparkline per
/// row, min/max annotated) for terminal inspection.
pub fn ascii_chart(series: &[TimeSeries], width: usize) -> String {
    const LEVELS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut out = String::new();
    let global_max = series
        .iter()
        .filter_map(|s| s.max())
        .fold(f64::NEG_INFINITY, f64::max);
    let max = if global_max.is_finite() && global_max > 0.0 {
        global_max
    } else {
        1.0
    };
    for s in series {
        let pts = s.points();
        let mut line = String::with_capacity(width);
        if pts.is_empty() {
            line.push_str(&" ".repeat(width));
        } else {
            for i in 0..width {
                let idx = i * pts.len() / width;
                let v = pts[idx.min(pts.len() - 1)].1;
                let level = ((v / max) * (LEVELS.len() - 1) as f64).round() as usize;
                line.push(LEVELS[level.min(LEVELS.len() - 1)]);
            }
        }
        out.push_str(&format!(
            "{:<28} |{line}| last={:.2} max={:.2}\n",
            s.name(),
            s.last().unwrap_or(0.0),
            s.max().unwrap_or(0.0)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_series() -> Vec<TimeSeries> {
        let mut a = TimeSeries::new("a");
        let mut b = TimeSeries::new("b");
        a.push(0, 1.0);
        a.push(1, 2.0);
        b.push(1, 5.0);
        vec![a, b]
    }

    #[test]
    fn csv_alignment() {
        let mut buf = Vec::new();
        write_series_csv(&mut buf, &two_series()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "cycle,a,b");
        assert_eq!(lines[1], "0,1,");
        assert_eq!(lines[2], "1,2,5");
    }

    #[test]
    fn histogram_csv() {
        let h: Histogram = [3u64, 3, 5].into_iter().collect();
        let mut buf = Vec::new();
        write_histogram_csv(&mut buf, &h).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("3,2"));
        assert!(text.contains("5,1"));
    }

    #[test]
    fn ascii_chart_renders() {
        let chart = ascii_chart(&two_series(), 20);
        assert!(chart.contains('a'));
        assert!(chart.contains("last=2.00"));
        // Two rows.
        assert_eq!(chart.lines().count(), 2);
    }

    #[test]
    fn save_creates_directories() {
        let dir = std::env::temp_dir().join("sc-metrics-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        save_series_csv(&path, &two_series()).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
