//! Time series: per-cycle measurements, one per experiment line
//! (e.g. "links to malicious nodes (%), swap length 3").

/// A named sequence of `(cycle, value)` points.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    name: String,
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name (used as a CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point. Cycles should be non-decreasing.
    pub fn push(&mut self, cycle: u64, value: f64) {
        self.points.push((cycle, value));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// The maximum value, if any.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .max_by(|a, b| a.total_cmp(b))
    }

    /// Value at the first point with `point.cycle >= cycle`.
    pub fn value_at(&self, cycle: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(c, _)| c >= cycle)
            .map(|&(_, v)| v)
    }

    /// Mean of values in the inclusive cycle window `[from, to]`.
    pub fn window_mean(&self, from: u64, to: u64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(c, _)| c >= from && c <= to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            return None;
        }
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let mut s = TimeSeries::new("test");
        for c in 0..10 {
            s.push(c, c as f64 * 2.0);
        }
        s
    }

    #[test]
    fn push_and_query() {
        let s = series();
        assert_eq!(s.len(), 10);
        assert_eq!(s.last(), Some(18.0));
        assert_eq!(s.max(), Some(18.0));
        assert_eq!(s.value_at(5), Some(10.0));
        assert_eq!(s.value_at(100), None);
    }

    #[test]
    fn window_mean() {
        let s = series();
        assert_eq!(s.window_mean(2, 4), Some(6.0));
        assert_eq!(s.window_mean(100, 200), None);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.last(), None);
        assert_eq!(s.max(), None);
    }
}
