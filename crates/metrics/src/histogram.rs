//! Integer histograms (the Figure 2 indegree distribution).

use std::collections::BTreeMap;

/// A sparse histogram over `u64` values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation of `value`.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_default() += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of observations equal to `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Iterates over `(value, count)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Smallest observed value.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest observed value.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Arithmetic mean of the observations.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().map(|(&v, &c)| v * c).sum();
        sum as f64 / self.total as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let var: f64 = self
            .counts
            .iter()
            .map(|(&v, &c)| c as f64 * (v as f64 - mean).powi(2))
            .sum::<f64>()
            / self.total as f64;
        var.sqrt()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by cumulative count.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (&v, &c) in &self.counts {
            cum += c;
            if cum >= target {
                return Some(v);
            }
        }
        self.max()
    }

    /// Fraction of observations within `[lo, hi]` inclusive.
    pub fn fraction_within(&self, lo: u64, hi: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let inside: u64 = self.counts.range(lo..=hi).map(|(_, &c)| c).sum();
        inside as f64 / self.total as f64
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Histogram {
        [1u64, 2, 2, 3, 3, 3, 10].into_iter().collect()
    }

    #[test]
    fn counts_and_total() {
        let h = sample();
        assert_eq!(h.total(), 7);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(10));
    }

    #[test]
    fn mean_and_std() {
        let h = sample();
        let mean = (1 + 2 + 2 + 3 + 3 + 3 + 10) as f64 / 7.0;
        assert!((h.mean() - mean).abs() < 1e-9);
        assert!(h.std_dev() > 0.0);
    }

    #[test]
    fn quantiles() {
        let h = sample();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(1.0), Some(10));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn fraction_within_range() {
        let h = sample();
        assert!((h.fraction_within(2, 3) - 5.0 / 7.0).abs() < 1e-9);
        assert_eq!(h.fraction_within(100, 200), 0.0);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn extend_accumulates() {
        let mut h = sample();
        h.extend([3u64, 3]);
        assert_eq!(h.count(3), 5);
    }
}
