//! Small statistics helpers and the "shape assertions" used by tests and
//! EXPERIMENTS.md to state what *reproducing a figure* means: rises,
//! decays, crossovers — the qualitative structure of each plot.

use crate::series::TimeSeries;

/// Summary statistics of a sample of `f64` values.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes summary statistics. Returns the default (all zeros) for an
/// empty slice.
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary::default();
    }
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    Summary {
        n,
        mean,
        std_dev: var.sqrt(),
        min: values.iter().copied().fold(f64::INFINITY, f64::min),
        max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Outcome of checking a qualitative shape property on a series.
#[derive(Clone, Debug, PartialEq)]
pub enum Shape {
    /// The property holds.
    Holds,
    /// The property fails, with an explanation.
    Fails(String),
}

impl Shape {
    /// Whether the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, Shape::Holds)
    }
}

/// Checks that a series spikes after `at` (reaching at least
/// `peak_at_least`) and later decays back below `settles_below` — the
/// shape of Figure 5: attack pollution rises, eviction pulls it down.
pub fn spike_then_decay(
    series: &TimeSeries,
    at: u64,
    peak_at_least: f64,
    settles_below: f64,
) -> Shape {
    let peak = series
        .points()
        .iter()
        .filter(|&&(c, _)| c >= at)
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    if peak < peak_at_least {
        return Shape::Fails(format!(
            "no spike: post-{at} peak {peak:.4} < {peak_at_least:.4}"
        ));
    }
    match series.last() {
        Some(last) if last < settles_below => Shape::Holds,
        Some(last) => Shape::Fails(format!(
            "no decay: final value {last:.4} ≥ {settles_below:.4}"
        )),
        None => Shape::Fails("empty series".into()),
    }
}

/// Checks that a series climbs monotonically (within `tolerance`) toward
/// its final value after `at` — the shape of Figure 3's takeover.
pub fn rises_after(series: &TimeSeries, at: u64, reaches_at_least: f64) -> Shape {
    let last = match series.last() {
        Some(v) => v,
        None => return Shape::Fails("empty series".into()),
    };
    if last < reaches_at_least {
        return Shape::Fails(format!(
            "does not reach {reaches_at_least:.4}: final {last:.4}"
        ));
    }
    let before = series.window_mean(0, at.saturating_sub(1)).unwrap_or(0.0);
    if before >= last {
        return Shape::Fails(format!(
            "no rise: pre-{at} mean {before:.4} ≥ final {last:.4}"
        ));
    }
    Shape::Holds
}

/// Checks that series `a` stays below series `b` on the cycle window
/// `[from, to]` (compared by window means) — e.g. tit-for-tat on vs off.
pub fn stays_below(a: &TimeSeries, b: &TimeSeries, from: u64, to: u64) -> Shape {
    match (a.window_mean(from, to), b.window_mean(from, to)) {
        (Some(ma), Some(mb)) if ma < mb => Shape::Holds,
        (Some(ma), Some(mb)) => Shape::Fails(format!(
            "'{}' mean {ma:.4} not below '{}' mean {mb:.4}",
            a.name(),
            b.name()
        )),
        _ => Shape::Fails("window has no data".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_from(vals: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new("s");
        for (i, &v) in vals.iter().enumerate() {
            s.push(i as u64, v);
        }
        s
    }

    #[test]
    fn summary_basics() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(summarize(&[]).n, 0);
    }

    #[test]
    fn spike_then_decay_shapes() {
        let spike = series_from(&[0.1, 0.1, 0.6, 0.4, 0.05]);
        assert!(spike_then_decay(&spike, 1, 0.5, 0.1).holds());
        assert!(!spike_then_decay(&spike, 1, 0.9, 0.1).holds(), "no peak");
        let flat = series_from(&[0.1, 0.6, 0.6, 0.6]);
        assert!(!spike_then_decay(&flat, 1, 0.5, 0.1).holds(), "no decay");
    }

    #[test]
    fn rises_after_shapes() {
        let rise = series_from(&[0.05, 0.05, 0.3, 0.7, 0.95]);
        assert!(rises_after(&rise, 2, 0.9).holds());
        assert!(!rises_after(&rise, 2, 0.99).holds());
    }

    #[test]
    fn stays_below_shapes() {
        let low = series_from(&[0.1, 0.1, 0.1]);
        let high = series_from(&[0.4, 0.5, 0.6]);
        assert!(stays_below(&low, &high, 0, 2).holds());
        assert!(!stays_below(&high, &low, 0, 2).holds());
    }
}
