//! **Figure 3** — the hub attack takes over legacy Cyclon.
//!
//! Paper setup: 1k nodes (view 20, 20 malicious) and 10k nodes (view 50,
//! 50 malicious); all nodes correct until cycle 50, then the malicious
//! start presenting all-malicious views. Swap lengths 3, 5, 8, 10.
//! Expected shape: links to malicious nodes rise from the malicious
//! population share to 100%, faster for larger swap lengths.

use crate::common::{banner, results_dir, Scale};
use sc_attacks::{build_legacy_network, legacy_malicious_link_fraction, LegacyNetParams};
use sc_cyclon::CyclonConfig;
use sc_metrics::{ascii_chart, save_series_csv, TimeSeries};

/// One takeover run; returns the malicious-link percentage over time.
pub fn takeover_series(
    n: usize,
    n_malicious: usize,
    view_len: usize,
    swap_len: usize,
    attack_start: u64,
    cycles: u64,
    seed: u64,
) -> TimeSeries {
    let (mut engine, malicious) = build_legacy_network(LegacyNetParams {
        n,
        n_malicious,
        cfg: CyclonConfig { view_len, swap_len },
        attack_start,
        seed,
    });
    let mut series = TimeSeries::new(format!("swap length {swap_len}"));
    for c in 0..cycles {
        engine.run_cycle();
        if c % 5 == 0 {
            series.push(
                c,
                100.0 * legacy_malicious_link_fraction(&engine, &malicious),
            );
        }
    }
    series
}

/// Runs the Figure 3 experiment at the given scale.
pub fn run(scale: Scale) {
    banner("Figure 3: hub attack takes over legacy Cyclon");
    let configs: Vec<(usize, usize, usize, u64, &str)> = match scale {
        Scale::Smoke => vec![(300, 20, 20, 220, "fig3_300_view20.csv")],
        Scale::Quick => vec![(1000, 20, 20, 500, "fig3_1k_view20.csv")],
        Scale::Full => vec![
            (1000, 20, 20, 500, "fig3_1k_view20.csv"),
            (10_000, 50, 50, 500, "fig3_10k_view50.csv"),
        ],
    };
    for (n, view_len, n_malicious, cycles, file) in configs {
        println!("nodes:{n}, view:{view_len}, malicious nodes:{n_malicious}, attack at cycle 50");
        let mut all = Vec::new();
        for swap_len in [3usize, 5, 8, 10] {
            let s = takeover_series(n, n_malicious, view_len, swap_len, 50, cycles, 42);
            println!(
                "  swap length {swap_len}: 50% crossed at cycle {:?}, final {:.1}%",
                s.points()
                    .iter()
                    .find(|&&(_, v)| v >= 50.0)
                    .map(|&(c, _)| c),
                s.last().unwrap_or(0.0)
            );
            all.push(s);
        }
        let path = results_dir().join(file);
        save_series_csv(&path, &all).expect("write series");
        print!("{}", ascii_chart(&all, 60));
        println!("  [{}]", path.display());
        println!("  paper shape: takeover to ~100%, faster with larger swap length");
    }
}
