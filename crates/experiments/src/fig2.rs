//! **Figure 2** — indegree distribution of converged Cyclon overlays.
//!
//! Paper setup: 1k nodes with view length 20 and 10k nodes with view
//! length 50, measured after the overlay has converged. Expected shape:
//! each node's indegree is tightly concentrated around the configured
//! outdegree ℓ, with no starved nodes and no hubs.

use crate::common::{banner, results_dir, Scale};
use sc_crypto::{Keypair, NodeId, Scheme};
use sc_cyclon::{CyclonConfig, CyclonNode};
use sc_metrics::{save_histogram_csv, Histogram};
use sc_sim::{Engine, SimConfig};
use std::collections::HashMap;

fn build(n: usize, cfg: CyclonConfig, seed: u64) -> Engine<CyclonNode> {
    let keypairs: Vec<Keypair> = (0..n)
        .map(|i| {
            Keypair::from_seed(
                Scheme::KeyedHash,
                sc_sim::rng::derive_seed(seed, "identity", i as u64),
            )
        })
        .collect();
    let mut engine = Engine::new(SimConfig::seeded(seed));
    for (i, kp) in keypairs.iter().enumerate() {
        let mut node = CyclonNode::new(
            kp.public(),
            i as u32,
            cfg,
            sc_sim::rng::derive_seed(seed, "node", i as u64),
        );
        let boots: Vec<(NodeId, u32)> = (1..=4)
            .map(|k| {
                let j = (i + k) % n;
                (keypairs[j].public(), j as u32)
            })
            .collect();
        node.bootstrap(boots);
        engine.spawn_with(|_| node);
    }
    engine
}

/// Computes the indegree histogram of a converged overlay.
pub fn indegree_histogram(n: usize, view_len: usize, cycles: u64, seed: u64) -> Histogram {
    let cfg = CyclonConfig {
        view_len,
        swap_len: 3,
    };
    let mut engine = build(n, cfg, seed);
    engine.run_cycles(cycles);
    let mut indeg: HashMap<NodeId, u64> = HashMap::new();
    for (_, node) in engine.nodes() {
        for d in node.view().iter() {
            *indeg.entry(d.id).or_default() += 1;
        }
    }
    // Nodes nobody points at have indegree zero.
    let mut hist = Histogram::new();
    let pointed = indeg.len() as u64;
    for (_, count) in indeg {
        hist.record(count);
    }
    for _ in pointed..n as u64 {
        hist.record(0);
    }
    hist
}

/// Runs the Figure 2 experiment at the given scale.
pub fn run(scale: Scale) {
    banner("Figure 2: indegree distribution of converged Cyclon overlays");
    let configs: Vec<(usize, usize, u64, &str)> = match scale {
        Scale::Smoke => vec![(300, 20, 120, "fig2_300_view20.csv")],
        Scale::Quick => vec![(1000, 20, 500, "fig2_1k_view20.csv")],
        Scale::Full => vec![
            (1000, 20, 500, "fig2_1k_view20.csv"),
            (10_000, 50, 500, "fig2_10k_view50.csv"),
        ],
    };
    for (n, view_len, cycles, file) in configs {
        let hist = indegree_histogram(n, view_len, cycles, 42);
        let path = results_dir().join(file);
        save_histogram_csv(&path, &hist).expect("write histogram");
        println!(
            "nodes:{n} view:{view_len} → indegree mean {:.1} (ℓ = {view_len}), σ {:.2}, \
             min {}, max {}, within ±50% of ℓ: {:.1}%  [{}]",
            hist.mean(),
            hist.std_dev(),
            hist.min().unwrap_or(0),
            hist.max().unwrap_or(0),
            100.0 * hist.fraction_within((view_len / 2) as u64, (view_len * 3 / 2) as u64),
            path.display()
        );
        println!(
            "  paper shape: indegree tightly bounded around the outdegree ℓ, no starved nodes"
        );
    }
}
