//! **Figure 6** — the link-depletion attack and the tit-for-tat defense.
//!
//! Malicious responders accept gossip requests but return an empty view,
//! bleeding initiators of their descriptors. Setup: 1k nodes, view 20,
//! swap lengths {3, 5, 8, 10}, attack at cycle 50; malicious share 2%
//! (top) and 50% (bottom); tit-for-tat disabled (left) vs enabled (right).
//!
//! Expected shape: without tit-for-tat the non-swappable fraction grows
//! with the swap length (top-left) and saturates near 100% at 50%
//! malicious (bottom-left); with tit-for-tat it stays negligible at 2%
//! (top-right) and is bounded far below saturation at 50% (bottom-right,
//! ≈27% in the paper).

use crate::common::{banner, results_dir, run_secure, secure_params, Scale, SecureRun};
use sc_attacks::SecureAttack;
use sc_metrics::{ascii_chart, save_series_csv, TimeSeries};

/// One depletion run; returns the non-swappable link percentage series.
#[allow(clippy::too_many_arguments)]
pub fn depletion_series(
    n: usize,
    n_malicious: usize,
    view_len: usize,
    swap_len: usize,
    tit_for_tat: bool,
    attack_start: u64,
    cycles: u64,
    seed: u64,
) -> TimeSeries {
    let mut params = secure_params(
        n,
        n_malicious,
        view_len,
        swap_len,
        SecureAttack::Depletion,
        attack_start,
        seed,
    );
    params.cfg.tit_for_tat = tit_for_tat;
    let out = run_secure(
        SecureRun {
            params,
            cycles,
            record_every: 2,
        },
        &format!("swap length {swap_len}"),
    );
    out.ns_frac
}

fn run_panel(n: usize, n_malicious: usize, view_len: usize, tft: bool, cycles: u64, file: &str) {
    let pct = 100 * n_malicious / n;
    println!(
        "nodes:{n}, view:{view_len}, malicious nodes:{n_malicious} ({pct}%), tit-for-tat: {}",
        if tft { "enabled" } else { "disabled" }
    );
    let mut all = Vec::new();
    for swap_len in [3usize, 5, 8, 10] {
        let s = depletion_series(n, n_malicious, view_len, swap_len, tft, 50, cycles, 42);
        println!(
            "  swap length {swap_len}: final non-swappable links {:.1}%",
            s.last().unwrap_or(0.0)
        );
        all.push(s);
    }
    let path = results_dir().join(file);
    save_series_csv(&path, &all).expect("write series");
    print!("{}", ascii_chart(&all, 60));
    println!("  [{}]", path.display());
}

/// Runs all four Figure 6 panels at the given scale.
pub fn run(scale: Scale) {
    banner("Figure 6: link-depletion attack, tit-for-tat disabled vs enabled");
    let (n, view_len, cycles) = match scale {
        Scale::Smoke => (300, 20, 70),
        Scale::Quick | Scale::Full => (1000, 20, 100),
    };
    let low = n / 50; // 2%
    let high = n / 2; // 50%
    run_panel(n, low, view_len, false, cycles, "fig6_low_tft_off.csv");
    run_panel(n, low, view_len, true, cycles, "fig6_low_tft_on.csv");
    run_panel(n, high, view_len, false, cycles, "fig6_high_tft_off.csv");
    run_panel(n, high, view_len, true, cycles, "fig6_high_tft_on.csv");
    println!(
        "  paper shape: NS% ∝ swap length without TFT; ≈0% (2%) and bounded ≈27% (50%) with TFT"
    );
}
