//! **Figure 7** — clone-detection ratio vs age at duplication, for
//! several redemption-cache sizes and malicious shares.
//!
//! Malicious nodes hold descriptors until they reach a target age, then
//! double-spend them (two transfers to different victims). Detection
//! relies on the §IV-B ownership check; for old descriptors the §V-C
//! redemption cache is what keeps the spent copy circulating long enough
//! to be cross-checked.
//!
//! Measurement protocol (also recorded in EXPERIMENTS.md): eviction is
//! disabled so attackers survive their first proof and keep producing
//! duplication events across the whole run; each attacker is assigned a
//! target age from the sweep (round-robin), so one simulation per
//! (cache size, malicious share) covers every age bucket.

use crate::common::{banner, results_dir, Scale};
use sc_attacks::{CloneLedger, SecureAttack};
use sc_core::{ProofKind, SecureConfig};
use sc_metrics::{save_series_csv, TimeSeries};
use sc_testkit::{build_secure_network, SecureNetParams};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Detection ratio per age bucket for one (cache, malicious%) cell.
#[allow(clippy::too_many_arguments)]
pub fn detection_by_age(
    n: usize,
    n_malicious: usize,
    view_len: usize,
    cache_cycles: u64,
    ages: &[u64],
    cycles: u64,
    seed: u64,
) -> HashMap<u64, (usize, usize)> {
    // One ledger per attacker age-class, all feeding the same sim. The
    // builder assigns one strategy to every malicious node, so instead we
    // run one sub-population per age... — cheaper: one ledger, one
    // target age per *run*, merged by the caller. To keep a single
    // simulation per cell, attackers cycle through ages via their
    // deterministic seeds: we emulate this by running one network per age
    // group but sharing the (cache, malicious%) cell. For tractability the
    // builder supports one age per run; we loop over ages here.
    let mut out: HashMap<u64, (usize, usize)> = HashMap::new();
    for (k, &age) in ages.iter().enumerate() {
        let ledger = Arc::new(Mutex::new(CloneLedger::new()));
        let mut params = SecureNetParams::new(
            n,
            n_malicious,
            SecureAttack::Cloner {
                target_age: age,
                ledger: Arc::clone(&ledger),
            },
        );
        params.cfg = SecureConfig::default()
            .with_view_len(view_len)
            .with_redemption_cache(cache_cycles);
        params.cfg.eviction_enabled = false;
        params.attack_start = 30;
        params.seed = seed ^ ((age << 8) ^ k as u64);
        let mut net = build_secure_network(params);
        net.engine.run_cycles(cycles);

        let events = &ledger.lock().unwrap().events;
        let ids: HashSet<_> = events.iter().map(|e| e.desc).collect();
        let mut detected: HashSet<_> = HashSet::new();
        for (_, node) in net.engine.nodes() {
            let Some(h) = node.honest() else { continue };
            for rec in h.proof_log() {
                if rec.kind == ProofKind::Cloning {
                    if let Some(id) = rec.descriptor {
                        if ids.contains(&id) {
                            detected.insert(id);
                        }
                    }
                }
            }
        }
        let entry = out.entry(age).or_default();
        entry.0 += detected.len();
        entry.1 += events.len();
    }
    out
}

/// Runs the Figure 7 experiment at the given scale.
pub fn run(scale: Scale) {
    banner("Figure 7: detection ratio vs descriptor age at duplication");
    // Quick scale trades population for sweep time (120 separate runs);
    // full scale is the paper's 1k nodes across the whole age sweep.
    let (n, view_len, cycles, ages): (usize, usize, u64, Vec<u64>) = match scale {
        Scale::Smoke => (300, 20, 70, vec![2, 8, 14, 20]),
        Scale::Quick => (500, 20, 80, vec![2, 6, 10, 14, 18]),
        Scale::Full => (1000, 20, 90, (1..=10).map(|a| a * 2).collect()),
    };
    for mal_pct in [5usize, 20, 50] {
        let n_malicious = n * mal_pct / 100;
        println!("nodes:{n}, view:{view_len}, malicious nodes:{mal_pct}%");
        let mut all_series = Vec::new();
        for cache in [0u64, 2, 5, 10] {
            let per_age = detection_by_age(n, n_malicious, view_len, cache, &ages, cycles, 42);
            let label = if cache == 0 {
                "no redemption cache".to_string()
            } else {
                format!("cache {cache} cycles")
            };
            let mut series = TimeSeries::new(label.clone());
            let mut sorted: Vec<_> = per_age.iter().collect();
            sorted.sort_by_key(|(&age, _)| age);
            let mut cells = Vec::new();
            for (&age, &(det, tot)) in sorted {
                let ratio = if tot == 0 {
                    0.0
                } else {
                    100.0 * det as f64 / tot as f64
                };
                series.push(age, ratio);
                cells.push(format!("{age}→{ratio:.0}%({det}/{tot})"));
            }
            println!("  {label}: {}", cells.join(" "));
            all_series.push(series);
        }
        let path = results_dir().join(format!("fig7_mal{mal_pct}.csv"));
        save_series_csv(&path, &all_series).expect("write series");
        println!("  [{}]", path.display());
    }
    println!(
        "  paper shape: near-total detection for young clones, decaying with age; \
         larger caches lift the old-age tail; higher malicious share lowers detection"
    );
}
