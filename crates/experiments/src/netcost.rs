//! **§VI-A network costs** — the paper's back-of-the-envelope table,
//! reproduced with measured quantities.
//!
//! Paper model: a descriptor is `368 + 512·t` bits after `t` transfers;
//! with ℓ = 20, s = 3, r = 5 a descriptor is transferred 2s = 6 times on
//! average over its ℓ-cycle life, giving ≈430 bytes per descriptor and
//! ≈10.5 KB per gossip direction (ℓ + r = 25 descriptors).
//!
//! This experiment runs a converged all-honest SecureCyclon overlay,
//! measures the actual transfer-count distribution and per-message sizes
//! under both the paper's size model and this crate's wire codec, and
//! prints them against the paper's estimates.

use crate::common::{banner, results_dir, Scale};
use sc_attacks::SecureAttack;
use sc_core::{wire, SecureConfig};
use sc_metrics::{save_histogram_csv, summarize, Histogram};
use sc_testkit::{build_secure_network, SecureNetParams};

/// Measured network-cost summary.
#[derive(Debug)]
pub struct NetCost {
    /// Mean ownership transfers per view descriptor.
    pub mean_transfers: f64,
    /// Mean paper-model descriptor size (bytes).
    pub mean_paper_bytes: f64,
    /// Mean wire-codec descriptor size (bytes).
    pub mean_wire_bytes: f64,
    /// Paper-model bytes for one gossip direction (ℓ + r descriptors at
    /// the measured mean size).
    pub per_direction_paper: f64,
}

/// Measures descriptor sizes on a converged overlay.
pub fn measure(n: usize, view_len: usize, cycles: u64, seed: u64) -> (NetCost, Histogram) {
    let mut params = SecureNetParams::new(n, 0, SecureAttack::None);
    params.cfg = SecureConfig::default().with_view_len(view_len);
    params.seed = seed;
    let redemption = params.cfg.redemption_cache_cycles as f64;
    let mut net = build_secure_network(params);
    net.engine.run_cycles(cycles);

    let mut transfers = Histogram::new();
    let mut paper_sizes = Vec::new();
    let mut wire_sizes = Vec::new();
    for (_, node) in net.engine.nodes() {
        let Some(h) = node.honest() else { continue };
        for e in h.view().iter() {
            transfers.record(e.desc.transfer_count() as u64);
            paper_sizes.push(wire::paper_descriptor_bytes(&e.desc) as f64);
            wire_sizes.push(wire::descriptor_wire_bytes(&e.desc) as f64);
        }
    }
    let paper = summarize(&paper_sizes);
    let wire_s = summarize(&wire_sizes);
    let cost = NetCost {
        mean_transfers: transfers.mean(),
        mean_paper_bytes: paper.mean,
        mean_wire_bytes: wire_s.mean,
        per_direction_paper: paper.mean * (view_len as f64 + redemption),
    };
    (cost, transfers)
}

/// Runs the §VI-A cost table at the given scale.
pub fn run(scale: Scale) {
    banner("Section VI-A: network cost model (the paper's table)");
    let (n, cycles) = match scale {
        Scale::Smoke => (300, 60),
        Scale::Quick | Scale::Full => (1000, 120),
    };
    let (cost, transfers) = measure(n, 20, cycles, 42);
    let path = results_dir().join("netcost_transfers.csv");
    save_histogram_csv(&path, &transfers).expect("write histogram");

    println!("quantity                         paper (§VI-A)      measured");
    println!(
        "transfers per descriptor (t)     2s = 6 (pessim.)   {:.2} (mean over views)",
        cost.mean_transfers
    );
    println!(
        "descriptor size, paper model     430 B at t=6       {:.0} B (at measured t)",
        cost.mean_paper_bytes
    );
    println!(
        "descriptor size, wire codec      —                  {:.0} B",
        cost.mean_wire_bytes
    );
    println!(
        "per direction (ℓ+r = 25 descs)   ≈10.5 KB           {:.1} KB",
        cost.per_direction_paper / 1024.0
    );
    println!("  [{}]", path.display());
    println!(
        "  note: the paper's t = 6 is an explicit pessimistic bound; younger descriptors \
         have shorter chains, so the measured mean sits below it"
    );
}
