//! Experiment harness regenerating every table and figure of the
//! SecureCyclon paper's evaluation (§VI).
//!
//! ```text
//! cargo run --release -p sc-experiments -- <experiment> [--scale smoke|quick|full] [--out DIR]
//!
//! experiments:
//!   fig2        indegree distribution of converged Cyclon overlays
//!   fig3        hub attack takeover of legacy Cyclon
//!   fig5-top    SecureCyclon vs the minimal hub attack
//!   fig5-bottom SecureCyclon vs a 40% hub attack
//!   fig6        link-depletion attack, tit-for-tat off/on
//!   fig7        clone-detection ratio vs age at duplication
//!   netcost     §VI-A message-size table
//!   ablation    per-mechanism contribution matrix (not a paper figure)
//!   all         everything above
//! ```
//!
//! `--scale quick` (default) runs the paper's 1k-node configurations;
//! `full` adds the 10k ones; `smoke` is a minutes-scale sanity pass.

mod ablation;
mod common;
mod fig2;
mod fig3;
mod fig5;
mod fig6;
mod fig7;
mod netcost;

use common::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig2|fig3|fig5-top|fig5-bottom|fig6|fig7|netcost|ablation|all> \
         [--scale smoke|quick|full] [--out DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut scale = Scale::Quick;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                let dir = args.get(i).unwrap_or_else(|| usage());
                std::env::set_var("SC_RESULTS_DIR", dir);
            }
            other if which.is_none() && !other.starts_with('-') => {
                which = Some(other.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    let which = which.unwrap_or_else(|| usage());
    let started = std::time::Instant::now();
    match which.as_str() {
        "fig2" => fig2::run(scale),
        "fig3" => fig3::run(scale),
        "fig5-top" => fig5::run_top(scale),
        "fig5-bottom" => fig5::run_bottom(scale),
        "fig5" => {
            fig5::run_top(scale);
            fig5::run_bottom(scale);
        }
        "fig6" => fig6::run(scale),
        "fig7" => fig7::run(scale),
        "netcost" => netcost::run(scale),
        "ablation" => ablation::run(scale),
        "all" => {
            fig2::run(scale);
            fig3::run(scale);
            fig5::run_top(scale);
            fig5::run_bottom(scale);
            fig6::run(scale);
            fig7::run(scale);
            netcost::run(scale);
            ablation::run(scale);
        }
        _ => usage(),
    }
    eprintln!("\n(completed in {:.1?})", started.elapsed());
}
