//! Shared experiment machinery: scales, secure-network run loops, and
//! result emission.

use sc_attacks::SecureAttack;
use sc_core::SecureConfig;
use sc_metrics::TimeSeries;
use sc_testkit::{
    blacklist_coverage, build_secure_network, eclipsed_fraction, malicious_link_fraction,
    ns_link_fraction, SecureNetParams, SecureNetwork,
};
use std::path::PathBuf;

/// How big the experiments run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny runs for CI and benches (hundreds of nodes, short horizons).
    Smoke,
    /// The paper's 1k-node configurations (default).
    Quick,
    /// Adds the paper's 10k-node configurations.
    Full,
}

impl Scale {
    /// Parses a `--scale` argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// Where CSV outputs land (`results/` under the workspace root).
pub fn results_dir() -> PathBuf {
    std::env::var_os("SC_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// One secure-network run description.
#[derive(Clone, Debug)]
pub struct SecureRun {
    /// Network and attack parameters.
    pub params: SecureNetParams,
    /// Cycles to simulate after the bootstrap point.
    pub cycles: u64,
    /// Sampling interval for the recorded series.
    pub record_every: u64,
}

/// Time series recorded over one secure-network run.
///
/// Not every experiment reads every series; the unused ones are still
/// recorded so ad-hoc analyses can reuse `run_secure` unchanged.
#[allow(dead_code)]
pub struct SecureRunSeries {
    /// Fraction of honest links pointing at malicious nodes.
    pub malicious_frac: TimeSeries,
    /// Fraction of honest links that are non-swappable.
    pub ns_frac: TimeSeries,
    /// Average fraction of attackers blacklisted by honest nodes.
    pub coverage: TimeSeries,
    /// Fraction of honest nodes fully surrounded by malicious links.
    pub eclipsed: TimeSeries,
    /// The network after the run (for final inspection).
    pub network: SecureNetwork,
}

/// Runs a secure network, recording the standard metrics each
/// `record_every` cycles. Series are labelled with `label`.
pub fn run_secure(run: SecureRun, label: &str) -> SecureRunSeries {
    let SecureRun {
        params,
        cycles,
        record_every,
    } = run;
    let mut net = build_secure_network(params);
    let mut malicious_frac = TimeSeries::new(label.to_string());
    let mut ns_frac = TimeSeries::new(label.to_string());
    let mut coverage = TimeSeries::new(label.to_string());
    let mut eclipsed = TimeSeries::new(label.to_string());
    for _ in 0..cycles {
        net.engine.run_cycle();
        let c = net.engine.cycle();
        if c.is_multiple_of(record_every) {
            malicious_frac.push(
                c,
                100.0 * malicious_link_fraction(&net.engine, &net.malicious_ids),
            );
            ns_frac.push(c, 100.0 * ns_link_fraction(&net.engine));
            coverage.push(
                c,
                100.0 * blacklist_coverage(&net.engine, &net.malicious_ids),
            );
            eclipsed.push(
                c,
                100.0 * eclipsed_fraction(&net.engine, &net.malicious_ids),
            );
        }
    }
    SecureRunSeries {
        malicious_frac,
        ns_frac,
        coverage,
        eclipsed,
        network: net,
    }
}

/// Convenience constructor for the paper's standard secure parameters.
pub fn secure_params(
    n: usize,
    n_malicious: usize,
    view_len: usize,
    swap_len: usize,
    attack: SecureAttack,
    attack_start: u64,
    seed: u64,
) -> SecureNetParams {
    let mut p = SecureNetParams::new(n, n_malicious, attack);
    p.cfg = SecureConfig::default()
        .with_view_len(view_len)
        .with_swap_len(swap_len);
    p.attack_start = attack_start;
    p.seed = seed;
    p
}

/// Prints a section header for terminal output.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
