//! **Figure 5** — SecureCyclon shields the overlay from the hub attack.
//!
//! Top row: the minimal viable attack group (as many attackers as the
//! view length — 20/1k, 50/10k). Bottom row: 40% of the population is
//! malicious. Swap lengths 3, 5, 8, 10; attack starts at cycle 50.
//!
//! Expected shape (top): a small spike after cycle 50, then rapid decay
//! toward 0 as proofs spread and attackers are evicted. Expected shape
//! (bottom-left, 1k): a temporary surge to 60–90%, then collapse; with
//! very high swap lengths (8, 10) a residual fraction of eclipsed nodes
//! retains malicious links. Bottom-right (10k): full recovery for the
//! same swap lengths because s ≪ ℓ.

use crate::common::{banner, results_dir, run_secure, secure_params, Scale, SecureRun};
use sc_attacks::SecureAttack;
use sc_metrics::{ascii_chart, save_series_csv, TimeSeries};

/// One defended-hub-attack run; returns (malicious-link %, eclipsed %).
#[allow(clippy::too_many_arguments)]
pub fn defense_series(
    n: usize,
    n_malicious: usize,
    view_len: usize,
    swap_len: usize,
    attack_start: u64,
    cycles: u64,
    seed: u64,
) -> (TimeSeries, TimeSeries) {
    let params = secure_params(
        n,
        n_malicious,
        view_len,
        swap_len,
        SecureAttack::Hub,
        attack_start,
        seed,
    );
    let out = run_secure(
        SecureRun {
            params,
            cycles,
            record_every: 2,
        },
        &format!("swap length {swap_len}"),
    );
    (out.malicious_frac, out.eclipsed)
}

fn run_panel(title: &str, n: usize, n_malicious: usize, view_len: usize, cycles: u64, file: &str) {
    println!("{title}: nodes:{n}, view:{view_len}, malicious nodes:{n_malicious}");
    let mut mal_series = Vec::new();
    for swap_len in [3usize, 5, 8, 10] {
        let (mal, ecl) = defense_series(n, n_malicious, view_len, swap_len, 50, cycles, 42);
        println!(
            "  swap length {swap_len}: peak {:.1}%, final {:.1}%, eclipsed {:.1}%",
            mal.max().unwrap_or(0.0),
            mal.last().unwrap_or(0.0),
            ecl.last().unwrap_or(0.0)
        );
        mal_series.push(mal);
    }
    let path = results_dir().join(file);
    save_series_csv(&path, &mal_series).expect("write series");
    print!("{}", ascii_chart(&mal_series, 60));
    println!("  [{}]", path.display());
}

/// Runs the Figure 5 **top** panels (minimal attack group).
pub fn run_top(scale: Scale) {
    banner("Figure 5 (top): SecureCyclon vs the minimal hub attack");
    match scale {
        Scale::Smoke => run_panel("smoke", 300, 20, 20, 80, "fig5_top_300.csv"),
        Scale::Quick => run_panel("1k", 1000, 20, 20, 100, "fig5_top_1k.csv"),
        Scale::Full => {
            run_panel("1k", 1000, 20, 20, 100, "fig5_top_1k.csv");
            run_panel("10k", 10_000, 50, 50, 100, "fig5_top_10k.csv");
        }
    }
    println!("  paper shape: brief spike after cycle 50, then rapid decay to ~0");
}

/// Runs the Figure 5 **bottom** panels (40% malicious).
pub fn run_bottom(scale: Scale) {
    banner("Figure 5 (bottom): SecureCyclon vs a 40% hub attack");
    match scale {
        Scale::Smoke => run_panel("smoke", 300, 120, 20, 100, "fig5_bottom_300.csv"),
        Scale::Quick => run_panel("1k", 1000, 400, 20, 120, "fig5_bottom_1k.csv"),
        Scale::Full => {
            run_panel("1k", 1000, 400, 20, 120, "fig5_bottom_1k.csv");
            run_panel("10k", 10_000, 4000, 50, 120, "fig5_bottom_10k.csv");
        }
    }
    println!(
        "  paper shape: surge to 60–90%, then collapse; s∈{{8,10}} at 1k leave an eclipsed residue"
    );
}
