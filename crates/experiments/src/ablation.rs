//! **Ablations** — how much each design choice contributes to the
//! defense. Not a paper figure; DESIGN.md calls these out as the
//! load-bearing mechanisms worth isolating:
//!
//! * **proof piggyback** (§IV-C): proofs ride on gossip in addition to
//!   flooding, catching nodes the flood missed;
//! * **redemption cache** (§V-C): spent descriptors keep circulating as
//!   samples for a few cycles;
//! * **eviction** (§IV-C): blacklisting + purging + flooding, versus
//!   merely detecting.
//!
//! Each variant runs the same hub attack; reported are the final
//! malicious-link share, blacklist coverage, and honest-side proof count.

use crate::common::{banner, results_dir, Scale};
use sc_attacks::SecureAttack;
use sc_core::SecureConfig;
use sc_metrics::{save_series_csv, TimeSeries};
use sc_testkit::{
    blacklist_coverage, build_secure_network, malicious_link_fraction, proofs_generated,
    SecureNetParams,
};

struct Variant {
    name: &'static str,
    tweak: fn(&mut SecureConfig),
}

fn variants() -> Vec<Variant> {
    vec![
        Variant {
            name: "full protocol",
            tweak: |_| {},
        },
        Variant {
            name: "no proof piggyback",
            tweak: |c| c.proof_piggyback_cycles = 0,
        },
        Variant {
            name: "no redemption cache",
            tweak: |c| c.redemption_cache_cycles = 0,
        },
        Variant {
            name: "detection only (no eviction)",
            tweak: |c| c.eviction_enabled = false,
        },
    ]
}

/// Runs the ablation matrix at the given scale.
pub fn run(scale: Scale) {
    banner("Ablation: contribution of each defense mechanism (hub attack)");
    let (n, n_malicious, cycles) = match scale {
        Scale::Smoke => (300, 15, 70),
        Scale::Quick | Scale::Full => (500, 25, 100),
    };
    println!("nodes:{n}, malicious:{n_malicious}, view:20, swap:3, attack at cycle 50");
    let mut all = Vec::new();
    for v in variants() {
        let mut params = SecureNetParams::new(n, n_malicious, SecureAttack::Hub);
        (v.tweak)(&mut params.cfg);
        params.attack_start = 50;
        params.seed = 42;
        let mut net = build_secure_network(params);
        let mut series = TimeSeries::new(v.name);
        for _ in 0..cycles {
            net.engine.run_cycle();
            series.push(
                net.engine.cycle(),
                100.0 * malicious_link_fraction(&net.engine, &net.malicious_ids),
            );
        }
        let coverage = blacklist_coverage(&net.engine, &net.malicious_ids);
        let (cloning, freq) = proofs_generated(&net.engine);
        println!(
            "  {:<30} final mal links {:>5.1}%  peak {:>5.1}%  blacklist coverage {:>5.1}%  proofs {}+{}",
            v.name,
            series.last().unwrap_or(0.0),
            series.max().unwrap_or(0.0),
            100.0 * coverage,
            cloning,
            freq
        );
        all.push(series);
    }
    let path = results_dir().join("ablation_hub.csv");
    save_series_csv(&path, &all).expect("write series");
    println!("  [{}]", path.display());
    println!(
        "  expectation: eviction is the decisive mechanism; the caches and piggyback \
         accelerate convergence and cover stragglers"
    );
}
