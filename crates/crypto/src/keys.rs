//! Node identities, keypairs, and signatures.
//!
//! Following the paper's system model (§II-A), every node owns exactly one
//! private/public keypair and **its node ID is its public key**. Two
//! signature schemes are provided behind a common API:
//!
//! * [`Scheme::Schnorr61`] — a real Schnorr scheme over a toy 61-bit group
//!   (see [`crate::schnorr61`]); genuine public-key verification.
//! * [`Scheme::KeyedHash`] — a hash-based stand-in for large simulations
//!   (10k+ nodes) where per-exchange big-group exponentiations dominate.
//!   Verification recomputes a keyed hash; unforgeability is upheld by the
//!   simulation (honest and adversarial code alike only sign with keys they
//!   hold), exactly mirroring the paper's assumption that "malicious nodes
//!   cannot impersonate legitimate ones".
//!
//! Both schemes share fixed-size wire types: 32-byte [`PublicKey`], 64-byte
//! [`Signature`], matching the paper's size model (§VI-A).

use crate::hex::to_hex;
use crate::schnorr61::{self, SchnorrKey};
use crate::sha256::sha256_concat;
use rand::RngCore;

/// Length of a serialized public key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;
/// Length of a serialized signature in bytes.
pub const SIGNATURE_LEN: usize = 64;

const TAG_SCHNORR: u8 = 1;
const TAG_KEYED: u8 = 2;

/// The signature scheme used by a keypair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Scheme {
    /// Real Schnorr signatures over the 2^61−1 Mersenne group.
    #[default]
    Schnorr61,
    /// Fast keyed-hash signatures (simulation-grade; see module docs).
    KeyedHash,
}

impl Scheme {
    fn tag(self) -> u8 {
        match self {
            Scheme::Schnorr61 => TAG_SCHNORR,
            Scheme::KeyedHash => TAG_KEYED,
        }
    }

    fn from_tag(tag: u8) -> Option<Scheme> {
        match tag {
            TAG_SCHNORR => Some(Scheme::Schnorr61),
            TAG_KEYED => Some(Scheme::KeyedHash),
            _ => None,
        }
    }
}

/// A node's public key. Doubles as the node's unique identifier ([`NodeId`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey([u8; PUBLIC_KEY_LEN]);

/// A node's unique identifier. Per the paper's system model, the ID *is*
/// the public key.
pub type NodeId = PublicKey;

impl PublicKey {
    /// Returns the raw key bytes.
    pub fn as_bytes(&self) -> &[u8; PUBLIC_KEY_LEN] {
        &self.0
    }

    /// Reconstructs a key from raw bytes.
    ///
    /// Returns `None` if the scheme tag byte is unknown.
    pub fn from_bytes(bytes: [u8; PUBLIC_KEY_LEN]) -> Option<Self> {
        Scheme::from_tag(bytes[0]).map(|_| PublicKey(bytes))
    }

    /// The signature scheme this key belongs to.
    pub fn scheme(&self) -> Scheme {
        Scheme::from_tag(self.0[0]).expect("constructed keys always carry a valid tag")
    }

    /// Verifies `sig` over `msg` under this key.
    ///
    /// Returns `false` for any mismatch: wrong key, tampered message,
    /// malformed or cross-scheme signature.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        match self.scheme() {
            Scheme::Schnorr61 => {
                if sig.0[0] != TAG_SCHNORR {
                    return false;
                }
                let pk = u64::from_be_bytes(self.0[1..9].try_into().expect("slice len 8"));
                let r = u64::from_be_bytes(sig.0[1..9].try_into().expect("slice len 8"));
                let s = u64::from_be_bytes(sig.0[9..17].try_into().expect("slice len 8"));
                // Shamir + fixed-base-table path; bit-for-bit equivalent to
                // `schnorr61::verify` (exhaustively tested there).
                schnorr61::verify_fast(pk, msg, r, s)
            }
            Scheme::KeyedHash => {
                if sig.0[0] != TAG_KEYED {
                    return false;
                }
                let expect = sha256_concat(&[b"sc/keyed-sig", &self.0, msg]);
                sig.0[1..33] == expect[..]
            }
        }
    }

    /// A short human-readable prefix of the key, for logs and examples.
    pub fn short(&self) -> String {
        to_hex(&self.0[..6])
    }
}

/// Verifies a batch of `(key, message, signature)` checks, amortizing the
/// group arithmetic across every Schnorr signature in the batch.
///
/// Returns `Ok(())` when every check passes, or `Err(i)` with the lowest
/// index whose check fails — exactly the index a sequential loop over
/// [`PublicKey::verify`] would report first. Schnorr signatures are
/// collected into one [`schnorr61::batch_verify`] call (shared squarings,
/// one fixed-base exponentiation); keyed-hash signatures are recomputed
/// individually since each is a single hash with nothing to amortize.
pub fn verify_batch(checks: &[(&PublicKey, &[u8], &Signature)]) -> Result<(), usize> {
    let mut items: Vec<schnorr61::BatchItem<'_>> = Vec::with_capacity(checks.len());
    let mut item_indices: Vec<usize> = Vec::with_capacity(checks.len());
    // First failing non-batched check (keyed hash, malformed tag, …).
    let mut first_other: Option<usize> = None;
    for (i, (pk, msg, sig)) in checks.iter().enumerate() {
        match pk.scheme() {
            Scheme::Schnorr61 if sig.0[0] == TAG_SCHNORR => {
                items.push(schnorr61::BatchItem {
                    pk: u64::from_be_bytes(pk.0[1..9].try_into().expect("slice len 8")),
                    msg,
                    r: u64::from_be_bytes(sig.0[1..9].try_into().expect("slice len 8")),
                    s: u64::from_be_bytes(sig.0[9..17].try_into().expect("slice len 8")),
                });
                item_indices.push(i);
            }
            _ => {
                if first_other.is_none() && !pk.verify(msg, sig) {
                    first_other = Some(i);
                }
            }
        }
    }
    let first_schnorr = schnorr61::batch_verify(&items)
        .err()
        .map(|j| item_indices[j]);
    match (first_other, first_schnorr) {
        (None, None) => Ok(()),
        (a, b) => Err(a.unwrap_or(usize::MAX).min(b.unwrap_or(usize::MAX))),
    }
}

impl core::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PublicKey({})", to_hex(&self.0))
    }
}

impl core::fmt::Display for PublicKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.short())
    }
}

/// A detached signature.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature([u8; SIGNATURE_LEN]);

impl Signature {
    /// Returns the raw signature bytes.
    pub fn as_bytes(&self) -> &[u8; SIGNATURE_LEN] {
        &self.0
    }

    /// Reconstructs a signature from raw bytes (no validation beyond size).
    pub fn from_bytes(bytes: [u8; SIGNATURE_LEN]) -> Self {
        Signature(bytes)
    }
}

impl core::fmt::Debug for Signature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Signature({}…)", to_hex(&self.0[..8]))
    }
}

/// A private/public keypair bound to a [`Scheme`].
///
/// # Examples
///
/// ```
/// use sc_crypto::{Keypair, Scheme};
///
/// let kp = Keypair::from_seed(Scheme::Schnorr61, [42u8; 32]);
/// let sig = kp.sign(b"gossip");
/// assert!(kp.public().verify(b"gossip", &sig));
/// ```
#[derive(Clone)]
pub struct Keypair {
    scheme: Scheme,
    seed: [u8; 32],
    schnorr: Option<SchnorrKey>,
    public: PublicKey,
}

impl Keypair {
    /// Generates a fresh keypair using entropy from `rng`.
    pub fn generate<R: RngCore + ?Sized>(scheme: Scheme, rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Self::from_seed(scheme, seed)
    }

    /// Derives a keypair deterministically from a 32-byte seed.
    ///
    /// Simulations use this to obtain reproducible node identities.
    pub fn from_seed(scheme: Scheme, seed: [u8; 32]) -> Self {
        match scheme {
            Scheme::Schnorr61 => {
                let key = SchnorrKey::from_seed(&seed);
                let mut pk = [0u8; PUBLIC_KEY_LEN];
                pk[0] = TAG_SCHNORR;
                pk[1..9].copy_from_slice(&key.pk.to_be_bytes());
                // Fill the remainder with a digest of the group element so
                // IDs look uniform to hash-based containers.
                let fill = sha256_concat(&[b"sc/pk-fill", &key.pk.to_be_bytes()]);
                pk[9..].copy_from_slice(&fill[..23]);
                Keypair {
                    scheme,
                    seed,
                    schnorr: Some(key),
                    public: PublicKey(pk),
                }
            }
            Scheme::KeyedHash => {
                let mut pk = [0u8; PUBLIC_KEY_LEN];
                pk[0] = TAG_KEYED;
                let h = sha256_concat(&[b"sc/keyed-pk", &seed]);
                pk[1..].copy_from_slice(&h[..31]);
                Keypair {
                    scheme,
                    seed,
                    schnorr: None,
                    public: PublicKey(pk),
                }
            }
        }
    }

    /// The public half of the keypair (also the node's ID).
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// The scheme this keypair uses.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Signs `msg` with the secret key.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let mut out = [0u8; SIGNATURE_LEN];
        out[0] = self.scheme.tag();
        match self.scheme {
            Scheme::Schnorr61 => {
                let key = self.schnorr.as_ref().expect("schnorr keypair has key");
                let (r, s) = key.sign(&self.seed, msg);
                out[1..9].copy_from_slice(&r.to_be_bytes());
                out[9..17].copy_from_slice(&s.to_be_bytes());
            }
            Scheme::KeyedHash => {
                let h = sha256_concat(&[b"sc/keyed-sig", &self.public.0, msg]);
                out[1..33].copy_from_slice(&h);
            }
        }
        Signature(out)
    }
}

impl core::fmt::Debug for Keypair {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Secret material is intentionally not printed.
        f.debug_struct("Keypair")
            .field("scheme", &self.scheme)
            .field("public", &self.public)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn both_schemes() -> [Scheme; 2] {
        [Scheme::Schnorr61, Scheme::KeyedHash]
    }

    #[test]
    fn sign_verify_roundtrip_both_schemes() {
        for scheme in both_schemes() {
            let kp = Keypair::from_seed(scheme, [1u8; 32]);
            let sig = kp.sign(b"message");
            assert!(kp.public().verify(b"message", &sig), "{scheme:?}");
            assert!(!kp.public().verify(b"messagE", &sig), "{scheme:?}");
        }
    }

    #[test]
    fn cross_key_rejection() {
        for scheme in both_schemes() {
            let a = Keypair::from_seed(scheme, [1u8; 32]);
            let b = Keypair::from_seed(scheme, [2u8; 32]);
            let sig = a.sign(b"msg");
            assert!(!b.public().verify(b"msg", &sig), "{scheme:?}");
        }
    }

    #[test]
    fn cross_scheme_rejection() {
        let a = Keypair::from_seed(Scheme::Schnorr61, [1u8; 32]);
        let b = Keypair::from_seed(Scheme::KeyedHash, [1u8; 32]);
        let sig_a = a.sign(b"msg");
        let sig_b = b.sign(b"msg");
        assert!(!b.public().verify(b"msg", &sig_a));
        assert!(!a.public().verify(b"msg", &sig_b));
    }

    #[test]
    fn generate_uses_rng_deterministically() {
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        for scheme in both_schemes() {
            let k1 = Keypair::generate(scheme, &mut r1);
            let k2 = Keypair::generate(scheme, &mut r2);
            assert_eq!(k1.public(), k2.public());
        }
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        for scheme in both_schemes() {
            let kp = Keypair::from_seed(scheme, [5u8; 32]);
            let bytes = *kp.public().as_bytes();
            let back = PublicKey::from_bytes(bytes).expect("valid tag");
            assert_eq!(back, kp.public());
            assert_eq!(back.scheme(), scheme);
        }
    }

    #[test]
    fn from_bytes_rejects_unknown_tag() {
        let mut bytes = [0u8; PUBLIC_KEY_LEN];
        bytes[0] = 0xff;
        assert!(PublicKey::from_bytes(bytes).is_none());
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let kp = Keypair::from_seed(Scheme::Schnorr61, [5u8; 32]);
        let sig = kp.sign(b"x");
        let back = Signature::from_bytes(*sig.as_bytes());
        assert_eq!(back, sig);
        assert!(kp.public().verify(b"x", &back));
    }

    #[test]
    fn display_and_debug_nonempty() {
        let kp = Keypair::from_seed(Scheme::Schnorr61, [5u8; 32]);
        assert!(!format!("{}", kp.public()).is_empty());
        assert!(!format!("{:?}", kp.public()).is_empty());
        assert!(!format!("{:?}", kp.sign(b"x")).is_empty());
        assert!(!format!("{kp:?}").contains("seed"));
    }

    #[test]
    fn ids_are_unique_across_population() {
        use std::collections::HashSet;
        let mut ids = HashSet::new();
        for i in 0u32..2000 {
            let mut seed = [0u8; 32];
            seed[..4].copy_from_slice(&i.to_le_bytes());
            for scheme in both_schemes() {
                assert!(ids.insert(Keypair::from_seed(scheme, seed).public()));
            }
        }
    }
}
