//! A from-scratch implementation of the SHA-256 hash function (FIPS 180-4).
//!
//! The simulator depends on hashing for descriptor digests, signature
//! messages, and deterministic key derivation. Implementing the function
//! in-repo keeps the workspace free of external crypto dependencies while
//! remaining bit-for-bit compatible with the standard (verified against the
//! NIST test vectors in this module's tests).
//!
//! Both a streaming API ([`Sha256`]) and a one-shot helper ([`sha256`]) are
//! provided.
//!
//! # Examples
//!
//! ```
//! use sc_crypto::sha256::{sha256, Sha256};
//!
//! let one_shot = sha256(b"abc");
//! let mut hasher = Sha256::new();
//! hasher.update(b"a");
//! hasher.update(b"bc");
//! assert_eq!(one_shot, hasher.finalize());
//! ```

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

/// A 32-byte SHA-256 digest.
pub type Digest = [u8; DIGEST_LEN];

const BLOCK_LEN: usize = 64;

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Incremental SHA-256 hasher.
///
/// Feed data with [`Sha256::update`] and obtain the digest with
/// [`Sha256::finalize`]. The hasher can be reused after [`Sha256::reset`].
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Sha256")
            .field("total_len", &self.total_len)
            .field("buffered", &self.buffered)
            .finish()
    }
}

impl Sha256 {
    /// Creates a fresh hasher in its initial state.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
            total_len: 0,
        }
    }

    /// Resets the hasher to its initial state, discarding buffered input.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(rest.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == BLOCK_LEN {
                compress(&mut self.state, &self.buffer);
                self.buffered = 0;
            }
        }
        let full = rest.len() - rest.len() % BLOCK_LEN;
        if full > 0 {
            compress_blocks(&mut self.state, &rest[..full]);
            rest = &rest[full..];
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
        self
    }

    /// Finishes the computation and returns the digest.
    ///
    /// The hasher is consumed; clone it first if further updates are needed.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian message length.
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        let pad_len = if self.buffered < 56 {
            56 - self.buffered
        } else {
            BLOCK_LEN + 56 - self.buffered
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_no_len(&pad[..pad_len + 8]);
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Like `update` but without counting the bytes toward the message
    /// length — used internally for padding.
    fn update_no_len(&mut self, data: &[u8]) {
        let saved = self.total_len;
        self.update(data);
        self.total_len = saved;
    }
}

/// Compresses a run of whole 64-byte blocks into `state`.
///
/// Dispatches to the SHA-NI hardware path when the CPU supports it (runtime
/// detected, cached), otherwise to the scalar software path. Both paths keep
/// the working state in registers across the entire run instead of
/// round-tripping it through memory once per block, which is what makes
/// multi-block throughput (`sha256/8KiB`) noticeably better than 64 bytes at
/// a time.
fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % BLOCK_LEN, 0);
    #[cfg(target_arch = "x86_64")]
    if shani::compress_blocks(state, data) {
        return;
    }
    compress_blocks_scalar(state, data);
}

/// Single-block convenience wrapper used for the internal buffer.
fn compress(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    compress_blocks(state, block);
}

/// Portable multi-block compression. The eight chaining values live in
/// locals for the whole run; memory is touched once on entry and once on
/// exit.
fn compress_blocks_scalar(state: &mut [u32; 8], data: &[u8]) {
    let [mut s0, mut s1, mut s2, mut s3, mut s4, mut s5, mut s6, mut s7] = *state;
    for block in data.chunks_exact(BLOCK_LEN) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let t0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let t1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(t0)
                .wrapping_add(w[i - 7])
                .wrapping_add(t1);
        }

        let (mut a, mut b, mut c, mut d) = (s0, s1, s2, s3);
        let (mut e, mut f, mut g, mut h) = (s4, s5, s6, s7);
        for i in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        s0 = s0.wrapping_add(a);
        s1 = s1.wrapping_add(b);
        s2 = s2.wrapping_add(c);
        s3 = s3.wrapping_add(d);
        s4 = s4.wrapping_add(e);
        s5 = s5.wrapping_add(f);
        s6 = s6.wrapping_add(g);
        s7 = s7.wrapping_add(h);
    }
    *state = [s0, s1, s2, s3, s4, s5, s6, s7];
}

/// Hardware SHA-256 via the x86 SHA extensions (SHA-NI).
///
/// The only `unsafe` in the workspace lives here: calling the
/// `#[target_feature]` function is sound because every entry point first
/// checks `is_x86_feature_detected!` (the result is cached by `std`), and
/// the intrinsics themselves only read/write the slices passed in. The path
/// is bit-for-bit equivalent to the scalar implementation — the equivalence
/// tests below run both against each other and against the NIST vectors.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod shani {
    use super::{BLOCK_LEN, K};
    use core::arch::x86_64::*;

    /// Returns `true` if the CPU supports the SHA extensions (plus the SSE
    /// levels the shuffle/blend helpers need).
    pub fn available() -> bool {
        is_x86_feature_detected!("sha")
            && is_x86_feature_detected!("sse4.1")
            && is_x86_feature_detected!("ssse3")
    }

    /// Compresses whole blocks with SHA-NI; returns `false` (leaving
    /// `state` untouched) when the CPU lacks the extension.
    #[inline]
    pub fn compress_blocks(state: &mut [u32; 8], data: &[u8]) -> bool {
        if !available() {
            return false;
        }
        // SAFETY: the required target features were just verified at
        // runtime; `compress_blocks_ni` has no other preconditions.
        unsafe { compress_blocks_ni(state, data) };
        true
    }

    #[target_feature(enable = "sha,sse4.1,ssse3,sse2")]
    unsafe fn compress_blocks_ni(state: &mut [u32; 8], data: &[u8]) {
        debug_assert_eq!(data.len() % BLOCK_LEN, 0);
        // Byte shuffle turning four little-endian lane loads into the
        // big-endian word order SHA-256 consumes.
        let mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);

        // Repack [a,b,c,d] / [e,f,g,h] into the ABEF / CDGH lane layout the
        // sha256rnds2 instruction expects.
        let tmp = _mm_shuffle_epi32(_mm_loadu_si128(state[..4].as_ptr().cast()), 0xB1);
        let efgh = _mm_shuffle_epi32(_mm_loadu_si128(state[4..].as_ptr().cast()), 0x1B);
        let mut abef = _mm_alignr_epi8(tmp, efgh, 8);
        let mut cdgh = _mm_blend_epi16(efgh, tmp, 0xF0);

        for block in data.chunks_exact(BLOCK_LEN) {
            let saved_abef = abef;
            let saved_cdgh = cdgh;

            let kv = |i: usize| {
                _mm_set_epi32(
                    K[4 * i + 3] as i32,
                    K[4 * i + 2] as i32,
                    K[4 * i + 1] as i32,
                    K[4 * i] as i32,
                )
            };
            // Two rounds per sha256rnds2; the low then high halves of the
            // four prepared (W+K) words.
            let rounds4 = |abef: &mut __m128i, cdgh: &mut __m128i, wk: __m128i| {
                *cdgh = _mm_sha256rnds2_epu32(*cdgh, *abef, wk);
                *abef = _mm_sha256rnds2_epu32(*abef, *cdgh, _mm_shuffle_epi32(wk, 0x0E));
            };
            // Produces W[i..i+4] from the previous 16 schedule words.
            let schedule = |v0: __m128i, v1: __m128i, v2: __m128i, v3: __m128i| {
                let t = _mm_add_epi32(_mm_sha256msg1_epu32(v0, v1), _mm_alignr_epi8(v3, v2, 4));
                _mm_sha256msg2_epu32(t, v3)
            };

            let p = block.as_ptr();
            let mut w0 = _mm_shuffle_epi8(_mm_loadu_si128(p.cast()), mask);
            let mut w1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(16).cast()), mask);
            let mut w2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(32).cast()), mask);
            let mut w3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(48).cast()), mask);

            rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w0, kv(0)));
            rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w1, kv(1)));
            rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w2, kv(2)));
            rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w3, kv(3)));
            for chunk in 1..4 {
                w0 = schedule(w0, w1, w2, w3);
                rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w0, kv(4 * chunk)));
                w1 = schedule(w1, w2, w3, w0);
                rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w1, kv(4 * chunk + 1)));
                w2 = schedule(w2, w3, w0, w1);
                rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w2, kv(4 * chunk + 2)));
                w3 = schedule(w3, w0, w1, w2);
                rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w3, kv(4 * chunk + 3)));
            }

            abef = _mm_add_epi32(abef, saved_abef);
            cdgh = _mm_add_epi32(cdgh, saved_cdgh);
        }

        // Unpack ABEF / CDGH back to [a..d] / [e..h].
        let tmp = _mm_shuffle_epi32(abef, 0x1B);
        let cdgh_sh = _mm_shuffle_epi32(cdgh, 0xB1);
        _mm_storeu_si128(
            state[..4].as_mut_ptr().cast(),
            _mm_blend_epi16(tmp, cdgh_sh, 0xF0),
        );
        _mm_storeu_si128(
            state[4..].as_mut_ptr().cast(),
            _mm_alignr_epi8(cdgh_sh, tmp, 8),
        );
    }
}

/// Computes the SHA-256 digest of `data` in one shot.
///
/// # Examples
///
/// ```
/// let d = sc_crypto::sha256::sha256(b"hello");
/// assert_eq!(d.len(), 32);
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    if data.len() <= SHORT_MAX {
        return short_digest(&[data], data.len());
    }
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Computes SHA-256 over the concatenation of several byte slices without
/// allocating an intermediate buffer.
pub fn sha256_concat(parts: &[&[u8]]) -> Digest {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    if total <= SHORT_MAX {
        return short_digest(parts, total);
    }
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// Longest message that fits one block together with the mandatory padding
/// byte and 8-byte length trailer.
const SHORT_MAX: usize = BLOCK_LEN - 9;

/// One-block fast path: messages of ≤ 55 bytes (the protocol's dominant
/// shape — domain tag + a few fixed-width fields) are padded on the stack
/// and compressed once, skipping the streaming buffer round-trips.
fn short_digest(parts: &[&[u8]], total: usize) -> Digest {
    debug_assert!(total <= SHORT_MAX);
    let mut block = [0u8; BLOCK_LEN];
    let mut off = 0;
    for p in parts {
        block[off..off + p.len()].copy_from_slice(p);
        off += p.len();
    }
    block[off] = 0x80;
    block[56..].copy_from_slice(&(total as u64 * 8).to_be_bytes());
    let mut state = H0;
    compress_blocks(&mut state, &block);
    let mut out = [0u8; DIGEST_LEN];
    for (chunk, word) in out.chunks_exact_mut(4).zip(state.iter()) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    #[test]
    fn nist_empty() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_448_bits() {
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(
            to_hex(&sha256(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_for_all_split_points() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let expect = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Exercise padding around the 56-byte and 64-byte boundaries.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128, 129] {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            for b in &data {
                h.update(core::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), sha256(&data), "len {len}");
        }
    }

    #[test]
    fn concat_helper_matches_manual_concat() {
        let d1 = sha256_concat(&[b"foo", b"bar", b""]);
        let d2 = sha256(b"foobar");
        assert_eq!(d1, d2);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = Sha256::new();
        h.update(b"garbage");
        h.reset();
        h.update(b"abc");
        assert_eq!(
            to_hex(&h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn debug_is_nonempty() {
        let h = Sha256::new();
        assert!(!format!("{h:?}").is_empty());
    }

    /// The hardware and scalar compression paths must agree bit-for-bit on
    /// arbitrary states and block runs (1–8 blocks, varied fill patterns).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn shani_matches_scalar_on_random_runs() {
        if !super::shani::available() {
            eprintln!("skipping: CPU lacks SHA-NI");
            return;
        }
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for blocks in 1..=8usize {
            for _case in 0..16 {
                let mut state: [u32; 8] = core::array::from_fn(|_| next() as u32);
                let data: Vec<u8> = (0..blocks * BLOCK_LEN).map(|_| next() as u8).collect();
                let mut hw = state;
                assert!(super::shani::compress_blocks(&mut hw, &data));
                compress_blocks_scalar(&mut state, &data);
                assert_eq!(hw, state, "{blocks} blocks");
            }
        }
    }

    /// Multi-block runs through the dispatching entry point match a
    /// block-at-a-time scalar walk (exercises whichever path the host CPU
    /// selects against the portable reference).
    #[test]
    fn compress_blocks_matches_per_block_scalar() {
        let data: Vec<u8> = (0u8..=255).cycle().take(7 * BLOCK_LEN).collect();
        let mut dispatched = H0;
        compress_blocks(&mut dispatched, &data);
        let mut reference = H0;
        for block in data.chunks_exact(BLOCK_LEN) {
            compress_blocks_scalar(&mut reference, block);
        }
        assert_eq!(dispatched, reference);
    }
}
