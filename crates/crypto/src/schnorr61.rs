//! Schnorr signatures over the multiplicative group of the Mersenne prime
//! `p = 2^61 - 1`.
//!
//! This is a *fully functional* public-key signature scheme — key
//! generation, signing, and verification follow the textbook Schnorr
//! construction (`g^s == r · pk^e (mod p)`) with a derandomized nonce.
//! The only concession to simulation is the toy group size: a 61-bit
//! discrete log offers no security against a real attacker, but the
//! SecureCyclon threat model (ICDCS 2023, §II-A) explicitly assumes
//! signatures cannot be forged, and no component of this repository ever
//! attempts to break the group. What matters for reproducing the paper is
//! that verification is genuine public-key verification, which this scheme
//! provides at simulation-friendly speed.
//!
//! Exponent arithmetic is performed modulo `p - 1`; since the order of the
//! generator divides `p - 1`, the verification identity holds exactly.

use crate::sha256::sha256_concat;

/// The Mersenne prime 2^61 − 1.
pub const P: u64 = (1u64 << 61) - 1;
/// Group exponents are reduced modulo `P - 1`.
pub const P_MINUS_1: u64 = P - 1;
/// Generator of a large subgroup of `Z_p^*`.
pub const G: u64 = 3;

/// Modular multiplication in `Z_p`.
///
/// Uses the Mersenne structure of `p`: with `t = a·b` split at bits 61 and
/// 122, `2^61 ≡ 1 (mod p)` makes `t ≡ lo + mid + hi`, so the product
/// reduces with two folds and one conditional subtraction — no 128-bit
/// division. Equal to `(a·b) mod p` for **all** `u64` inputs (tested
/// against the wide-division reference below).
#[inline]
pub const fn mulmod(a: u64, b: u64) -> u64 {
    let t = a as u128 * b as u128;
    // lo + mid ≤ 2·(2^61 − 1), hi < 2^6 ⇒ sum < 2^63: no overflow.
    let sum = ((t as u64) & P) + (((t >> 61) as u64) & P) + ((t >> 122) as u64);
    // Second fold leaves a value < 2^61 + 3 < 2p; one subtraction suffices.
    let s = (sum & P) + (sum >> 61);
    if s >= P {
        s - P
    } else {
        s
    }
}

/// Modular exponentiation `base^exp (mod p)` by square-and-multiply.
pub const fn powmod(mut base: u64, mut exp: u64) -> u64 {
    base %= P;
    let mut acc: u64 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base);
        }
        base = mulmod(base, base);
        exp >>= 1;
    }
    acc
}

/// Bits consumed per window of the fixed-base table.
const WINDOW_BITS: u32 = 4;
/// Windows needed to cover a full 64-bit exponent.
const WINDOWS: usize = (u64::BITS / WINDOW_BITS) as usize;

/// Fixed-base window table for the generator: `G_TABLE[w][d] = G^(d·16^w)`.
///
/// Built at compile time; 16 windows × 16 digits × 8 bytes = 2 KiB. With it
/// `g^e` costs at most 15 modular multiplications and **zero** squarings,
/// against ~60 squarings plus ~30 multiplications for square-and-multiply.
static G_TABLE: [[u64; 16]; WINDOWS] = build_g_table();

const fn build_g_table() -> [[u64; 16]; WINDOWS] {
    let mut table = [[1u64; 16]; WINDOWS];
    let mut base = G; // G^(16^w) at the start of window w
    let mut w = 0;
    while w < WINDOWS {
        let mut d = 1;
        while d < 16 {
            table[w][d] = mulmod(table[w][d - 1], base);
            d += 1;
        }
        base = mulmod(table[w][15], base);
        w += 1;
    }
    table
}

/// Fixed-base exponentiation `G^exp (mod p)` via the precomputed window
/// table. Bit-for-bit identical to `powmod(G, exp)` for every `exp`.
pub fn g_powmod(exp: u64) -> u64 {
    let mut acc = 1u64;
    let mut e = exp;
    let mut w = 0;
    while e > 0 {
        let d = (e & 0xf) as usize;
        if d != 0 {
            acc = mulmod(acc, G_TABLE[w][d]);
        }
        e >>= WINDOW_BITS;
        w += 1;
    }
    acc
}

/// Shamir's trick: simultaneous double exponentiation `a^x · b^y (mod p)`.
///
/// Scans the bits of both exponents in one pass, sharing the squarings the
/// two exponentiations would otherwise each pay: one squaring per bit of
/// `max(x, y)` plus one multiplication per bit position where either
/// exponent is set (by `a`, `b`, or the precomputed `a·b`). Roughly 1.7×
/// cheaper than two independent [`powmod`] calls.
pub fn shamir_powmod(a: u64, x: u64, b: u64, y: u64) -> u64 {
    let a = a % P;
    let b = b % P;
    let ab = mulmod(a, b);
    let bits = u64::BITS - (x | y).leading_zeros();
    let mut acc = 1u64;
    for i in (0..bits).rev() {
        acc = mulmod(acc, acc);
        match ((x >> i) & 1, (y >> i) & 1) {
            (1, 1) => acc = mulmod(acc, ab),
            (1, 0) => acc = mulmod(acc, a),
            (0, 1) => acc = mulmod(acc, b),
            _ => {}
        }
    }
    acc
}

/// Reduces a 16-byte big-endian value modulo `m` (used to derive nonces and
/// challenges from hash output with negligible bias).
fn reduce16(bytes: &[u8], m: u64) -> u64 {
    let mut wide = [0u8; 16];
    wide.copy_from_slice(&bytes[..16]);
    (u128::from_be_bytes(wide) % m as u128) as u64
}

/// [`reduce16`] specialised to the compile-time constant `p − 1`, so the
/// 128-bit remainder lowers to multiply-high code instead of a call to the
/// software division intrinsic (`__umodti3`) — this runs once per challenge
/// on every verify.
#[inline]
fn reduce16_pm1(bytes: &[u8]) -> u64 {
    let mut wide = [0u8; 16];
    wide.copy_from_slice(&bytes[..16]);
    (u128::from_be_bytes(wide) % P_MINUS_1 as u128) as u64
}

/// A Schnorr secret exponent together with its public element.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SchnorrKey {
    /// Secret exponent `x` in `[1, p-2]`.
    pub x: u64,
    /// Public element `g^x mod p`.
    pub pk: u64,
}

impl core::fmt::Debug for SchnorrKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Deliberately omit the secret exponent.
        f.debug_struct("SchnorrKey").field("pk", &self.pk).finish()
    }
}

impl SchnorrKey {
    /// Derives a keypair deterministically from a 32-byte seed.
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let h = sha256_concat(&[b"sc/schnorr-keygen", seed]);
        let x = 1 + reduce16(&h, P_MINUS_1 - 1);
        SchnorrKey { x, pk: g_powmod(x) }
    }

    /// Signs `msg`, returning the `(r, s)` pair.
    ///
    /// The nonce is derived deterministically from the seed material and the
    /// message (RFC-6979 style), so signing never requires an RNG and
    /// repeated signatures of the same message are identical.
    pub fn sign(&self, seed: &[u8; 32], msg: &[u8]) -> (u64, u64) {
        let nh = sha256_concat(&[b"sc/schnorr-nonce", seed, msg]);
        let mut k = reduce16_pm1(&nh);
        if k == 0 {
            k = 1;
        }
        let r = g_powmod(k);
        let e = challenge(r, self.pk, msg);
        // s = k + e·x (mod p-1)
        let ex = (e as u128 * self.x as u128) % P_MINUS_1 as u128;
        let s = ((k as u128 + ex) % P_MINUS_1 as u128) as u64;
        (r, s)
    }
}

/// Computes the Fiat–Shamir challenge `e = H(r ‖ pk ‖ msg) mod (p-1)`.
///
/// The domain tag is kept to 7 bytes so that for the protocol's dominant
/// message shape — a 32-byte digest — the whole input (7 + 8 + 8 + 32 = 55
/// bytes) fits a single SHA-256 block including padding, halving the hash
/// cost on every sign and verify.
fn challenge(r: u64, pk: u64, msg: &[u8]) -> u64 {
    let h = sha256_concat(&[b"sc/chal", &r.to_be_bytes(), &pk.to_be_bytes(), msg]);
    reduce16_pm1(&h)
}

/// Reference implementations kept out of the hot path.
///
/// The protocol layers call [`verify_fast`] / [`batch_verify`] exclusively;
/// this module preserves the textbook forms so equivalence tests (and the
/// bench baseline's `verify_legacy` series) can pin the optimized paths
/// against them.
pub mod reference {
    use super::*;

    /// Verifies a Schnorr signature `(r, s)` on `msg` against public
    /// element `pk` by the literal textbook predicate
    /// `g^s == r · pk^e (mod p)` — two independent square-and-multiply
    /// exponentiations, no windowing, no batching.
    pub fn verify(pk: u64, msg: &[u8], r: u64, s: u64) -> bool {
        if r == 0 || r >= P || s >= P_MINUS_1 || pk == 0 || pk >= P {
            return false;
        }
        let e = challenge(r, pk, msg);
        powmod(G, s) == mulmod(r, powmod(pk, e))
    }
}

/// Fast verification path: same predicate as [`verify`], restated as
/// `g^s · pk^{(p-1)-e} == r` and evaluated with a single Shamir
/// simultaneous exponentiation (with the fixed-base table covering the
/// `e = 0` degenerate case).
///
/// The two forms are equivalent for every in-range input: `pk ∈ [1, p-1]`
/// is invertible and `pk^(p-1) = 1` by Fermat, so multiplying both sides
/// of `g^s == r · pk^e` by `pk^{(p-1)-e}` is a bijection. Out-of-range
/// inputs are rejected by the identical up-front checks. Exhaustive
/// agreement with [`verify`] is asserted by this module's tests.
pub fn verify_fast(pk: u64, msg: &[u8], r: u64, s: u64) -> bool {
    if r == 0 || r >= P || s >= P_MINUS_1 || pk == 0 || pk >= P {
        return false;
    }
    let e = challenge(r, pk, msg);
    if e == 0 {
        return g_powmod(s) == r;
    }
    shamir_powmod(G, s, pk, P_MINUS_1 - e) == r
}

/// One signature in a [`batch_verify`] call.
#[derive(Clone, Copy, Debug)]
pub struct BatchItem<'a> {
    /// Public element the signature is checked against.
    pub pk: u64,
    /// Signed message.
    pub msg: &'a [u8],
    /// Commitment half of the signature.
    pub r: u64,
    /// Response half of the signature.
    pub s: u64,
}

/// Verifies a batch of Schnorr signatures with one combined exponentiation
/// pass (random-linear-combination batching).
///
/// Raising each verification identity `g^{s_i} = r_i · pk_i^{e_i}` to a
/// per-item blinding scalar `z_i` and multiplying them out gives the single
/// check
///
/// ```text
/// g^{Σ z_i·s_i}  ==  Π r_i^{z_i} · Π pk_i^{z_i·e_i}   (mod p)
/// ```
///
/// whose right-hand side is evaluated as one interleaved multi-
/// exponentiation: every item shares the same 61 squarings, so the
/// per-signature cost collapses to the multiplications for its own set
/// bits (~46) plus `1/n`-th of the shared work — compared with ~61
/// squarings *and* ~46 multiplications for an independent [`verify_fast`].
///
/// The blinding scalars are **deterministic but unpredictable to a forger**:
/// `z_i = H("sc/batch-blind" ‖ D ‖ i)` where `D` commits to every
/// `(pk, r, s, e)` tuple in the batch (`e` itself binds the message).
/// Cancelling a forged item against another would require choosing
/// signature values that survive being re-hashed into fresh scalars —
/// the standard small-exponent argument, with the domain separation
/// keeping these hashes disjoint from every other hash in the repo.
///
/// Because `Z_p^*` here has **composite, completely smooth order**
/// (`p − 1 = 2·3²·5²·7·11·13·31·41·61·151·331·1321`), raw random scalars
/// would be unsound: a forger who skews a commitment to `−r` creates a
/// verification discrepancy of order 2, which any *even* `z_i` annihilates
/// — a ½ pass probability, not a negligible one. Each drawn scalar is
/// therefore nudged forward to the nearest value **coprime to `p − 1`**
/// ([`coprime_pm1`]); then `d^{z_i} = 1` forces `d = 1`, so a batch with a
/// single invalid signature can never pass, whatever the discrepancy's
/// order.
///
/// Returns `Ok(())` when every signature verifies. Otherwise returns
/// `Err(i)` with the **first** invalid index — located by bisecting the
/// batch (re-deriving sub-batch scalars each time) and confirming each
/// leaf with [`verify_fast`], so attribution is exact: an honest signature
/// is never blamed and a forged one is never admitted. A batch of one
/// degenerates to plain [`verify_fast`].
pub fn batch_verify(items: &[BatchItem<'_>]) -> Result<(), usize> {
    // Below ~4 items the combined check's fixed costs (blinding commit,
    // scalar expansion, final fixed-base exponentiation) outweigh the
    // shared-squaring savings; a sequential scan is both faster and
    // trivially exact.
    if items.len() < 4 {
        return items
            .iter()
            .position(|it| !verify_fast(it.pk, it.msg, it.r, it.s))
            .map_or(Ok(()), Err);
    }
    // Challenges are needed by both the combined check and any fallback
    // verification; compute them once up front.
    let challenges: Vec<u64> = items
        .iter()
        .map(|it| challenge(it.r, it.pk, it.msg))
        .collect();
    if batch_holds(items, &challenges) {
        return Ok(());
    }
    match first_invalid(items, &challenges, 0) {
        Some(i) => Err(i),
        // The combined check failed but bisection found nothing — only
        // reachable through a blinding-scalar collision masking a forgery
        // at some granularity. Fall back to the exact per-signature scan
        // so the verdict always equals the sequential one.
        None => items
            .iter()
            .position(|it| !verify_fast(it.pk, it.msg, it.r, it.s))
            .map_or(Ok(()), Err),
    }
}

/// Bisects `items[..]` (a sub-batch starting at `offset` of the original
/// call) for the first index whose signature fails [`verify_fast`].
fn first_invalid(items: &[BatchItem<'_>], challenges: &[u64], offset: usize) -> Option<usize> {
    debug_assert!(!items.is_empty());
    if items.len() == 1 {
        let it = &items[0];
        return (!verify_fast(it.pk, it.msg, it.r, it.s)).then_some(offset);
    }
    let mid = items.len() / 2;
    let (left, right) = items.split_at(mid);
    let (cl, cr) = challenges.split_at(mid);
    if !batch_holds(left, cl) {
        if let Some(i) = first_invalid(left, cl, offset) {
            return Some(i);
        }
    }
    if !batch_holds(right, cr) {
        return first_invalid(right, cr, offset + mid);
    }
    None
}

/// Evaluates the combined random-linear-combination identity for one
/// (sub-)batch. `true` means "no forgery detectable at this granularity";
/// a batch containing only valid signatures always passes.
fn batch_holds(items: &[BatchItem<'_>], challenges: &[u64]) -> bool {
    if items.len() == 1 {
        let it = &items[0];
        return verify_fast(it.pk, it.msg, it.r, it.s);
    }
    // Out-of-range values make the group identity meaningless; any such
    // item fails the sub-batch outright (bisection then pinpoints it).
    if items
        .iter()
        .any(|it| it.r == 0 || it.r >= P || it.s >= P_MINUS_1 || it.pk == 0 || it.pk >= P)
    {
        return false;
    }

    // Deterministic per-batch blinding: commit to every check, then expand
    // scalars in counter mode (four 64-bit draws per digest, so the hash
    // cost is ~¼ compression per item). Committing `(s_i, e_i)` binds the
    // whole tuple because `e_i = H(r_i ‖ pk_i ‖ msg_i)` already commits to
    // the remaining fields. The input is assembled contiguously so the
    // hasher compresses straight from the slice. `z_0 = 1` is sound — only
    // the *relative* blinding between items matters.
    let mut commit = Vec::with_capacity(16 + items.len() * 16);
    commit.extend_from_slice(b"sc/batch-blind");
    for (it, &e) in items.iter().zip(challenges) {
        commit.extend_from_slice(&it.s.to_be_bytes());
        commit.extend_from_slice(&e.to_be_bytes());
    }
    let digest = crate::sha256::sha256(&commit);
    let mut z = Vec::with_capacity(items.len());
    z.push(1u64);
    let mut block = 0u64;
    while z.len() < items.len() {
        // Tag kept short so the 47-byte input fits one compression block.
        let h = sha256_concat(&[b"sc/bb/z", &digest, &block.to_be_bytes()]);
        block += 1;
        for chunk in h.chunks_exact(8) {
            if z.len() == items.len() {
                break;
            }
            let w = u64::from_be_bytes(chunk.try_into().expect("chunk len 8"));
            // Bias from the single reduction is ≤ 2^-58: immaterial here.
            z.push(coprime_pm1(1 + w % (P_MINUS_1 - 1)));
        }
    }

    // Left side: one fixed-base exponentiation of the blinded sum.
    // Right side per item: a 16-entry pair table `r^a · pk^b` (a, b < 4)
    // indexed by two bits of each exponent at a time — a branchless
    // multiply per window keeps the inner loop free of data-dependent
    // branches and halves the multiply count versus bit-at-a-time.
    let mut s_sum: u64 = 0;
    let mut tables: Vec<[u64; 16]> = Vec::with_capacity(items.len());
    let mut exps: Vec<(u64, u64)> = Vec::with_capacity(items.len());
    for ((it, &e), &zi) in items.iter().zip(challenges).zip(&z) {
        s_sum = ((s_sum as u128 + zi as u128 * it.s as u128) % P_MINUS_1 as u128) as u64;
        let y = ((zi as u128 * e as u128) % P_MINUS_1 as u128) as u64;
        tables.push(pair_table(it.r, it.pk));
        exps.push((zi, y));
    }

    // Interleaved multi-exponentiation over eight independent
    // accumulators: each walks the 31 two-bit windows once (squarings
    // shared by all the items in its lane), and splitting the items across
    // eight chains breaks the serial acc→acc multiply dependency so the
    // CPU can overlap the modular reductions.
    let mut accs = [1u64; 8];
    for w in (0..31u32).rev() {
        for a in accs.iter_mut() {
            let sq = mulmod(*a, *a);
            *a = mulmod(sq, sq);
        }
        let shift = 2 * w;
        for (i, (&(x, y), table)) in exps.iter().zip(&tables).enumerate() {
            let d = (((x >> shift) & 3) | (((y >> shift) & 3) << 2)) as usize;
            let lane = &mut accs[i & 7];
            *lane = mulmod(*lane, table[d]);
        }
    }
    let rhs = accs.iter().fold(1u64, |p, &a| mulmod(p, a));
    g_powmod(s_sum) == rhs
}

/// Walks `z` forward to the first value coprime to `p − 1`.
///
/// The group order's full factorization is
/// `p − 1 = 2·3²·5²·7·11·13·31·41·61·151·331·1321`, so coprimality is
/// twelve divisibility tests against *constant* divisors (compiled to
/// multiply-high sequences, no `div`). Density of units mod `p − 1` is
/// `φ(p−1)/(p−1) ≈ 0.155`, so the walk averages ~6 cheap steps — noise
/// next to one modular multiplication. Wraps to 1 (a unit) in the
/// astronomically unlikely event the walk runs off the top of the range.
fn coprime_pm1(mut z: u64) -> u64 {
    // Oddness (the most frequent rejection) is forced once, then the walk
    // strides by 2 and only the eleven odd prime factors need testing.
    z |= 1;
    const fn is_odd_unit(z: u64) -> bool {
        !z.is_multiple_of(3)
            && !z.is_multiple_of(5)
            && !z.is_multiple_of(7)
            && !z.is_multiple_of(11)
            && !z.is_multiple_of(13)
            && !z.is_multiple_of(31)
            && !z.is_multiple_of(41)
            && !z.is_multiple_of(61)
            && !z.is_multiple_of(151)
            && !z.is_multiple_of(331)
            && !z.is_multiple_of(1321)
    }
    while !is_odd_unit(z) {
        z += 2;
        if z >= P_MINUS_1 {
            z = 1;
        }
    }
    z
}

/// Builds the 16-entry table `t[b·4 + a] = r^a · pk^b (mod p)` for the
/// two-bit windowed multi-exponentiation.
fn pair_table(r: u64, pk: u64) -> [u64; 16] {
    let mut t = [1u64; 16];
    t[1] = r;
    t[2] = mulmod(r, r);
    t[3] = mulmod(t[2], r);
    t[4] = pk;
    t[8] = mulmod(pk, pk);
    t[12] = mulmod(t[8], pk);
    for b in [4usize, 8, 12] {
        t[b + 1] = mulmod(t[b], r);
        t[b + 2] = mulmod(t[b], t[2]);
        t[b + 3] = mulmod(t[b], t[3]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::reference::verify;
    use super::*;

    fn key(tag: u8) -> (SchnorrKey, [u8; 32]) {
        let seed = [tag; 32];
        (SchnorrKey::from_seed(&seed), seed)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (k, seed) = key(7);
        let (r, s) = k.sign(&seed, b"hello overlay");
        assert!(verify(k.pk, b"hello overlay", r, s));
    }

    #[test]
    fn rejects_tampered_message() {
        let (k, seed) = key(7);
        let (r, s) = k.sign(&seed, b"hello overlay");
        assert!(!verify(k.pk, b"hello overlaz", r, s));
    }

    #[test]
    fn rejects_wrong_key() {
        let (k1, seed1) = key(1);
        let (k2, _) = key(2);
        let (r, s) = k1.sign(&seed1, b"msg");
        assert!(!verify(k2.pk, b"msg", r, s));
    }

    #[test]
    fn rejects_tampered_signature_parts() {
        let (k, seed) = key(9);
        let (r, s) = k.sign(&seed, b"msg");
        assert!(!verify(k.pk, b"msg", r ^ 1, s));
        assert!(!verify(k.pk, b"msg", r, s ^ 1));
    }

    #[test]
    fn rejects_out_of_range_values() {
        let (k, seed) = key(3);
        let (_, s) = k.sign(&seed, b"m");
        assert!(!verify(k.pk, b"m", 0, s));
        assert!(!verify(k.pk, b"m", P, s));
        assert!(!verify(0, b"m", 1, s));
    }

    #[test]
    fn signing_is_deterministic() {
        let (k, seed) = key(4);
        assert_eq!(k.sign(&seed, b"m"), k.sign(&seed, b"m"));
        assert_ne!(k.sign(&seed, b"m"), k.sign(&seed, b"n"));
    }

    #[test]
    fn powmod_basics() {
        assert_eq!(powmod(G, 0), 1);
        assert_eq!(powmod(G, 1), G);
        assert_eq!(powmod(G, 2), 9);
        // Fermat: g^(p-1) == 1 (mod p) for prime p.
        assert_eq!(powmod(G, P_MINUS_1), 1);
    }

    #[test]
    fn mulmod_matches_u128_reference() {
        let cases = [
            (P - 1, P - 1),
            (12345, 678910),
            (P - 2, 2),
            (0, 0),
            (u64::MAX, u64::MAX),
            (u64::MAX, 1),
            (P, P),
            (P, 1),
        ];
        for (a, b) in cases {
            let want = ((a as u128 * b as u128) % P as u128) as u64;
            assert_eq!(mulmod(a, b), want, "a={a} b={b}");
        }
        let mut stream = xorshift_stream(0x9e37_79b9);
        for _ in 0..20_000 {
            let a = stream.next().unwrap();
            let b = stream.next().unwrap();
            let want = ((a as u128 * b as u128) % P as u128) as u64;
            assert_eq!(mulmod(a, b), want, "a={a} b={b}");
        }
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let (k1, _) = key(10);
        let (k2, _) = key(11);
        assert_ne!(k1.pk, k2.pk);
    }

    /// A deterministic pseudo-random u64 stream for exhaustive equivalence
    /// sweeps (keeps the tests RNG-free and reproducible).
    fn xorshift_stream(mut state: u64) -> impl Iterator<Item = u64> {
        std::iter::repeat_with(move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        })
    }

    fn exponent_edge_cases() -> Vec<u64> {
        let mut cases = vec![
            0,
            1,
            2,
            3,
            15,
            16,
            17,
            P_MINUS_1 - 1,
            P_MINUS_1,
            P,
            u64::MAX,
        ];
        for i in 0..64 {
            let p = 1u64 << i;
            cases.extend([p.wrapping_sub(1), p, p.wrapping_add(1)]);
        }
        cases
    }

    #[test]
    fn g_powmod_matches_powmod_exhaustively() {
        for e in exponent_edge_cases() {
            assert_eq!(g_powmod(e), powmod(G, e), "edge exponent {e}");
        }
        for e in xorshift_stream(0x5eed_1234).take(2000) {
            assert_eq!(g_powmod(e), powmod(G, e), "random exponent {e}");
        }
    }

    #[test]
    fn g_table_first_window_is_small_powers() {
        for (d, entry) in G_TABLE[0].iter().enumerate() {
            assert_eq!(*entry, powmod(G, d as u64));
        }
    }

    #[test]
    fn shamir_powmod_matches_independent_exponentiations() {
        let mut stream = xorshift_stream(0xabcd_ef01);
        for _ in 0..1000 {
            let a = stream.next().unwrap() % P;
            let b = stream.next().unwrap() % P;
            let x = stream.next().unwrap();
            let y = stream.next().unwrap();
            let want = mulmod(powmod(a, x), powmod(b, y));
            assert_eq!(shamir_powmod(a, x, b, y), want, "a={a} x={x} b={b} y={y}");
        }
        // Degenerate exponents and bases.
        for (a, x, b, y) in [
            (0, 0, 0, 0),
            (G, 0, 5, 0),
            (G, 1, 5, 0),
            (G, 0, 5, 1),
            (G, P_MINUS_1, 7, P_MINUS_1),
            (1, u64::MAX, 1, u64::MAX),
        ] {
            assert_eq!(
                shamir_powmod(a, x, b, y),
                mulmod(powmod(a, x), powmod(b, y))
            );
        }
    }

    #[test]
    fn verify_fast_agrees_with_verify_on_real_signatures() {
        for tag in 0..32u8 {
            let (k, seed) = key(tag);
            let msg = [tag; 40];
            let (r, s) = k.sign(&seed, &msg);
            // Valid signature, tampered message, tampered parts, wrong key.
            assert!(verify(k.pk, &msg, r, s) && verify_fast(k.pk, &msg, r, s));
            for (pk, m, rr, ss) in [
                (k.pk, [tag ^ 1; 40], r, s),
                (k.pk, msg, r ^ 1, s),
                (k.pk, msg, r, s ^ 1),
                (key(tag.wrapping_add(1)).0.pk, msg, r, s),
            ] {
                assert_eq!(
                    verify(pk, &m, rr, ss),
                    verify_fast(pk, &m, rr, ss),
                    "tampered case pk={pk} r={rr} s={ss}"
                );
            }
        }
    }

    #[test]
    fn verify_fast_agrees_with_verify_on_arbitrary_inputs() {
        // Random (pk, r, s) triples — mostly invalid signatures — plus
        // out-of-range values: the fast path must return the identical
        // verdict everywhere, not just on honestly generated signatures.
        let mut stream = xorshift_stream(0x0bad_cafe);
        for i in 0..2000u64 {
            let pk = stream.next().unwrap() % (P + 2);
            let r = stream.next().unwrap() % (P + 2);
            let s = stream.next().unwrap() % (P + 2);
            let msg = i.to_be_bytes();
            assert_eq!(
                verify(pk, &msg, r, s),
                verify_fast(pk, &msg, r, s),
                "pk={pk} r={r} s={s}"
            );
        }
        for bad in [
            (0u64, 1u64, 1u64),
            (P, 1, 1),
            (1, 0, 1),
            (1, P, 1),
            (1, 1, P_MINUS_1),
        ] {
            let (pk, r, s) = bad;
            assert!(!verify(pk, b"m", r, s));
            assert!(!verify_fast(pk, b"m", r, s));
        }
    }

    /// Raw `(pk, r, s)` signature tuples, parallel to a message list.
    type RawSigs = Vec<(u64, u64, u64)>;

    /// Builds `n` valid signatures over distinct messages from a pool of
    /// keys. Returns the owned message bytes plus the raw tuples.
    fn signed_batch(n: usize, seed_tag: u8) -> (Vec<[u8; 32]>, RawSigs) {
        let mut msgs = Vec::with_capacity(n);
        let mut sigs = Vec::with_capacity(n);
        for i in 0..n {
            let (k, seed) = key(seed_tag.wrapping_add((i % 11) as u8));
            let mut msg = [0u8; 32];
            msg[..8].copy_from_slice(&(i as u64).to_be_bytes());
            msg[8] = seed_tag;
            let (r, s) = k.sign(&seed, &msg);
            msgs.push(msg);
            sigs.push((k.pk, r, s));
        }
        (msgs, sigs)
    }

    fn items<'a>(msgs: &'a [[u8; 32]], sigs: &[(u64, u64, u64)]) -> Vec<BatchItem<'a>> {
        msgs.iter()
            .zip(sigs)
            .map(|(m, &(pk, r, s))| BatchItem { pk, msg: m, r, s })
            .collect()
    }

    /// Property: for every batch size 1–64, `batch_verify` agrees with a
    /// sequential `verify_fast` walk — `Ok` on all-valid batches, and the
    /// identical first-failing index once signatures are corrupted.
    #[test]
    fn batch_matches_sequential_on_all_sizes() {
        for n in 1..=64usize {
            let (msgs, sigs) = signed_batch(n, n as u8);
            let batch = items(&msgs, &sigs);
            let sequential = batch
                .iter()
                .position(|it| !verify_fast(it.pk, it.msg, it.r, it.s));
            assert_eq!(batch_verify(&batch), Ok(()), "size {n}");
            assert_eq!(sequential, None, "size {n}");
        }
    }

    /// A single forged signature anywhere in the batch is detected and
    /// attributed to exactly the forged index: no honest signature is
    /// blamed and no forged one admitted, at every (size, position) pair.
    #[test]
    fn single_forgery_is_attributed_exactly() {
        for n in [1usize, 2, 3, 5, 8, 16, 33, 64] {
            let (msgs, base) = signed_batch(n, 0x40);
            for forged_at in 0..n {
                for corrupt in ["r", "s", "pk"] {
                    let mut sigs = base.clone();
                    match corrupt {
                        "r" => sigs[forged_at].1 ^= 0x2,
                        "s" => sigs[forged_at].2 ^= 0x4,
                        _ => sigs[forged_at].0 ^= 0x8,
                    }
                    let batch = items(&msgs, &sigs);
                    let sequential = batch
                        .iter()
                        .position(|it| !verify_fast(it.pk, it.msg, it.r, it.s))
                        .expect("corruption must invalidate the signature");
                    assert_eq!(
                        batch_verify(&batch),
                        Err(sequential),
                        "n={n} forged_at={forged_at} corrupt={corrupt}"
                    );
                    assert_eq!(sequential, forged_at);
                }
            }
        }
    }

    /// Multiple forgeries: the reported index is always the first failing
    /// one, matching the sequential scan exactly.
    #[test]
    fn multiple_forgeries_report_first_index() {
        let mut stream = xorshift_stream(0xfeed_beef);
        for _case in 0..50 {
            let n = 2 + (stream.next().unwrap() % 63) as usize;
            let (msgs, mut sigs) = signed_batch(n, 0x70);
            let forgeries = 1 + (stream.next().unwrap() % 4) as usize;
            for _ in 0..forgeries {
                let at = (stream.next().unwrap() % n as u64) as usize;
                sigs[at].2 ^= 1 + (stream.next().unwrap() % 255);
            }
            let batch = items(&msgs, &sigs);
            let sequential = batch
                .iter()
                .position(|it| !verify_fast(it.pk, it.msg, it.r, it.s));
            assert_eq!(batch_verify(&batch), sequential.map_or(Ok(()), Err));
        }
    }

    /// Out-of-range values mixed into a batch are caught with exact
    /// attribution too (they fail the range screen, not the group check).
    #[test]
    fn out_of_range_items_are_attributed() {
        for n in [2usize, 7, 16] {
            let (msgs, base) = signed_batch(n, 0x21);
            for at in 0..n {
                for bad in [(0u64, 1u64, 1u64), (P, 1, 1), (1, 0, 1), (1, P, 1)] {
                    let mut sigs = base.clone();
                    sigs[at] = bad;
                    let batch = items(&msgs, &sigs);
                    assert_eq!(batch_verify(&batch), Err(at), "n={n} at={at} bad={bad:?}");
                }
            }
        }
    }

    /// Duplicated valid signatures (the common absorb/redeem overlap case)
    /// stay valid in a batch.
    #[test]
    fn duplicate_entries_verify() {
        let (msgs, sigs) = signed_batch(4, 0x11);
        let mut batch = items(&msgs, &sigs);
        let dup = batch[1];
        batch.push(dup);
        batch.push(batch[0]);
        assert_eq!(batch_verify(&batch), Ok(()));
    }

    #[test]
    fn empty_batch_is_ok() {
        assert_eq!(batch_verify(&[]), Ok(()));
    }

    /// The small-order-discrepancy attack the coprime blinding scalars
    /// exist to stop: replacing a commitment `r` with `−r ≡ r·(p−1)`
    /// leaves a discrepancy of order 2 in the combined check, which any
    /// *even* blinding scalar would annihilate (a ½ pass probability per
    /// batch). With `z_i` coprime to `p − 1` the forgery must be caught —
    /// at every batch size and position, deterministically.
    #[test]
    fn negated_commitment_forgery_is_always_caught() {
        for n in [4usize, 5, 8, 16, 33, 64] {
            let (msgs, base) = signed_batch(n, 0x77);
            for forged_at in 0..n {
                let mut sigs = base.clone();
                sigs[forged_at].1 = P - sigs[forged_at].1; // r → −r mod p
                let batch = items(&msgs, &sigs);
                assert_eq!(
                    batch_verify(&batch),
                    Err(forged_at),
                    "−r forgery at {forged_at}/{n} slipped through"
                );
            }
        }
    }
}
