//! Schnorr signatures over the multiplicative group of the Mersenne prime
//! `p = 2^61 - 1`.
//!
//! This is a *fully functional* public-key signature scheme — key
//! generation, signing, and verification follow the textbook Schnorr
//! construction (`g^s == r · pk^e (mod p)`) with a derandomized nonce.
//! The only concession to simulation is the toy group size: a 61-bit
//! discrete log offers no security against a real attacker, but the
//! SecureCyclon threat model (ICDCS 2023, §II-A) explicitly assumes
//! signatures cannot be forged, and no component of this repository ever
//! attempts to break the group. What matters for reproducing the paper is
//! that verification is genuine public-key verification, which this scheme
//! provides at simulation-friendly speed.
//!
//! Exponent arithmetic is performed modulo `p - 1`; since the order of the
//! generator divides `p - 1`, the verification identity holds exactly.

use crate::sha256::sha256_concat;

/// The Mersenne prime 2^61 − 1.
pub const P: u64 = (1u64 << 61) - 1;
/// Group exponents are reduced modulo `P - 1`.
pub const P_MINUS_1: u64 = P - 1;
/// Generator of a large subgroup of `Z_p^*`.
pub const G: u64 = 3;

/// Modular multiplication in `Z_p`.
#[inline]
pub fn mulmod(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % P as u128) as u64
}

/// Modular exponentiation `base^exp (mod p)` by square-and-multiply.
pub fn powmod(mut base: u64, mut exp: u64) -> u64 {
    base %= P;
    let mut acc: u64 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base);
        }
        base = mulmod(base, base);
        exp >>= 1;
    }
    acc
}

/// Reduces a 16-byte big-endian value modulo `m` (used to derive nonces and
/// challenges from hash output with negligible bias).
fn reduce16(bytes: &[u8], m: u64) -> u64 {
    let mut wide = [0u8; 16];
    wide.copy_from_slice(&bytes[..16]);
    (u128::from_be_bytes(wide) % m as u128) as u64
}

/// A Schnorr secret exponent together with its public element.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SchnorrKey {
    /// Secret exponent `x` in `[1, p-2]`.
    pub x: u64,
    /// Public element `g^x mod p`.
    pub pk: u64,
}

impl core::fmt::Debug for SchnorrKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Deliberately omit the secret exponent.
        f.debug_struct("SchnorrKey").field("pk", &self.pk).finish()
    }
}

impl SchnorrKey {
    /// Derives a keypair deterministically from a 32-byte seed.
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let h = sha256_concat(&[b"sc/schnorr-keygen", seed]);
        let x = 1 + reduce16(&h, P_MINUS_1 - 1);
        SchnorrKey {
            x,
            pk: powmod(G, x),
        }
    }

    /// Signs `msg`, returning the `(r, s)` pair.
    ///
    /// The nonce is derived deterministically from the seed material and the
    /// message (RFC-6979 style), so signing never requires an RNG and
    /// repeated signatures of the same message are identical.
    pub fn sign(&self, seed: &[u8; 32], msg: &[u8]) -> (u64, u64) {
        let nh = sha256_concat(&[b"sc/schnorr-nonce", seed, msg]);
        let mut k = reduce16(&nh, P_MINUS_1);
        if k == 0 {
            k = 1;
        }
        let r = powmod(G, k);
        let e = challenge(r, self.pk, msg);
        // s = k + e·x (mod p-1)
        let ex = (e as u128 * self.x as u128) % P_MINUS_1 as u128;
        let s = ((k as u128 + ex) % P_MINUS_1 as u128) as u64;
        (r, s)
    }
}

/// Computes the Fiat–Shamir challenge `e = H(r ‖ pk ‖ msg) mod (p-1)`.
fn challenge(r: u64, pk: u64, msg: &[u8]) -> u64 {
    let h = sha256_concat(&[b"sc/schnorr-chal", &r.to_be_bytes(), &pk.to_be_bytes(), msg]);
    reduce16(&h, P_MINUS_1)
}

/// Verifies a Schnorr signature `(r, s)` on `msg` against public element
/// `pk`: checks `g^s == r · pk^e (mod p)`.
pub fn verify(pk: u64, msg: &[u8], r: u64, s: u64) -> bool {
    if r == 0 || r >= P || s >= P_MINUS_1 || pk == 0 || pk >= P {
        return false;
    }
    let e = challenge(r, pk, msg);
    powmod(G, s) == mulmod(r, powmod(pk, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u8) -> (SchnorrKey, [u8; 32]) {
        let seed = [tag; 32];
        (SchnorrKey::from_seed(&seed), seed)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (k, seed) = key(7);
        let (r, s) = k.sign(&seed, b"hello overlay");
        assert!(verify(k.pk, b"hello overlay", r, s));
    }

    #[test]
    fn rejects_tampered_message() {
        let (k, seed) = key(7);
        let (r, s) = k.sign(&seed, b"hello overlay");
        assert!(!verify(k.pk, b"hello overlaz", r, s));
    }

    #[test]
    fn rejects_wrong_key() {
        let (k1, seed1) = key(1);
        let (k2, _) = key(2);
        let (r, s) = k1.sign(&seed1, b"msg");
        assert!(!verify(k2.pk, b"msg", r, s));
    }

    #[test]
    fn rejects_tampered_signature_parts() {
        let (k, seed) = key(9);
        let (r, s) = k.sign(&seed, b"msg");
        assert!(!verify(k.pk, b"msg", r ^ 1, s));
        assert!(!verify(k.pk, b"msg", r, s ^ 1));
    }

    #[test]
    fn rejects_out_of_range_values() {
        let (k, seed) = key(3);
        let (_, s) = k.sign(&seed, b"m");
        assert!(!verify(k.pk, b"m", 0, s));
        assert!(!verify(k.pk, b"m", P, s));
        assert!(!verify(0, b"m", 1, s));
    }

    #[test]
    fn signing_is_deterministic() {
        let (k, seed) = key(4);
        assert_eq!(k.sign(&seed, b"m"), k.sign(&seed, b"m"));
        assert_ne!(k.sign(&seed, b"m"), k.sign(&seed, b"n"));
    }

    #[test]
    fn powmod_basics() {
        assert_eq!(powmod(G, 0), 1);
        assert_eq!(powmod(G, 1), G);
        assert_eq!(powmod(G, 2), 9);
        // Fermat: g^(p-1) == 1 (mod p) for prime p.
        assert_eq!(powmod(G, P_MINUS_1), 1);
    }

    #[test]
    fn mulmod_matches_u128_reference() {
        let cases = [(P - 1, P - 1), (12345, 678910), (P - 2, 2)];
        for (a, b) in cases {
            let want = ((a as u128 * b as u128) % P as u128) as u64;
            assert_eq!(mulmod(a, b), want);
        }
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let (k1, _) = key(10);
        let (k2, _) = key(11);
        assert_ne!(k1.pk, k2.pk);
    }
}
