//! Schnorr signatures over the multiplicative group of the Mersenne prime
//! `p = 2^61 - 1`.
//!
//! This is a *fully functional* public-key signature scheme — key
//! generation, signing, and verification follow the textbook Schnorr
//! construction (`g^s == r · pk^e (mod p)`) with a derandomized nonce.
//! The only concession to simulation is the toy group size: a 61-bit
//! discrete log offers no security against a real attacker, but the
//! SecureCyclon threat model (ICDCS 2023, §II-A) explicitly assumes
//! signatures cannot be forged, and no component of this repository ever
//! attempts to break the group. What matters for reproducing the paper is
//! that verification is genuine public-key verification, which this scheme
//! provides at simulation-friendly speed.
//!
//! Exponent arithmetic is performed modulo `p - 1`; since the order of the
//! generator divides `p - 1`, the verification identity holds exactly.

use crate::sha256::sha256_concat;

/// The Mersenne prime 2^61 − 1.
pub const P: u64 = (1u64 << 61) - 1;
/// Group exponents are reduced modulo `P - 1`.
pub const P_MINUS_1: u64 = P - 1;
/// Generator of a large subgroup of `Z_p^*`.
pub const G: u64 = 3;

/// Modular multiplication in `Z_p`.
#[inline]
pub const fn mulmod(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % P as u128) as u64
}

/// Modular exponentiation `base^exp (mod p)` by square-and-multiply.
pub const fn powmod(mut base: u64, mut exp: u64) -> u64 {
    base %= P;
    let mut acc: u64 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base);
        }
        base = mulmod(base, base);
        exp >>= 1;
    }
    acc
}

/// Bits consumed per window of the fixed-base table.
const WINDOW_BITS: u32 = 4;
/// Windows needed to cover a full 64-bit exponent.
const WINDOWS: usize = (u64::BITS / WINDOW_BITS) as usize;

/// Fixed-base window table for the generator: `G_TABLE[w][d] = G^(d·16^w)`.
///
/// Built at compile time; 16 windows × 16 digits × 8 bytes = 2 KiB. With it
/// `g^e` costs at most 15 modular multiplications and **zero** squarings,
/// against ~60 squarings plus ~30 multiplications for square-and-multiply.
static G_TABLE: [[u64; 16]; WINDOWS] = build_g_table();

const fn build_g_table() -> [[u64; 16]; WINDOWS] {
    let mut table = [[1u64; 16]; WINDOWS];
    let mut base = G; // G^(16^w) at the start of window w
    let mut w = 0;
    while w < WINDOWS {
        let mut d = 1;
        while d < 16 {
            table[w][d] = mulmod(table[w][d - 1], base);
            d += 1;
        }
        base = mulmod(table[w][15], base);
        w += 1;
    }
    table
}

/// Fixed-base exponentiation `G^exp (mod p)` via the precomputed window
/// table. Bit-for-bit identical to `powmod(G, exp)` for every `exp`.
pub fn g_powmod(exp: u64) -> u64 {
    let mut acc = 1u64;
    let mut e = exp;
    let mut w = 0;
    while e > 0 {
        let d = (e & 0xf) as usize;
        if d != 0 {
            acc = mulmod(acc, G_TABLE[w][d]);
        }
        e >>= WINDOW_BITS;
        w += 1;
    }
    acc
}

/// Shamir's trick: simultaneous double exponentiation `a^x · b^y (mod p)`.
///
/// Scans the bits of both exponents in one pass, sharing the squarings the
/// two exponentiations would otherwise each pay: one squaring per bit of
/// `max(x, y)` plus one multiplication per bit position where either
/// exponent is set (by `a`, `b`, or the precomputed `a·b`). Roughly 1.7×
/// cheaper than two independent [`powmod`] calls.
pub fn shamir_powmod(a: u64, x: u64, b: u64, y: u64) -> u64 {
    let a = a % P;
    let b = b % P;
    let ab = mulmod(a, b);
    let bits = u64::BITS - (x | y).leading_zeros();
    let mut acc = 1u64;
    for i in (0..bits).rev() {
        acc = mulmod(acc, acc);
        match ((x >> i) & 1, (y >> i) & 1) {
            (1, 1) => acc = mulmod(acc, ab),
            (1, 0) => acc = mulmod(acc, a),
            (0, 1) => acc = mulmod(acc, b),
            _ => {}
        }
    }
    acc
}

/// Reduces a 16-byte big-endian value modulo `m` (used to derive nonces and
/// challenges from hash output with negligible bias).
fn reduce16(bytes: &[u8], m: u64) -> u64 {
    let mut wide = [0u8; 16];
    wide.copy_from_slice(&bytes[..16]);
    (u128::from_be_bytes(wide) % m as u128) as u64
}

/// A Schnorr secret exponent together with its public element.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SchnorrKey {
    /// Secret exponent `x` in `[1, p-2]`.
    pub x: u64,
    /// Public element `g^x mod p`.
    pub pk: u64,
}

impl core::fmt::Debug for SchnorrKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Deliberately omit the secret exponent.
        f.debug_struct("SchnorrKey").field("pk", &self.pk).finish()
    }
}

impl SchnorrKey {
    /// Derives a keypair deterministically from a 32-byte seed.
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let h = sha256_concat(&[b"sc/schnorr-keygen", seed]);
        let x = 1 + reduce16(&h, P_MINUS_1 - 1);
        SchnorrKey { x, pk: g_powmod(x) }
    }

    /// Signs `msg`, returning the `(r, s)` pair.
    ///
    /// The nonce is derived deterministically from the seed material and the
    /// message (RFC-6979 style), so signing never requires an RNG and
    /// repeated signatures of the same message are identical.
    pub fn sign(&self, seed: &[u8; 32], msg: &[u8]) -> (u64, u64) {
        let nh = sha256_concat(&[b"sc/schnorr-nonce", seed, msg]);
        let mut k = reduce16(&nh, P_MINUS_1);
        if k == 0 {
            k = 1;
        }
        let r = g_powmod(k);
        let e = challenge(r, self.pk, msg);
        // s = k + e·x (mod p-1)
        let ex = (e as u128 * self.x as u128) % P_MINUS_1 as u128;
        let s = ((k as u128 + ex) % P_MINUS_1 as u128) as u64;
        (r, s)
    }
}

/// Computes the Fiat–Shamir challenge `e = H(r ‖ pk ‖ msg) mod (p-1)`.
fn challenge(r: u64, pk: u64, msg: &[u8]) -> u64 {
    let h = sha256_concat(&[b"sc/schnorr-chal", &r.to_be_bytes(), &pk.to_be_bytes(), msg]);
    reduce16(&h, P_MINUS_1)
}

/// Verifies a Schnorr signature `(r, s)` on `msg` against public element
/// `pk`: checks `g^s == r · pk^e (mod p)`.
///
/// This is the legacy reference path (two independent square-and-multiply
/// exponentiations); [`verify_fast`] computes the identical predicate with
/// Shamir's simultaneous-exponentiation trick and is what the key layer
/// uses on the hot path.
pub fn verify(pk: u64, msg: &[u8], r: u64, s: u64) -> bool {
    if r == 0 || r >= P || s >= P_MINUS_1 || pk == 0 || pk >= P {
        return false;
    }
    let e = challenge(r, pk, msg);
    powmod(G, s) == mulmod(r, powmod(pk, e))
}

/// Fast verification path: same predicate as [`verify`], restated as
/// `g^s · pk^{(p-1)-e} == r` and evaluated with a single Shamir
/// simultaneous exponentiation (with the fixed-base table covering the
/// `e = 0` degenerate case).
///
/// The two forms are equivalent for every in-range input: `pk ∈ [1, p-1]`
/// is invertible and `pk^(p-1) = 1` by Fermat, so multiplying both sides
/// of `g^s == r · pk^e` by `pk^{(p-1)-e}` is a bijection. Out-of-range
/// inputs are rejected by the identical up-front checks. Exhaustive
/// agreement with [`verify`] is asserted by this module's tests.
pub fn verify_fast(pk: u64, msg: &[u8], r: u64, s: u64) -> bool {
    if r == 0 || r >= P || s >= P_MINUS_1 || pk == 0 || pk >= P {
        return false;
    }
    let e = challenge(r, pk, msg);
    if e == 0 {
        return g_powmod(s) == r;
    }
    shamir_powmod(G, s, pk, P_MINUS_1 - e) == r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u8) -> (SchnorrKey, [u8; 32]) {
        let seed = [tag; 32];
        (SchnorrKey::from_seed(&seed), seed)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (k, seed) = key(7);
        let (r, s) = k.sign(&seed, b"hello overlay");
        assert!(verify(k.pk, b"hello overlay", r, s));
    }

    #[test]
    fn rejects_tampered_message() {
        let (k, seed) = key(7);
        let (r, s) = k.sign(&seed, b"hello overlay");
        assert!(!verify(k.pk, b"hello overlaz", r, s));
    }

    #[test]
    fn rejects_wrong_key() {
        let (k1, seed1) = key(1);
        let (k2, _) = key(2);
        let (r, s) = k1.sign(&seed1, b"msg");
        assert!(!verify(k2.pk, b"msg", r, s));
    }

    #[test]
    fn rejects_tampered_signature_parts() {
        let (k, seed) = key(9);
        let (r, s) = k.sign(&seed, b"msg");
        assert!(!verify(k.pk, b"msg", r ^ 1, s));
        assert!(!verify(k.pk, b"msg", r, s ^ 1));
    }

    #[test]
    fn rejects_out_of_range_values() {
        let (k, seed) = key(3);
        let (_, s) = k.sign(&seed, b"m");
        assert!(!verify(k.pk, b"m", 0, s));
        assert!(!verify(k.pk, b"m", P, s));
        assert!(!verify(0, b"m", 1, s));
    }

    #[test]
    fn signing_is_deterministic() {
        let (k, seed) = key(4);
        assert_eq!(k.sign(&seed, b"m"), k.sign(&seed, b"m"));
        assert_ne!(k.sign(&seed, b"m"), k.sign(&seed, b"n"));
    }

    #[test]
    fn powmod_basics() {
        assert_eq!(powmod(G, 0), 1);
        assert_eq!(powmod(G, 1), G);
        assert_eq!(powmod(G, 2), 9);
        // Fermat: g^(p-1) == 1 (mod p) for prime p.
        assert_eq!(powmod(G, P_MINUS_1), 1);
    }

    #[test]
    fn mulmod_matches_u128_reference() {
        let cases = [(P - 1, P - 1), (12345, 678910), (P - 2, 2)];
        for (a, b) in cases {
            let want = ((a as u128 * b as u128) % P as u128) as u64;
            assert_eq!(mulmod(a, b), want);
        }
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let (k1, _) = key(10);
        let (k2, _) = key(11);
        assert_ne!(k1.pk, k2.pk);
    }

    /// A deterministic pseudo-random u64 stream for exhaustive equivalence
    /// sweeps (keeps the tests RNG-free and reproducible).
    fn xorshift_stream(mut state: u64) -> impl Iterator<Item = u64> {
        std::iter::repeat_with(move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        })
    }

    fn exponent_edge_cases() -> Vec<u64> {
        let mut cases = vec![
            0,
            1,
            2,
            3,
            15,
            16,
            17,
            P_MINUS_1 - 1,
            P_MINUS_1,
            P,
            u64::MAX,
        ];
        for i in 0..64 {
            let p = 1u64 << i;
            cases.extend([p.wrapping_sub(1), p, p.wrapping_add(1)]);
        }
        cases
    }

    #[test]
    fn g_powmod_matches_powmod_exhaustively() {
        for e in exponent_edge_cases() {
            assert_eq!(g_powmod(e), powmod(G, e), "edge exponent {e}");
        }
        for e in xorshift_stream(0x5eed_1234).take(2000) {
            assert_eq!(g_powmod(e), powmod(G, e), "random exponent {e}");
        }
    }

    #[test]
    fn g_table_first_window_is_small_powers() {
        for (d, entry) in G_TABLE[0].iter().enumerate() {
            assert_eq!(*entry, powmod(G, d as u64));
        }
    }

    #[test]
    fn shamir_powmod_matches_independent_exponentiations() {
        let mut stream = xorshift_stream(0xabcd_ef01);
        for _ in 0..1000 {
            let a = stream.next().unwrap() % P;
            let b = stream.next().unwrap() % P;
            let x = stream.next().unwrap();
            let y = stream.next().unwrap();
            let want = mulmod(powmod(a, x), powmod(b, y));
            assert_eq!(shamir_powmod(a, x, b, y), want, "a={a} x={x} b={b} y={y}");
        }
        // Degenerate exponents and bases.
        for (a, x, b, y) in [
            (0, 0, 0, 0),
            (G, 0, 5, 0),
            (G, 1, 5, 0),
            (G, 0, 5, 1),
            (G, P_MINUS_1, 7, P_MINUS_1),
            (1, u64::MAX, 1, u64::MAX),
        ] {
            assert_eq!(
                shamir_powmod(a, x, b, y),
                mulmod(powmod(a, x), powmod(b, y))
            );
        }
    }

    #[test]
    fn verify_fast_agrees_with_verify_on_real_signatures() {
        for tag in 0..32u8 {
            let (k, seed) = key(tag);
            let msg = [tag; 40];
            let (r, s) = k.sign(&seed, &msg);
            // Valid signature, tampered message, tampered parts, wrong key.
            assert!(verify(k.pk, &msg, r, s) && verify_fast(k.pk, &msg, r, s));
            for (pk, m, rr, ss) in [
                (k.pk, [tag ^ 1; 40], r, s),
                (k.pk, msg, r ^ 1, s),
                (k.pk, msg, r, s ^ 1),
                (key(tag.wrapping_add(1)).0.pk, msg, r, s),
            ] {
                assert_eq!(
                    verify(pk, &m, rr, ss),
                    verify_fast(pk, &m, rr, ss),
                    "tampered case pk={pk} r={rr} s={ss}"
                );
            }
        }
    }

    #[test]
    fn verify_fast_agrees_with_verify_on_arbitrary_inputs() {
        // Random (pk, r, s) triples — mostly invalid signatures — plus
        // out-of-range values: the fast path must return the identical
        // verdict everywhere, not just on honestly generated signatures.
        let mut stream = xorshift_stream(0x0bad_cafe);
        for i in 0..2000u64 {
            let pk = stream.next().unwrap() % (P + 2);
            let r = stream.next().unwrap() % (P + 2);
            let s = stream.next().unwrap() % (P + 2);
            let msg = i.to_be_bytes();
            assert_eq!(
                verify(pk, &msg, r, s),
                verify_fast(pk, &msg, r, s),
                "pk={pk} r={r} s={s}"
            );
        }
        for bad in [
            (0u64, 1u64, 1u64),
            (P, 1, 1),
            (1, 0, 1),
            (1, P, 1),
            (1, 1, P_MINUS_1),
        ] {
            let (pk, r, s) = bad;
            assert!(!verify(pk, b"m", r, s));
            assert!(!verify_fast(pk, b"m", r, s));
        }
    }
}
