//! Minimal hexadecimal encoding/decoding helpers used for `Display` and
//! `Debug` implementations across the workspace.

/// Encodes `bytes` as a lowercase hexadecimal string.
///
/// # Examples
///
/// ```
/// assert_eq!(sc_crypto::hex::to_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn to_hex(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hexadecimal string into bytes.
///
/// # Errors
///
/// Returns `None` if the string has odd length or contains a non-hex
/// character.
///
/// # Examples
///
/// ```
/// assert_eq!(sc_crypto::hex::from_hex("dead"), Some(vec![0xde, 0xad]));
/// assert_eq!(sc_crypto::hex::from_hex("xy"), None);
/// ```
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    fn nibble(c: u8) -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0u8..=255).collect();
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(to_hex(&[]), "");
        assert_eq!(from_hex(""), Some(vec![]));
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(from_hex("DEAD"), Some(vec![0xde, 0xad]));
    }

    #[test]
    fn rejects_odd_length_and_bad_chars() {
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
    }
}
