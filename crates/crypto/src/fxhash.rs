//! A fast, non-cryptographic hasher for the protocol's hot lookup tables.
//!
//! The verification pipeline keys its caches by values that are either
//! already uniformly distributed (SHA-256 [`Digest`](crate::Digest)
//! prefixes, public keys derived from seeds) or drawn from a small dense
//! space (simulator addresses). SipHash's flooding resistance buys nothing
//! there, while its per-byte cost shows up directly in the per-cycle
//! profile — `std`'s `DefaultHasher` alone was ~7% of a simulated
//! SecureCyclon cycle. This module provides the standard Fx construction
//! (rotate, xor, multiply by a single odd constant, as used by rustc's
//! interners): one multiply per 8-byte chunk.
//!
//! Use it for internal, bounded tables. It is **not** suitable where an
//! adversary can grow a table with chosen keys faster than the protocol
//! bounds it — every use in this workspace is capacity-bounded or keyed
//! by digests the adversary would have to grind SHA-256 to bias.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx construction: an arbitrary odd constant close
/// to the golden ratio in fixed point, so products diffuse well.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-multiply-per-word hasher (the Fx construction).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_distinguishing() {
        let a = [0u8; 32];
        let mut b = [0u8; 32];
        b[31] = 1;
        assert_eq!(hash_of(&a), hash_of(&a));
        assert_ne!(hash_of(&a), hash_of(&b), "trailing byte must matter");
    }

    #[test]
    fn tail_bytes_reach_the_state() {
        // 9 bytes: one full chunk plus a 1-byte remainder.
        let a = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        let b = [1u8, 2, 3, 4, 5, 6, 7, 8, 10];
        assert_ne!(hash_of(&a.as_slice()), hash_of(&b.as_slice()));
    }

    #[test]
    fn integer_writes_differ_by_value() {
        let mut h1 = FxHasher::default();
        h1.write_u64(7);
        let mut h2 = FxHasher::default();
        h2.write_u64(8);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn low_bits_spread_for_sequential_keys() {
        // Hashbrown uses the low bits for bucket selection; sequential
        // simulator addresses must not collapse onto a few buckets.
        let mut low: FxHashSet<u64> = FxHashSet::default();
        for addr in 0u32..64 {
            low.insert(hash_of(&addr) & 0x3f);
        }
        assert!(
            low.len() > 32,
            "64 sequential keys hit {} buckets",
            low.len()
        );
    }
}
