//! # sc-crypto — cryptographic substrate for the SecureCyclon reproduction
//!
//! SecureCyclon (Antonov & Voulgaris, ICDCS 2023) turns Cyclon node
//! descriptors into signed, chain-of-ownership tokens. This crate provides
//! everything the protocol layer needs, implemented from scratch:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (NIST-vector tested), used for
//!   descriptor digests and signature messages.
//! * [`keys`] — node identities ([`PublicKey`] = [`NodeId`]), keypairs and
//!   64-byte [`Signature`]s under two schemes: a real Schnorr construction
//!   over a toy group ([`schnorr61`]) and a fast keyed-hash scheme for
//!   large-scale simulations.
//! * [`hex`] — tiny hex codec for display purposes.
//! * [`fxhash`] — a one-multiply-per-word hasher for the protocol's hot
//!   digest-keyed lookup tables (not flooding-resistant; see module docs).
//!
//! # Quickstart
//!
//! ```
//! use sc_crypto::{Keypair, Scheme};
//!
//! let keypair = Keypair::from_seed(Scheme::Schnorr61, [7u8; 32]);
//! let node_id = keypair.public(); // the paper sets ID = public key
//! let sig = keypair.sign(b"descriptor bytes");
//! assert!(node_id.verify(b"descriptor bytes", &sig));
//! ```

// `deny` rather than `forbid`: the SHA-256 module opts a single
// runtime-feature-gated intrinsics path (SHA-NI) back in with a scoped
// `#[allow(unsafe_code)]`. Everything else in the crate stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fxhash;
pub mod hex;
pub mod keys;
pub mod schnorr61;
pub mod sha256;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use keys::{
    verify_batch, Keypair, NodeId, PublicKey, Scheme, Signature, PUBLIC_KEY_LEN, SIGNATURE_LEN,
};
pub use sha256::{sha256, sha256_concat, Digest, Sha256, DIGEST_LEN};
