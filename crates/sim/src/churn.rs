//! Membership churn: nodes joining, leaving, and failing without notice.
//!
//! The paper's system model (§II-A) allows nodes to "join, leave, or fail,
//! with no prior notice". This module provides a small rate-based churn
//! driver used by the self-healing experiments and the churn example: each
//! step it kills every alive node independently with probability
//! `leave_prob` and spawns `join_per_cycle` fresh nodes (fractional rates
//! accumulate across cycles).

use crate::engine::{Addr, Engine, SimNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Churn rates per cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnConfig {
    /// Per-node probability of leaving during a step.
    pub leave_prob: f64,
    /// Expected number of joins per step (may be fractional).
    pub join_per_cycle: f64,
}

/// What a churn step did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Addresses of nodes that left.
    pub departed: Vec<Addr>,
    /// Addresses of nodes that joined.
    pub joined: Vec<Addr>,
}

/// Rate-based churn driver with its own deterministic RNG.
#[derive(Debug)]
pub struct Churn {
    cfg: ChurnConfig,
    rng: StdRng,
    join_accumulator: f64,
}

impl Churn {
    /// Creates a churn driver.
    ///
    /// # Panics
    ///
    /// Panics if `leave_prob` is outside `[0, 1]` or `join_per_cycle` is
    /// negative.
    pub fn new(cfg: ChurnConfig, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.leave_prob),
            "leave_prob must be in [0, 1]"
        );
        assert!(cfg.join_per_cycle >= 0.0, "join_per_cycle must be >= 0");
        Churn {
            cfg,
            rng: StdRng::seed_from_u64(seed ^ 0x6368_7572_6e21),
            join_accumulator: 0.0,
        }
    }

    /// Applies one step of churn to `engine`. New nodes are built by
    /// `make`, which receives the address assigned to the joiner.
    pub fn step<N: SimNode>(
        &mut self,
        engine: &mut Engine<N>,
        mut make: impl FnMut(Addr) -> N,
    ) -> ChurnReport {
        let mut report = ChurnReport::default();

        if self.cfg.leave_prob > 0.0 {
            let alive: Vec<Addr> = engine.nodes().map(|(a, _)| a).collect();
            for addr in alive {
                if self.rng.gen::<f64>() < self.cfg.leave_prob {
                    engine.kill(addr);
                    report.departed.push(addr);
                }
            }
        }

        self.join_accumulator += self.cfg.join_per_cycle;
        while self.join_accumulator >= 1.0 {
            self.join_accumulator -= 1.0;
            let addr = engine.spawn_with(&mut make);
            report.joined.push(addr);
        }

        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CycleCtx, NodeCtx, SimConfig};

    struct Nop;
    impl SimNode for Nop {
        type Msg = ();
        fn on_cycle(&mut self, _ctx: &mut CycleCtx<'_, Self>) {}
        fn on_rpc(&mut self, _f: Addr, _m: (), _c: &mut NodeCtx<'_, ()>) -> Option<()> {
            None
        }
        fn on_oneway(&mut self, _f: Addr, _m: (), _c: &mut NodeCtx<'_, ()>) {}
    }

    #[test]
    fn fractional_joins_accumulate() {
        let mut eng = Engine::<Nop>::new(SimConfig::seeded(1));
        let mut churn = Churn::new(
            ChurnConfig {
                leave_prob: 0.0,
                join_per_cycle: 0.5,
            },
            9,
        );
        let mut joined = 0;
        for _ in 0..10 {
            joined += churn.step(&mut eng, |_| Nop).joined.len();
        }
        assert_eq!(joined, 5);
    }

    #[test]
    fn full_leave_empties_network() {
        let mut eng = Engine::<Nop>::new(SimConfig::seeded(1));
        for _ in 0..10 {
            eng.spawn_with(|_| Nop);
        }
        let mut churn = Churn::new(
            ChurnConfig {
                leave_prob: 1.0,
                join_per_cycle: 0.0,
            },
            9,
        );
        let report = churn.step(&mut eng, |_| Nop);
        assert_eq!(report.departed.len(), 10);
        assert_eq!(eng.alive_count(), 0);
    }

    #[test]
    #[should_panic(expected = "leave_prob")]
    fn invalid_leave_prob_rejected() {
        Churn::new(
            ChurnConfig {
                leave_prob: 2.0,
                join_per_cycle: 0.0,
            },
            0,
        );
    }
}
