//! Deterministic RNG derivation.
//!
//! Every stochastic component in the workspace (engine shuffles, per-node
//! protocol randomness, churn, attack strategies) draws from an RNG derived
//! from a master seed through this module, so that an entire experiment is
//! reproducible from a single `u64`.

use rand::rngs::{SmallRng, StdRng};
use rand::SeedableRng;
use sc_crypto::sha256_concat;

/// Derives a 32-byte sub-seed from a master seed and a domain label.
pub fn derive_seed(master: u64, domain: &str, index: u64) -> [u8; 32] {
    sha256_concat(&[
        b"sc/rng",
        &master.to_le_bytes(),
        domain.as_bytes(),
        &index.to_le_bytes(),
    ])
}

/// A fast per-node RNG derived from `(master, domain, index)`.
pub fn node_rng(master: u64, domain: &str, index: u64) -> SmallRng {
    SmallRng::from_seed(derive_seed(master, domain, index))
}

/// A `StdRng` derived from `(master, domain, index)` for engine-level use.
pub fn std_rng(master: u64, domain: &str, index: u64) -> StdRng {
    StdRng::from_seed(derive_seed(master, domain, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = node_rng(7, "node", 3);
        let mut b = node_rng(7, "node", 3);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_domains_different_streams() {
        let mut a = node_rng(7, "node", 3);
        let mut b = node_rng(7, "attack", 3);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn different_indices_different_streams() {
        let mut a = std_rng(7, "node", 0);
        let mut b = std_rng(7, "node", 1);
        assert_ne!(a.gen::<u128>(), b.gen::<u128>());
    }
}
