//! The network fault model.
//!
//! The paper's system model allows messages to be "delayed or dropped"
//! (§II-A). In a cycle-driven simulation, delay within a cycle is
//! immaterial; what matters for protocol correctness is *loss*, which this
//! model injects independently per message direction. Loss of a gossip
//! request, loss of a response, and loss of a one-way (flooded) message are
//! controlled separately so experiments can reproduce the §V-A repair
//! scenarios precisely.
//!
//! On top of probabilistic loss, the model supports **partitions**: a
//! deterministic assignment of addresses to sides such that any message
//! crossing sides is dropped with certainty. Partitions are installed and
//! healed through [`Engine::set_net`](crate::Engine::set_net) (typically
//! by a scenario driver at scheduled cycles). Severing is checked before
//! any loss roll and consumes no randomness — a severed message costs
//! nothing from the engine's random stream, so runs stay bit-identical
//! per seed no matter how partitions come and go mid-run.

use crate::engine::Addr;
use std::collections::HashMap;

/// A deterministic split of the address space into sides.
///
/// Messages between addresses on different sides are severed (dropped
/// with probability 1, before any loss roll). Addresses not explicitly
/// assigned — e.g. nodes that join while the partition is active — belong
/// to [`Partition::default_side`], modelling joiners reaching whichever
/// segment their bootstrap sponsor lives in.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Partition {
    side_of: HashMap<Addr, u32>,
    default_side: u32,
}

impl Partition {
    /// Builds a partition from explicit sides: `sides[i]` lists the
    /// addresses on side `i`. Unlisted addresses land on side 0.
    ///
    /// # Panics
    ///
    /// Panics if an address appears on two sides.
    pub fn split(sides: &[Vec<Addr>]) -> Self {
        let mut side_of = HashMap::new();
        for (i, members) in sides.iter().enumerate() {
            for &a in members {
                let prev = side_of.insert(a, i as u32);
                assert!(prev.is_none(), "address {a} assigned to two sides");
            }
        }
        Partition {
            side_of,
            default_side: 0,
        }
    }

    /// Builds a two-sided partition isolating `island` from everyone else
    /// (the rest of the address space, including future joiners, stays on
    /// the mainland side).
    pub fn isolate(island: impl IntoIterator<Item = Addr>) -> Self {
        let side_of = island.into_iter().map(|a| (a, 1)).collect();
        Partition {
            side_of,
            default_side: 0,
        }
    }

    /// The side an address belongs to.
    pub fn side(&self, addr: Addr) -> u32 {
        self.side_of
            .get(&addr)
            .copied()
            .unwrap_or(self.default_side)
    }

    /// Whether a message between `a` and `b` is severed (symmetric).
    pub fn severs(&self, a: Addr, b: Addr) -> bool {
        self.side(a) != self.side(b)
    }

    /// Number of explicitly assigned addresses.
    pub fn assigned(&self) -> usize {
        self.side_of.len()
    }

    /// Iterates over the explicit `(address, side)` assignments (addresses
    /// on the default side by omission are not listed).
    pub fn assignments(&self) -> impl Iterator<Item = (Addr, u32)> + '_ {
        self.side_of.iter().map(|(&a, &s)| (a, s))
    }

    /// The side unlisted addresses belong to.
    pub fn default_side(&self) -> u32 {
        self.default_side
    }
}

/// Probabilities of message loss per direction, plus an optional
/// deterministic partition.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct NetworkModel {
    /// Probability that an RPC request is lost before reaching the target
    /// (the target never processes it).
    pub drop_request: f64,
    /// Probability that an RPC response is lost on the way back (the target
    /// *did* process the request).
    pub drop_response: f64,
    /// Probability that a one-way message (e.g. a flooded proof) is lost.
    pub drop_oneway: f64,
    /// Active partition, if any: cross-side messages are severed.
    pub partition: Option<Partition>,
}

impl NetworkModel {
    /// A perfectly reliable network (no losses, no partition).
    pub fn reliable() -> Self {
        NetworkModel::default()
    }

    /// A uniformly lossy network dropping every message independently with
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn lossy(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        NetworkModel {
            drop_request: p,
            drop_response: p,
            drop_oneway: p,
            partition: None,
        }
    }

    /// A network with independent per-direction loss probabilities (the
    /// asymmetric-loss scenarios of §V-A).
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn asymmetric(drop_request: f64, drop_response: f64, drop_oneway: f64) -> Self {
        for p in [drop_request, drop_response, drop_oneway] {
            assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        }
        NetworkModel {
            drop_request,
            drop_response,
            drop_oneway,
            partition: None,
        }
    }

    /// Returns this model with `partition` installed.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Returns this model with any partition healed (loss rates kept).
    pub fn healed(mut self) -> Self {
        self.partition = None;
        self
    }

    /// Whether a message between `a` and `b` is severed by the partition.
    pub fn severs(&self, a: Addr, b: Addr) -> bool {
        self.partition.as_ref().is_some_and(|p| p.severs(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_is_default() {
        assert_eq!(NetworkModel::default(), NetworkModel::reliable());
        assert!(NetworkModel::default().partition.is_none());
    }

    #[test]
    fn lossy_sets_all_directions() {
        let m = NetworkModel::lossy(0.25);
        assert_eq!(m.drop_request, 0.25);
        assert_eq!(m.drop_response, 0.25);
        assert_eq!(m.drop_oneway, 0.25);
    }

    #[test]
    fn asymmetric_sets_each_direction() {
        let m = NetworkModel::asymmetric(0.1, 0.2, 0.3);
        assert_eq!(m.drop_request, 0.1);
        assert_eq!(m.drop_response, 0.2);
        assert_eq!(m.drop_oneway, 0.3);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn lossy_rejects_out_of_range() {
        NetworkModel::lossy(1.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn asymmetric_rejects_out_of_range() {
        NetworkModel::asymmetric(0.0, -0.1, 0.0);
    }

    #[test]
    fn partition_sides_and_symmetry() {
        let p = Partition::split(&[vec![0, 1, 2], vec![3, 4]]);
        assert_eq!(p.assigned(), 5);
        for a in 0..5u32 {
            for b in 0..5u32 {
                assert_eq!(p.severs(a, b), p.severs(b, a), "severing is symmetric");
            }
        }
        assert!(p.severs(0, 3));
        assert!(!p.severs(0, 2));
        assert!(!p.severs(3, 4));
        // Unassigned addresses fall on side 0.
        assert!(!p.severs(99, 0));
        assert!(p.severs(99, 4));
    }

    #[test]
    fn isolate_builds_two_sides() {
        let p = Partition::isolate([7, 8]);
        assert!(p.severs(7, 0));
        assert!(!p.severs(7, 8));
        assert!(!p.severs(0, 1));
        assert_eq!(p.side(7), 1);
        assert_eq!(p.side(0), 0);
    }

    #[test]
    #[should_panic(expected = "two sides")]
    fn split_rejects_overlap() {
        Partition::split(&[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn healed_drops_partition_keeps_loss() {
        let m = NetworkModel::lossy(0.5).with_partition(Partition::isolate([1]));
        assert!(m.severs(0, 1));
        let h = m.healed();
        assert!(!h.severs(0, 1));
        assert_eq!(h.drop_request, 0.5);
    }
}
