//! The network fault model.
//!
//! The paper's system model allows messages to be "delayed or dropped"
//! (§II-A). In a cycle-driven simulation, delay within a cycle is
//! immaterial; what matters for protocol correctness is *loss*, which this
//! model injects independently per message direction. Loss of a gossip
//! request, loss of a response, and loss of a one-way (flooded) message are
//! controlled separately so experiments can reproduce the §V-A repair
//! scenarios precisely.

/// Probabilities of message loss per direction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Probability that an RPC request is lost before reaching the target
    /// (the target never processes it).
    pub drop_request: f64,
    /// Probability that an RPC response is lost on the way back (the target
    /// *did* process the request).
    pub drop_response: f64,
    /// Probability that a one-way message (e.g. a flooded proof) is lost.
    pub drop_oneway: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::reliable()
    }
}

impl NetworkModel {
    /// A perfectly reliable network (no losses).
    pub fn reliable() -> Self {
        NetworkModel {
            drop_request: 0.0,
            drop_response: 0.0,
            drop_oneway: 0.0,
        }
    }

    /// A uniformly lossy network dropping every message independently with
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn lossy(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        NetworkModel {
            drop_request: p,
            drop_response: p,
            drop_oneway: p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_is_default() {
        assert_eq!(NetworkModel::default(), NetworkModel::reliable());
    }

    #[test]
    fn lossy_sets_all_directions() {
        let m = NetworkModel::lossy(0.25);
        assert_eq!(m.drop_request, 0.25);
        assert_eq!(m.drop_response, 0.25);
        assert_eq!(m.drop_oneway, 0.25);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn lossy_rejects_out_of_range() {
        NetworkModel::lossy(1.5);
    }
}
