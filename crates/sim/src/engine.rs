//! The cycle-driven simulation engine.
//!
//! This module replaces the role PeerNet/PeerSim plays in the paper's
//! evaluation (§VI). The engine owns a slab of protocol nodes and drives
//! them in randomized order, once per cycle, exactly like PeerSim's
//! cycle-based mode:
//!
//! * During its turn a node may perform **synchronous RPCs** — the
//!   request/response round trips of a Cyclon gossip exchange, including the
//!   `s` tit-for-tat rounds of SecureCyclon (§V-B), complete within the
//!   initiator's turn.
//! * Nodes may also emit **one-way messages** (proof floods, §IV-C) at any
//!   point; these are queued and delivered at the start of the *next* cycle,
//!   giving flooding a realistic one-hop-per-cycle propagation speed.
//! * The [`NetworkModel`] injects independent message loss per direction;
//!   a lost request is never processed by the target, while a lost response
//!   leaves the target's state changed — the asymmetric-exchange scenario
//!   of §V-A that motivates non-swappable descriptors.
//!
//! The engine is single-threaded and fully deterministic for a given seed
//! and node set, which the integration tests rely on.

use crate::clock::Clock;
use crate::net::NetworkModel;
use crate::stats::TrafficStats;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A simulated network address ("IP and port" in the paper's model).
///
/// Addresses index the engine's node slab and are never reused, so a
/// descriptor pointing at a departed node dangles — as in a real overlay.
pub type Addr = u32;

/// A protocol endpoint hosted by the [`Engine`].
///
/// Implementors provide three entry points mirroring a real networked node:
/// the periodic active thread ([`on_cycle`](SimNode::on_cycle)), the RPC
/// server ([`on_rpc`](SimNode::on_rpc)), and the datagram handler
/// ([`on_oneway`](SimNode::on_oneway)).
pub trait SimNode: Sized {
    /// The protocol's wire message type.
    type Msg;

    /// Called once per cycle: the node's active gossip thread.
    fn on_cycle(&mut self, ctx: &mut CycleCtx<'_, Self>);

    /// Handles an incoming RPC and optionally returns a response.
    ///
    /// Returning `None` models a node that received the request but chose
    /// not to (or failed to) answer — the initiator observes a timeout.
    fn on_rpc(
        &mut self,
        from: Addr,
        msg: Self::Msg,
        ctx: &mut NodeCtx<'_, Self::Msg>,
    ) -> Option<Self::Msg>;

    /// Handles an incoming one-way message (e.g. a flooded violation proof).
    fn on_oneway(&mut self, from: Addr, msg: Self::Msg, ctx: &mut NodeCtx<'_, Self::Msg>);
}

/// Outcome of a synchronous RPC, as observed by the initiator.
///
/// A real node cannot distinguish *why* no response arrived (dead target,
/// lost request, lost response, or an uncooperative peer), so all of those
/// collapse into [`RpcOutcome::Timeout`]. Protocol code must handle the
/// uncertainty — in SecureCyclon, by discarding sent descriptors rather
/// than risking a cloning accusation (§V-A, case 2).
#[derive(Debug)]
pub enum RpcOutcome<M> {
    /// The response from the target.
    Reply(M),
    /// No response arrived.
    Timeout,
}

impl<M> RpcOutcome<M> {
    /// Converts into an `Option`, mapping `Timeout` to `None`.
    pub fn into_reply(self) -> Option<M> {
        match self {
            RpcOutcome::Reply(m) => Some(m),
            RpcOutcome::Timeout => None,
        }
    }
}

/// An in-flight one-way message.
#[derive(Debug, Clone)]
struct Envelope<M> {
    from: Addr,
    to: Addr,
    msg: M,
}

struct Slot<N> {
    node: Option<N>,
    alive: bool,
}

/// Engine construction parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed for shuffle order and network loss rolls.
    pub seed: u64,
    /// Message-loss model.
    pub net: NetworkModel,
    /// Tick resolution of one cycle.
    pub ticks_per_cycle: u64,
    /// Cycle number the clock starts at (see [`crate::clock::Clock::starting_at`]).
    pub start_cycle: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            net: NetworkModel::reliable(),
            ticks_per_cycle: crate::clock::DEFAULT_TICKS_PER_CYCLE,
            start_cycle: 0,
        }
    }
}

impl SimConfig {
    /// A reliable-network config with the given seed.
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ..Default::default()
        }
    }
}

/// The cycle-driven simulator.
pub struct Engine<N: SimNode> {
    slots: Vec<Slot<N>>,
    clock: Clock,
    net: NetworkModel,
    rng: StdRng,
    /// One-way messages to deliver at the start of the next cycle.
    pending: Vec<Envelope<N::Msg>>,
    stats: TrafficStats,
}

impl<N: SimNode> Engine<N> {
    /// Creates an empty engine.
    pub fn new(cfg: SimConfig) -> Self {
        Engine {
            slots: Vec::new(),
            clock: Clock::new(cfg.ticks_per_cycle).starting_at(cfg.start_cycle),
            net: cfg.net,
            rng: StdRng::seed_from_u64(cfg.seed),
            pending: Vec::new(),
            stats: TrafficStats::default(),
        }
    }

    /// Adds a node constructed by `make`, which receives the address the
    /// node will live at (nodes embed their address in descriptors).
    pub fn spawn_with(&mut self, make: impl FnOnce(Addr) -> N) -> Addr {
        let addr = self.slots.len() as Addr;
        let node = make(addr);
        self.slots.push(Slot {
            node: Some(node),
            alive: true,
        });
        addr
    }

    /// Removes a node from the network without notice (crash / departure).
    ///
    /// Its address is never reused; descriptors pointing at it dangle.
    pub fn kill(&mut self, addr: Addr) {
        if let Some(slot) = self.slots.get_mut(addr as usize) {
            slot.alive = false;
            slot.node = None;
        }
    }

    /// Whether the node at `addr` is alive.
    pub fn is_alive(&self, addr: Addr) -> bool {
        self.slots
            .get(addr as usize)
            .is_some_and(|s| s.alive && s.node.is_some())
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.alive && s.node.is_some())
            .count()
    }

    /// Total number of addresses ever allocated (alive or dead).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Borrows the node at `addr`, if alive.
    pub fn node(&self, addr: Addr) -> Option<&N> {
        let slot = self.slots.get(addr as usize)?;
        if slot.alive {
            slot.node.as_ref()
        } else {
            None
        }
    }

    /// Mutably borrows the node at `addr`, if alive.
    pub fn node_mut(&mut self, addr: Addr) -> Option<&mut N> {
        let slot = self.slots.get_mut(addr as usize)?;
        if slot.alive {
            slot.node.as_mut()
        } else {
            None
        }
    }

    /// Iterates over `(addr, node)` for all alive nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (Addr, &N)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            if s.alive {
                s.node.as_ref().map(|n| (i as Addr, n))
            } else {
                None
            }
        })
    }

    /// The simulation clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.clock.cycle()
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The active network model.
    pub fn net(&self) -> &NetworkModel {
        &self.net
    }

    /// Replaces the network model (e.g. to start injecting losses, install
    /// a partition, or heal one at a given cycle).
    pub fn set_net(&mut self, net: NetworkModel) {
        self.net = net;
    }

    /// Runs one full cycle: delivers queued one-way messages, then gives
    /// every alive node its turn in random order.
    pub fn run_cycle(&mut self) {
        self.deliver_pending();

        let mut order: Vec<Addr> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive && s.node.is_some())
            .map(|(i, _)| i as Addr)
            .collect();
        order.shuffle(&mut self.rng);

        for addr in order {
            // The node may have been killed mid-cycle by an observer or a
            // prior event; re-check.
            let Some(slot) = self.slots.get_mut(addr as usize) else {
                continue;
            };
            if !slot.alive {
                continue;
            }
            let Some(mut node) = slot.node.take() else {
                continue;
            };
            let mut ctx = CycleCtx {
                engine: self,
                self_addr: addr,
            };
            node.on_cycle(&mut ctx);
            // The slot cannot have been re-filled while the node was out.
            self.slots[addr as usize].node = Some(node);
        }

        self.clock.advance();
    }

    /// Runs `n` cycles back to back.
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.run_cycle();
        }
    }

    /// Delivers all one-way messages queued during the previous cycle.
    /// Messages sent *while delivering* (cascading re-floods) are queued
    /// for the next cycle, giving one-hop-per-cycle flood propagation.
    fn deliver_pending(&mut self) {
        let batch = std::mem::take(&mut self.pending);
        for env in batch {
            self.stats.oneways_sent += 1;
            // Partition check first: severing is deterministic and consumes
            // no randomness (a severed message skips its loss roll, so the
            // roll stream differs from a partition-free run — but any two
            // runs of the same seed and schedule stay bit-identical).
            if self.net.severs(env.from, env.to) {
                self.stats.oneways_severed += 1;
                continue;
            }
            if self.net.drop_oneway > 0.0 && self.rng.gen::<f64>() < self.net.drop_oneway {
                self.stats.oneways_dropped += 1;
                continue;
            }
            let Some(slot) = self.slots.get_mut(env.to as usize) else {
                self.stats.oneways_to_dead += 1;
                continue;
            };
            if !slot.alive {
                self.stats.oneways_to_dead += 1;
                continue;
            }
            let Some(mut node) = slot.node.take() else {
                self.stats.oneways_to_dead += 1;
                continue;
            };
            let mut ctx = NodeCtx {
                pending: &mut self.pending,
                clock: &self.clock,
                self_addr: env.to,
            };
            node.on_oneway(env.from, env.msg, &mut ctx);
            self.slots[env.to as usize].node = Some(node);
            self.stats.oneways_delivered += 1;
        }
    }
}

/// Context handed to a node during its cycle turn. Supports synchronous
/// RPCs and one-way sends.
pub struct CycleCtx<'e, N: SimNode> {
    engine: &'e mut Engine<N>,
    self_addr: Addr,
}

impl<'e, N: SimNode> CycleCtx<'e, N> {
    /// The address of the node taking its turn.
    pub fn self_addr(&self) -> Addr {
        self.self_addr
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.engine.clock.cycle()
    }

    /// The tick at which the current cycle starts.
    pub fn now(&self) -> u64 {
        self.engine.clock.now()
    }

    /// Tick resolution of one cycle (the gossip period, in ticks).
    pub fn ticks_per_cycle(&self) -> u64 {
        self.engine.clock.ticks_per_cycle()
    }

    /// Performs a synchronous RPC to `to`.
    ///
    /// All failure modes (dead target, lost request, lost response,
    /// uncooperative peer) surface uniformly as [`RpcOutcome::Timeout`];
    /// see the type docs for why.
    pub fn rpc(&mut self, to: Addr, msg: N::Msg) -> RpcOutcome<N::Msg> {
        let engine = &mut *self.engine;
        engine.stats.rpcs_sent += 1;
        if to == self.self_addr {
            // A node never gossips with itself; treat as unreachable.
            engine.stats.rpcs_unreachable += 1;
            return RpcOutcome::Timeout;
        }
        // A partition severs the round trip outright: the request never
        // reaches the target (symmetric, so the response could not return
        // either). Checked before any loss roll — see `deliver_pending`.
        if engine.net.severs(self.self_addr, to) {
            engine.stats.rpcs_severed += 1;
            return RpcOutcome::Timeout;
        }
        if engine.net.drop_request > 0.0 && engine.rng.gen::<f64>() < engine.net.drop_request {
            engine.stats.rpcs_request_dropped += 1;
            return RpcOutcome::Timeout;
        }
        let Some(slot) = engine.slots.get_mut(to as usize) else {
            engine.stats.rpcs_unreachable += 1;
            return RpcOutcome::Timeout;
        };
        if !slot.alive {
            engine.stats.rpcs_unreachable += 1;
            return RpcOutcome::Timeout;
        }
        let Some(mut node) = slot.node.take() else {
            // Target is mid-turn (it is the caller); unreachable.
            engine.stats.rpcs_unreachable += 1;
            return RpcOutcome::Timeout;
        };
        let mut ctx = NodeCtx {
            pending: &mut engine.pending,
            clock: &engine.clock,
            self_addr: to,
        };
        let reply = node.on_rpc(self.self_addr, msg, &mut ctx);
        engine.slots[to as usize].node = Some(node);
        match reply {
            None => {
                engine.stats.rpcs_refused += 1;
                RpcOutcome::Timeout
            }
            Some(resp) => {
                if engine.net.drop_response > 0.0
                    && engine.rng.gen::<f64>() < engine.net.drop_response
                {
                    engine.stats.rpcs_response_dropped += 1;
                    RpcOutcome::Timeout
                } else {
                    engine.stats.rpcs_completed += 1;
                    RpcOutcome::Reply(resp)
                }
            }
        }
    }

    /// Queues a one-way message for delivery at the start of the next cycle.
    pub fn send(&mut self, to: Addr, msg: N::Msg) {
        self.engine.pending.push(Envelope {
            from: self.self_addr,
            to,
            msg,
        });
    }
}

/// Restricted context available to RPC and one-way handlers: they can learn
/// the time and emit one-way messages, but cannot issue nested RPCs (a
/// server handler never blocks on another node in the paper's protocol).
pub struct NodeCtx<'e, M> {
    pending: &'e mut Vec<Envelope<M>>,
    clock: &'e Clock,
    self_addr: Addr,
}

impl<'e, M> NodeCtx<'e, M> {
    /// The address of the handling node.
    pub fn self_addr(&self) -> Addr {
        self.self_addr
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.clock.cycle()
    }

    /// The tick at which the current cycle starts.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Tick resolution of one cycle.
    pub fn ticks_per_cycle(&self) -> u64 {
        self.clock.ticks_per_cycle()
    }

    /// Queues a one-way message for delivery at the start of the next cycle.
    pub fn send(&mut self, to: Addr, msg: M) {
        self.pending.push(Envelope {
            from: self.self_addr,
            to,
            msg,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy protocol: every cycle, ping the next node; it replies with a
    /// counter and floods a one-way "seen" notice to node 0.
    struct Toy {
        addr: Addr,
        n: u32,
        pings_answered: u32,
        oneways_got: u32,
        replies_got: u32,
    }

    enum ToyMsg {
        Ping,
        Pong(u32),
        Notice,
    }

    impl SimNode for Toy {
        type Msg = ToyMsg;

        fn on_cycle(&mut self, ctx: &mut CycleCtx<'_, Self>) {
            let target = (self.addr + 1) % self.n;
            if let RpcOutcome::Reply(ToyMsg::Pong(answered)) = ctx.rpc(target, ToyMsg::Ping) {
                assert!(answered >= 1, "responder counts its own answer first");
                self.replies_got += 1;
            }
        }

        fn on_rpc(
            &mut self,
            _from: Addr,
            msg: Self::Msg,
            ctx: &mut NodeCtx<'_, Self::Msg>,
        ) -> Option<Self::Msg> {
            match msg {
                ToyMsg::Ping => {
                    self.pings_answered += 1;
                    ctx.send(0, ToyMsg::Notice);
                    Some(ToyMsg::Pong(self.pings_answered))
                }
                _ => None,
            }
        }

        fn on_oneway(&mut self, _from: Addr, msg: Self::Msg, _ctx: &mut NodeCtx<'_, Self::Msg>) {
            if let ToyMsg::Notice = msg {
                self.oneways_got += 1;
            }
        }
    }

    fn build(n: u32, seed: u64) -> Engine<Toy> {
        let mut eng = Engine::new(SimConfig::seeded(seed));
        for _ in 0..n {
            eng.spawn_with(|addr| Toy {
                addr,
                n,
                pings_answered: 0,
                oneways_got: 0,
                replies_got: 0,
            });
        }
        eng
    }

    #[test]
    fn rpcs_complete_within_turn() {
        let mut eng = build(4, 1);
        eng.run_cycle();
        let total: u32 = eng.nodes().map(|(_, n)| n.replies_got).sum();
        assert_eq!(total, 4);
        assert_eq!(eng.stats().rpcs_completed, 4);
    }

    #[test]
    fn oneways_arrive_next_cycle() {
        let mut eng = build(4, 1);
        eng.run_cycle();
        assert_eq!(eng.node(0).unwrap().oneways_got, 0, "not yet delivered");
        eng.run_cycle();
        assert_eq!(eng.node(0).unwrap().oneways_got, 4, "delivered at start");
    }

    #[test]
    fn killed_nodes_time_out() {
        let mut eng = build(3, 2);
        eng.kill(1);
        assert!(!eng.is_alive(1));
        assert_eq!(eng.alive_count(), 2);
        eng.run_cycle();
        // Node 0 pings node 1 (dead): timeout. Node 2 pings node 0: ok.
        assert_eq!(eng.node(0).unwrap().replies_got, 0);
        assert_eq!(eng.node(2).unwrap().replies_got, 1);
    }

    #[test]
    fn self_rpc_times_out() {
        let mut eng = build(1, 3);
        eng.run_cycle();
        assert_eq!(eng.node(0).unwrap().replies_got, 0);
        assert_eq!(eng.stats().rpcs_unreachable, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut eng = build(16, seed);
            eng.run_cycles(10);
            eng.nodes()
                .map(|(_, n)| (n.pings_answered, n.replies_got, n.oneways_got))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn lossy_network_drops_messages() {
        let mut eng = Engine::<Toy>::new(SimConfig {
            seed: 7,
            net: NetworkModel::lossy(1.0),
            ..Default::default()
        });
        for _ in 0..4 {
            eng.spawn_with(|addr| Toy {
                addr,
                n: 4,
                pings_answered: 0,
                oneways_got: 0,
                replies_got: 0,
            });
        }
        eng.run_cycles(3);
        assert_eq!(eng.stats().rpcs_completed, 0);
        let total: u32 = eng.nodes().map(|(_, n)| n.replies_got).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn zero_loss_is_exact() {
        // p = 0.0 must never drop anything, not merely "rarely".
        let mut eng = Engine::<Toy>::new(SimConfig {
            seed: 11,
            net: NetworkModel::lossy(0.0),
            ..Default::default()
        });
        for _ in 0..8 {
            eng.spawn_with(|addr| Toy {
                addr,
                n: 8,
                pings_answered: 0,
                oneways_got: 0,
                replies_got: 0,
            });
        }
        eng.run_cycles(10);
        assert_eq!(eng.stats().rpcs_request_dropped, 0);
        assert_eq!(eng.stats().rpcs_response_dropped, 0);
        assert_eq!(eng.stats().oneways_dropped, 0);
        assert_eq!(eng.stats().rpcs_completed, 8 * 10);
    }

    #[test]
    fn total_loss_is_exact() {
        // p = 1.0 must drop every request (rng.gen::<f64>() ∈ [0, 1)).
        let mut eng = Engine::<Toy>::new(SimConfig {
            seed: 11,
            net: NetworkModel::lossy(1.0),
            ..Default::default()
        });
        for _ in 0..8 {
            eng.spawn_with(|addr| Toy {
                addr,
                n: 8,
                pings_answered: 0,
                oneways_got: 0,
                replies_got: 0,
            });
        }
        eng.run_cycles(10);
        assert_eq!(eng.stats().rpcs_completed, 0);
        assert_eq!(eng.stats().rpcs_request_dropped, 8 * 10);
        assert_eq!(eng.stats().oneways_delivered, 0);
    }

    #[test]
    fn drop_decisions_deterministic_across_runs() {
        // Two identical runs under partial loss make bit-identical drop
        // decisions: same per-message outcomes, same counters.
        let run = |seed: u64| {
            let mut eng = Engine::<Toy>::new(SimConfig {
                seed,
                net: NetworkModel::lossy(0.37),
                ..Default::default()
            });
            for _ in 0..12 {
                eng.spawn_with(|addr| Toy {
                    addr,
                    n: 12,
                    pings_answered: 0,
                    oneways_got: 0,
                    replies_got: 0,
                });
            }
            eng.run_cycles(25);
            let per_node: Vec<_> = eng
                .nodes()
                .map(|(_, n)| (n.pings_answered, n.replies_got, n.oneways_got))
                .collect();
            (*eng.stats(), per_node)
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0, "different seeds roll differently");
    }

    #[test]
    fn partition_severs_both_directions_then_heals() {
        use crate::net::Partition;
        // Ring of 4; isolate {1, 2}. Node 0 pings 1 (cross), 1 pings 2
        // (intra), 2 pings 3 (cross), 3 pings 0 (intra).
        let mut eng = build(4, 5);
        eng.set_net(NetworkModel::reliable().with_partition(Partition::isolate([1, 2])));
        eng.run_cycle();
        assert_eq!(eng.stats().rpcs_severed, 2, "both cross-side RPCs cut");
        assert_eq!(eng.stats().rpcs_completed, 2, "intra-side RPCs unharmed");
        // One-way notices to node 0 from the island side are severed too.
        eng.run_cycle();
        assert_eq!(eng.stats().oneways_severed, 1, "notice from island cut");
        // Heal: traffic resumes without reseeding or respawning anything.
        let healed = eng.net().clone().healed();
        eng.set_net(healed);
        let before = eng.stats().rpcs_completed;
        eng.run_cycle();
        assert_eq!(eng.stats().rpcs_completed, before + 4);
    }

    #[test]
    fn partition_consumes_no_randomness() {
        // Severed messages skip their loss roll entirely; the observable
        // contract is reproducibility — two runs with the same seed and
        // the same partition schedule agree exactly, even with loss
        // rolls and severs interleaving.
        use crate::net::Partition;
        let run = || {
            let mut eng = Engine::<Toy>::new(SimConfig {
                seed: 3,
                net: NetworkModel::lossy(0.5).with_partition(Partition::isolate([0, 1])),
                ..Default::default()
            });
            for _ in 0..6 {
                eng.spawn_with(|addr| Toy {
                    addr,
                    n: 6,
                    pings_answered: 0,
                    oneways_got: 0,
                    replies_got: 0,
                });
            }
            eng.run_cycles(20);
            *eng.stats()
        };
        let s = run();
        assert_eq!(s, run());
        assert!(s.rpcs_severed > 0);
        assert!(s.rpcs_request_dropped > 0);
    }

    #[test]
    fn spawn_assigns_sequential_addresses() {
        let mut eng = build(2, 0);
        let a = eng.spawn_with(|addr| Toy {
            addr,
            n: 3,
            pings_answered: 0,
            oneways_got: 0,
            replies_got: 0,
        });
        assert_eq!(a, 2);
        assert_eq!(eng.capacity(), 3);
    }

    #[test]
    fn node_accessors_respect_liveness() {
        let mut eng = build(2, 0);
        assert!(eng.node(0).is_some());
        assert!(eng.node_mut(1).is_some());
        eng.kill(0);
        assert!(eng.node(0).is_none());
        assert!(eng.node(99).is_none());
    }
}

/// Test support: drive protocol handlers without an engine.
pub mod testkit {
    use super::{Addr, Clock, Envelope, NodeCtx};

    /// Runs `f` with a detached [`NodeCtx`] as a node at `self_addr` would
    /// see it at the given `cycle`, and returns `f`'s result together with
    /// any one-way messages the handler emitted as `(to, msg)` pairs.
    ///
    /// This exists for protocol-level unit tests (e.g. feeding crafted
    /// requests straight into an RPC handler); simulations should use
    /// [`super::Engine`].
    pub fn with_node_ctx<M, R>(
        cycle: u64,
        ticks_per_cycle: u64,
        self_addr: Addr,
        f: impl FnOnce(&mut NodeCtx<'_, M>) -> R,
    ) -> (R, Vec<(Addr, M)>) {
        let clock = Clock::new(ticks_per_cycle).starting_at(cycle);
        let mut pending: Vec<Envelope<M>> = Vec::new();
        let mut ctx = NodeCtx {
            pending: &mut pending,
            clock: &clock,
            self_addr,
        };
        let out = f(&mut ctx);
        (out, pending.into_iter().map(|e| (e.to, e.msg)).collect())
    }
}
