//! The cycle-driven simulation engine.
//!
//! This module replaces the role PeerNet/PeerSim plays in the paper's
//! evaluation (§VI). The engine owns an arena of protocol nodes (see
//! [`crate::arena`]) and drives them in randomized order, once per cycle,
//! exactly like PeerSim's cycle-based mode:
//!
//! * During its turn a node may perform **synchronous RPCs** — the
//!   request/response round trips of a Cyclon gossip exchange, including the
//!   `s` tit-for-tat rounds of SecureCyclon (§V-B), complete within the
//!   initiator's turn.
//! * Nodes may also emit **one-way messages** (proof floods, §IV-C) at any
//!   point; these are queued per cycle and delivered at the start of the
//!   *next* cycle, giving flooding a realistic one-hop-per-cycle propagation
//!   speed. The queue is drained in ascending destination-address order
//!   (stable within a destination), so delivery cost is a single pass over
//!   a sorted batch and the loss-roll stream is a deterministic function of
//!   the batch alone.
//!
//! # Storage: the arena
//!
//! Nodes live in an [`Arena`]: boxed payloads indexed by [`Addr`], a
//! packed liveness array, and a maintained live-address list. Every
//! turn-time move (a node taken out for its turn, an RPC target checked
//! out for its handler) is pointer-sized, per-cycle setup is O(alive)
//! rather than O(addresses ever allocated), and addresses are never
//! reused — a descriptor pointing at a departed node dangles, as in a
//! real overlay.
//!
//! # Execution modes and determinism
//!
//! The engine runs in one of two [`Execution`] modes:
//!
//! * [`Execution::Sequential`] (the default): one turn at a time, fully
//!   deterministic per seed — the mode every test and experiment replays
//!   under.
//! * [`Execution::Striped`]: the shuffled turn order is cut into
//!   consecutive *stripes*; the turns of a stripe run concurrently on a
//!   vendored rayon worker pool. Striped runs are **also deterministic**,
//!   by construction rather than by luck:
//!
//!   1. Every RPC passes a *position-ordered admission gate*: the RPC of
//!      the turn at stripe position `p` executes only after the turns at
//!      positions `< p` have completed. RPCs therefore execute — and
//!      consume network loss rolls from the engine RNG — in exactly the
//!      order the sequential engine would, while the pre- and post-RPC
//!      compute of different turns (peer selection, signature checks)
//!      overlaps across workers.
//!   2. An RPC whose target is co-scheduled in the caller's stripe is
//!      deterministically unreachable (a "busy" timeout, counted under
//!      `rpcs_unreachable`, consuming no randomness). This generalizes the
//!      sequential rule that a node cannot serve an RPC while mid-turn.
//!   3. One-way sends are buffered per turn and appended to the next
//!      cycle's queue in stripe-position order — the exact order the
//!      sequential engine produces.
//!
//!   The resulting contract: a striped run is bit-for-bit reproducible
//!   for a given `(seed, stripe_len)`, independent of worker count and
//!   OS scheduling; and with `stripe_len = 1` (where rule 2 never fires)
//!   it is bit-identical to the sequential engine on any network model.
//!   Striped execution requires node state to be engine-contained
//!   (`N: Send`, no mutable state shared outside the engine), since
//!   non-RPC sections of different turns overlap in wall time.

use crate::arena::Arena;
use crate::clock::Clock;
use crate::net::NetworkModel;
use crate::stats::TrafficStats;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A simulated network address ("IP and port" in the paper's model).
///
/// Addresses index the engine's node arena and are never reused, so a
/// descriptor pointing at a departed node dangles — as in a real overlay.
pub type Addr = u32;

/// A protocol endpoint hosted by the [`Engine`].
///
/// Implementors provide three entry points mirroring a real networked node:
/// the periodic active thread ([`on_cycle`](SimNode::on_cycle)), the RPC
/// server ([`on_rpc`](SimNode::on_rpc)), and the datagram handler
/// ([`on_oneway`](SimNode::on_oneway)).
pub trait SimNode: Sized {
    /// The protocol's wire message type.
    type Msg;

    /// Called once per cycle: the node's active gossip thread.
    fn on_cycle(&mut self, ctx: &mut CycleCtx<'_, Self>);

    /// Handles an incoming RPC and optionally returns a response.
    ///
    /// Returning `None` models a node that received the request but chose
    /// not to (or failed to) answer — the initiator observes a timeout.
    fn on_rpc(
        &mut self,
        from: Addr,
        msg: Self::Msg,
        ctx: &mut NodeCtx<'_, Self::Msg>,
    ) -> Option<Self::Msg>;

    /// Handles an incoming one-way message (e.g. a flooded violation proof).
    fn on_oneway(&mut self, from: Addr, msg: Self::Msg, ctx: &mut NodeCtx<'_, Self::Msg>);
}

/// Outcome of a synchronous RPC, as observed by the initiator.
///
/// A real node cannot distinguish *why* no response arrived (dead target,
/// lost request, lost response, or an uncooperative peer), so all of those
/// collapse into [`RpcOutcome::Timeout`]. Protocol code must handle the
/// uncertainty — in SecureCyclon, by discarding sent descriptors rather
/// than risking a cloning accusation (§V-A, case 2).
#[derive(Debug)]
pub enum RpcOutcome<M> {
    /// The response from the target.
    Reply(M),
    /// No response arrived.
    Timeout,
}

impl<M> RpcOutcome<M> {
    /// Converts into an `Option`, mapping `Timeout` to `None`.
    pub fn into_reply(self) -> Option<M> {
        match self {
            RpcOutcome::Reply(m) => Some(m),
            RpcOutcome::Timeout => None,
        }
    }
}

/// An in-flight one-way message.
#[derive(Debug, Clone)]
struct Envelope<M> {
    from: Addr,
    to: Addr,
    msg: M,
}

/// How [`Engine::run_cycle`] schedules the turns of a cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Execution {
    /// One turn at a time, in shuffled order. The default, and the mode
    /// of record for every determinism test.
    #[default]
    Sequential,
    /// Turns run `stripe_len` at a time on `workers` pooled threads, with
    /// RPC admission serialized in stripe-position order. Deterministic
    /// for a given `(seed, stripe_len)` — see the module docs for the
    /// exact contract — and bit-identical to [`Execution::Sequential`]
    /// when `stripe_len == 1`.
    Striped {
        /// Worker threads per stripe (clamped to at least 1).
        workers: usize,
        /// Consecutive turns scheduled together (clamped to at least 1).
        /// Part of the seed-stream contract: changing it changes which
        /// RPCs hit the same-stripe busy rule.
        stripe_len: usize,
    },
}

/// Engine construction parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed for shuffle order and network loss rolls.
    pub seed: u64,
    /// Message-loss model.
    pub net: NetworkModel,
    /// Tick resolution of one cycle.
    pub ticks_per_cycle: u64,
    /// Cycle number the clock starts at (see [`crate::clock::Clock::starting_at`]).
    pub start_cycle: u64,
    /// Turn scheduling mode (see [`Execution`]).
    pub execution: Execution,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            net: NetworkModel::reliable(),
            ticks_per_cycle: crate::clock::DEFAULT_TICKS_PER_CYCLE,
            start_cycle: 0,
            execution: Execution::Sequential,
        }
    }
}

impl SimConfig {
    /// A reliable-network config with the given seed.
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ..Default::default()
        }
    }
}

/// The cycle-driven simulator.
pub struct Engine<N: SimNode> {
    arena: Arena<N>,
    clock: Clock,
    net: NetworkModel,
    rng: StdRng,
    /// One-way messages to deliver at the start of the next cycle.
    pending: Vec<Envelope<N::Msg>>,
    stats: TrafficStats,
    execution: Execution,
    /// Worker pool for striped execution (None while sequential).
    pool: Option<rayon::ThreadPool>,
}

impl<N: SimNode> Engine<N> {
    /// Creates an empty engine.
    pub fn new(cfg: SimConfig) -> Self {
        let mut engine = Engine {
            arena: Arena::new(),
            clock: Clock::new(cfg.ticks_per_cycle).starting_at(cfg.start_cycle),
            net: cfg.net,
            rng: StdRng::seed_from_u64(cfg.seed),
            pending: Vec::new(),
            stats: TrafficStats::default(),
            execution: Execution::Sequential,
            pool: None,
        };
        engine.set_execution(cfg.execution);
        engine
    }

    /// Adds a node constructed by `make`, which receives the address the
    /// node will live at (nodes embed their address in descriptors).
    pub fn spawn_with(&mut self, make: impl FnOnce(Addr) -> N) -> Addr {
        self.arena.insert_with(make)
    }

    /// Removes a node from the network without notice (crash / departure).
    ///
    /// Its address is never reused; descriptors pointing at it dangle.
    pub fn kill(&mut self, addr: Addr) {
        self.arena.kill(addr);
    }

    /// Whether the node at `addr` is alive.
    pub fn is_alive(&self, addr: Addr) -> bool {
        self.arena.is_alive(addr)
    }

    /// Number of alive nodes. O(1).
    pub fn alive_count(&self) -> usize {
        self.arena.alive_count()
    }

    /// Total number of addresses ever allocated (alive or dead).
    pub fn capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Borrows the node at `addr`, if alive.
    pub fn node(&self, addr: Addr) -> Option<&N> {
        self.arena.get(addr)
    }

    /// Mutably borrows the node at `addr`, if alive.
    pub fn node_mut(&mut self, addr: Addr) -> Option<&mut N> {
        self.arena.get_mut(addr)
    }

    /// Iterates over `(addr, node)` for all alive nodes in address order.
    pub fn nodes(&self) -> impl Iterator<Item = (Addr, &N)> {
        self.arena.iter()
    }

    /// The simulation clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.clock.cycle()
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The active network model.
    pub fn net(&self) -> &NetworkModel {
        &self.net
    }

    /// Replaces the network model (e.g. to start injecting losses, install
    /// a partition, or heal one at a given cycle).
    pub fn set_net(&mut self, net: NetworkModel) {
        self.net = net;
    }

    /// The active turn-scheduling mode.
    pub fn execution(&self) -> Execution {
        self.execution
    }

    /// Switches turn scheduling (takes effect from the next cycle).
    /// Switching modes changes the seed stream only as documented on
    /// [`Execution::Striped`].
    pub fn set_execution(&mut self, execution: Execution) {
        self.execution = execution;
        self.pool = match execution {
            Execution::Sequential => None,
            Execution::Striped { workers, .. } => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(workers.max(1))
                    .build()
                    .expect("vendored thread pool construction is infallible"),
            ),
        };
    }

    /// Runs one full cycle: delivers queued one-way messages in address
    /// order, then gives every alive node its turn in shuffled order under
    /// the configured [`Execution`] mode.
    pub fn run_cycle(&mut self)
    where
        N: Send,
        N::Msg: Send,
    {
        self.deliver_pending();

        let mut order: Vec<Addr> = self.arena.live_addrs().to_vec();
        order.shuffle(&mut self.rng);

        match self.execution {
            Execution::Sequential => self.run_turns_sequential(&order),
            Execution::Striped {
                workers,
                stripe_len,
            } => {
                for stripe in order.chunks(stripe_len.max(1)) {
                    self.run_stripe(stripe, workers.max(1));
                }
            }
        }

        self.clock.advance();
    }

    /// Runs one cycle with an interruption: the first `after_turns`
    /// turns of the shuffled order run, then `mid` gets mutable access
    /// to the engine (kill or restart nodes, inject messages), then the
    /// remaining turns run and the clock advances. This models faults
    /// landing *inside* a gossip cycle — e.g. a crash after a node
    /// already answered some exchanges but before its checkpoint — which
    /// boundary-aligned fault hooks structurally cannot express.
    ///
    /// Turns always run sequentially here regardless of the configured
    /// [`Execution`] mode: an interruption point inside a striped cycle
    /// has no deterministic position. The shuffled order and message
    /// delivery match [`Engine::run_cycle`] exactly, so a run that
    /// interrupts after `order.len()` turns is bit-identical to an
    /// uninterrupted sequential cycle plus a boundary hook.
    pub fn run_cycle_interrupted<F>(&mut self, after_turns: usize, mid: F)
    where
        F: FnOnce(&mut Self),
    {
        self.deliver_pending();

        let mut order: Vec<Addr> = self.arena.live_addrs().to_vec();
        order.shuffle(&mut self.rng);

        let cut = after_turns.min(order.len());
        self.run_turns_sequential(&order[..cut]);
        mid(self);
        self.run_turns_sequential(&order[cut..]);

        self.clock.advance();
    }

    /// Runs `n` cycles back to back.
    pub fn run_cycles(&mut self, n: u64)
    where
        N: Send,
        N::Msg: Send,
    {
        for _ in 0..n {
            self.run_cycle();
        }
    }

    /// The sequential turn loop: take each node out, run its turn, put it
    /// back.
    fn run_turns_sequential(&mut self, order: &[Addr]) {
        for &addr in order {
            // The node may have been killed mid-cycle; `take` then fails.
            let Some(mut node) = self.arena.take(addr) else {
                continue;
            };
            let mut ctx = CycleCtx {
                self_addr: addr,
                inner: CtxInner::Seq(self),
            };
            node.on_cycle(&mut ctx);
            self.arena.put_back(addr, node);
        }
    }

    /// Runs one stripe of turns on the worker pool. See the module docs
    /// for the determinism argument.
    fn run_stripe(&mut self, stripe: &[Addr], workers: usize)
    where
        N: Send,
        N::Msg: Send,
    {
        // Check the stripe's nodes out sequentially. Addresses that died
        // mid-cycle yield no node and their positions complete instantly.
        let taken: Vec<Option<Box<N>>> = stripe.iter().map(|&a| self.arena.take(a)).collect();
        let busy: HashSet<Addr> = stripe
            .iter()
            .zip(&taken)
            .filter(|(_, n)| n.is_some())
            .map(|(&a, _)| a)
            .collect();
        let n_turns = busy.len();
        if n_turns == 0 {
            return;
        }

        let gate = Gate::new(stripe.len());
        for (pos, node) in taken.iter().enumerate() {
            if node.is_none() {
                gate.complete(pos);
            }
        }

        // Everything the gated RPC path mutates moves under one lock for
        // the stripe's duration; the lock is only ever contended by the
        // single gate-admitted RPC at a time plus O(1) turn bookkeeping.
        let shared = Mutex::new(StripeShared {
            arena: std::mem::take(&mut self.arena),
            rng: std::mem::replace(&mut self.rng, StdRng::seed_from_u64(0)),
            stats: self.stats,
        });
        let turn_nodes = Mutex::new(taken);
        let buffers: Mutex<Vec<Vec<Envelope<N::Msg>>>> =
            Mutex::new(stripe.iter().map(|_| Vec::new()).collect());
        let claim = AtomicUsize::new(0);
        let net = &self.net;
        let clock = self.clock;
        let pool = self
            .pool
            .as_ref()
            .expect("striped execution always has a pool");

        pool.scope(|s| {
            for _ in 0..workers.min(n_turns) {
                s.spawn(|_| loop {
                    let pos = claim.fetch_add(1, Ordering::SeqCst);
                    if pos >= stripe.len() {
                        break;
                    }
                    let Some(mut node) = turn_nodes.lock().unwrap()[pos].take() else {
                        continue; // dead position, pre-completed
                    };
                    let mut buf: Vec<Envelope<N::Msg>> = Vec::new();
                    {
                        let mut ctx = CycleCtx {
                            self_addr: stripe[pos],
                            inner: CtxInner::Striped(StripedCtx {
                                shared: &shared,
                                gate: &gate,
                                net,
                                clock,
                                pos,
                                busy: &busy,
                                buf: &mut buf,
                            }),
                        };
                        node.on_cycle(&mut ctx);
                    }
                    turn_nodes.lock().unwrap()[pos] = Some(node);
                    buffers.lock().unwrap()[pos] = buf;
                    gate.complete(pos);
                });
            }
        });

        // Move the engine state back and merge per-turn sends in stripe
        // position order — exactly the sequence the sequential loop emits.
        let core = shared.into_inner().unwrap();
        self.arena = core.arena;
        self.rng = core.rng;
        self.stats = core.stats;
        for (pos, slot) in turn_nodes.into_inner().unwrap().into_iter().enumerate() {
            if let Some(node) = slot {
                self.arena.put_back(stripe[pos], node);
            }
        }
        for buf in buffers.into_inner().unwrap() {
            self.pending.extend(buf);
        }
    }

    /// Delivers all one-way messages queued during the previous cycle,
    /// in ascending destination-address order (stable per destination).
    /// Messages sent *while delivering* (cascading re-floods) are queued
    /// for the next cycle, giving one-hop-per-cycle flood propagation.
    fn deliver_pending(&mut self) {
        let mut batch = std::mem::take(&mut self.pending);
        batch.sort_by_key(|env| env.to);
        for env in batch {
            self.stats.oneways_sent += 1;
            // Partition check first: severing is deterministic and consumes
            // no randomness (a severed message skips its loss roll, so the
            // roll stream differs from a partition-free run — but any two
            // runs of the same seed and schedule stay bit-identical).
            if self.net.severs(env.from, env.to) {
                self.stats.oneways_severed += 1;
                continue;
            }
            if self.net.drop_oneway > 0.0 && self.rng.gen::<f64>() < self.net.drop_oneway {
                self.stats.oneways_dropped += 1;
                continue;
            }
            let Some(mut node) = self.arena.take(env.to) else {
                self.stats.oneways_to_dead += 1;
                continue;
            };
            let mut ctx = NodeCtx {
                pending: &mut self.pending,
                clock: &self.clock,
                self_addr: env.to,
            };
            node.on_oneway(env.from, env.msg, &mut ctx);
            self.arena.put_back(env.to, node);
            self.stats.oneways_delivered += 1;
        }
    }
}

/// The engine state an admitted RPC needs, shared under one mutex during
/// a stripe (and borrowed field-by-field in sequential mode).
struct StripeShared<N: SimNode> {
    arena: Arena<N>,
    rng: StdRng,
    stats: TrafficStats,
}

/// The position-ordered admission gate of striped execution.
///
/// `watermark` is the lowest stripe position whose turn has not completed;
/// an RPC at position `p` may execute once `watermark >= p`. The worker
/// holding the lowest incomplete position never waits, so the gate cannot
/// deadlock.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    done: Vec<bool>,
    watermark: usize,
}

impl Gate {
    fn new(len: usize) -> Self {
        Gate {
            state: Mutex::new(GateState {
                done: vec![false; len],
                watermark: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until every position below `pos` has completed.
    fn wait_for(&self, pos: usize) {
        let mut st = self.state.lock().unwrap();
        while st.watermark < pos {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Marks `pos` complete and advances the watermark past any
    /// contiguous run of completed positions.
    fn complete(&self, pos: usize) {
        let mut st = self.state.lock().unwrap();
        st.done[pos] = true;
        while st.watermark < st.done.len() && st.done[st.watermark] {
            st.watermark += 1;
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// Borrowed engine pieces an RPC admission runs against — one struct so
/// sequential and striped mode share the exact same code path (and thus
/// the exact same stats/RNG consumption order).
struct RpcPath<'a, N: SimNode> {
    arena: &'a mut Arena<N>,
    rng: &'a mut StdRng,
    stats: &'a mut TrafficStats,
    net: &'a NetworkModel,
    clock: &'a Clock,
    /// Where the target handler's one-way sends accumulate: the engine
    /// queue (sequential) or the initiator's turn buffer (striped).
    out: &'a mut Vec<Envelope<N::Msg>>,
    /// Addresses co-scheduled in the caller's stripe (empty when
    /// sequential): deterministically unreachable this turn.
    busy: Option<&'a HashSet<Addr>>,
}

impl<N: SimNode> RpcPath<'_, N> {
    fn execute(self, from: Addr, to: Addr, msg: N::Msg) -> RpcOutcome<N::Msg> {
        self.stats.rpcs_sent += 1;
        if to == from {
            // A node never gossips with itself; treat as unreachable.
            self.stats.rpcs_unreachable += 1;
            return RpcOutcome::Timeout;
        }
        if self.busy.is_some_and(|b| b.contains(&to)) {
            // Target is co-scheduled in the caller's stripe: mid-turn for
            // scheduling purposes, deterministically unreachable.
            self.stats.rpcs_unreachable += 1;
            return RpcOutcome::Timeout;
        }
        // A partition severs the round trip outright: the request never
        // reaches the target (symmetric, so the response could not return
        // either). Checked before any loss roll — see `deliver_pending`.
        if self.net.severs(from, to) {
            self.stats.rpcs_severed += 1;
            return RpcOutcome::Timeout;
        }
        if self.net.drop_request > 0.0 && self.rng.gen::<f64>() < self.net.drop_request {
            self.stats.rpcs_request_dropped += 1;
            return RpcOutcome::Timeout;
        }
        let Some(mut node) = self.arena.take(to) else {
            // Dead, never allocated, or mid-turn: unreachable.
            self.stats.rpcs_unreachable += 1;
            return RpcOutcome::Timeout;
        };
        let mut ctx = NodeCtx {
            pending: self.out,
            clock: self.clock,
            self_addr: to,
        };
        let reply = node.on_rpc(from, msg, &mut ctx);
        self.arena.put_back(to, node);
        match reply {
            None => {
                self.stats.rpcs_refused += 1;
                RpcOutcome::Timeout
            }
            Some(resp) => {
                if self.net.drop_response > 0.0 && self.rng.gen::<f64>() < self.net.drop_response {
                    self.stats.rpcs_response_dropped += 1;
                    RpcOutcome::Timeout
                } else {
                    self.stats.rpcs_completed += 1;
                    RpcOutcome::Reply(resp)
                }
            }
        }
    }
}

/// Supplies a node's turn with a clock and message paths from outside the
/// engine — the hook a real transport (e.g. a socket daemon) implements to
/// reuse engine-targeted protocol code unchanged. See
/// [`CycleCtx::driven`].
pub trait TurnDriver<M> {
    /// The current cycle number.
    fn cycle(&self) -> u64;
    /// The tick at which the current cycle starts.
    fn now(&self) -> u64;
    /// Tick resolution of one cycle.
    fn ticks_per_cycle(&self) -> u64;
    /// Performs a synchronous RPC; all failure modes collapse into
    /// [`RpcOutcome::Timeout`], exactly as in the engine.
    fn rpc(&mut self, to: Addr, msg: M) -> RpcOutcome<M>;
    /// Queues a one-way message for asynchronous delivery.
    fn send(&mut self, to: Addr, msg: M);
}

/// Context handed to a node during its cycle turn. Supports synchronous
/// RPCs and one-way sends.
pub struct CycleCtx<'e, N: SimNode> {
    self_addr: Addr,
    inner: CtxInner<'e, N>,
}

enum CtxInner<'e, N: SimNode> {
    /// Sequential mode: exclusive access to the whole engine.
    Seq(&'e mut Engine<N>),
    /// Striped mode: gated access to the shared stripe state.
    Striped(StripedCtx<'e, N>),
    /// Driven mode: clock and transport supplied by an external driver.
    Driven(&'e mut dyn TurnDriver<N::Msg>),
}

struct StripedCtx<'e, N: SimNode> {
    shared: &'e Mutex<StripeShared<N>>,
    gate: &'e Gate,
    net: &'e NetworkModel,
    clock: Clock,
    pos: usize,
    busy: &'e HashSet<Addr>,
    buf: &'e mut Vec<Envelope<N::Msg>>,
}

impl<'e, N: SimNode> CycleCtx<'e, N> {
    /// Builds a context backed by an external [`TurnDriver`] instead of an
    /// engine, so daemon code can run `SimNode`-targeted protocol logic
    /// over a real transport.
    pub fn driven(self_addr: Addr, driver: &'e mut dyn TurnDriver<N::Msg>) -> Self {
        CycleCtx {
            self_addr,
            inner: CtxInner::Driven(driver),
        }
    }
}

impl<N: SimNode> CycleCtx<'_, N> {
    /// The address of the node taking its turn.
    pub fn self_addr(&self) -> Addr {
        self.self_addr
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        match &self.inner {
            CtxInner::Driven(d) => d.cycle(),
            _ => self.clock_ref().cycle(),
        }
    }

    /// The tick at which the current cycle starts.
    pub fn now(&self) -> u64 {
        match &self.inner {
            CtxInner::Driven(d) => d.now(),
            _ => self.clock_ref().now(),
        }
    }

    /// Tick resolution of one cycle (the gossip period, in ticks).
    pub fn ticks_per_cycle(&self) -> u64 {
        match &self.inner {
            CtxInner::Driven(d) => d.ticks_per_cycle(),
            _ => self.clock_ref().ticks_per_cycle(),
        }
    }

    fn clock_ref(&self) -> &Clock {
        match &self.inner {
            CtxInner::Seq(engine) => &engine.clock,
            CtxInner::Striped(sc) => &sc.clock,
            CtxInner::Driven(_) => unreachable!("driven contexts bypass the engine clock"),
        }
    }

    /// Performs a synchronous RPC to `to`.
    ///
    /// All failure modes (dead target, lost request, lost response,
    /// uncooperative peer, target co-scheduled in the caller's stripe)
    /// surface uniformly as [`RpcOutcome::Timeout`]; see the type docs
    /// for why.
    pub fn rpc(&mut self, to: Addr, msg: N::Msg) -> RpcOutcome<N::Msg> {
        let from = self.self_addr;
        match &mut self.inner {
            CtxInner::Seq(engine) => {
                let engine = &mut **engine;
                RpcPath {
                    arena: &mut engine.arena,
                    rng: &mut engine.rng,
                    stats: &mut engine.stats,
                    net: &engine.net,
                    clock: &engine.clock,
                    out: &mut engine.pending,
                    busy: None,
                }
                .execute(from, to, msg)
            }
            CtxInner::Striped(sc) => {
                // Admission: wait until every earlier turn in the stripe
                // has fully completed, then run as the unique in-flight
                // RPC — sequential order, parallel surroundings.
                sc.gate.wait_for(sc.pos);
                let mut guard = sc.shared.lock().unwrap();
                let core = &mut *guard;
                RpcPath {
                    arena: &mut core.arena,
                    rng: &mut core.rng,
                    stats: &mut core.stats,
                    net: sc.net,
                    clock: &sc.clock,
                    out: sc.buf,
                    busy: Some(sc.busy),
                }
                .execute(from, to, msg)
            }
            CtxInner::Driven(d) => d.rpc(to, msg),
        }
    }

    /// Queues a one-way message for delivery at the start of the next cycle.
    pub fn send(&mut self, to: Addr, msg: N::Msg) {
        match &mut self.inner {
            CtxInner::Driven(d) => d.send(to, msg),
            inner => {
                let env = Envelope {
                    from: self.self_addr,
                    to,
                    msg,
                };
                match inner {
                    CtxInner::Seq(engine) => engine.pending.push(env),
                    CtxInner::Striped(sc) => sc.buf.push(env),
                    CtxInner::Driven(_) => unreachable!(),
                }
            }
        }
    }
}

/// Restricted context available to RPC and one-way handlers: they can learn
/// the time and emit one-way messages, but cannot issue nested RPCs (a
/// server handler never blocks on another node in the paper's protocol).
pub struct NodeCtx<'e, M> {
    pending: &'e mut Vec<Envelope<M>>,
    clock: &'e Clock,
    self_addr: Addr,
}

impl<M> NodeCtx<'_, M> {
    /// The address of the handling node.
    pub fn self_addr(&self) -> Addr {
        self.self_addr
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.clock.cycle()
    }

    /// The tick at which the current cycle starts.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Tick resolution of one cycle.
    pub fn ticks_per_cycle(&self) -> u64 {
        self.clock.ticks_per_cycle()
    }

    /// Queues a one-way message for delivery at the start of the next cycle.
    pub fn send(&mut self, to: Addr, msg: M) {
        self.pending.push(Envelope {
            from: self.self_addr,
            to,
            msg,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy protocol: every cycle, ping the next node; it replies with a
    /// counter and floods a one-way "seen" notice to node 0.
    struct Toy {
        addr: Addr,
        n: u32,
        pings_answered: u32,
        oneways_got: u32,
        replies_got: u32,
    }

    enum ToyMsg {
        Ping,
        Pong(u32),
        Notice,
    }

    impl SimNode for Toy {
        type Msg = ToyMsg;

        fn on_cycle(&mut self, ctx: &mut CycleCtx<'_, Self>) {
            let target = (self.addr + 1) % self.n;
            if let RpcOutcome::Reply(ToyMsg::Pong(answered)) = ctx.rpc(target, ToyMsg::Ping) {
                assert!(answered >= 1, "responder counts its own answer first");
                self.replies_got += 1;
            }
        }

        fn on_rpc(
            &mut self,
            _from: Addr,
            msg: Self::Msg,
            ctx: &mut NodeCtx<'_, Self::Msg>,
        ) -> Option<Self::Msg> {
            match msg {
                ToyMsg::Ping => {
                    self.pings_answered += 1;
                    ctx.send(0, ToyMsg::Notice);
                    Some(ToyMsg::Pong(self.pings_answered))
                }
                _ => None,
            }
        }

        fn on_oneway(&mut self, _from: Addr, msg: Self::Msg, _ctx: &mut NodeCtx<'_, Self::Msg>) {
            if let ToyMsg::Notice = msg {
                self.oneways_got += 1;
            }
        }
    }

    fn build(n: u32, seed: u64) -> Engine<Toy> {
        build_with(n, SimConfig::seeded(seed))
    }

    fn build_with(n: u32, cfg: SimConfig) -> Engine<Toy> {
        let mut eng = Engine::new(cfg);
        for _ in 0..n {
            eng.spawn_with(|addr| Toy {
                addr,
                n,
                pings_answered: 0,
                oneways_got: 0,
                replies_got: 0,
            });
        }
        eng
    }

    fn toy_state(eng: &Engine<Toy>) -> Vec<(Addr, u32, u32, u32)> {
        eng.nodes()
            .map(|(a, n)| (a, n.pings_answered, n.replies_got, n.oneways_got))
            .collect()
    }

    #[test]
    fn rpcs_complete_within_turn() {
        let mut eng = build(4, 1);
        eng.run_cycle();
        let total: u32 = eng.nodes().map(|(_, n)| n.replies_got).sum();
        assert_eq!(total, 4);
        assert_eq!(eng.stats().rpcs_completed, 4);
    }

    #[test]
    fn oneways_arrive_next_cycle() {
        let mut eng = build(4, 1);
        eng.run_cycle();
        assert_eq!(eng.node(0).unwrap().oneways_got, 0, "not yet delivered");
        eng.run_cycle();
        assert_eq!(eng.node(0).unwrap().oneways_got, 4, "delivered at start");
    }

    #[test]
    fn killed_nodes_time_out() {
        let mut eng = build(3, 2);
        eng.kill(1);
        assert!(!eng.is_alive(1));
        assert_eq!(eng.alive_count(), 2);
        eng.run_cycle();
        // Node 0 pings node 1 (dead): timeout. Node 2 pings node 0: ok.
        assert_eq!(eng.node(0).unwrap().replies_got, 0);
        assert_eq!(eng.node(2).unwrap().replies_got, 1);
    }

    #[test]
    fn self_rpc_times_out() {
        let mut eng = build(1, 3);
        eng.run_cycle();
        assert_eq!(eng.node(0).unwrap().replies_got, 0);
        assert_eq!(eng.stats().rpcs_unreachable, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut eng = build(16, seed);
            eng.run_cycles(10);
            eng.nodes()
                .map(|(_, n)| (n.pings_answered, n.replies_got, n.oneways_got))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn lossy_network_drops_messages() {
        let mut eng = build_with(
            4,
            SimConfig {
                seed: 7,
                net: NetworkModel::lossy(1.0),
                ..Default::default()
            },
        );
        eng.run_cycles(3);
        assert_eq!(eng.stats().rpcs_completed, 0);
        let total: u32 = eng.nodes().map(|(_, n)| n.replies_got).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn zero_loss_is_exact() {
        // p = 0.0 must never drop anything, not merely "rarely".
        let mut eng = build_with(
            8,
            SimConfig {
                seed: 11,
                net: NetworkModel::lossy(0.0),
                ..Default::default()
            },
        );
        eng.run_cycles(10);
        assert_eq!(eng.stats().rpcs_request_dropped, 0);
        assert_eq!(eng.stats().rpcs_response_dropped, 0);
        assert_eq!(eng.stats().oneways_dropped, 0);
        assert_eq!(eng.stats().rpcs_completed, 8 * 10);
    }

    #[test]
    fn total_loss_is_exact() {
        // p = 1.0 must drop every request (rng.gen::<f64>() ∈ [0, 1)).
        let mut eng = build_with(
            8,
            SimConfig {
                seed: 11,
                net: NetworkModel::lossy(1.0),
                ..Default::default()
            },
        );
        eng.run_cycles(10);
        assert_eq!(eng.stats().rpcs_completed, 0);
        assert_eq!(eng.stats().rpcs_request_dropped, 8 * 10);
        assert_eq!(eng.stats().oneways_delivered, 0);
    }

    #[test]
    fn drop_decisions_deterministic_across_runs() {
        // Two identical runs under partial loss make bit-identical drop
        // decisions: same per-message outcomes, same counters.
        let run = |seed: u64| {
            let mut eng = build_with(
                12,
                SimConfig {
                    seed,
                    net: NetworkModel::lossy(0.37),
                    ..Default::default()
                },
            );
            eng.run_cycles(25);
            (*eng.stats(), toy_state(&eng))
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0, "different seeds roll differently");
    }

    #[test]
    fn partition_severs_both_directions_then_heals() {
        use crate::net::Partition;
        // Ring of 4; isolate {1, 2}. Node 0 pings 1 (cross), 1 pings 2
        // (intra), 2 pings 3 (cross), 3 pings 0 (intra).
        let mut eng = build(4, 5);
        eng.set_net(NetworkModel::reliable().with_partition(Partition::isolate([1, 2])));
        eng.run_cycle();
        assert_eq!(eng.stats().rpcs_severed, 2, "both cross-side RPCs cut");
        assert_eq!(eng.stats().rpcs_completed, 2, "intra-side RPCs unharmed");
        // One-way notices to node 0 from the island side are severed too.
        eng.run_cycle();
        assert_eq!(eng.stats().oneways_severed, 1, "notice from island cut");
        // Heal: traffic resumes without reseeding or respawning anything.
        let healed = eng.net().clone().healed();
        eng.set_net(healed);
        let before = eng.stats().rpcs_completed;
        eng.run_cycle();
        assert_eq!(eng.stats().rpcs_completed, before + 4);
    }

    #[test]
    fn partition_consumes_no_randomness() {
        // Severed messages skip their loss roll entirely; the observable
        // contract is reproducibility — two runs with the same seed and
        // the same partition schedule agree exactly, even with loss
        // rolls and severs interleaving.
        use crate::net::Partition;
        let run = || {
            let mut eng = build_with(
                6,
                SimConfig {
                    seed: 3,
                    net: NetworkModel::lossy(0.5).with_partition(Partition::isolate([0, 1])),
                    ..Default::default()
                },
            );
            eng.run_cycles(20);
            *eng.stats()
        };
        let s = run();
        assert_eq!(s, run());
        assert!(s.rpcs_severed > 0);
        assert!(s.rpcs_request_dropped > 0);
    }

    #[test]
    fn spawn_assigns_sequential_addresses() {
        let mut eng = build(2, 0);
        let a = eng.spawn_with(|addr| Toy {
            addr,
            n: 3,
            pings_answered: 0,
            oneways_got: 0,
            replies_got: 0,
        });
        assert_eq!(a, 2);
        assert_eq!(eng.capacity(), 3);
    }

    #[test]
    fn node_accessors_respect_liveness() {
        let mut eng = build(2, 0);
        assert!(eng.node(0).is_some());
        assert!(eng.node_mut(1).is_some());
        eng.kill(0);
        assert!(eng.node(0).is_none());
        assert!(eng.node(99).is_none());
    }

    /// A probe node with a fixed script: RPC one target and one-way
    /// another, every cycle. Used to exercise dangling-address paths
    /// explicitly.
    struct Probe {
        rpc_to: Addr,
        oneway_to: Addr,
        rpc_timeouts: u32,
        rpc_replies: u32,
        oneways_got: u32,
    }

    impl SimNode for Probe {
        type Msg = u8;

        fn on_cycle(&mut self, ctx: &mut CycleCtx<'_, Self>) {
            match ctx.rpc(self.rpc_to, 1) {
                RpcOutcome::Reply(_) => self.rpc_replies += 1,
                RpcOutcome::Timeout => self.rpc_timeouts += 1,
            }
            ctx.send(self.oneway_to, 2);
        }

        fn on_rpc(&mut self, _f: Addr, _m: u8, _c: &mut NodeCtx<'_, u8>) -> Option<u8> {
            Some(0)
        }

        fn on_oneway(&mut self, _f: Addr, _m: u8, _c: &mut NodeCtx<'_, u8>) {
            self.oneways_got += 1;
        }
    }

    #[test]
    fn departed_address_rpcs_and_oneways_drop_cleanly() {
        // The dangling-`Addr` path under arena storage: RPCs and one-ways
        // to departed (and never-allocated) addresses are dropped and
        // counted — no panic, no index confusion with later spawns.
        let mut eng: Engine<Probe> = Engine::new(SimConfig::seeded(9));
        let victim = eng.spawn_with(|_| Probe {
            rpc_to: 0,
            oneway_to: 0,
            rpc_timeouts: 0,
            rpc_replies: 0,
            oneways_got: 0,
        });
        // Node 1 targets the victim; node 2 targets an address that has
        // never been allocated.
        let prober = eng.spawn_with(|_| Probe {
            rpc_to: victim,
            oneway_to: victim,
            rpc_timeouts: 0,
            rpc_replies: 0,
            oneways_got: 0,
        });
        eng.spawn_with(|_| Probe {
            rpc_to: 999,
            oneway_to: 999,
            rpc_timeouts: 0,
            rpc_replies: 0,
            oneways_got: 0,
        });
        eng.kill(victim);

        // A later spawn must get a fresh address, not the victim's.
        let late = eng.spawn_with(|_| Probe {
            rpc_to: prober,
            oneway_to: prober,
            rpc_timeouts: 0,
            rpc_replies: 0,
            oneways_got: 0,
        });
        assert_eq!(late, 3, "departed addresses are never reallocated");

        eng.run_cycles(3);
        // Both the departed and the unallocated target time out every
        // RPC and swallow every one-way (sends from the first two cycles
        // have been delivered; the third cycle's are still queued).
        assert_eq!(eng.node(prober).unwrap().rpc_replies, 0);
        assert_eq!(eng.node(prober).unwrap().rpc_timeouts, 3);
        assert_eq!(eng.node(2).unwrap().rpc_timeouts, 3);
        assert_eq!(eng.stats().oneways_to_dead, 4, "two senders × two cycles");
        // The fresh node's traffic to a live target flows normally.
        assert_eq!(eng.node(late).unwrap().rpc_replies, 3);
        assert_eq!(eng.node(prober).unwrap().oneways_got, 2);
        // And the victim's address stays dead.
        assert!(!eng.is_alive(victim));
        assert!(eng.node(victim).is_none());
    }

    #[test]
    fn oneway_delivery_is_address_ordered_and_stable() {
        // Messages queued in arbitrary order are drained sorted by
        // destination, preserving arrival order per destination. Observable
        // via delivery counters under a partition that severs one sender.
        let mut eng = build(6, 13);
        eng.run_cycle(); // queue 6 notices to node 0
        eng.run_cycle(); // deliver them
        assert_eq!(eng.node(0).unwrap().oneways_got, 6);
    }

    #[test]
    fn striped_stripe1_is_bit_identical_to_sequential() {
        // The anchor of the striped seed-stream contract: stripe_len = 1
        // must reproduce the sequential engine exactly — same stats, same
        // node states — even under loss and partitions.
        use crate::net::Partition;
        let cfg = |execution| SimConfig {
            seed: 17,
            net: NetworkModel::lossy(0.25).with_partition(Partition::isolate([2, 3])),
            execution,
            ..Default::default()
        };
        let mut seq = build_with(12, cfg(Execution::Sequential));
        let mut striped = build_with(
            12,
            cfg(Execution::Striped {
                workers: 3,
                stripe_len: 1,
            }),
        );
        for _ in 0..20 {
            seq.run_cycle();
            striped.run_cycle();
            assert_eq!(seq.stats(), striped.stats());
        }
        assert_eq!(toy_state(&seq), toy_state(&striped));
    }

    #[test]
    fn striped_runs_are_deterministic() {
        // Same seed + same stripe_len ⇒ bit-identical runs, regardless of
        // how the OS schedules the workers (and of the worker count).
        let run = |workers: usize| {
            let mut eng = build_with(
                24,
                SimConfig {
                    seed: 23,
                    net: NetworkModel::lossy(0.2),
                    execution: Execution::Striped {
                        workers,
                        stripe_len: 4,
                    },
                    ..Default::default()
                },
            );
            eng.run_cycles(15);
            (*eng.stats(), toy_state(&eng))
        };
        assert_eq!(run(4), run(4));
        assert_eq!(run(4), run(2), "worker count is not part of the stream");
    }

    #[test]
    fn same_stripe_targets_are_deterministically_busy() {
        // With one stripe covering everyone, every RPC targets a
        // co-scheduled node and must time out as unreachable — the
        // striped generalization of the mid-turn rule.
        let mut eng = build_with(
            8,
            SimConfig {
                seed: 29,
                execution: Execution::Striped {
                    workers: 4,
                    stripe_len: 8,
                },
                ..Default::default()
            },
        );
        eng.run_cycles(3);
        assert_eq!(eng.stats().rpcs_completed, 0);
        assert_eq!(eng.stats().rpcs_unreachable, 8 * 3);
    }

    #[test]
    fn striped_survives_churn() {
        // Kills between cycles leave holes in the stripe schedule; the
        // gate must pre-complete them and keep delivering turns.
        let mut eng = build_with(
            16,
            SimConfig {
                seed: 31,
                execution: Execution::Striped {
                    workers: 3,
                    stripe_len: 5,
                },
                ..Default::default()
            },
        );
        for killed in [3u32, 7, 11] {
            eng.run_cycle();
            eng.kill(killed);
        }
        eng.run_cycles(2);
        assert_eq!(eng.alive_count(), 13);
        assert!(eng.stats().rpcs_sent > 0);
    }
}

/// Test support: drive protocol handlers without an engine.
pub mod testkit {
    use super::{Addr, Clock, Envelope, NodeCtx};

    /// Runs `f` with a detached [`NodeCtx`] as a node at `self_addr` would
    /// see it at the given `cycle`, and returns `f`'s result together with
    /// any one-way messages the handler emitted as `(to, msg)` pairs.
    ///
    /// This exists for protocol-level unit tests (e.g. feeding crafted
    /// requests straight into an RPC handler); simulations should use
    /// [`super::Engine`].
    pub fn with_node_ctx<M, R>(
        cycle: u64,
        ticks_per_cycle: u64,
        self_addr: Addr,
        f: impl FnOnce(&mut NodeCtx<'_, M>) -> R,
    ) -> (R, Vec<(Addr, M)>) {
        let clock = Clock::new(ticks_per_cycle).starting_at(cycle);
        let mut pending: Vec<Envelope<M>> = Vec::new();
        let mut ctx = NodeCtx {
            pending: &mut pending,
            clock: &clock,
            self_addr,
        };
        let out = f(&mut ctx);
        (out, pending.into_iter().map(|e| (e.to, e.msg)).collect())
    }
}
