//! Engine-level traffic accounting.

/// Counters of message-level events, accumulated over an engine's lifetime.
///
/// Protocol-level byte accounting (descriptor sizes, §VI-A of the paper)
/// lives with the protocol nodes; the engine only counts events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// RPCs initiated.
    pub rpcs_sent: u64,
    /// RPCs that returned a reply to the initiator.
    pub rpcs_completed: u64,
    /// RPCs whose target was dead, mid-turn, or the caller itself.
    pub rpcs_unreachable: u64,
    /// RPC requests lost by the network.
    pub rpcs_request_dropped: u64,
    /// RPC responses lost by the network (the target processed the request).
    pub rpcs_response_dropped: u64,
    /// RPCs the target processed but declined to answer.
    pub rpcs_refused: u64,
    /// RPCs severed by an active partition (never reached the target).
    pub rpcs_severed: u64,
    /// One-way messages queued for delivery.
    pub oneways_sent: u64,
    /// One-way messages delivered to a handler.
    pub oneways_delivered: u64,
    /// One-way messages lost by the network.
    pub oneways_dropped: u64,
    /// One-way messages addressed to dead nodes.
    pub oneways_to_dead: u64,
    /// One-way messages severed by an active partition.
    pub oneways_severed: u64,
}

impl TrafficStats {
    /// Fraction of initiated RPCs that completed with a reply.
    pub fn rpc_success_rate(&self) -> f64 {
        if self.rpcs_sent == 0 {
            return 0.0;
        }
        self.rpcs_completed as f64 / self.rpcs_sent as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate_handles_zero() {
        assert_eq!(TrafficStats::default().rpc_success_rate(), 0.0);
    }

    #[test]
    fn success_rate_ratio() {
        let s = TrafficStats {
            rpcs_sent: 8,
            rpcs_completed: 2,
            ..Default::default()
        };
        assert!((s.rpc_success_rate() - 0.25).abs() < 1e-12);
    }
}
