//! # sc-sim — a cycle-driven P2P simulation engine
//!
//! This crate is the workspace's stand-in for PeerNet/PeerSim, the Java
//! simulator the SecureCyclon paper (ICDCS 2023, §VI) evaluates on. It
//! hosts thousands of protocol nodes, drives them in randomized order once
//! per cycle, and models the network faults the paper's repair mechanisms
//! (§V-A) are designed around.
//!
//! Key pieces:
//!
//! * [`Engine`] — the simulator: arena-backed node storage, randomized
//!   turn order, synchronous multi-round RPC (for tit-for-tat gossip
//!   exchanges), and batched one-way delivery (for proof flooding) at one
//!   hop per cycle, drained in address order.
//! * [`Execution`] — turn scheduling: deterministic sequential (default)
//!   or striped parallel execution with a position-ordered RPC admission
//!   gate (deterministic per `(seed, stripe_len)`; see
//!   [`engine`](crate::engine) docs).
//! * [`Arena`] — index-based node storage: pointer-sized node moves,
//!   O(alive) cycle setup, addresses never reused.
//! * [`SimNode`] — the trait protocol nodes implement (active thread, RPC
//!   server, datagram handler).
//! * [`NetworkModel`] — per-direction message-loss probabilities, plus
//!   deterministic [`Partition`]s with heal support.
//! * [`Churn`] — rate-based join/leave/fail driver.
//! * [`rng`] — deterministic seed derivation so whole experiments replay
//!   from one `u64`.
//!
//! # Example
//!
//! ```
//! use sc_sim::{Engine, SimConfig, SimNode, CycleCtx, NodeCtx, Addr};
//!
//! struct Counter(u64);
//! impl SimNode for Counter {
//!     type Msg = ();
//!     fn on_cycle(&mut self, _ctx: &mut CycleCtx<'_, Self>) { self.0 += 1; }
//!     fn on_rpc(&mut self, _f: Addr, _m: (), _c: &mut NodeCtx<'_, ()>) -> Option<()> { None }
//!     fn on_oneway(&mut self, _f: Addr, _m: (), _c: &mut NodeCtx<'_, ()>) {}
//! }
//!
//! let mut engine = Engine::new(SimConfig::seeded(1));
//! engine.spawn_with(|_| Counter(0));
//! engine.run_cycles(5);
//! assert_eq!(engine.node(0).unwrap().0, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod churn;
pub mod clock;
pub mod engine;
pub mod net;
pub mod rng;
pub mod stats;

pub use arena::Arena;
pub use churn::{Churn, ChurnConfig, ChurnReport};
pub use clock::{Clock, DEFAULT_TICKS_PER_CYCLE};
pub use engine::{
    testkit, Addr, CycleCtx, Engine, Execution, NodeCtx, RpcOutcome, SimConfig, SimNode, TurnDriver,
};
pub use net::{NetworkModel, Partition};
pub use stats::TrafficStats;
