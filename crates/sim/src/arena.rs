//! Arena-style node storage for the engine.
//!
//! The engine hosts up to hundreds of thousands of protocol nodes and
//! moves them in and out of storage constantly — once per turn, plus once
//! per RPC served and once per one-way delivered. [`Arena`] is laid out so
//! all of those moves are pointer-sized, and so per-cycle setup costs
//! O(alive) rather than O(every address ever allocated):
//!
//! * **Struct-of-arrays layout.** Node payloads (`Vec<Option<Box<N>>>`)
//!   and liveness flags (`Vec<bool>`) live in separate parallel arrays,
//!   both indexed by [`Addr`]. Liveness checks — the hot path of every
//!   RPC admission — touch only the densely packed flag array.
//! * **Boxed payloads.** Each node is boxed once at spawn; taking a node
//!   out for its turn (or to serve an RPC) moves 8 bytes, not the node
//!   body, and nothing is reallocated over a node's lifetime.
//! * **Maintained live list.** The set of alive addresses is kept as a
//!   sorted `Vec<Addr>`, compacted lazily after kills, so building a
//!   cycle's turn order is a copy of the live list instead of a scan of
//!   the whole address space.
//! * **Addresses are never reused.** The arena only ever grows; a killed
//!   address stays dead forever, so descriptors pointing at departed
//!   nodes dangle — exactly as in a real overlay (and as the protocol's
//!   aliveness rules assume).

use crate::engine::Addr;

/// Index-based node storage: monotonically allocated addresses, O(1)
/// liveness checks, pointer-sized node moves. See the module docs for the
/// layout rationale.
#[derive(Debug)]
pub struct Arena<N> {
    /// Node payloads by address. `None` means departed *or* temporarily
    /// checked out (mid-turn / serving a handler).
    nodes: Vec<Option<Box<N>>>,
    /// Liveness flags by address. A checked-out node stays `true`; only
    /// [`Arena::kill`] clears the flag.
    alive: Vec<bool>,
    /// Alive addresses in ascending order; may contain stale (killed)
    /// entries until the next [`Arena::live_addrs`] compaction.
    live: Vec<Addr>,
    /// Whether `live` contains stale entries.
    live_dirty: bool,
    /// Number of alive addresses (exact, maintained eagerly).
    n_alive: usize,
}

impl<N> Default for Arena<N> {
    fn default() -> Self {
        Arena {
            nodes: Vec::new(),
            alive: Vec::new(),
            live: Vec::new(),
            live_dirty: false,
            n_alive: 0,
        }
    }
}

impl<N> Arena<N> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next address and stores the node `make` builds for it.
    /// Addresses are handed out in ascending order and never reused.
    pub fn insert_with(&mut self, make: impl FnOnce(Addr) -> N) -> Addr {
        let addr = self.nodes.len() as Addr;
        let node = Box::new(make(addr));
        self.nodes.push(Some(node));
        self.alive.push(true);
        self.live.push(addr);
        self.n_alive += 1;
        addr
    }

    /// Kills the node at `addr` (crash / departure). The address is
    /// retired permanently; later messages to it dangle. Killing a dead
    /// or never-allocated address is a no-op.
    pub fn kill(&mut self, addr: Addr) {
        let i = addr as usize;
        if let Some(flag) = self.alive.get_mut(i) {
            if *flag {
                *flag = false;
                self.nodes[i] = None;
                self.n_alive -= 1;
                self.live_dirty = true;
            }
        }
    }

    /// Whether `addr` is alive (killed and never-allocated addresses are
    /// both dead). A node temporarily checked out for its turn is still
    /// alive.
    pub fn is_alive(&self, addr: Addr) -> bool {
        self.alive.get(addr as usize).copied().unwrap_or(false)
    }

    /// Number of alive nodes. O(1).
    pub fn alive_count(&self) -> usize {
        self.n_alive
    }

    /// Total number of addresses ever allocated (alive or dead).
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Borrows the node at `addr`, if alive and not checked out.
    pub fn get(&self, addr: Addr) -> Option<&N> {
        let i = addr as usize;
        if self.alive.get(i).copied().unwrap_or(false) {
            self.nodes[i].as_deref()
        } else {
            None
        }
    }

    /// Mutably borrows the node at `addr`, if alive and not checked out.
    pub fn get_mut(&mut self, addr: Addr) -> Option<&mut N> {
        let i = addr as usize;
        if self.alive.get(i).copied().unwrap_or(false) {
            self.nodes[i].as_deref_mut()
        } else {
            None
        }
    }

    /// Checks the node at `addr` out of the arena (for its turn, or to run
    /// a handler). Returns `None` if the address is dead or the node is
    /// already checked out. The address stays alive; pair with
    /// [`Arena::put_back`].
    pub fn take(&mut self, addr: Addr) -> Option<Box<N>> {
        let i = addr as usize;
        if self.alive.get(i).copied().unwrap_or(false) {
            self.nodes[i].take()
        } else {
            None
        }
    }

    /// Returns a checked-out node to its slot.
    ///
    /// If the address was killed while the node was out, the returned node
    /// is dropped (the kill wins — the address stays dead).
    pub fn put_back(&mut self, addr: Addr, node: Box<N>) {
        let i = addr as usize;
        if self.alive.get(i).copied().unwrap_or(false) {
            debug_assert!(self.nodes[i].is_none(), "slot re-filled while node out");
            self.nodes[i] = Some(node);
        }
    }

    /// The alive addresses in ascending order. Compacts the maintained
    /// live list if kills happened since the last call; O(alive) then,
    /// O(1) otherwise.
    pub fn live_addrs(&mut self) -> &[Addr] {
        if self.live_dirty {
            let alive = &self.alive;
            self.live.retain(|&a| alive[a as usize]);
            self.live_dirty = false;
        }
        &self.live
    }

    /// Iterates over `(addr, node)` for all alive, checked-in nodes in
    /// ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &N)> {
        self.nodes.iter().enumerate().filter_map(move |(i, slot)| {
            if self.alive[i] {
                slot.as_deref().map(|n| (i as Addr, n))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_ascend_and_never_recycle() {
        let mut a: Arena<u32> = Arena::new();
        let x = a.insert_with(|_| 10);
        let y = a.insert_with(|_| 20);
        assert_eq!((x, y), (0, 1));
        a.kill(x);
        let z = a.insert_with(|_| 30);
        assert_eq!(z, 2, "killed address must not be recycled");
        assert!(!a.is_alive(x));
        assert_eq!(a.capacity(), 3);
        assert_eq!(a.alive_count(), 2);
    }

    #[test]
    fn live_list_compacts_lazily() {
        let mut a: Arena<u32> = Arena::new();
        for i in 0..5 {
            a.insert_with(|_| i);
        }
        a.kill(1);
        a.kill(3);
        assert_eq!(a.live_addrs(), &[0, 2, 4]);
        // A second call takes the clean path and agrees.
        assert_eq!(a.live_addrs(), &[0, 2, 4]);
        a.insert_with(|_| 9);
        assert_eq!(a.live_addrs(), &[0, 2, 4, 5]);
    }

    #[test]
    fn take_put_back_round_trips() {
        let mut a: Arena<String> = Arena::new();
        let addr = a.insert_with(|ad| format!("node-{ad}"));
        let node = a.take(addr).expect("alive node can be taken");
        assert!(a.get(addr).is_none(), "checked out");
        assert!(a.is_alive(addr), "still alive while out");
        assert!(a.take(addr).is_none(), "double take fails");
        a.put_back(addr, node);
        assert_eq!(a.get(addr).unwrap(), "node-0");
    }

    #[test]
    fn kill_while_checked_out_wins() {
        let mut a: Arena<u32> = Arena::new();
        let addr = a.insert_with(|_| 7);
        let node = a.take(addr).unwrap();
        a.kill(addr);
        a.put_back(addr, node);
        assert!(!a.is_alive(addr));
        assert!(a.get(addr).is_none());
        assert_eq!(a.alive_count(), 0);
    }

    #[test]
    fn dead_and_unallocated_addresses_are_inert() {
        let mut a: Arena<u32> = Arena::new();
        let addr = a.insert_with(|_| 1);
        a.kill(addr);
        a.kill(addr); // double kill: no-op
        a.kill(99); // never allocated: no-op
        assert_eq!(a.alive_count(), 0);
        assert!(a.get(99).is_none());
        assert!(a.get_mut(99).is_none());
        assert!(a.take(99).is_none());
        assert!(!a.is_alive(99));
    }

    #[test]
    fn iter_skips_dead_and_checked_out() {
        let mut a: Arena<u32> = Arena::new();
        for i in 0..4 {
            a.insert_with(|_| i * 10);
        }
        a.kill(1);
        let _out = a.take(2).unwrap();
        let seen: Vec<_> = a.iter().map(|(ad, v)| (ad, *v)).collect();
        assert_eq!(seen, vec![(0, 0), (3, 30)]);
    }
}
