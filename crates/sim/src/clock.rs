//! Simulated time.
//!
//! The paper measures everything in *cycles*: "a cycle corresponds to the
//! period during which a node is allowed to initialize exactly one gossip
//! exchange" (§II-A). Within a cycle, the clock exposes a finer-grained
//! *tick* resolution so that descriptor timestamps can carry per-node
//! phase offsets and the frequency check (§IV-B) has something meaningful
//! to compare. By default one cycle is [`DEFAULT_TICKS_PER_CYCLE`] ticks.

/// Default tick resolution of a gossip cycle.
pub const DEFAULT_TICKS_PER_CYCLE: u64 = 1000;

/// The simulation clock: a cycle counter plus a tick resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Clock {
    cycle: u64,
    ticks_per_cycle: u64,
}

impl Default for Clock {
    fn default() -> Self {
        Self::new(DEFAULT_TICKS_PER_CYCLE)
    }
}

impl Clock {
    /// Creates a clock at cycle 0 with the given tick resolution.
    ///
    /// # Panics
    ///
    /// Panics if `ticks_per_cycle` is zero.
    pub fn new(ticks_per_cycle: u64) -> Self {
        assert!(ticks_per_cycle > 0, "ticks_per_cycle must be positive");
        Clock {
            cycle: 0,
            ticks_per_cycle,
        }
    }

    /// Returns the clock advanced to start at `cycle` instead of 0.
    ///
    /// Used by experiments whose bootstrap hands out descriptors with
    /// timestamps in cycles `0..cycle`, so that live traffic never collides
    /// with bootstrap timestamps.
    pub fn starting_at(mut self, cycle: u64) -> Self {
        self.cycle = cycle;
        self
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Tick resolution of one cycle (the "gossip period" in ticks).
    pub fn ticks_per_cycle(&self) -> u64 {
        self.ticks_per_cycle
    }

    /// The tick at which the current cycle starts.
    pub fn now(&self) -> u64 {
        self.cycle * self.ticks_per_cycle
    }

    /// Advances the clock by one cycle.
    pub fn advance(&mut self) {
        self.cycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = Clock::new(100);
        assert_eq!(c.cycle(), 0);
        assert_eq!(c.now(), 0);
        c.advance();
        c.advance();
        assert_eq!(c.cycle(), 2);
        assert_eq!(c.now(), 200);
    }

    #[test]
    fn default_resolution() {
        assert_eq!(Clock::default().ticks_per_cycle(), DEFAULT_TICKS_PER_CYCLE);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resolution_rejected() {
        Clock::new(0);
    }
}
