//! Property tests for the arena slab and the engine's delivery semantics
//! under random churn — the contracts every protocol invariant upstream
//! leans on:
//!
//! * addresses are monotone and never reused after a departure;
//! * RPCs to departed addresses are dropped (the caller times out);
//! * batched one-way delivery is exactly "next cycle, one hop": a
//!   datagram sent in cycle `c` arrives in cycle `c + 1` iff its target
//!   is alive then, and never arrives twice.

use proptest::prelude::*;
use sc_sim::{Addr, Arena, CycleCtx, Engine, NodeCtx, RpcOutcome, SimConfig, SimNode};
use std::collections::HashSet;

// ---------------------------------------------------------------------
// Arena slab: address allocation under arbitrary insert/kill sequences.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaved inserts and kills, mirrored against a reference set:
    /// every address handed out is brand new, kills are terminal, and
    /// the alive census matches the model exactly.
    #[test]
    fn addresses_are_never_reused(ops in proptest::collection::vec((0u8..4, 0u64..64), 1..80)) {
        let mut arena: Arena<u64> = Arena::new();
        let mut issued: Vec<Addr> = Vec::new();
        let mut alive: HashSet<Addr> = HashSet::new();
        for (op, pick) in ops {
            if op == 0 || issued.is_empty() {
                let addr = arena.insert_with(u64::from);
                prop_assert!(
                    !issued.contains(&addr),
                    "address {addr} was issued twice"
                );
                prop_assert!(
                    issued.iter().all(|&prev| prev < addr),
                    "addresses must be monotone"
                );
                issued.push(addr);
                alive.insert(addr);
            } else {
                // Kill some previously issued address — possibly one
                // that is already dead (kill must be idempotent).
                let addr = issued[(pick % issued.len() as u64) as usize];
                arena.kill(addr);
                alive.remove(&addr);
            }
            prop_assert_eq!(arena.alive_count(), alive.len());
            prop_assert_eq!(arena.capacity(), issued.len());
            for &a in &issued {
                prop_assert_eq!(arena.is_alive(a), alive.contains(&a));
                prop_assert_eq!(arena.get(a).is_some(), alive.contains(&a));
            }
        }
        // The live list agrees with the model, in address order.
        let mut expect: Vec<Addr> = alive.iter().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(arena.live_addrs().to_vec(), expect);
    }
}

// ---------------------------------------------------------------------
// Delivery semantics through the engine.
// ---------------------------------------------------------------------

/// A node that follows a per-cycle script: RPC some target, send a
/// one-way datagram to another, and log everything it receives.
struct Courier {
    addr: Addr,
    /// Nodes ever spawned (targets are drawn modulo this).
    universe: u64,
    /// Per-cycle salt stream shared by the whole network.
    salts: Vec<u64>,
    rpc_timeouts: Vec<(Addr, u64)>,
    rpc_replies: Vec<(Addr, u64)>,
    /// (from, sent_cycle, arrived_cycle) for every datagram received.
    got: Vec<(Addr, u64, u64)>,
}

#[derive(Clone)]
enum CourierMsg {
    Ping,
    Pong,
    /// (sender, cycle it was sent in)
    Post(Addr, u64),
}

impl Courier {
    fn rpc_target(&self, cycle: u64) -> Addr {
        let salt = self.salts[cycle as usize % self.salts.len()];
        ((u64::from(self.addr) * 31 + cycle * 17 + salt) % self.universe) as Addr
    }

    fn post_target(&self, cycle: u64) -> Addr {
        let salt = self.salts[cycle as usize % self.salts.len()];
        ((u64::from(self.addr) * 13 + cycle * 7 + salt) % self.universe) as Addr
    }
}

impl SimNode for Courier {
    type Msg = CourierMsg;

    fn on_cycle(&mut self, ctx: &mut CycleCtx<'_, Self>) {
        let cycle = ctx.cycle();
        let rpc_to = self.rpc_target(cycle);
        match ctx.rpc(rpc_to, CourierMsg::Ping) {
            RpcOutcome::Reply(_) => self.rpc_replies.push((rpc_to, cycle)),
            RpcOutcome::Timeout => self.rpc_timeouts.push((rpc_to, cycle)),
        }
        let post_to = self.post_target(cycle);
        ctx.send(post_to, CourierMsg::Post(self.addr, cycle));
    }

    fn on_rpc(
        &mut self,
        _from: Addr,
        msg: Self::Msg,
        _ctx: &mut NodeCtx<'_, Self::Msg>,
    ) -> Option<Self::Msg> {
        match msg {
            CourierMsg::Ping => Some(CourierMsg::Pong),
            _ => None,
        }
    }

    fn on_oneway(&mut self, from: Addr, msg: Self::Msg, ctx: &mut NodeCtx<'_, Self::Msg>) {
        if let CourierMsg::Post(sender, sent) = msg {
            assert_eq!(sender, from);
            self.got.push((from, sent, ctx.cycle()));
        }
    }
}

fn build_couriers(n: u64, seed: u64, salts: Vec<u64>) -> Engine<Courier> {
    let mut eng = Engine::new(SimConfig::seeded(seed));
    for _ in 0..n {
        let salts = salts.clone();
        eng.spawn_with(|addr| Courier {
            addr,
            universe: n,
            salts,
            rpc_timeouts: Vec::new(),
            rpc_replies: Vec::new(),
            got: Vec::new(),
        });
    }
    eng
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random kill schedule between cycles. RPCs addressed to departed
    /// nodes must time out — never reach a handler — and RPCs to alive
    /// nodes must complete.
    #[test]
    fn rpcs_to_departed_addresses_are_dropped(
        n in 4u64..16,
        seed in 0u64..1_000,
        salts in proptest::collection::vec(0u64..1_000_000, 1..6),
        kills in proptest::collection::vec((0u64..8, 0u64..16), 0..10),
    ) {
        let mut eng = build_couriers(n, seed, salts);
        // alive_at[c] = nodes alive during cycle c's turns.
        let mut alive_at: Vec<HashSet<Addr>> = Vec::new();
        for cycle in 0..8u64 {
            for &(at, victim) in &kills {
                // Never kill everyone; keep at least two alive.
                if at == cycle && eng.alive_count() > 2 {
                    eng.kill((victim % n) as Addr);
                }
            }
            alive_at.push((0..n as Addr).filter(|&a| eng.is_alive(a)).collect());
            eng.run_cycle();
        }
        for (addr, node) in eng.nodes() {
            for &(t, c) in &node.rpc_timeouts {
                // A timeout is legal only against a target departed by
                // that cycle, or oneself (self-RPC errors by contract).
                prop_assert!(
                    !alive_at[c as usize].contains(&t) || t == addr,
                    "node {addr} timed out against live target {t} in cycle {c}"
                );
            }
            for &(t, c) in &node.rpc_replies {
                prop_assert!(
                    alive_at[c as usize].contains(&t),
                    "node {addr} got a reply from {t} in cycle {c}, after its departure"
                );
            }
        }
        let total_replies: usize = eng.nodes().map(|(_, c)| c.rpc_replies.len()).sum();
        prop_assert!(total_replies > 0, "healthy traffic must exist");
    }

    /// One-way datagrams are batched and delivered exactly one cycle
    /// later, iff the target is still alive at delivery time; nothing is
    /// delivered twice, dropped messages stay dropped.
    #[test]
    fn oneway_delivery_is_exactly_next_cycle(
        n in 4u64..16,
        seed in 0u64..1_000,
        salts in proptest::collection::vec(0u64..1_000_000, 1..6),
        kills in proptest::collection::vec((1u64..8, 0u64..16), 0..8),
    ) {
        let cycles = 8u64;
        let mut eng = build_couriers(n, seed, salts.clone());
        // alive_at[c] = set of nodes alive during cycle c's turns.
        let mut alive_at: Vec<HashSet<Addr>> = Vec::new();
        for cycle in 0..cycles {
            for &(at, victim) in &kills {
                if at == cycle && eng.alive_count() > 2 {
                    eng.kill((victim % n) as Addr);
                }
            }
            alive_at.push((0..n as Addr).filter(|&a| eng.is_alive(a)).collect());
            eng.run_cycle();
        }

        // Reference model of every send: (sender, target, sent_cycle).
        let model = |addr: Addr, cycle: u64| -> Addr {
            let salt = salts[cycle as usize % salts.len()];
            ((u64::from(addr) * 13 + cycle * 7 + salt) % n) as Addr
        };
        let mut expected: Vec<(Addr, Addr, u64)> = Vec::new(); // (target, sender, sent)
        for (c, alive) in alive_at.iter().enumerate() {
            let c = c as u64;
            if c + 1 >= cycles {
                continue; // sent in the last cycle: never delivered
            }
            for &sender in alive {
                let target = model(sender, c);
                if alive_at[(c + 1) as usize].contains(&target) {
                    expected.push((target, sender, c));
                }
            }
        }

        let mut received: Vec<(Addr, Addr, u64)> = Vec::new();
        for (addr, node) in eng.nodes() {
            for &(from, sent, arrived) in &node.got {
                prop_assert_eq!(
                    arrived, sent + 1,
                    "datagram from {} to {} sent in cycle {} arrived in {}",
                    from, addr, sent, arrived
                );
                received.push((addr, from, sent));
            }
        }
        // Survivors' logs must match the model exactly (receivers killed
        // later can't testify; restrict the model to them).
        let survivors: HashSet<Addr> = eng.nodes().map(|(a, _)| a).collect();
        let mut expected: Vec<_> = expected
            .into_iter()
            .filter(|(t, _, _)| survivors.contains(t))
            .collect();
        expected.sort_unstable();
        received.sort_unstable();
        prop_assert_eq!(received, expected);
    }
}
