//! # sc-testkit — deterministic adversarial scenario harness
//!
//! The paper's evaluation (§VI) and its security argument (§IV–V) only
//! hold *under adversity*: churn, asymmetric message loss, partitions,
//! and Byzantine fractions. This crate turns each of those claims into a
//! reproducible, seed-replayable test, FoundationDB-style:
//!
//! * [`net`] — the mixed honest/malicious network builder (moved here
//!   from `sc-attacks` so adversaries, experiments, and scenarios all run
//!   on the one real `sc-sim` engine), plus sponsored joins for churn and
//!   the metric helpers behind the paper's figures.
//! * [`scenario`] — the declarative [`Scenario`] builder composing loss,
//!   [partitions and heal events](sc_sim::Partition), churn windows,
//!   catastrophic failures, and `sc-attacks` adversaries.
//! * [`oracles`] — protocol invariants checked every cycle (unique live
//!   ownership, bounded in-degree, blacklist monotonicity + no false
//!   accusations, view conservation) and at run end (post-heal
//!   convergence, eventual adversary detection). The first violation
//!   reports scenario, seed, and cycle, and prints the one-command
//!   replay.
//! * [`snapshot`] — the uniform state shape the oracles check, producible
//!   from a simulated engine *or* from live `sc-node` control-socket
//!   scrapes, so real processes are held to the same invariants.
//! * [`harness`] — spawns, scrapes, churns, and stops fleets of real
//!   `sc-node` processes on 127.0.0.1 for the loopback test tier.
//! * [`live`] — shared drivers for the live test tiers (`loopback`,
//!   `live_matrix`): the scrape-audit loop, the quiescent final checks,
//!   and the `SC_NODE_SEED` replay-line convention.
//! * [`runner`] — deterministic execution of a `(Scenario, seed)` pair,
//!   including `kill -9`-style crash-restarts of durably backed nodes.
//! * [`catalog`] — the standard 42-combination scenario matrix swept by
//!   `tests/scenario_matrix.rs`, with a `quick` sizing for CI. Every
//!   scenario carries the redemption-cache bound and §VI-A byte-budget
//!   oracles.
//!
//! # Example
//!
//! ```
//! use sc_testkit::{run_scenario, AdversaryKind, Scenario};
//!
//! let scenario = Scenario::new("doc-hub", 48)
//!     .cycles(40)
//!     .adversary(4, AdversaryKind::Hub, 5)
//!     .oracles(sc_testkit::OracleConfig {
//!         expect_detection: Some(0.9),
//!         final_connectivity: Some(1.0),
//!         ..Default::default()
//!     });
//! let summary = run_scenario(&scenario, 1).expect("oracles hold");
//! assert!(summary.proofs.0 > 0, "cloning was proven");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod harness;
pub mod live;
pub mod net;
pub mod oracles;
pub mod runner;
pub mod scenario;
pub mod snapshot;

pub use catalog::{standard_matrix, MatrixSize, MATRIX_SEEDS};
pub use harness::{ClusterConfig, ProcessCluster};
pub use live::{check_final, drive, env_seed, replay_line, RunOutcome};
pub use net::{
    blacklist_coverage, build_secure_network, eclipsed_fraction, malicious_link_fraction,
    ns_link_fraction, proofs_generated, SecureNet, SecureNetParams, SecureNetwork,
};
pub use oracles::{largest_component, largest_honest_component, OracleSuite, Violation};
pub use runner::{
    check_batched_intake_equivalence, run_scenario, run_scenario_with_net, state_fingerprint,
    RunSummary,
};
pub use scenario::{AdversaryKind, ChurnWindow, Event, OracleConfig, Scenario};
pub use snapshot::{NetSnapshot, NodeSnapshot};
