//! Uniform network snapshots: one state shape for simulated engines and
//! live daemon clusters.
//!
//! The invariant oracles in [`crate::oracles`] are predicates over
//! "every honest node's protocol-visible state". That state exists in two
//! places: inside an [`Engine`](sc_sim::Engine) during a simulated run,
//! and behind the control sockets of real `sc-node` processes during a
//! loopback run. A [`NetSnapshot`] is the common denominator — the
//! oracles check snapshots, and both worlds know how to produce one
//! ([`NetSnapshot::from_network`] and [`NetSnapshot::from_reports`]), so
//! a live cluster is held to *exactly* the invariants the simulator is.
//!
//! One caveat is inherent to live clusters: scraping n processes is not
//! atomic, so a descriptor in flight between two scrape instants can
//! appear twice (sender scraped after handing it over, receiver after
//! accepting it). Per-node oracles (view invariants, blacklist
//! monotonicity) are sound on torn snapshots — each process serves its
//! report at a turn boundary — but cross-node oracles (unique ownership,
//! in-degree, connectivity) should run on quiescent snapshots, which is
//! what the daemon's `--stop-cycle` linger mode provides.

use crate::net::SecureNetwork;
use sc_core::{SecureDescriptor, SecureStats};
use sc_crypto::NodeId;
use sc_node::StatusReport;
use sc_sim::Addr;
use std::collections::HashSet;

/// One honest node's protocol-visible state at a point in time.
#[derive(Clone, Debug)]
pub struct NodeSnapshot {
    /// Protocol address.
    pub addr: Addr,
    /// Node identity.
    pub id: NodeId,
    /// View entries with their non-swappable flags.
    pub view: Vec<(SecureDescriptor, bool)>,
    /// Owned descriptors parked in the reserve.
    pub reserve: Vec<SecureDescriptor>,
    /// Blacklisted culprits.
    pub blacklist: Vec<NodeId>,
    /// Redemption-cache entry count (the §V-C cache the bound oracle
    /// audits).
    pub redemptions: usize,
    /// Protocol counters.
    pub stats: SecureStats,
}

impl From<StatusReport> for NodeSnapshot {
    fn from(r: StatusReport) -> NodeSnapshot {
        NodeSnapshot {
            addr: r.addr,
            id: r.id,
            view: r.view,
            reserve: r.reserve,
            blacklist: r.blacklist,
            redemptions: r.redemptions,
            stats: r.stats,
        }
    }
}

/// The honest population's state at one instant, plus who the known
/// adversaries are (empty for all-honest live clusters).
#[derive(Clone, Debug, Default)]
pub struct NetSnapshot {
    /// Cycle the snapshot describes.
    pub cycle: u64,
    /// Honest nodes only — malicious nodes expose no trustworthy state.
    pub nodes: Vec<NodeSnapshot>,
    /// Identities of the malicious population.
    pub malicious_ids: HashSet<NodeId>,
}

impl NetSnapshot {
    /// Snapshots a simulated network's honest population.
    pub fn from_network(net: &SecureNetwork) -> NetSnapshot {
        let nodes = net
            .engine
            .nodes()
            .filter_map(|(addr, node)| {
                let h = node.honest()?;
                Some(NodeSnapshot {
                    addr,
                    id: h.id(),
                    view: h
                        .view()
                        .iter()
                        .map(|e| (e.desc.clone(), e.non_swappable))
                        .collect(),
                    reserve: h.reserve().cloned().collect(),
                    blacklist: h.blacklist().culprits().copied().collect(),
                    redemptions: h.redemption_count(),
                    stats: h.stats(),
                })
            })
            .collect();
        NetSnapshot {
            cycle: net.engine.cycle(),
            nodes,
            malicious_ids: net.malicious_ids.clone(),
        }
    }

    /// Assembles a snapshot from live daemons' control-socket reports.
    /// The snapshot's cycle is the newest cycle any daemon reported.
    pub fn from_reports(reports: impl IntoIterator<Item = StatusReport>) -> NetSnapshot {
        let reports: Vec<StatusReport> = reports.into_iter().collect();
        let cycle = reports.iter().map(|r| r.cycle).max().unwrap_or(0);
        NetSnapshot {
            cycle,
            nodes: reports.into_iter().map(NodeSnapshot::from).collect(),
            malicious_ids: HashSet::new(),
        }
    }

    /// Total violation proofs honest nodes generated `(cloning, frequency)`.
    pub fn proofs_generated(&self) -> (u64, u64) {
        self.nodes.iter().fold((0, 0), |(c, f), n| {
            (
                c + n.stats.proofs_generated_cloning,
                f + n.stats.proofs_generated_frequency,
            )
        })
    }

    /// Average fraction of the malicious population each honest node has
    /// blacklisted.
    pub fn blacklist_coverage(&self) -> f64 {
        if self.malicious_ids.is_empty() || self.nodes.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .nodes
            .iter()
            .map(|n| {
                let known = n
                    .blacklist
                    .iter()
                    .filter(|id| self.malicious_ids.contains(id))
                    .count();
                known as f64 / self.malicious_ids.len() as f64
            })
            .sum();
        sum / self.nodes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{build_secure_network, SecureNetParams};
    use sc_attacks::SecureAttack;

    fn small_params(n: usize, n_malicious: usize) -> SecureNetParams {
        let mut p = SecureNetParams::new(n, n_malicious, SecureAttack::None);
        p.cfg = p.cfg.with_view_len(6).with_swap_len(3);
        p
    }

    #[test]
    fn engine_snapshot_mirrors_node_state() {
        let mut net = build_secure_network(small_params(12, 3));
        for _ in 0..5 {
            net.engine.run_cycle();
        }
        let snap = NetSnapshot::from_network(&net);
        assert_eq!(snap.cycle, net.engine.cycle());
        assert_eq!(snap.nodes.len(), 9, "honest nodes only");
        assert_eq!(snap.malicious_ids.len(), 3);
        for node in &snap.nodes {
            let h = net.engine.node(node.addr).unwrap().honest().unwrap();
            assert_eq!(node.id, h.id());
            assert_eq!(node.view.len(), h.view().len());
            assert_eq!(node.stats, h.stats());
        }
    }
}
