//! Mixed honest/malicious SecureCyclon networks on the real simulation
//! engine: node enum, builder, sponsored joins, and the measurement
//! helpers behind every attack figure.
//!
//! This module used to live in `sc-attacks` (as its `net` module, easily
//! confused with `sc-sim`'s fault model of the same name). It moved here
//! so that attack strategies, fault scenarios, and invariant oracles all
//! drive one engine path — `sc-attacks` now contains only the adversary
//! implementations themselves.

use rand::seq::SliceRandom;
use sc_attacks::{MaliciousSecureNode, SecureAttack, SecureParty};
use sc_core::{
    default_phase, ring_bootstrap, MemoryBackend, SecureConfig, SecureCyclonNode, SecureMsg,
};
use sc_crypto::{Keypair, NodeId, Scheme};
use sc_sim::{Addr, CycleCtx, Engine, Execution, NetworkModel, NodeCtx, SimConfig, SimNode};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// A node in a mixed SecureCyclon network.
#[derive(Debug)]
pub enum SecureNet {
    /// A correct node running the full protocol.
    Honest(Box<SecureCyclonNode>),
    /// A colluding malicious node.
    Malicious(Box<MaliciousSecureNode>),
}

impl SecureNet {
    /// Whether the node is malicious.
    pub fn is_malicious(&self) -> bool {
        matches!(self, SecureNet::Malicious(_))
    }

    /// The honest node, if honest.
    pub fn honest(&self) -> Option<&SecureCyclonNode> {
        match self {
            SecureNet::Honest(n) => Some(n),
            SecureNet::Malicious(_) => None,
        }
    }
}

impl SimNode for SecureNet {
    type Msg = SecureMsg;

    fn on_cycle(&mut self, ctx: &mut CycleCtx<'_, Self>) {
        match self {
            SecureNet::Honest(n) => n.on_cycle_any(ctx),
            SecureNet::Malicious(n) => n.on_cycle_any(ctx),
        }
    }

    fn on_rpc(
        &mut self,
        from: Addr,
        msg: Self::Msg,
        ctx: &mut NodeCtx<'_, Self::Msg>,
    ) -> Option<Self::Msg> {
        match self {
            SecureNet::Honest(n) => n.on_rpc_any(from, msg, ctx),
            SecureNet::Malicious(n) => n.on_rpc_any(from, msg, ctx),
        }
    }

    fn on_oneway(&mut self, from: Addr, msg: Self::Msg, ctx: &mut NodeCtx<'_, Self::Msg>) {
        if let SecureNet::Honest(n) = self {
            n.on_oneway_any(from, msg, ctx);
        }
        // Malicious nodes drop proofs.
    }
}

/// Parameters for building a mixed network.
#[derive(Clone, Debug)]
pub struct SecureNetParams {
    /// Total nodes.
    pub n: usize,
    /// Malicious nodes among them.
    pub n_malicious: usize,
    /// Protocol configuration for honest nodes (malicious copy ℓ, s, and
    /// the tit-for-tat flag from it).
    pub cfg: SecureConfig,
    /// The attack strategy.
    pub attack: SecureAttack,
    /// Cycle at which malicious nodes start deviating.
    pub attack_start: u64,
    /// Master seed.
    pub seed: u64,
    /// Signature scheme for all identities.
    pub scheme: Scheme,
    /// Message-loss model.
    pub net: NetworkModel,
    /// Turn-scheduling mode of the engine. Striped execution is only
    /// deterministic for nodes whose mutable state is engine-contained,
    /// so keep the default ([`Execution::Sequential`]) whenever the
    /// network hosts malicious nodes — they mutate the shared party
    /// ledger outside the engine's striping contract.
    pub execution: Execution,
    /// Attach an in-memory durable [`sc_core::StateBackend`] to every
    /// honest node, enabling [`SecureNetwork::crash_restart`].
    pub durable: bool,
}

impl SecureNetParams {
    /// A reliable-network parameter set with the paper's defaults.
    pub fn new(n: usize, n_malicious: usize, attack: SecureAttack) -> Self {
        SecureNetParams {
            n,
            n_malicious,
            cfg: SecureConfig::default(),
            attack,
            attack_start: 50,
            seed: 0,
            scheme: Scheme::KeyedHash,
            net: NetworkModel::reliable(),
            execution: Execution::Sequential,
            durable: false,
        }
    }
}

/// Handle to a built mixed network.
pub struct SecureNetwork {
    /// The simulation engine.
    pub engine: Engine<SecureNet>,
    /// IDs of malicious nodes.
    pub malicious_ids: HashSet<NodeId>,
    /// Addresses of malicious nodes.
    pub malicious_addrs: HashSet<Addr>,
    /// The shared party state.
    pub party: Arc<Mutex<SecureParty>>,
    /// Protocol configuration honest nodes were built with (joiners reuse
    /// it).
    pub cfg: SecureConfig,
    /// Signature scheme all identities use.
    pub scheme: Scheme,
    /// Master seed the network was derived from.
    pub seed: u64,
    /// Number of joiners spawned so far (joiner key derivation counter).
    joiners: u64,
    /// Whether honest nodes carry durable backends.
    durable: bool,
    /// Keypair and timestamp phase of every honest node, kept so a
    /// crash-restart can rebuild the same identity around the survived
    /// backend.
    honest_keys: HashMap<Addr, (Keypair, u64)>,
    /// Crash-restarts performed so far (replacement-RNG derivation
    /// counter).
    restarts: u64,
}

impl SecureNetwork {
    /// Spawns a fresh honest node and bootstraps it through a legal
    /// sponsorship (§V-A): `sponsor` — an alive honest node — spends its
    /// current cycle's fresh-descriptor budget on a descriptor transferred
    /// to the joiner, and hands over its stored violation proofs so the
    /// newcomer knows the already-discovered violators. Returns the new
    /// address, or `None` if the sponsor is unavailable or already spent
    /// this cycle's budget.
    pub fn join_via(&mut self, sponsor: Addr) -> Option<Addr> {
        let cycle = self.engine.cycle();
        let now = self.engine.clock().now();
        let keypair = Keypair::from_seed(
            self.scheme,
            sc_sim::rng::derive_seed(self.seed, "joiner", self.joiners),
        );
        let rng_seed = sc_sim::rng::derive_seed(self.seed, "joiner-rng", self.joiners);
        let joiner_id = keypair.public();

        let Some(SecureNet::Honest(sponsor_node)) = self.engine.node_mut(sponsor) else {
            return None;
        };
        let desc = sponsor_node.sponsor_join(joiner_id, cycle, now)?;
        let proofs = sponsor_node.export_proofs();

        self.joiners += 1;
        let phase = default_phase(self.joiners as usize, self.cfg.ticks_per_cycle);
        let cfg = self.cfg;
        let durable = self.durable;
        let addr = self.engine.spawn_with(|addr| {
            let mut node = new_honest_node(keypair.clone(), addr, cfg, rng_seed, phase, durable);
            node.accept_bootstrap(desc);
            node.import_proofs(proofs, cycle);
            SecureNet::Honest(Box::new(node))
        });
        self.honest_keys.insert(addr, (keypair, phase));
        Some(addr)
    }

    /// Like [`SecureNetwork::join_via`], trying alive honest sponsors in
    /// the order produced by `candidates` until one accepts.
    pub fn join_via_any(&mut self, candidates: impl IntoIterator<Item = Addr>) -> Option<Addr> {
        for sponsor in candidates {
            if let Some(addr) = self.join_via(sponsor) {
                return Some(addr);
            }
        }
        None
    }

    /// Reintroduces an *existing* honest node through a sponsorship
    /// (§V-A bootstrap applied to rejoin): `sponsor` spends its cycle's
    /// fresh-descriptor budget on a descriptor transferred to `node`,
    /// giving the pair a live link again. This is the protocol-level
    /// equivalent of a bootstrap-server reconnect after a partition that
    /// outlived the descriptor lifetime — once a few such links exist,
    /// ordinary gossip re-knits the segments. Returns whether the
    /// descriptor was minted *and* kept.
    pub fn reintroduce(&mut self, node: Addr, sponsor: Addr) -> bool {
        if node == sponsor {
            return false;
        }
        let cycle = self.engine.cycle();
        let now = self.engine.clock().now();
        let Some(SecureNet::Honest(target)) = self.engine.node(node) else {
            return false;
        };
        let target_id = target.id();
        let Some(SecureNet::Honest(sponsor_node)) = self.engine.node_mut(sponsor) else {
            return false;
        };
        let Some(desc) = sponsor_node.sponsor_join(target_id, cycle, now) else {
            return false;
        };
        let Some(SecureNet::Honest(target)) = self.engine.node_mut(node) else {
            return false;
        };
        target.accept_sponsorship(desc, cycle)
    }

    /// `kill -9` + restart in one engine instant: discards `addr`'s
    /// in-memory state and rebuilds the node around its survived durable
    /// backend, exactly like a daemon restarted with `--state-dir`. The
    /// replacement keeps the identity and phase but draws fresh protocol
    /// randomness (a rebooted process has a new RNG). Returns `false`
    /// when the address is not an alive honest node with a backend.
    pub fn crash_restart(&mut self, addr: Addr) -> bool {
        crash_restart_in(
            &mut self.engine,
            &self.honest_keys,
            self.cfg,
            self.seed,
            &mut self.restarts,
            addr,
        )
    }

    /// Runs one cycle but crash-restarts `victims` *inside* it, after
    /// the first `after_turns` of the cycle's shuffled turns — the case
    /// boundary-aligned restarts structurally miss: a node dies having
    /// already answered (or initiated) some of the cycle's exchanges,
    /// with its durable log mid-cycle rather than at a checkpoint.
    /// Victims whose own turn already ran restart with this cycle's
    /// emission spent; the rest restart before emitting. Returns how
    /// many victims actually restarted.
    pub fn run_cycle_with_mid_restart(&mut self, after_turns: usize, victims: &[Addr]) -> usize {
        let honest_keys = &self.honest_keys;
        let cfg = self.cfg;
        let seed = self.seed;
        let restarts = &mut self.restarts;
        let mut done = 0usize;
        self.engine.run_cycle_interrupted(after_turns, |engine| {
            for &addr in victims {
                if crash_restart_in(engine, honest_keys, cfg, seed, restarts, addr) {
                    done += 1;
                }
            }
        });
        done
    }
}

/// [`SecureNetwork::crash_restart`]'s body as a free function over
/// disjoint borrows, so mid-cycle interruption closures (which hold the
/// engine mutably) can restart nodes too.
fn crash_restart_in(
    engine: &mut Engine<SecureNet>,
    honest_keys: &HashMap<Addr, (Keypair, u64)>,
    cfg: SecureConfig,
    seed: u64,
    restarts: &mut u64,
    addr: Addr,
) -> bool {
    let Some((keypair, phase)) = honest_keys.get(&addr).cloned() else {
        return false;
    };
    let backend = match engine.node_mut(addr) {
        Some(SecureNet::Honest(node)) => match node.take_backend() {
            Some(b) => b,
            None => return false,
        },
        _ => return false,
    };
    let rng_seed = sc_sim::rng::derive_seed(seed, "restart", *restarts);
    *restarts += 1;
    let reborn = SecureCyclonNode::with_backend(keypair, addr, cfg, rng_seed, phase, backend)
        .expect("in-memory backends cannot fail to load");
    let Some(slot) = engine.node_mut(addr) else {
        return false;
    };
    *slot = SecureNet::Honest(Box::new(reborn));
    true
}

/// Builds one honest node, durably backed when asked. The simulated tier
/// uses in-memory backends: same code paths as the daemon's log files
/// (synchronous emission/spent/proof records, checkpoint recovery),
/// without touching disk from inside a deterministic run.
fn new_honest_node(
    keypair: Keypair,
    addr: Addr,
    cfg: SecureConfig,
    rng_seed: [u8; 32],
    phase: u64,
    durable: bool,
) -> SecureCyclonNode {
    if durable {
        SecureCyclonNode::with_backend(
            keypair,
            addr,
            cfg,
            rng_seed,
            phase,
            Box::new(MemoryBackend::new()),
        )
        .expect("in-memory backends cannot fail to load")
    } else {
        SecureCyclonNode::new(keypair, addr, cfg, rng_seed, phase)
    }
}

/// Builds a bootstrapped mixed network: `n` nodes, of which a random
/// `n_malicious` belong to the colluding party, all joined through a
/// legal ring bootstrap so the overlay starts converged and violation-free.
pub fn build_secure_network(params: SecureNetParams) -> SecureNetwork {
    let SecureNetParams {
        n,
        n_malicious,
        cfg,
        attack,
        attack_start,
        seed,
        scheme,
        net,
        execution,
        durable,
    } = params;
    let cfg = cfg.validated();
    assert!(n_malicious < n, "need at least one honest node");

    let keypairs: Vec<Keypair> = (0..n)
        .map(|i| Keypair::from_seed(scheme, sc_sim::rng::derive_seed(seed, "identity", i as u64)))
        .collect();
    let addrs: Vec<Addr> = (0..n as Addr).collect();
    let phases: Vec<u64> = (0..n)
        .map(|i| default_phase(i, cfg.ticks_per_cycle))
        .collect();

    // Uniformly random malicious subset.
    let mut indices: Vec<usize> = (0..n).collect();
    let mut pick_rng = sc_sim::rng::std_rng(seed, "malicious-pick", 0);
    indices.shuffle(&mut pick_rng);
    let malicious_set: HashSet<usize> = indices.into_iter().take(n_malicious).collect();

    let party_kps: Vec<Keypair> = malicious_set.iter().map(|&i| keypairs[i].clone()).collect();
    let party_addrs: Vec<Addr> = malicious_set.iter().map(|&i| i as Addr).collect();
    let party = Arc::new(Mutex::new(SecureParty::new(
        party_kps,
        party_addrs,
        cfg.ticks_per_cycle,
    )));

    let plan = ring_bootstrap(
        &keypairs,
        &addrs,
        &phases,
        cfg.view_len,
        cfg.ticks_per_cycle,
    );
    let mut engine = Engine::new(SimConfig {
        seed,
        net,
        ticks_per_cycle: cfg.ticks_per_cycle,
        start_cycle: plan.start_cycle,
        execution,
    });

    let mut malicious_ids = HashSet::new();
    let mut malicious_addrs = HashSet::new();
    let mut honest_keys = HashMap::new();
    for (i, descs) in plan.per_node.into_iter().enumerate() {
        let rng_seed = sc_sim::rng::derive_seed(seed, "node", i as u64);
        if malicious_set.contains(&i) {
            malicious_ids.insert(keypairs[i].public());
            malicious_addrs.insert(i as Addr);
            let mut node = MaliciousSecureNode::new(
                keypairs[i].clone(),
                i as Addr,
                cfg.view_len,
                cfg.swap_len,
                cfg.ticks_per_cycle,
                cfg.tit_for_tat,
                attack.clone(),
                attack_start,
                Arc::clone(&party),
                rng_seed,
                phases[i],
            );
            for d in descs {
                node.accept_bootstrap(d);
            }
            engine.spawn_with(|_| SecureNet::Malicious(Box::new(node)));
        } else {
            let mut node = new_honest_node(
                keypairs[i].clone(),
                i as Addr,
                cfg,
                rng_seed,
                phases[i],
                durable,
            );
            for d in descs {
                node.accept_bootstrap(d);
            }
            honest_keys.insert(i as Addr, (keypairs[i].clone(), phases[i]));
            engine.spawn_with(|_| SecureNet::Honest(Box::new(node)));
        }
    }

    SecureNetwork {
        engine,
        malicious_ids,
        malicious_addrs,
        party,
        cfg,
        scheme,
        seed,
        joiners: 0,
        durable,
        honest_keys,
        restarts: 0,
    }
}

// ----------------------------------------------------------------------
// Metrics (the y-axes of Figures 3, 5, 6)
// ----------------------------------------------------------------------

/// Fraction of links in honest views that point at malicious nodes —
/// the y-axis of Figures 3 and 5.
pub fn malicious_link_fraction(engine: &Engine<SecureNet>, malicious: &HashSet<NodeId>) -> f64 {
    let mut mal = 0usize;
    let mut total = 0usize;
    for (_, node) in engine.nodes() {
        let Some(h) = node.honest() else { continue };
        for e in h.view().iter() {
            total += 1;
            if malicious.contains(&e.desc.creator()) {
                mal += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        mal as f64 / total as f64
    }
}

/// Fraction of links in honest views that are non-swappable — the y-axis
/// of Figure 6.
pub fn ns_link_fraction(engine: &Engine<SecureNet>) -> f64 {
    let mut ns = 0usize;
    let mut total = 0usize;
    for (_, node) in engine.nodes() {
        let Some(h) = node.honest() else { continue };
        total += h.view().len();
        ns += h.view().ns_count();
    }
    if total == 0 {
        0.0
    } else {
        ns as f64 / total as f64
    }
}

/// Average fraction of the malicious population each honest node has
/// blacklisted (1.0 = every honest node knows every attacker).
pub fn blacklist_coverage(engine: &Engine<SecureNet>, malicious: &HashSet<NodeId>) -> f64 {
    if malicious.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut honest = 0usize;
    for (_, node) in engine.nodes() {
        let Some(h) = node.honest() else { continue };
        honest += 1;
        let known = malicious
            .iter()
            .filter(|m| h.blacklist().contains(m))
            .count();
        sum += known as f64 / malicious.len() as f64;
    }
    if honest == 0 {
        0.0
    } else {
        sum / honest as f64
    }
}

/// Fraction of honest nodes whose entire (non-empty) view points at
/// malicious nodes — the eclipsed residue of Figure 5 (bottom).
pub fn eclipsed_fraction(engine: &Engine<SecureNet>, malicious: &HashSet<NodeId>) -> f64 {
    let mut eclipsed = 0usize;
    let mut honest = 0usize;
    for (_, node) in engine.nodes() {
        let Some(h) = node.honest() else { continue };
        honest += 1;
        let total = h.view().len();
        if total == 0 {
            continue;
        }
        let mal = h
            .view()
            .iter()
            .filter(|e| malicious.contains(&e.desc.creator()))
            .count();
        if mal == total {
            eclipsed += 1;
        }
    }
    if honest == 0 {
        0.0
    } else {
        eclipsed as f64 / honest as f64
    }
}

/// Total violation proofs generated by honest nodes, by kind
/// `(cloning, frequency)`.
pub fn proofs_generated(engine: &Engine<SecureNet>) -> (u64, u64) {
    let mut cloning = 0;
    let mut frequency = 0;
    for (_, node) in engine.nodes() {
        let Some(h) = node.honest() else { continue };
        cloning += h.stats().proofs_generated_cloning;
        frequency += h.stats().proofs_generated_frequency;
    }
    (cloning, frequency)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn durable_params(n: usize) -> SecureNetParams {
        let mut p = SecureNetParams::new(n, 0, SecureAttack::None);
        p.cfg = p.cfg.with_view_len(6).with_swap_len(3);
        p.seed = 5;
        p.durable = true;
        p
    }

    #[test]
    fn crash_restart_preserves_identity_and_durable_state() {
        let mut net = build_secure_network(durable_params(24));
        for _ in 0..10 {
            net.engine.run_cycle();
        }
        let (id, view_len, emitted) = {
            let h = net.engine.node(3).unwrap().honest().unwrap();
            (h.id(), h.view().len(), h.last_emission())
        };
        assert!(view_len > 0, "node is connected before the crash");
        assert!(emitted.is_some(), "node has spent an emission budget");

        assert!(net.crash_restart(3), "honest durable node restarts");
        let h = net.engine.node(3).unwrap().honest().unwrap();
        assert_eq!(h.id(), id, "identity survives the restart");
        assert_eq!(h.last_emission(), emitted, "emission marker recovered");
        assert!(!h.view().is_empty(), "view recovered from the checkpoint");
        assert_eq!(h.stats().initiated, 0, "counters start a fresh life");

        // The reborn node keeps gossiping legally.
        for _ in 0..5 {
            net.engine.run_cycle();
        }
        assert_eq!(
            proofs_generated(&net.engine),
            (0, 0),
            "no self-incrimination"
        );
    }

    #[test]
    fn mid_cycle_crash_restart_stays_clean() {
        let mut net = build_secure_network(durable_params(24));
        for _ in 0..10 {
            net.engine.run_cycle();
        }
        let ids: Vec<_> = [3, 7]
            .iter()
            .map(|&a| net.engine.node(a).unwrap().honest().unwrap().id())
            .collect();
        // Kill both victims halfway through the cycle's turns: some
        // exchanges (possibly their own emission) already happened.
        assert_eq!(net.run_cycle_with_mid_restart(12, &[3, 7]), 2);
        for _ in 0..5 {
            net.engine.run_cycle();
        }
        for (i, &a) in [3, 7].iter().enumerate() {
            let h = net.engine.node(a).unwrap().honest().unwrap();
            assert_eq!(h.id(), ids[i], "identity survives");
            assert!(!h.view().is_empty(), "view recovered");
        }
        assert_eq!(
            proofs_generated(&net.engine),
            (0, 0),
            "a mid-cycle crash must not make a durable node accuse itself"
        );
    }

    #[test]
    fn crash_restart_requires_a_backend() {
        let mut p = durable_params(24);
        p.durable = false;
        let mut plain = build_secure_network(p);
        plain.engine.run_cycle();
        assert!(!plain.crash_restart(3), "no backend, nothing to restart");
        assert!(!plain.crash_restart(9999), "unknown address");
    }
}
