//! Protocol invariant oracles.
//!
//! Each oracle is a predicate over the whole network state, checked after
//! every cycle (or once at the end of a run). The first violation aborts
//! the run with a [`Violation`] that names the scenario, seed, and cycle —
//! and, because scenarios are deterministic, re-running with that seed
//! reproduces the failure bit-for-bit. This is the Honeybee/FoundationDB
//! posture: verifiability as an invariant checked continuously, not a
//! property asserted once at the end.
//!
//! Every check runs over a [`NetSnapshot`], so the same oracle code
//! audits a simulated [`SecureNetwork`] and a cluster of live `sc-node`
//! processes scraped over their control sockets.

use crate::net::SecureNetwork;
use crate::scenario::{OracleConfig, Scenario};
use crate::snapshot::NetSnapshot;
use sc_core::DescriptorId;
use sc_crypto::NodeId;
use sc_sim::Addr;
use std::collections::{HashMap, HashSet, VecDeque};

/// A failed invariant, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Scenario name.
    pub scenario: String,
    /// Master seed of the failing run.
    pub seed: u64,
    /// Absolute engine cycle at which the oracle tripped (`u64::MAX` is
    /// never used; end-of-run oracles report the final cycle).
    pub cycle: u64,
    /// Name of the violated oracle.
    pub oracle: &'static str,
    /// Human-readable specifics.
    pub detail: String,
    /// The one-command reproduction for this run.
    pub replay: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oracle '{}' violated in scenario '{}' (seed {}, cycle {}): {}\n  replay: {}",
            self.oracle, self.scenario, self.seed, self.cycle, self.detail, self.replay,
        )
    }
}

impl std::error::Error for Violation {}

/// The replay command for a `(scenario, seed)` pair of the simulated
/// scenario matrix.
pub fn matrix_replay(scenario: &str, seed: u64) -> String {
    format!(
        "SC_SCENARIO='{scenario}' SC_SEED={seed} cargo test --test scenario_matrix -- --nocapture"
    )
}

/// Stateful oracle suite for one run.
///
/// Holds the cross-cycle state some oracles need (previous blacklists for
/// monotonicity) and the scenario's thresholds.
pub struct OracleSuite {
    scenario: String,
    seed: u64,
    cfg: OracleConfig,
    view_len: usize,
    replay: String,
    /// Previous cycle's blacklist per address (addresses are never
    /// reused, so churn cannot alias entries).
    prev_blacklists: HashMap<Addr, HashSet<NodeId>>,
    /// Every honest identity ever observed alive — so accusing an honest
    /// node is caught even after churn removed the victim.
    honest_ever: HashSet<NodeId>,
}

impl OracleSuite {
    /// Creates the suite for one `(scenario, seed)` run of the simulated
    /// matrix.
    pub fn new(scenario: &Scenario, seed: u64) -> Self {
        let replay = matrix_replay(&scenario.name, seed);
        OracleSuite::with_replay(
            &scenario.name,
            seed,
            scenario.oracles,
            scenario.cfg.view_len,
            replay,
        )
    }

    /// Creates a suite for any run — a live loopback cluster, say — with
    /// a caller-supplied one-command replay line.
    pub fn with_replay(
        name: &str,
        seed: u64,
        cfg: OracleConfig,
        view_len: usize,
        replay: String,
    ) -> Self {
        OracleSuite {
            scenario: name.to_string(),
            seed,
            cfg,
            view_len,
            replay,
            prev_blacklists: HashMap::new(),
            honest_ever: HashSet::new(),
        }
    }

    fn violation(&self, cycle: u64, oracle: &'static str, detail: String) -> Violation {
        Violation {
            scenario: self.scenario.clone(),
            seed: self.seed,
            cycle,
            oracle,
            detail,
            replay: self.replay.clone(),
        }
    }

    /// Runs every enabled per-cycle oracle against a simulated network.
    /// `step` is the 0-based run step; the reported cycle is the absolute
    /// engine cycle.
    pub fn check_cycle(&mut self, net: &SecureNetwork, step: u64) -> Result<(), Violation> {
        if !step.is_multiple_of(self.cfg.stride.max(1)) {
            return Ok(());
        }
        self.check_snapshot(&NetSnapshot::from_network(net), step)
    }

    /// Runs every enabled per-cycle oracle against a snapshot (simulated
    /// or scraped from live daemons).
    pub fn check_snapshot(&mut self, snap: &NetSnapshot, step: u64) -> Result<(), Violation> {
        if !step.is_multiple_of(self.cfg.stride.max(1)) {
            return Ok(());
        }
        let cycle = snap.cycle;
        if self.cfg.view_invariants {
            self.check_view_invariants(snap, cycle)?;
        }
        if self.cfg.unique_ownership {
            self.check_unique_ownership(snap, cycle)?;
        }
        if self.cfg.blacklist_monotone {
            self.check_blacklists(snap, cycle)?;
        }
        if let Some(bound) = self.cfg.max_indegree {
            if step >= self.cfg.warmup {
                self.check_indegree(snap, cycle, bound)?;
            }
        }
        if let Some(bound) = self.cfg.redemption_bound {
            self.check_redemption_bound(snap, cycle, bound)?;
        }
        if let Some(ceiling) = self.cfg.byte_budget_per_cycle {
            self.check_byte_budget(snap, cycle, ceiling)?;
        }
        Ok(())
    }

    /// Per-view structural invariants: capacity, ownership, no duplicate
    /// identities, non-swappable accounting.
    fn check_view_invariants(&self, snap: &NetSnapshot, cycle: u64) -> Result<(), Violation> {
        for node in &snap.nodes {
            let addr = node.addr;
            if node.view.len() > self.view_len {
                return Err(self.violation(
                    cycle,
                    "view-conservation",
                    format!(
                        "node {addr}: view holds {} > ℓ={}",
                        node.view.len(),
                        self.view_len
                    ),
                ));
            }
            let mut ids = HashSet::new();
            for (desc, _) in &node.view {
                if desc.creator() == node.id {
                    return Err(self.violation(
                        cycle,
                        "view-conservation",
                        format!("node {addr}: self-link in view"),
                    ));
                }
                if desc.owner() != node.id {
                    return Err(self.violation(
                        cycle,
                        "view-conservation",
                        format!("node {addr}: view entry not owned by the node"),
                    ));
                }
                if desc.is_redeemed() {
                    return Err(self.violation(
                        cycle,
                        "view-conservation",
                        format!("node {addr}: redeemed descriptor in view"),
                    ));
                }
                if !ids.insert(desc.id()) {
                    return Err(self.violation(
                        cycle,
                        "view-conservation",
                        format!("node {addr}: duplicate descriptor identity in view"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// No descriptor identity is live-owned by two honest nodes at once.
    /// "Live-owned" counts swappable view entries and reserve entries;
    /// non-swappable entries are §V-A retained copies and legitimately
    /// coexist with the real owner's copy.
    fn check_unique_ownership(&self, snap: &NetSnapshot, cycle: u64) -> Result<(), Violation> {
        let mut owners: HashMap<DescriptorId, Addr> = HashMap::new();
        for node in &snap.nodes {
            let swappable = node.view.iter().filter(|(_, ns)| !ns).map(|(desc, _)| desc);
            for d in swappable.chain(node.reserve.iter()) {
                if let Some(prev) = owners.insert(d.id(), node.addr) {
                    return Err(self.violation(
                        cycle,
                        "unique-ownership",
                        format!(
                            "descriptor {:?} live-owned by nodes {prev} and {}",
                            d.id(),
                            node.addr
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Honest blacklists only grow, and never contain honest identities
    /// (no false accusations — message loss and partitions are not
    /// violations, §V-A).
    fn check_blacklists(&mut self, snap: &NetSnapshot, cycle: u64) -> Result<(), Violation> {
        self.honest_ever.extend(snap.nodes.iter().map(|n| n.id));
        for node in &snap.nodes {
            let addr = node.addr;
            let current: HashSet<NodeId> = node.blacklist.iter().copied().collect();
            for id in &current {
                if self.honest_ever.contains(id) && !snap.malicious_ids.contains(id) {
                    return Err(self.violation(
                        cycle,
                        "blacklist-monotone",
                        format!("node {addr} blacklisted an honest node"),
                    ));
                }
            }
            if let Some(prev) = self.prev_blacklists.get(&addr) {
                if !prev.is_subset(&current) {
                    return Err(self.violation(
                        cycle,
                        "blacklist-monotone",
                        format!(
                            "node {addr}: blacklist shrank from {} to {} entries",
                            prev.len(),
                            current.len()
                        ),
                    ));
                }
            }
            self.prev_blacklists.insert(addr, current);
        }
        Ok(())
    }

    /// In-degree of honest creators across honest views stays within the
    /// paper's bounds (descriptors are conserved tokens, so no honest node
    /// can be over-represented).
    fn check_indegree(
        &self,
        snap: &NetSnapshot,
        cycle: u64,
        bound: usize,
    ) -> Result<(), Violation> {
        let mut indegree: HashMap<NodeId, usize> = HashMap::new();
        for node in &snap.nodes {
            for (desc, _) in &node.view {
                let creator = desc.creator();
                if !snap.malicious_ids.contains(&creator) {
                    *indegree.entry(creator).or_default() += 1;
                }
            }
        }
        if let Some((_, &max)) = indegree.iter().max_by_key(|(_, &c)| c) {
            if max > bound {
                return Err(self.violation(
                    cycle,
                    "indegree-bounded",
                    format!("honest in-degree {max} exceeds bound {bound}"),
                ));
            }
        }
        Ok(())
    }

    /// The §V-C redemption cache is bounded by entry count, not just by
    /// age: under churn a single retention window can see arbitrarily
    /// many redemptions, and an unbounded cache is a memory-exhaustion
    /// vector on long-lived daemons.
    fn check_redemption_bound(
        &self,
        snap: &NetSnapshot,
        cycle: u64,
        bound: usize,
    ) -> Result<(), Violation> {
        for node in &snap.nodes {
            if node.redemptions > bound {
                return Err(self.violation(
                    cycle,
                    "redemption-bound",
                    format!(
                        "node {}: redemption cache holds {} > cap {bound}",
                        node.addr, node.redemptions
                    ),
                ));
            }
        }
        Ok(())
    }

    /// §VI-A traffic stays within the paper's per-node-per-cycle budget.
    /// Checked cumulatively (`ceiling × cycles elapsed`) so a burst in
    /// one cycle — proof flooding after a detection, say — must be paid
    /// back by quiet cycles, and so the check stays sound across
    /// crash-restarts, which reset a node's counters to zero.
    fn check_byte_budget(
        &self,
        snap: &NetSnapshot,
        cycle: u64,
        ceiling: u64,
    ) -> Result<(), Violation> {
        let budget = ceiling.saturating_mul(cycle + 1);
        for node in &snap.nodes {
            let (sent, received) = (node.stats.bytes_sent, node.stats.bytes_received);
            if sent > budget || received > budget {
                return Err(self.violation(
                    cycle,
                    "byte-budget",
                    format!(
                        "node {}: {sent} bytes sent / {received} received exceed \
                         {ceiling} B/cycle × {} cycles = {budget}",
                        node.addr,
                        cycle + 1
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Runs the end-of-run oracles against a simulated network.
    pub fn check_final(&self, net: &SecureNetwork) -> Result<(), Violation> {
        self.check_snapshot_final(&NetSnapshot::from_network(net))
    }

    /// Runs the end-of-run oracles against a snapshot. Live clusters
    /// should scrape it quiescent (`--stop-cycle` linger), since
    /// connectivity and ownership are cross-node properties.
    pub fn check_snapshot_final(&self, snap: &NetSnapshot) -> Result<(), Violation> {
        let cycle = snap.cycle;
        if let Some(floor) = self.cfg.final_connectivity {
            let (component, honest_alive) = largest_component(snap);
            if (component as f64) < floor * honest_alive as f64 {
                return Err(self.violation(
                    cycle,
                    "convergence",
                    format!(
                        "honest overlay fragmented: largest component {component} of \
                         {honest_alive} alive honest nodes (floor {floor})"
                    ),
                ));
            }
        }
        if let Some(floor) = self.cfg.final_min_fill {
            let (len_sum, honest) = snap
                .nodes
                .iter()
                .fold((0usize, 0usize), |(l, c), n| (l + n.view.len(), c + 1));
            let avg = if honest == 0 {
                0.0
            } else {
                len_sum as f64 / honest as f64
            };
            if avg < floor * self.view_len as f64 {
                return Err(self.violation(
                    cycle,
                    "convergence",
                    format!(
                        "average honest view fill {avg:.2} below floor {:.2}",
                        floor * self.view_len as f64
                    ),
                ));
            }
        }
        if let Some(coverage_floor) = self.cfg.expect_detection {
            let (cloning, frequency) = snap.proofs_generated();
            if cloning + frequency == 0 {
                return Err(self.violation(
                    cycle,
                    "eventual-detection",
                    "adversary active but no violation was ever proven".to_string(),
                ));
            }
            let coverage = snap.blacklist_coverage();
            if coverage < coverage_floor {
                return Err(self.violation(
                    cycle,
                    "eventual-detection",
                    format!("blacklist coverage {coverage:.3} below floor {coverage_floor}"),
                ));
            }
        }
        Ok(())
    }
}

/// `(largest weakly-connected component, alive honest count)` over the
/// honest overlay of a simulated network.
pub fn largest_honest_component(net: &SecureNetwork) -> (usize, usize) {
    largest_component(&NetSnapshot::from_network(net))
}

/// `(largest weakly-connected component, honest count)` over a snapshot:
/// edges follow view entries between honest nodes in either direction.
pub fn largest_component(snap: &NetSnapshot) -> (usize, usize) {
    let honest_set: HashSet<Addr> = snap.nodes.iter().map(|n| n.addr).collect();
    // Undirected adjacency over honest view links.
    let mut adj: HashMap<Addr, Vec<Addr>> = HashMap::new();
    for node in &snap.nodes {
        let a = node.addr;
        for (desc, _) in &node.view {
            let b = desc.addr();
            if b != a && honest_set.contains(&b) {
                adj.entry(a).or_default().push(b);
                adj.entry(b).or_default().push(a);
            }
        }
    }
    let mut seen: HashSet<Addr> = HashSet::new();
    let mut best = 0;
    for node in &snap.nodes {
        if !seen.insert(node.addr) {
            continue;
        }
        let mut size = 0;
        let mut queue = VecDeque::from([node.addr]);
        while let Some(a) = queue.pop_front() {
            size += 1;
            for &b in adj.get(&a).into_iter().flatten() {
                if seen.insert(b) {
                    queue.push_back(b);
                }
            }
        }
        best = best.max(size);
    }
    (best, snap.nodes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{build_secure_network, SecureNetParams};
    use sc_attacks::SecureAttack;

    #[test]
    fn violation_display_carries_replay_command() {
        let v = Violation {
            scenario: "honest-partition-heal".into(),
            seed: 42,
            cycle: 37,
            oracle: "convergence",
            detail: "fragmented".into(),
            replay: matrix_replay("honest-partition-heal", 42),
        };
        let msg = v.to_string();
        assert!(msg.contains("SC_SCENARIO='honest-partition-heal'"));
        assert!(msg.contains("SC_SEED=42"));
        assert!(msg.contains("cycle 37"));
        assert!(msg.contains("scenario_matrix"));
    }

    fn small_params(n: usize) -> SecureNetParams {
        let mut p = SecureNetParams::new(n, 0, SecureAttack::None);
        p.cfg = p.cfg.with_view_len(6).with_swap_len(3);
        p
    }

    #[test]
    fn snapshot_checks_match_network_checks() {
        let mut net = build_secure_network(small_params(16));
        for _ in 0..6 {
            net.engine.run_cycle();
        }
        let cfg = OracleConfig {
            unique_ownership: true,
            max_indegree: Some(64),
            warmup: 0,
            final_connectivity: Some(1.0),
            final_min_fill: Some(0.5),
            ..OracleConfig::default()
        };
        let mk = || OracleSuite::with_replay("snap-eq", 1, cfg, 8, "replay-me".into());
        // Same state, two entry points: both must pass identically.
        let snap = NetSnapshot::from_network(&net);
        mk().check_cycle(&net, 0).unwrap();
        mk().check_snapshot(&snap, 0).unwrap();
        mk().check_final(&net).unwrap();
        mk().check_snapshot_final(&snap).unwrap();
        assert_eq!(largest_honest_component(&net), largest_component(&snap));
    }

    #[test]
    fn redemption_and_byte_budget_oracles_trip_on_forged_snapshots() {
        let mut net = build_secure_network(small_params(12));
        for _ in 0..4 {
            net.engine.run_cycle();
        }
        let cfg = OracleConfig {
            redemption_bound: Some(64),
            byte_budget_per_cycle: Some(1 << 20),
            ..OracleConfig::default()
        };
        let mk = || OracleSuite::with_replay("budget", 2, cfg, 8, "cmd".into());
        let clean = NetSnapshot::from_network(&net);
        mk().check_snapshot(&clean, 0)
            .expect("healthy run is within both budgets");

        let mut over_cache = clean.clone();
        over_cache.nodes[0].redemptions = 65;
        let v = mk().check_snapshot(&over_cache, 0).unwrap_err();
        assert_eq!(v.oracle, "redemption-bound");

        let mut over_wire = clean.clone();
        over_wire.nodes[0].stats.bytes_received = (1 << 20) * (over_wire.cycle + 1) + 1;
        let v = mk().check_snapshot(&over_wire, 0).unwrap_err();
        assert_eq!(v.oracle, "byte-budget");
        assert!(v.to_string().contains("received"));
    }

    #[test]
    fn torn_live_snapshot_trips_unique_ownership() {
        let net = build_secure_network(small_params(10));
        let mut snap = NetSnapshot::from_network(&net);
        // Forge a torn read: one node's owned view entry also shows up in
        // another node's reserve — impossible in a quiescent cluster.
        let (dup, _) = snap.nodes[0].view[0].clone();
        snap.nodes[1].reserve.push(dup);
        let cfg = OracleConfig {
            unique_ownership: true,
            ..OracleConfig::default()
        };
        let mut suite = OracleSuite::with_replay("torn", 9, cfg, 8, "cmd".into());
        let v = suite.check_snapshot(&snap, 0).unwrap_err();
        assert_eq!(v.oracle, "unique-ownership");
        assert!(v.to_string().contains("cmd"));
    }
}
