//! Protocol invariant oracles.
//!
//! Each oracle is a predicate over the whole network state, checked after
//! every cycle (or once at the end of a run). The first violation aborts
//! the run with a [`Violation`] that names the scenario, seed, and cycle —
//! and, because scenarios are deterministic, re-running with that seed
//! reproduces the failure bit-for-bit. This is the Honeybee/FoundationDB
//! posture: verifiability as an invariant checked continuously, not a
//! property asserted once at the end.

use crate::net::{blacklist_coverage, proofs_generated, SecureNetwork};
use crate::scenario::{OracleConfig, Scenario};
use sc_core::DescriptorId;
use sc_crypto::NodeId;
use sc_sim::Addr;
use std::collections::{HashMap, HashSet, VecDeque};

/// A failed invariant, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Scenario name.
    pub scenario: String,
    /// Master seed of the failing run.
    pub seed: u64,
    /// Absolute engine cycle at which the oracle tripped (`u64::MAX` is
    /// never used; end-of-run oracles report the final cycle).
    pub cycle: u64,
    /// Name of the violated oracle.
    pub oracle: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oracle '{}' violated in scenario '{}' (seed {}, cycle {}): {}\n  replay: \
             SC_SCENARIO='{}' SC_SEED={} cargo test --test scenario_matrix -- --nocapture",
            self.oracle,
            self.scenario,
            self.seed,
            self.cycle,
            self.detail,
            self.scenario,
            self.seed
        )
    }
}

impl std::error::Error for Violation {}

/// Stateful oracle suite for one run.
///
/// Holds the cross-cycle state some oracles need (previous blacklists for
/// monotonicity) and the scenario's thresholds.
pub struct OracleSuite {
    scenario: String,
    seed: u64,
    cfg: OracleConfig,
    view_len: usize,
    /// Previous cycle's blacklist per address (addresses are never
    /// reused, so churn cannot alias entries).
    prev_blacklists: HashMap<Addr, HashSet<NodeId>>,
    /// Every honest identity ever observed alive — so accusing an honest
    /// node is caught even after churn removed the victim.
    honest_ever: HashSet<NodeId>,
}

impl OracleSuite {
    /// Creates the suite for one `(scenario, seed)` run.
    pub fn new(scenario: &Scenario, seed: u64) -> Self {
        OracleSuite {
            scenario: scenario.name.clone(),
            seed,
            cfg: scenario.oracles,
            view_len: scenario.cfg.view_len,
            prev_blacklists: HashMap::new(),
            honest_ever: HashSet::new(),
        }
    }

    fn violation(&self, cycle: u64, oracle: &'static str, detail: String) -> Violation {
        Violation {
            scenario: self.scenario.clone(),
            seed: self.seed,
            cycle,
            oracle,
            detail,
        }
    }

    /// Runs every enabled per-cycle oracle. `step` is the 0-based run
    /// step; the reported cycle is the absolute engine cycle.
    pub fn check_cycle(&mut self, net: &SecureNetwork, step: u64) -> Result<(), Violation> {
        if !step.is_multiple_of(self.cfg.stride.max(1)) {
            return Ok(());
        }
        let cycle = net.engine.cycle();
        if self.cfg.view_invariants {
            self.check_view_invariants(net, cycle)?;
        }
        if self.cfg.unique_ownership {
            self.check_unique_ownership(net, cycle)?;
        }
        if self.cfg.blacklist_monotone {
            self.check_blacklists(net, cycle)?;
        }
        if let Some(bound) = self.cfg.max_indegree {
            if step >= self.cfg.warmup {
                self.check_indegree(net, cycle, bound)?;
            }
        }
        Ok(())
    }

    /// Per-view structural invariants: capacity, ownership, no duplicate
    /// identities, non-swappable accounting.
    fn check_view_invariants(&self, net: &SecureNetwork, cycle: u64) -> Result<(), Violation> {
        for (addr, node) in net.engine.nodes() {
            let Some(h) = node.honest() else { continue };
            let v = h.view();
            if v.len() > self.view_len {
                return Err(self.violation(
                    cycle,
                    "view-conservation",
                    format!("node {addr}: view holds {} > ℓ={}", v.len(), self.view_len),
                ));
            }
            let mut ids = HashSet::new();
            for e in v.iter() {
                if e.desc.creator() == h.id() {
                    return Err(self.violation(
                        cycle,
                        "view-conservation",
                        format!("node {addr}: self-link in view"),
                    ));
                }
                if e.desc.owner() != h.id() {
                    return Err(self.violation(
                        cycle,
                        "view-conservation",
                        format!("node {addr}: view entry not owned by the node"),
                    ));
                }
                if e.desc.is_redeemed() {
                    return Err(self.violation(
                        cycle,
                        "view-conservation",
                        format!("node {addr}: redeemed descriptor in view"),
                    ));
                }
                if !ids.insert(e.desc.id()) {
                    return Err(self.violation(
                        cycle,
                        "view-conservation",
                        format!("node {addr}: duplicate descriptor identity in view"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// No descriptor identity is live-owned by two honest nodes at once.
    /// "Live-owned" counts swappable view entries and reserve entries;
    /// non-swappable entries are §V-A retained copies and legitimately
    /// coexist with the real owner's copy.
    fn check_unique_ownership(&self, net: &SecureNetwork, cycle: u64) -> Result<(), Violation> {
        let mut owners: HashMap<DescriptorId, Addr> = HashMap::new();
        for (addr, node) in net.engine.nodes() {
            let Some(h) = node.honest() else { continue };
            let swappable = h
                .view()
                .iter()
                .filter(|e| !e.non_swappable)
                .map(|e| &e.desc);
            for d in swappable.chain(h.reserve()) {
                if let Some(prev) = owners.insert(d.id(), addr) {
                    return Err(self.violation(
                        cycle,
                        "unique-ownership",
                        format!(
                            "descriptor {:?} live-owned by nodes {prev} and {addr}",
                            d.id()
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Honest blacklists only grow, and never contain honest identities
    /// (no false accusations — message loss and partitions are not
    /// violations, §V-A).
    fn check_blacklists(&mut self, net: &SecureNetwork, cycle: u64) -> Result<(), Violation> {
        self.honest_ever.extend(
            net.engine
                .nodes()
                .filter_map(|(_, n)| n.honest().map(|h| h.id())),
        );
        for (addr, node) in net.engine.nodes() {
            let Some(h) = node.honest() else { continue };
            let current: HashSet<NodeId> = h.blacklist().culprits().copied().collect();
            for id in &current {
                if self.honest_ever.contains(id) && !net.malicious_ids.contains(id) {
                    return Err(self.violation(
                        cycle,
                        "blacklist-monotone",
                        format!("node {addr} blacklisted an honest node"),
                    ));
                }
            }
            if let Some(prev) = self.prev_blacklists.get(&addr) {
                if !prev.is_subset(&current) {
                    return Err(self.violation(
                        cycle,
                        "blacklist-monotone",
                        format!(
                            "node {addr}: blacklist shrank from {} to {} entries",
                            prev.len(),
                            current.len()
                        ),
                    ));
                }
            }
            self.prev_blacklists.insert(addr, current);
        }
        Ok(())
    }

    /// In-degree of honest creators across honest views stays within the
    /// paper's bounds (descriptors are conserved tokens, so no honest node
    /// can be over-represented).
    fn check_indegree(
        &self,
        net: &SecureNetwork,
        cycle: u64,
        bound: usize,
    ) -> Result<(), Violation> {
        let mut indegree: HashMap<NodeId, usize> = HashMap::new();
        for (_, node) in net.engine.nodes() {
            let Some(h) = node.honest() else { continue };
            for e in h.view().iter() {
                let creator = e.desc.creator();
                if !net.malicious_ids.contains(&creator) {
                    *indegree.entry(creator).or_default() += 1;
                }
            }
        }
        if let Some((_, &max)) = indegree.iter().max_by_key(|(_, &c)| c) {
            if max > bound {
                return Err(self.violation(
                    cycle,
                    "indegree-bounded",
                    format!("honest in-degree {max} exceeds bound {bound}"),
                ));
            }
        }
        Ok(())
    }

    /// Runs the end-of-run oracles.
    pub fn check_final(&self, net: &SecureNetwork) -> Result<(), Violation> {
        let cycle = net.engine.cycle();
        if let Some(floor) = self.cfg.final_connectivity {
            let (component, honest_alive) = largest_honest_component(net);
            if (component as f64) < floor * honest_alive as f64 {
                return Err(self.violation(
                    cycle,
                    "convergence",
                    format!(
                        "honest overlay fragmented: largest component {component} of \
                         {honest_alive} alive honest nodes (floor {floor})"
                    ),
                ));
            }
        }
        if let Some(floor) = self.cfg.final_min_fill {
            let (len_sum, honest) = net
                .engine
                .nodes()
                .filter_map(|(_, n)| n.honest())
                .fold((0usize, 0usize), |(l, c), h| (l + h.view().len(), c + 1));
            let avg = if honest == 0 {
                0.0
            } else {
                len_sum as f64 / honest as f64
            };
            if avg < floor * self.view_len as f64 {
                return Err(self.violation(
                    cycle,
                    "convergence",
                    format!(
                        "average honest view fill {avg:.2} below floor {:.2}",
                        floor * self.view_len as f64
                    ),
                ));
            }
        }
        if let Some(coverage_floor) = self.cfg.expect_detection {
            let (cloning, frequency) = proofs_generated(&net.engine);
            if cloning + frequency == 0 {
                return Err(self.violation(
                    cycle,
                    "eventual-detection",
                    "adversary active but no violation was ever proven".to_string(),
                ));
            }
            let coverage = blacklist_coverage(&net.engine, &net.malicious_ids);
            if coverage < coverage_floor {
                return Err(self.violation(
                    cycle,
                    "eventual-detection",
                    format!("blacklist coverage {coverage:.3} below floor {coverage_floor}"),
                ));
            }
        }
        Ok(())
    }
}

/// `(largest weakly-connected component, alive honest count)` over the
/// honest overlay: edges follow view entries between alive honest nodes
/// in either direction.
pub fn largest_honest_component(net: &SecureNetwork) -> (usize, usize) {
    let honest: Vec<Addr> = net
        .engine
        .nodes()
        .filter(|(_, n)| !n.is_malicious())
        .map(|(a, _)| a)
        .collect();
    let honest_set: HashSet<Addr> = honest.iter().copied().collect();
    // Undirected adjacency over honest view links.
    let mut adj: HashMap<Addr, Vec<Addr>> = HashMap::new();
    for &a in &honest {
        let Some(h) = net.engine.node(a).and_then(|n| n.honest()) else {
            continue;
        };
        for e in h.view().iter() {
            let b = e.desc.addr();
            if b != a && honest_set.contains(&b) {
                adj.entry(a).or_default().push(b);
                adj.entry(b).or_default().push(a);
            }
        }
    }
    let mut seen: HashSet<Addr> = HashSet::new();
    let mut best = 0;
    for &start in &honest {
        if !seen.insert(start) {
            continue;
        }
        let mut size = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(a) = queue.pop_front() {
            size += 1;
            for &b in adj.get(&a).into_iter().flatten() {
                if seen.insert(b) {
                    queue.push_back(b);
                }
            }
        }
        best = best.max(size);
    }
    (best, honest.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_carries_replay_command() {
        let v = Violation {
            scenario: "honest-partition-heal".into(),
            seed: 42,
            cycle: 37,
            oracle: "convergence",
            detail: "fragmented".into(),
        };
        let msg = v.to_string();
        assert!(msg.contains("SC_SCENARIO='honest-partition-heal'"));
        assert!(msg.contains("SC_SEED=42"));
        assert!(msg.contains("cycle 37"));
        assert!(msg.contains("scenario_matrix"));
    }
}
