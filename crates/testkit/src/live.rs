//! Shared drivers for live-cluster test tiers.
//!
//! The loopback and live-matrix tiers in `crates/node/tests` both follow
//! the same shape: launch a [`ProcessCluster`], scrape it every few
//! hundred milliseconds while caller-scheduled actions fire at wall
//! cycles, audit every scrape with the per-node oracles, and run the
//! full suite on the quiescent end state. This module holds that shape
//! so each tier only writes its scenario. The `sc-node` binary path
//! cannot live here — `env!("CARGO_BIN_EXE_sc-node")` resolves only in
//! that crate's own tests — so callers pass it to
//! [`ProcessCluster::launch`] themselves.
//!
//! Replay: everything is parameterized by one seed (`SC_NODE_SEED`); the
//! caller builds the replay line with [`replay_line`] and every panic
//! carries it.

use crate::harness::ProcessCluster;
use crate::oracles::OracleSuite;
use crate::scenario::OracleConfig;
use crate::snapshot::NetSnapshot;
use sc_node::StatusReport;
use std::time::{Duration, Instant};

/// The run seed: `SC_NODE_SEED` if set, else 1.
pub fn env_seed() -> u64 {
    std::env::var("SC_NODE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The command line that reruns the identical cluster, printed on every
/// failure. `test_file` is the integration-test name (`--test <file>`).
pub fn replay_line(test_file: &str, seed: u64, extra: &str) -> String {
    format!(
        "SC_NODE_SEED={seed} cargo test --release -p sc-node --test {test_file} -- --nocapture{extra}"
    )
}

/// Per-scrape oracles that are sound on torn (non-atomic) live snapshots:
/// each node's report is taken at a turn boundary, so per-node checks
/// hold exactly; cross-node checks wait for quiescence.
pub fn per_scrape_oracles() -> OracleConfig {
    OracleConfig {
        warmup: 0,
        stride: 1,
        view_invariants: true,
        unique_ownership: false,
        max_indegree: None,
        blacklist_monotone: true,
        final_connectivity: None,
        final_min_fill: None,
        expect_detection: None,
        // The daemon runs the default redemption-cache cap; the bound is
        // cycle-independent, so it is sound on live scrapes too.
        redemption_bound: Some(sc_core::SecureConfig::default().redemption_cache_max_entries),
        // Byte budgets are keyed to protocol cycles, which live scrape
        // steps are not — the simulated matrix covers that axis.
        byte_budget_per_cycle: None,
    }
}

/// The full suite for the quiescent end-of-run snapshot.
pub fn final_oracles(view_len: usize, connectivity: f64) -> OracleConfig {
    OracleConfig {
        warmup: 0,
        stride: 1,
        view_invariants: true,
        unique_ownership: true,
        max_indegree: Some(4 * view_len), // 4×ℓ, the matrix convention
        blacklist_monotone: true,
        final_connectivity: Some(connectivity),
        final_min_fill: Some(0.5),
        expect_detection: None,
        redemption_bound: Some(sc_core::SecureConfig::default().redemption_cache_max_entries),
        byte_budget_per_cycle: None,
    }
}

/// What a driven run left behind.
pub struct RunOutcome {
    /// Raw quiescent reports — the snapshot below is built from these,
    /// and they additionally carry the transport counters.
    pub reports: Vec<StatusReport>,
    /// Snapshot built from those reports.
    pub final_snap: NetSnapshot,
    /// One stdout summary line per member that exited cleanly.
    pub summaries: Vec<String>,
    /// Scrapes that produced a complete snapshot.
    pub scrapes: u64,
}

/// Drives a cluster from launch to quiescent shutdown: periodic scrapes
/// with per-node oracles, plus caller-scheduled actions keyed by the
/// shared wall cycle.
///
/// # Panics
///
/// On any oracle violation, or if a member stops answering control
/// scrapes after the stop boundary — both panics carry `replay`.
pub fn drive(
    cluster: &mut ProcessCluster,
    name: &str,
    stop_cycle: u64,
    view_len: usize,
    replay: &str,
    mut at_cycle: impl FnMut(&mut ProcessCluster, u64),
) -> RunOutcome {
    let mut suite = OracleSuite::with_replay(
        name,
        cluster.seed(),
        per_scrape_oracles(),
        view_len,
        replay.into(),
    );
    let mut step = 0u64;
    while cluster.wall_cycle() < stop_cycle {
        at_cycle(cluster, cluster.wall_cycle());
        if let Some(snap) = cluster.snapshot() {
            if let Err(v) = suite.check_snapshot(&snap, step) {
                panic!("live per-scrape oracle failed: {v}");
            }
            step += 1;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    // Slack for in-flight exchanges at the stop boundary to settle, then
    // scrape the quiescent cluster (retrying: a member may be serving
    // another RPC at the first attempt).
    std::thread::sleep(Duration::from_millis(400));
    let deadline = Instant::now() + Duration::from_secs(10);
    let reports = loop {
        let reports = cluster.statuses();
        if reports.len() == cluster.addrs().len() {
            break reports;
        }
        assert!(
            Instant::now() < deadline,
            "a member died or stopped answering control scrapes\n  replay: {replay}"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    let final_snap = NetSnapshot::from_reports(reports.clone());
    let summaries = cluster.shutdown_all();
    RunOutcome {
        reports,
        final_snap,
        summaries,
        scrapes: step,
    }
}

/// Runs the full oracle suite over a quiescent snapshot.
///
/// # Panics
///
/// On any oracle violation, carrying the replay line.
pub fn check_final(
    snap: &NetSnapshot,
    name: &str,
    seed: u64,
    view_len: usize,
    floor: f64,
    replay: &str,
) {
    let mut suite = OracleSuite::with_replay(
        name,
        seed,
        final_oracles(view_len, floor),
        view_len,
        replay.into(),
    );
    if let Err(v) = suite.check_snapshot(snap, 0) {
        panic!("quiescent-state oracle failed: {v}");
    }
    if let Err(v) = suite.check_snapshot_final(snap) {
        panic!("end-of-run oracle failed: {v}");
    }
}
