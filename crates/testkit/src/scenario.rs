//! Declarative adversarial scenarios.
//!
//! A [`Scenario`] composes everything the paper's evaluation (§VI) and
//! security argument (§IV–V) assume can go wrong at once: per-direction
//! message loss, network partitions with scheduled heal events, membership
//! churn, catastrophic failures, and a Byzantine fraction running one of
//! the `sc-attacks` strategies. Scenarios are pure descriptions — a
//! `(Scenario, seed)` pair replays bit-for-bit through
//! [`crate::run_scenario`], which is what makes every oracle violation a
//! one-command reproduction.

use sc_attacks::SecureAttack;
use sc_core::SecureConfig;
use sc_sim::Execution;
use std::sync::{Arc, Mutex};

/// Which adversary the Byzantine fraction runs.
///
/// Mirrors [`SecureAttack`] minus run-scoped state (the cloner's shared
/// ledger is created per run by the runner), so scenario catalogs stay
/// plain data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryKind {
    /// No deviation (control group / honest-only scenarios).
    None,
    /// Hub attack: all-malicious views via pool cloning (Figure 5).
    Hub,
    /// Link depletion: empty exchange responses (Figure 6).
    Depletion,
    /// Age-targeted double-spend at the given age in cycles (Figure 7).
    Cloner {
        /// Clone a held descriptor once it reaches this age.
        target_age: u64,
    },
    /// Frequency violation: extra descriptor creations per cycle.
    Frequency {
        /// Additional creations beyond the legal one.
        extra: u32,
    },
}

impl AdversaryKind {
    /// Materializes the run-time attack strategy, returning the cloner's
    /// event ledger when one is involved.
    pub fn materialize(self) -> (SecureAttack, Option<Arc<Mutex<sc_attacks::CloneLedger>>>) {
        match self {
            AdversaryKind::None => (SecureAttack::None, None),
            AdversaryKind::Hub => (SecureAttack::Hub, None),
            AdversaryKind::Depletion => (SecureAttack::Depletion, None),
            AdversaryKind::Cloner { target_age } => {
                let ledger = Arc::new(Mutex::new(sc_attacks::CloneLedger::new()));
                (
                    SecureAttack::Cloner {
                        target_age,
                        ledger: Arc::clone(&ledger),
                    },
                    Some(ledger),
                )
            }
            AdversaryKind::Frequency { extra } => (SecureAttack::Frequency { extra }, None),
        }
    }
}

/// A scheduled fault injection, keyed by run step (0-based cycle index
/// relative to the start of the run, *not* the absolute engine cycle).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Partition the network: a random `island_frac` of the alive nodes is
    /// severed from the rest (joiners land on the mainland side).
    Partition {
        /// Step at which the partition is installed.
        step: u64,
        /// Fraction of alive nodes moved to the island side.
        island_frac: f64,
    },
    /// Heal any active partition.
    Heal {
        /// Step at which the partition is removed.
        step: u64,
    },
    /// Replace the loss model (partition state is preserved).
    SetLoss {
        /// Step at which the new rates apply.
        step: u64,
        /// New per-direction drop probabilities
        /// `(request, response, oneway)`.
        rates: (f64, f64, f64),
    },
    /// Kill a random batch of alive nodes at once (mass failure).
    Kill {
        /// Step at which the failure strikes.
        step: u64,
        /// Fraction of alive nodes crashed.
        frac: f64,
    },
    /// `kill -9` + same-cycle restart for a random batch of honest
    /// durable nodes: each victim's in-memory state is discarded and a
    /// replacement node recovers from the survived [`StateBackend`].
    /// Requires [`Scenario::durable`]; nodes without a backend are
    /// skipped (there is nothing to restart from).
    Restart {
        /// Step at which the crash-restarts strike.
        step: u64,
        /// Fraction of alive honest nodes crash-restarted.
        frac: f64,
    },
    /// Like [`Event::Restart`], but the crashes land *inside* the
    /// cycle: the victims die after a seeded `turn_frac` fraction of
    /// the cycle's shuffled turns already ran, so some victims have
    /// already emitted this cycle and their durable logs sit mid-cycle
    /// rather than at a checkpoint. Forces the cycle to run
    /// sequentially (an interruption point inside a striped cycle has
    /// no deterministic position).
    RestartMidCycle {
        /// Step whose cycle is interrupted.
        step: u64,
        /// Fraction of alive honest nodes crash-restarted.
        frac: f64,
        /// Fraction of the cycle's turns that run before the crash.
        turn_frac: f64,
    },
}

impl Event {
    /// The step this event fires at.
    pub fn step(&self) -> u64 {
        match self {
            Event::Partition { step, .. }
            | Event::Heal { step }
            | Event::SetLoss { step, .. }
            | Event::Kill { step, .. }
            | Event::Restart { step, .. }
            | Event::RestartMidCycle { step, .. } => *step,
        }
    }
}

/// Continuous membership churn over a window of run steps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnWindow {
    /// First step (inclusive) churn applies.
    pub from: u64,
    /// Last step (exclusive) churn applies.
    pub to: u64,
    /// Per-node probability of crashing each step.
    pub leave_prob: f64,
    /// Expected sponsored joins per step (fractions accumulate).
    pub join_per_cycle: f64,
}

/// Which invariant oracles a scenario enables, and their thresholds.
///
/// Not every oracle is sound under every workload: global unique
/// ownership, for instance, is exactly the property a cloning adversary
/// violates *by design* until detection catches up, so attack scenarios
/// replace it with the eventual-detection oracle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OracleConfig {
    /// Cycles (run steps) to wait before bound-style oracles apply.
    pub warmup: u64,
    /// Run the per-cycle oracles every `stride` steps (1 = every cycle).
    /// The scale tier samples sparsely because each check is O(n·ℓ); all
    /// the per-cycle oracles are sound under sampling (structural checks
    /// are per-state, and blacklist monotonicity is transitive across
    /// skipped cycles). End-of-run oracles are unaffected.
    pub stride: u64,
    /// Per-view structural invariants (capacity, ownership, no dups).
    /// Sound unconditionally; always on in practice.
    pub view_invariants: bool,
    /// No descriptor identity is live-owned (swappable view entry or
    /// reserve entry) by two honest nodes at once. Sound only without a
    /// cloning-capable adversary.
    pub unique_ownership: bool,
    /// Maximum in-degree (over honest views, counting honest creators)
    /// after warmup. `None` disables.
    pub max_indegree: Option<usize>,
    /// Honest blacklists only grow, and never contain honest identities.
    pub blacklist_monotone: bool,
    /// End-of-run: the largest weakly-connected component of the honest
    /// overlay covers at least this fraction of the alive honest nodes
    /// (`1.0` = a single component; slightly lower floors tolerate the
    /// occasional orphan that combined churn+loss+attack can strand).
    pub final_connectivity: Option<f64>,
    /// End-of-run: average honest view fill ≥ this fraction of ℓ.
    pub final_min_fill: Option<f64>,
    /// End-of-run: the adversary was caught — at least one violation
    /// proven, and average blacklist coverage ≥ this fraction.
    pub expect_detection: Option<f64>,
    /// Per-cycle: no honest redemption cache holds more than this many
    /// entries (the §V-C cache is bounded by construction; `None`
    /// disables).
    pub redemption_bound: Option<usize>,
    /// Per-cycle: every honest node's cumulative gossip traffic (paper
    /// bytes sent, and received, §VI-A) stays within `ceiling × cycles
    /// alive`. Checked cumulatively so it is sound across crash-restarts
    /// (a reborn node restarts its counters at zero). `None` disables.
    pub byte_budget_per_cycle: Option<u64>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            warmup: 20,
            stride: 1,
            view_invariants: true,
            unique_ownership: false,
            max_indegree: None,
            blacklist_monotone: true,
            final_connectivity: None,
            final_min_fill: None,
            expect_detection: None,
            redemption_bound: None,
            byte_budget_per_cycle: None,
        }
    }
}

/// A complete adversarial scenario: population, protocol parameters,
/// faults, churn, adversary, horizon, and the oracles that must hold.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Unique name (the matrix filter key).
    pub name: String,
    /// Total nodes at bootstrap.
    pub n: usize,
    /// Byzantine nodes among them.
    pub n_malicious: usize,
    /// Adversary strategy.
    pub adversary: AdversaryKind,
    /// Run step at which the adversary starts deviating.
    pub attack_start: u64,
    /// Protocol configuration.
    pub cfg: SecureConfig,
    /// Base loss rates `(request, response, oneway)` active from step 0.
    pub loss: (f64, f64, f64),
    /// Scheduled fault events.
    pub events: Vec<Event>,
    /// Optional churn window.
    pub churn: Option<ChurnWindow>,
    /// Run length in cycles.
    pub cycles: u64,
    /// Enabled oracles and thresholds.
    pub oracles: OracleConfig,
    /// Give every honest node a durable [`sc_core::StateBackend`]
    /// (in-memory for the simulated tier), so [`Event::Restart`] can
    /// crash-restart it with state recovery.
    pub durable: bool,
    /// Let the runner re-sponsor island nodes at [`Event::Heal`] — the
    /// pre-rejoin harness hack modelling an out-of-band bootstrap-server
    /// reconnect. Off by default: partitions now heal through the
    /// protocol's own starved-node rejoin pings (§V-A), and this flag
    /// exists only as a fallback for scenarios whose islands are big
    /// enough to keep gossiping internally (never starving, never
    /// pinging).
    pub runner_heal_fallback: bool,
    /// Turn scheduling for the underlying engine. Keep
    /// [`Execution::Sequential`] (the default) for scenarios with a
    /// Byzantine fraction: malicious nodes mutate a shared party ledger
    /// outside the engine's striping contract, so only honest-only
    /// scenarios are deterministic under striped execution.
    pub execution: Execution,
}

impl Scenario {
    /// A reliable, honest-only scenario with paper-default parameters and
    /// the unconditionally sound oracles enabled.
    pub fn new(name: &str, n: usize) -> Self {
        Scenario {
            name: name.to_string(),
            n,
            n_malicious: 0,
            adversary: AdversaryKind::None,
            attack_start: 0,
            cfg: SecureConfig::default().with_view_len(8).with_swap_len(3),
            loss: (0.0, 0.0, 0.0),
            events: Vec::new(),
            churn: None,
            cycles: 60,
            oracles: OracleConfig::default(),
            durable: false,
            runner_heal_fallback: false,
            execution: Execution::Sequential,
        }
    }

    /// Sets the run length.
    pub fn cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles;
        self
    }

    /// Overrides the protocol configuration.
    pub fn config(mut self, cfg: SecureConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Makes `k` nodes Byzantine, running `adversary` from `attack_start`.
    pub fn adversary(mut self, k: usize, adversary: AdversaryKind, attack_start: u64) -> Self {
        self.n_malicious = k;
        self.adversary = adversary;
        self.attack_start = attack_start;
        self
    }

    /// Uniform message loss with probability `p` in every direction.
    pub fn lossy(mut self, p: f64) -> Self {
        self.loss = (p, p, p);
        self
    }

    /// Per-direction loss probabilities (asymmetric-loss scenarios, §V-A).
    pub fn asymmetric_loss(mut self, request: f64, response: f64, oneway: f64) -> Self {
        self.loss = (request, response, oneway);
        self
    }

    /// Partitions a random `island_frac` of the network at `step`.
    pub fn partition_at(mut self, step: u64, island_frac: f64) -> Self {
        self.events.push(Event::Partition { step, island_frac });
        self
    }

    /// Heals any active partition at `step`.
    pub fn heal_at(mut self, step: u64) -> Self {
        self.events.push(Event::Heal { step });
        self
    }

    /// Crashes a random `frac` of the alive nodes at `step`.
    pub fn kill_at(mut self, step: u64, frac: f64) -> Self {
        self.events.push(Event::Kill { step, frac });
        self
    }

    /// `kill -9`s and immediately restarts a random `frac` of the alive
    /// honest nodes at `step`, each recovering from its durable backend
    /// (implies [`Scenario::durable`]).
    pub fn restart_at(mut self, step: u64, frac: f64) -> Self {
        self.durable = true;
        self.events.push(Event::Restart { step, frac });
        self
    }

    /// Like [`Scenario::restart_at`], but the crashes strike after a
    /// `turn_frac` fraction of that cycle's turns have already run —
    /// mid-cycle, the case checkpoint-boundary restarts cannot cover
    /// (implies [`Scenario::durable`]).
    pub fn restart_mid_cycle_at(mut self, step: u64, frac: f64, turn_frac: f64) -> Self {
        self.durable = true;
        self.events.push(Event::RestartMidCycle {
            step,
            frac,
            turn_frac,
        });
        self
    }

    /// Gives every honest node a durable state backend without scheduling
    /// any restart (e.g. to measure the checkpoint overhead alone).
    pub fn durable(mut self) -> Self {
        self.durable = true;
        self
    }

    /// Re-enables the runner's heal-time re-sponsorship fallback (see
    /// [`Scenario::runner_heal_fallback`]).
    pub fn heal_fallback(mut self) -> Self {
        self.runner_heal_fallback = true;
        self
    }

    /// Replaces the per-direction loss rates `(request, response, oneway)`
    /// at `step`, keeping any active partition (loss regimes that change
    /// mid-run, e.g. a congestion burst that later clears).
    pub fn set_loss_at(mut self, step: u64, rates: (f64, f64, f64)) -> Self {
        self.events.push(Event::SetLoss { step, rates });
        self
    }

    /// Applies churn over `[from, to)` steps.
    pub fn churn(mut self, from: u64, to: u64, leave_prob: f64, join_per_cycle: f64) -> Self {
        self.churn = Some(ChurnWindow {
            from,
            to,
            leave_prob,
            join_per_cycle,
        });
        self
    }

    /// Replaces the oracle configuration.
    pub fn oracles(mut self, oracles: OracleConfig) -> Self {
        self.oracles = oracles;
        self
    }

    /// Overrides the engine turn scheduling. Striped execution is only
    /// deterministic for honest-only scenarios (see
    /// [`Scenario::execution`]); this builder panics if the scenario
    /// already has a Byzantine fraction.
    pub fn execution(mut self, execution: Execution) -> Self {
        assert!(
            self.n_malicious == 0 || execution == Execution::Sequential,
            "striped execution is unsupported for adversarial scenarios"
        );
        self.execution = execution;
        self
    }

    /// Whether any scheduled event partitions the network.
    pub fn has_partition(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, Event::Partition { .. }))
    }

    /// Whether any scheduled event crash-restarts nodes.
    pub fn has_restart(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(e, Event::Restart { .. }) || matches!(e, Event::RestartMidCycle { .. })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let sc = Scenario::new("t", 64)
            .cycles(80)
            .adversary(6, AdversaryKind::Hub, 20)
            .lossy(0.05)
            .partition_at(30, 0.3)
            .heal_at(50)
            .set_loss_at(60, (0.0, 0.0, 0.0))
            .churn(10, 40, 0.01, 0.5);
        assert_eq!(sc.n_malicious, 6);
        assert_eq!(sc.loss, (0.05, 0.05, 0.05));
        assert!(sc.has_partition());
        assert_eq!(sc.events.len(), 3);
        assert!(sc.churn.is_some());
        assert!(!sc.durable);
        assert!(!sc.runner_heal_fallback);
    }

    #[test]
    fn restart_builder_implies_durability() {
        let sc = Scenario::new("r", 32).restart_at(10, 0.25);
        assert!(sc.durable);
        assert!(sc.has_restart());
        assert_eq!(sc.events[0].step(), 10);
        let mid = Scenario::new("m", 32).restart_mid_cycle_at(12, 0.25, 0.5);
        assert!(mid.durable);
        assert!(mid.has_restart());
        assert_eq!(mid.events[0].step(), 12);
        assert!(Scenario::new("d", 32).durable().durable);
        assert!(Scenario::new("f", 32).heal_fallback().runner_heal_fallback);
    }

    #[test]
    fn cloner_materializes_with_ledger() {
        let (attack, ledger) = AdversaryKind::Cloner { target_age: 3 }.materialize();
        assert!(matches!(attack, SecureAttack::Cloner { .. }));
        assert!(ledger.is_some());
        assert!(AdversaryKind::Hub.materialize().1.is_none());
    }
}
