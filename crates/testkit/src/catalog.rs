//! The standard scenario matrix.
//!
//! Twelve scenarios × three seeds = 36 deterministic combinations,
//! covering the paper's adversity axes: message loss (uniform and
//! asymmetric), partitions with heal, churn, catastrophic failure, every
//! `sc-attacks` strategy, and compositions thereof. `quick` mode shrinks
//! populations and horizons for CI while keeping every scenario and every
//! oracle in play.

use crate::scenario::{AdversaryKind, OracleConfig, Scenario};

/// Seeds every scenario is swept under.
pub const MATRIX_SEEDS: [u64; 3] = [1, 2, 3];

/// Relative sizing for a matrix sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatrixSize {
    /// Honest+malicious population of the standard scenario.
    pub n: usize,
    /// Run length of the standard scenario.
    pub cycles: u64,
}

impl MatrixSize {
    /// Full-fidelity sizing (local runs, nightly CI).
    pub fn full() -> Self {
        MatrixSize { n: 96, cycles: 80 }
    }

    /// CI sizing: same scenarios, same oracles, smaller and shorter.
    pub fn quick() -> Self {
        MatrixSize { n: 48, cycles: 40 }
    }
}

/// Oracles for honest-only scenarios: everything that is unconditionally
/// sound, including global unique ownership.
fn honest_oracles(size: MatrixSize, min_fill: Option<f64>) -> OracleConfig {
    OracleConfig {
        warmup: size.cycles / 2,
        unique_ownership: true,
        max_indegree: Some(4 * 8), // 4×ℓ with the matrix's ℓ = 8
        final_connectivity: Some(1.0),
        final_min_fill: min_fill,
        ..OracleConfig::default()
    }
}

/// Oracles for attack scenarios: detection replaces unique ownership
/// (cloning adversaries violate it by design until they are caught).
fn attack_oracles(size: MatrixSize, coverage_floor: f64) -> OracleConfig {
    OracleConfig {
        warmup: size.cycles / 2,
        expect_detection: Some(coverage_floor),
        final_connectivity: Some(1.0),
        ..OracleConfig::default()
    }
}

/// Builds the standard scenario matrix at the given size.
pub fn standard_matrix(size: MatrixSize) -> Vec<Scenario> {
    let n = size.n;
    let cycles = size.cycles;
    let byz = n / 12; // ~8% Byzantine where an adversary is present
    let attack_start = cycles / 8;
    let mid = cycles / 3;
    let heal = 2 * cycles / 3;

    vec![
        // -- honest baselines over the fault axes ----------------------
        Scenario::new("honest-reliable", n)
            .cycles(cycles)
            .oracles(honest_oracles(size, Some(0.7))),
        Scenario::new("honest-lossy-10", n)
            .cycles(cycles)
            .lossy(0.10)
            .oracles(honest_oracles(size, Some(0.6))),
        Scenario::new("honest-asymmetric-loss", n)
            .cycles(cycles)
            .asymmetric_loss(0.15, 0.05, 0.10)
            // The congestion clears late in the run: the loss-regime
            // change exercises `set_loss_at`, and recovery must follow.
            .set_loss_at(heal, (0.0, 0.0, 0.0))
            .oracles(honest_oracles(size, Some(0.6))),
        Scenario::new("honest-partition-heal", n)
            .cycles(cycles)
            .partition_at(mid, 1.0 / 3.0)
            .heal_at(heal)
            .oracles(honest_oracles(size, Some(0.5))),
        Scenario::new("honest-churn", n)
            .cycles(cycles)
            .churn(mid / 2, heal, 0.02, 1.0)
            .oracles(honest_oracles(size, Some(0.5))),
        Scenario::new("honest-mass-failure", n)
            .cycles(cycles)
            .kill_at(mid, 0.3)
            .oracles(honest_oracles(size, Some(0.5))),
        // -- each adversary through the real engine --------------------
        Scenario::new("hub-attack", n)
            .cycles(cycles)
            .adversary(byz, AdversaryKind::Hub, attack_start)
            .oracles(attack_oracles(size, 0.9)),
        Scenario::new("cloning-attack", n)
            .cycles(cycles)
            .adversary(byz, AdversaryKind::Cloner { target_age: 3 }, attack_start)
            .oracles(attack_oracles(size, 0.2)),
        Scenario::new("frequency-attack", n)
            .cycles(cycles)
            .adversary(
                byz.min(4),
                AdversaryKind::Frequency { extra: 2 },
                attack_start,
            )
            .oracles(attack_oracles(size, 0.8)),
        Scenario::new("depletion-attack", n)
            .cycles(cycles)
            .adversary(byz, AdversaryKind::Depletion, attack_start)
            // Depletion never clones, so nothing is provable; the oracle
            // load here is structural: views stay legal, nobody honest is
            // accused, and the overlay survives connected.
            .oracles(OracleConfig {
                warmup: cycles / 2,
                final_connectivity: Some(1.0),
                ..OracleConfig::default()
            }),
        // -- compositions ----------------------------------------------
        Scenario::new("partition-cloning", n)
            .cycles(cycles)
            .adversary(byz, AdversaryKind::Cloner { target_age: 3 }, attack_start)
            .partition_at(mid, 0.25)
            .heal_at(heal)
            .oracles(attack_oracles(size, 0.1)),
        Scenario::new("lossy-churn-hub", n)
            .cycles(cycles)
            .adversary(byz, AdversaryKind::Hub, attack_start)
            .lossy(0.05)
            .churn(mid / 2, heal, 0.01, 0.5)
            // Loss, churn, and an active adversary composed can strand the
            // odd orphan whose every link died; tolerate a small residue.
            .oracles(OracleConfig {
                final_connectivity: Some(0.9),
                ..attack_oracles(size, 0.7)
            }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_meets_the_thirty_combination_floor() {
        for size in [MatrixSize::quick(), MatrixSize::full()] {
            let scenarios = standard_matrix(size);
            assert!(scenarios.len() * MATRIX_SEEDS.len() >= 30);
            // Names are unique (they are the replay filter key).
            let mut names: Vec<_> = scenarios.iter().map(|s| s.name.clone()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), scenarios.len());
        }
    }

    #[test]
    fn matrix_covers_the_required_axes() {
        let scenarios = standard_matrix(MatrixSize::quick());
        assert!(scenarios
            .iter()
            .any(|s| s.has_partition() && s.n_malicious == 0));
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.adversary, AdversaryKind::Cloner { .. })));
        assert!(scenarios.iter().any(|s| s.churn.is_some()));
        assert!(scenarios
            .iter()
            .any(|s| s.n_malicious > 0 && (s.has_partition() || s.churn.is_some())));
    }
}
