//! The standard scenario matrix.
//!
//! Fourteen scenarios × three seeds = 42 deterministic combinations,
//! covering the paper's adversity axes: message loss (uniform and
//! asymmetric), partitions with heal, churn, catastrophic failure,
//! crash-restarts from durable state, every `sc-attacks` strategy, and
//! compositions thereof. Every scenario additionally carries the
//! redemption-cache bound and §VI-A byte-budget oracles. `quick` mode
//! shrinks populations and horizons for CI while keeping every scenario
//! and every oracle in play.

use crate::scenario::{AdversaryKind, OracleConfig, Scenario};
use sc_core::SecureConfig;

/// Seeds every scenario is swept under.
pub const MATRIX_SEEDS: [u64; 3] = [1, 2, 3];

/// Relative sizing for a matrix sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatrixSize {
    /// Honest+malicious population of the standard scenario.
    pub n: usize,
    /// Run length of the standard scenario.
    pub cycles: u64,
    /// Per-cycle oracle sampling stride (`1` = check every cycle). The
    /// scale tier samples sparsely because each check walks every view.
    pub oracle_stride: u64,
    /// Population of the headline `honest-reliable` scenario. Equal to
    /// `n` in the quick/full tiers; the scale tier stretches just this
    /// one scenario to its 20k ceiling so the sweep exercises the
    /// engine's upper range without tripling the whole matrix's cost.
    pub headline_n: usize,
    /// Protocol view length ℓ. The quick/full tiers run the harness's
    /// historical ℓ = 8; the scale tier runs the paper's proposed
    /// configuration (§VI-A: ℓ = 20, s = 3) — at thousands of nodes a
    /// compressed view does not survive the mass view purge that follows
    /// evicting a hub adversary, and the overlay fragments.
    pub view_len: usize,
}

impl MatrixSize {
    /// Full-fidelity sizing (local runs, nightly CI).
    pub fn full() -> Self {
        MatrixSize {
            n: 96,
            cycles: 80,
            oracle_stride: 1,
            headline_n: 96,
            view_len: 8,
        }
    }

    /// CI sizing: same scenarios, same oracles, smaller and shorter.
    pub fn quick() -> Self {
        MatrixSize {
            n: 48,
            cycles: 40,
            oracle_stride: 1,
            headline_n: 48,
            view_len: 8,
        }
    }

    /// Scale-tier sizing: the same twelve scenarios at 5k nodes (20k for
    /// the headline honest scenario), with per-cycle oracles sampled
    /// every few cycles. Run it in release mode — debug builds are an
    /// order of magnitude slower at these populations:
    ///
    /// ```text
    /// SC_MATRIX=scale cargo test --release --test scenario_matrix -- --nocapture
    /// ```
    pub fn scale() -> Self {
        MatrixSize {
            n: 5_000,
            cycles: 32,
            oracle_stride: 8,
            headline_n: 20_000,
            view_len: 20,
        }
    }
}

/// §VI-A per-node-per-cycle traffic ceiling, in paper bytes, for the
/// byte-budget oracle. Measured across the quick tier (ℓ = 8): the
/// busiest node of the hottest scenario (partition-cloning, which
/// combines proof floods with post-heal catch-up) averages ≈12 KiB per
/// cycle, under half this ceiling — enough headroom for seed variance,
/// tight enough to catch a quadratic-traffic regression immediately
/// (the runner's headroom test pins the measurement). Scaled by ℓ
/// because both the per-exchange payload (ownership chains grow to the
/// descriptor lifetime ≈ ℓ) and the proof-flood fanout (one flood per
/// neighbor) grow linearly with the view length.
pub(crate) fn byte_budget(size: MatrixSize) -> u64 {
    4 * 1024 * size.view_len as u64
}

/// Oracles for honest-only scenarios: everything that is unconditionally
/// sound, including global unique ownership.
fn honest_oracles(size: MatrixSize, min_fill: Option<f64>) -> OracleConfig {
    OracleConfig {
        warmup: size.cycles / 2,
        stride: size.oracle_stride,
        unique_ownership: true,
        max_indegree: Some(4 * size.view_len), // 4×ℓ (Figure 2 tail)
        final_connectivity: Some(1.0),
        final_min_fill: min_fill,
        ..OracleConfig::default()
    }
}

/// Oracles for attack scenarios: detection replaces unique ownership
/// (cloning adversaries violate it by design until they are caught).
fn attack_oracles(size: MatrixSize, coverage_floor: f64) -> OracleConfig {
    OracleConfig {
        warmup: size.cycles / 2,
        stride: size.oracle_stride,
        expect_detection: Some(coverage_floor),
        final_connectivity: Some(1.0),
        ..OracleConfig::default()
    }
}

/// Builds the standard scenario matrix at the given size.
pub fn standard_matrix(size: MatrixSize) -> Vec<Scenario> {
    let n = size.n;
    let cycles = size.cycles;
    let cfg = SecureConfig::default()
        .with_view_len(size.view_len)
        .with_swap_len(3);
    let byz = n / 12; // ~8% Byzantine where an adversary is present
    let attack_start = cycles / 8;
    let mid = cycles / 3;
    let heal = 2 * cycles / 3;

    vec![
        // -- honest baselines over the fault axes ----------------------
        Scenario::new("honest-reliable", size.headline_n)
            .cycles(cycles)
            .config(cfg)
            .oracles(honest_oracles(size, Some(0.7))),
        Scenario::new("honest-lossy-10", n)
            .cycles(cycles)
            .config(cfg)
            .lossy(0.10)
            .oracles(honest_oracles(size, Some(0.6))),
        Scenario::new("honest-asymmetric-loss", n)
            .cycles(cycles)
            .config(cfg)
            .asymmetric_loss(0.15, 0.05, 0.10)
            // The congestion clears late in the run: the loss-regime
            // change exercises `set_loss_at`, and recovery must follow.
            .set_loss_at(heal, (0.0, 0.0, 0.0))
            .oracles(honest_oracles(size, Some(0.6))),
        Scenario::new("honest-partition-heal", n)
            .cycles(cycles)
            .config(cfg)
            .partition_at(mid, 1.0 / 3.0)
            .heal_at(heal)
            // A third of the network keeps gossiping internally, never
            // starves, and so never sends rejoin pings — reconnection
            // needs the harness's bootstrap-server stand-in.
            .heal_fallback()
            .oracles(honest_oracles(size, Some(0.5))),
        Scenario::new("honest-island-rejoin", n)
            .cycles(cycles)
            .config(cfg)
            // A lone node severed from everyone: its links all die, it
            // drains to starvation, and after the heal it must re-enter
            // through the protocol's own §V-A rejoin pings — no harness
            // re-sponsorship (the fallback stays off).
            .partition_at(cycles / 4, 1.2 / n as f64)
            .heal_at(cycles / 2)
            .oracles(honest_oracles(size, Some(0.5))),
        Scenario::new("honest-crash-restart", n)
            .cycles(cycles)
            .config(cfg)
            // Two kill -9 + recover-from-backend waves. Unique ownership
            // stays on: recovery must never resurrect a descriptor whose
            // ownership left in a previous life.
            .restart_at(mid, 0.25)
            // The second wave strikes *inside* a cycle, halfway through
            // the turn order: nodes that already gossiped this cycle are
            // replaced by recovered instances before the rest fire.
            .restart_mid_cycle_at(heal, 0.25, 0.5)
            .oracles(honest_oracles(size, Some(0.5))),
        Scenario::new("honest-churn", n)
            .cycles(cycles)
            .config(cfg)
            .churn(mid / 2, heal, 0.02, 1.0)
            .oracles(honest_oracles(size, Some(0.5))),
        Scenario::new("honest-mass-failure", n)
            .cycles(cycles)
            .config(cfg)
            .kill_at(mid, 0.3)
            .oracles(honest_oracles(size, Some(0.5))),
        // -- each adversary through the real engine --------------------
        Scenario::new("hub-attack", n)
            .cycles(cycles)
            .config(cfg)
            .adversary(byz, AdversaryKind::Hub, attack_start)
            .oracles(attack_oracles(size, 0.9)),
        Scenario::new("cloning-attack", n)
            .cycles(cycles)
            .config(cfg)
            .adversary(byz, AdversaryKind::Cloner { target_age: 3 }, attack_start)
            .oracles(attack_oracles(size, 0.2)),
        Scenario::new("frequency-attack", n)
            .cycles(cycles)
            .config(cfg)
            .adversary(
                byz.min(4),
                AdversaryKind::Frequency { extra: 2 },
                attack_start,
            )
            .oracles(attack_oracles(size, 0.8)),
        Scenario::new("depletion-attack", n)
            .cycles(cycles)
            .config(cfg)
            .adversary(byz, AdversaryKind::Depletion, attack_start)
            // Depletion never clones, so nothing is provable; the oracle
            // load here is structural: views stay legal, nobody honest is
            // accused, and the overlay survives connected.
            .oracles(OracleConfig {
                warmup: cycles / 2,
                stride: size.oracle_stride,
                final_connectivity: Some(1.0),
                ..OracleConfig::default()
            }),
        // -- compositions ----------------------------------------------
        Scenario::new("partition-cloning", n)
            .cycles(cycles)
            .config(cfg)
            .adversary(byz, AdversaryKind::Cloner { target_age: 3 }, attack_start)
            .partition_at(mid, 0.25)
            .heal_at(heal)
            .heal_fallback()
            .oracles(attack_oracles(size, 0.1)),
        Scenario::new("lossy-churn-hub", n)
            .cycles(cycles)
            .config(cfg)
            .adversary(byz, AdversaryKind::Hub, attack_start)
            .lossy(0.05)
            .churn(mid / 2, heal, 0.01, 0.5)
            // Loss, churn, and an active adversary composed can strand the
            // odd orphan whose every link died; tolerate a small residue.
            .oracles(OracleConfig {
                final_connectivity: Some(0.9),
                ..attack_oracles(size, 0.7)
            }),
    ]
    .into_iter()
    .map(|mut sc| {
        // Every scenario — honest or adversarial — carries the two
        // resource oracles: the §V-C redemption cache stays within its
        // configured entry cap, and per-node traffic stays within the
        // §VI-A budget.
        sc.oracles.redemption_bound = Some(sc.cfg.redemption_cache_max_entries);
        sc.oracles.byte_budget_per_cycle = Some(byte_budget(size));
        sc
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_tier_spans_five_to_twenty_thousand_nodes() {
        let size = MatrixSize::scale();
        let scenarios = standard_matrix(size);
        assert!(scenarios.iter().all(|s| s.n >= 5_000));
        assert!(scenarios.iter().any(|s| s.n >= 20_000));
        assert!(scenarios.iter().all(|s| s.oracles.stride > 1));
        // The scale tier runs the paper's proposed configuration (§VI-A).
        assert!(scenarios.iter().all(|s| s.cfg.view_len == 20));
        // The quick tier is untouched by the scale tier's existence.
        let quick = standard_matrix(MatrixSize::quick());
        assert!(quick
            .iter()
            .all(|s| s.n == 48 && s.oracles.stride == 1 && s.cfg.view_len == 8));
    }

    #[test]
    fn matrix_meets_the_thirty_combination_floor() {
        for size in [MatrixSize::quick(), MatrixSize::full(), MatrixSize::scale()] {
            let scenarios = standard_matrix(size);
            assert!(scenarios.len() * MATRIX_SEEDS.len() >= 30);
            // Names are unique (they are the replay filter key).
            let mut names: Vec<_> = scenarios.iter().map(|s| s.name.clone()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), scenarios.len());
        }
    }

    #[test]
    fn matrix_covers_the_required_axes() {
        let scenarios = standard_matrix(MatrixSize::quick());
        assert!(scenarios
            .iter()
            .any(|s| s.has_partition() && s.n_malicious == 0));
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.adversary, AdversaryKind::Cloner { .. })));
        assert!(scenarios.iter().any(|s| s.churn.is_some()));
        assert!(scenarios
            .iter()
            .any(|s| s.n_malicious > 0 && (s.has_partition() || s.churn.is_some())));
        // Durable-state coverage: crash-restarts, and a partition healed
        // purely by the protocol's rejoin pings (no harness fallback).
        assert!(scenarios.iter().any(|s| s.has_restart() && s.durable));
        assert!(scenarios
            .iter()
            .any(|s| s.has_partition() && !s.runner_heal_fallback));
        // The resource oracles ride along on every scenario.
        assert!(scenarios
            .iter()
            .all(|s| s.oracles.redemption_bound.is_some()
                && s.oracles.byte_budget_per_cycle.is_some()));
    }
}
