//! Real-process loopback clusters: spawn, scrape, churn, and stop a
//! fleet of `sc-node` daemons on 127.0.0.1.
//!
//! This is the live-cluster counterpart of [`crate::net`]: instead of
//! nodes inside one engine, each member is an OS process speaking the
//! daemon's framed TCP protocol, and state is scraped over the control
//! socket into [`NetSnapshot`]s that the very same [`crate::oracles`]
//! audit. The harness owns process lifecycle — members are killed on
//! drop, so a panicking test cannot leak daemons.
//!
//! Everything is parameterized by one seed (`SC_NODE_SEED` convention),
//! which fixes the key schedule, the port search, and the protocol RNG of
//! every member — the moral equivalent of the scenario matrix's replay
//! coordinates for a wall-clock-driven cluster.

use crate::snapshot::NetSnapshot;
use sc_node::{ControlClient, StatusReport};
use sc_sim::Addr;
use std::collections::BTreeMap;
use std::io::Read;
use std::net::{Ipv4Addr, SocketAddrV4, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Sizing and timing for a loopback cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Founding members (ring bootstrap).
    pub n: usize,
    /// Cluster seed: key schedule, RNG, and port search derive from it.
    pub seed: u64,
    /// Wall-clock gossip period per member.
    pub cycle_ms: u64,
    /// View size ℓ.
    pub view_len: usize,
    /// Gossip length g.
    pub swap_len: usize,
    /// Signature scheme flag value (`keyed` or `schnorr`).
    pub scheme: &'static str,
    /// Per-RPC reply deadline.
    pub rpc_timeout_ms: u64,
    /// Shared-clock cycle at which members stop gossiping and linger for
    /// quiescent scraping (`0` = run until shutdown).
    pub stop_cycle: u64,
    /// How far in the future the shared epoch starts (start-up slack for
    /// process spawning).
    pub start_delay_ms: u64,
    /// Durable-state directory passed to every member as `--state-dir`.
    /// Required for [`ProcessCluster::restart`]: a killed member's
    /// replacement recovers from `<dir>/sc-node-<addr>.log`.
    pub state_dir: Option<PathBuf>,
    /// Fault spec every member boots with (`--fault-spec`). `None` spawns
    /// clean; [`ProcessCluster::broadcast_fault`] can still inject faults
    /// mid-run over the control channel.
    pub fault_spec: Option<sc_core::FaultSpec>,
}

impl ClusterConfig {
    /// A quick-tier sizing: `n` members, 50 ms cycles, small views, and
    /// the fast keyed-hash scheme.
    pub fn quick(n: usize, seed: u64) -> ClusterConfig {
        ClusterConfig {
            n,
            seed,
            cycle_ms: 50,
            view_len: 6,
            swap_len: 3,
            scheme: "keyed",
            rpc_timeout_ms: 40,
            stop_cycle: 0,
            start_delay_ms: 800,
            state_dir: None,
            fault_spec: None,
        }
    }

    /// Runs every member with durable state under `dir`.
    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> ClusterConfig {
        self.state_dir = Some(dir.into());
        self
    }

    /// Boots every member with `spec` already installed.
    pub fn with_fault_spec(mut self, spec: sc_core::FaultSpec) -> ClusterConfig {
        self.fault_spec = Some(spec);
        self
    }
}

/// A fleet of live `sc-node` processes.
pub struct ProcessCluster {
    bin: PathBuf,
    cfg: ClusterConfig,
    base_addr: Addr,
    epoch_ms: u64,
    start_cycle: u64,
    members: BTreeMap<Addr, Child>,
    next_index: usize,
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn port_free(port: Addr) -> bool {
    TcpListener::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port as u16)).is_ok()
}

impl ProcessCluster {
    /// Spawns `cfg.n` founding members of a fresh cluster.
    ///
    /// The base port is searched deterministically from the seed (with the
    /// PID folded in so concurrent test processes diverge), probing until
    /// a contiguous block of `n + 32` loopback ports binds cleanly.
    ///
    /// # Errors
    ///
    /// No free port block, or a spawn failure.
    pub fn launch(bin: impl Into<PathBuf>, cfg: ClusterConfig) -> std::io::Result<ProcessCluster> {
        let bin = bin.into();
        let want = cfg.n + 32;
        let mut base = 0;
        for attempt in 0..64u64 {
            let h = cfg
                .seed
                .wrapping_mul(0x9e37_79b9)
                .wrapping_add(std::process::id() as u64)
                .wrapping_add(attempt.wrapping_mul(977));
            let candidate = 21_000 + (h % 40_000) as Addr;
            if (candidate..candidate + want as Addr).all(port_free) {
                base = candidate;
                break;
            }
        }
        if base == 0 {
            return Err(std::io::Error::other("no free loopback port block"));
        }
        let epoch_ms = unix_ms() + cfg.start_delay_ms;
        let mut cluster = ProcessCluster {
            bin,
            base_addr: base,
            epoch_ms,
            start_cycle: cfg.view_len as u64,
            members: BTreeMap::new(),
            next_index: cfg.n,
            cfg,
        };
        for i in 0..cluster.cfg.n {
            let addr = base + i as Addr;
            let child = cluster.spawn(addr, i, None)?;
            cluster.members.insert(addr, child);
        }
        Ok(cluster)
    }

    fn spawn(&self, addr: Addr, index: usize, sponsor: Option<Addr>) -> std::io::Result<Child> {
        let c = &self.cfg;
        let mut cmd = Command::new(&self.bin);
        cmd.args(["--addr", &addr.to_string()])
            .args(["--seed", &c.seed.to_string()])
            .args(["--index", &index.to_string()])
            .args(["--cycle-ms", &c.cycle_ms.to_string()])
            .args(["--epoch-millis", &self.epoch_ms.to_string()])
            .args(["--view-len", &c.view_len.to_string()])
            .args(["--swap-len", &c.swap_len.to_string()])
            .args(["--scheme", c.scheme])
            .args(["--rpc-timeout-ms", &c.rpc_timeout_ms.to_string()])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if c.stop_cycle > 0 {
            cmd.args(["--stop-cycle", &c.stop_cycle.to_string()]);
        }
        if let Some(dir) = &c.state_dir {
            cmd.arg("--state-dir").arg(dir);
        }
        if let Some(spec) = &c.fault_spec {
            cmd.args(["--fault-spec", &spec.to_string()]);
        }
        match sponsor {
            Some(s) => {
                cmd.args(["--sponsor", &s.to_string()]);
            }
            None => {
                cmd.args(["--cluster-size", &c.n.to_string()])
                    .args(["--base-addr", &self.base_addr.to_string()]);
            }
        }
        cmd.spawn()
    }

    /// Addresses of members the harness has not killed.
    pub fn addrs(&self) -> Vec<Addr> {
        self.members.keys().copied().collect()
    }

    /// The cluster seed (for replay lines).
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// The shared-clock cycle the cluster is currently in.
    pub fn wall_cycle(&self) -> u64 {
        self.start_cycle + unix_ms().saturating_sub(self.epoch_ms) / self.cfg.cycle_ms
    }

    /// Scrapes one member's status.
    pub fn status_of(&self, addr: Addr) -> Option<StatusReport> {
        let timeout = Duration::from_millis(500);
        let mut client = ControlClient::connect(addr, timeout).ok()?;
        client.status(timeout).ok()
    }

    /// Scrapes every live member, skipping any that fail to answer.
    pub fn statuses(&self) -> Vec<StatusReport> {
        self.addrs()
            .into_iter()
            .filter_map(|a| self.status_of(a))
            .collect()
    }

    /// Scrapes every live member into a snapshot; `None` unless *all*
    /// members answered (partial snapshots would fake ownership holes).
    pub fn snapshot(&self) -> Option<NetSnapshot> {
        let addrs = self.addrs();
        let reports: Vec<StatusReport> = addrs.iter().filter_map(|&a| self.status_of(a)).collect();
        (reports.len() == addrs.len()).then(|| NetSnapshot::from_reports(reports))
    }

    /// Reconfigures one member's fault injection over the control channel.
    /// The daemon installs the new spec at its next cycle boundary, so no
    /// gossip cycle straddles two specs. Control frames themselves are
    /// exempt from injection, so this works even through a full partition.
    pub fn set_fault(&self, addr: Addr, spec: &sc_core::FaultSpec) -> bool {
        let timeout = Duration::from_millis(500);
        let Ok(mut client) = ControlClient::connect(addr, timeout) else {
            return false;
        };
        client.set_fault(spec, timeout).is_ok()
    }

    /// [`Self::set_fault`] for every live member; returns how many acked.
    pub fn broadcast_fault(&self, spec: &sc_core::FaultSpec) -> usize {
        self.addrs()
            .into_iter()
            .filter(|&a| self.set_fault(a, spec))
            .count()
    }

    /// Waits until every member reports `joined` and a cycle ≥ `cycle`,
    /// or the deadline passes. Returns whether the cluster got there.
    pub fn wait_cycle(&self, cycle: u64, deadline: Duration) -> bool {
        let until = Instant::now() + deadline;
        while Instant::now() < until {
            let reports = self.statuses();
            if reports.len() == self.members.len()
                && reports.iter().all(|r| r.joined && r.cycle >= cycle)
            {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    }

    /// Kills one member outright (no goodbye — real churn).
    pub fn kill(&mut self, addr: Addr) -> bool {
        let Some(mut child) = self.members.remove(&addr) else {
            return false;
        };
        let _ = child.kill();
        let _ = child.wait();
        true
    }

    /// `kill -9`s one member and respawns it on the same address with the
    /// same identity index. With a [`ClusterConfig::state_dir`] the
    /// replacement recovers its view, blacklist, and emission marker from
    /// the survived log; without one it comes back amnesiac (which is
    /// exactly the self-incrimination bug the durable backends fix).
    ///
    /// # Errors
    ///
    /// Spawn failure, or the port not freeing up after the kill.
    pub fn restart(&mut self, addr: Addr) -> std::io::Result<bool> {
        if !self.kill(addr) {
            return Ok(false);
        }
        // The dead process's listener can linger briefly; wait for the
        // kernel to release the port before respawning on it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !port_free(addr) {
            if Instant::now() >= deadline {
                return Err(std::io::Error::other("port still bound after kill"));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let index = (addr - self.base_addr) as usize;
        let child = self.spawn(addr, index, None)?;
        self.members.insert(addr, child);
        Ok(true)
    }

    /// Spawns a joiner that bootstraps through `sponsor`'s §V-A handshake.
    /// The joiner gets the next fresh identity index and the next free
    /// port above the founders' block.
    ///
    /// # Errors
    ///
    /// Spawn failures or no free port.
    pub fn spawn_joiner(&mut self, sponsor: Addr) -> std::io::Result<Addr> {
        for _ in 0..32 {
            let index = self.next_index;
            self.next_index += 1;
            let addr = self.base_addr + index as Addr;
            if !port_free(addr) {
                continue;
            }
            let child = self.spawn(addr, index, Some(sponsor))?;
            self.members.insert(addr, child);
            return Ok(addr);
        }
        Err(std::io::Error::other("no free joiner port"))
    }

    /// Sends every member a shutdown frame, waits for the processes to
    /// exit, and returns their stdout summaries (one line per member).
    pub fn shutdown_all(&mut self) -> Vec<String> {
        for addr in self.addrs() {
            if let Ok(mut client) = ControlClient::connect(addr, Duration::from_millis(500)) {
                let _ = client.shutdown();
            }
        }
        let mut summaries = Vec::new();
        let members = std::mem::take(&mut self.members);
        for (_, mut child) in members {
            // The daemon exits promptly on CtrlShutdown; if the frame was
            // lost, kill rather than hang the test run.
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() >= deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                    Err(_) => break,
                }
            }
            if let Some(mut out) = child.stdout.take() {
                let mut s = String::new();
                let _ = out.read_to_string(&mut s);
                let line = s.trim();
                if !line.is_empty() {
                    summaries.push(line.to_string());
                }
            }
        }
        summaries
    }
}

impl Drop for ProcessCluster {
    fn drop(&mut self) {
        for (_, child) in self.members.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}
