//! End-to-end attack dynamics: each test checks the qualitative claim the
//! paper makes about one attack/defense pairing, at reduced scale.

use sc_attacks::{
    build_legacy_network, legacy_malicious_link_fraction, CloneLedger, LegacyNetParams,
    SecureAttack,
};
use sc_core::{ProofKind, SecureConfig};
use sc_testkit::{
    blacklist_coverage, build_secure_network, malicious_link_fraction, ns_link_fraction,
    proofs_generated, SecureNetParams,
};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

// ----------------------------------------------------------------------
// Legacy Cyclon: the Figure 3 takeover
// ----------------------------------------------------------------------

#[test]
fn legacy_cyclon_is_taken_over_by_view_len_attackers() {
    // Figure 3 in miniature: ℓ malicious nodes suffice for takeover.
    let cfg = sc_cyclon::CyclonConfig {
        view_len: 8,
        swap_len: 3,
    };
    let (mut engine, malicious) = build_legacy_network(LegacyNetParams {
        n: 150,
        n_malicious: 8,
        cfg,
        attack_start: 20,
        seed: 7,
    });
    engine.run_cycles(20);
    let before = legacy_malicious_link_fraction(&engine, &malicious);
    assert!(
        before < 0.20,
        "pre-attack pollution proportional to population: {before}"
    );
    engine.run_cycles(480);
    let after = legacy_malicious_link_fraction(&engine, &malicious);
    assert!(
        after > 0.85,
        "legacy Cyclon succumbs to the hub attack: {after}"
    );
}

#[test]
fn legacy_takeover_is_faster_with_larger_swap_length() {
    let frac_at = |swap_len: usize| {
        let cfg = sc_cyclon::CyclonConfig {
            view_len: 8,
            swap_len,
        };
        let (mut engine, malicious) = build_legacy_network(LegacyNetParams {
            n: 150,
            n_malicious: 8,
            cfg,
            attack_start: 20,
            seed: 11,
        });
        engine.run_cycles(60);
        legacy_malicious_link_fraction(&engine, &malicious)
    };
    let slow = frac_at(2);
    let fast = frac_at(6);
    assert!(
        fast > slow,
        "larger swap length pollutes faster: s=6 → {fast} vs s=2 → {slow}"
    );
}

// ----------------------------------------------------------------------
// SecureCyclon: the Figure 5 defense
// ----------------------------------------------------------------------

fn small_secure_cfg() -> SecureConfig {
    SecureConfig::default().with_view_len(8).with_swap_len(3)
}

#[test]
fn secure_cyclon_detects_and_evicts_hub_attackers() {
    let mut params = SecureNetParams::new(150, 8, SecureAttack::Hub);
    params.cfg = small_secure_cfg();
    params.attack_start = 20;
    params.seed = 3;
    let mut net = build_secure_network(params);

    net.engine.run_cycles(12); // bootstrap starts at cycle ℓ=8
    let before = malicious_link_fraction(&net.engine, &net.malicious_ids);
    assert!(before < 0.2, "pre-attack pollution small: {before}");

    net.engine.run_cycles(60);
    let coverage = blacklist_coverage(&net.engine, &net.malicious_ids);
    let after = malicious_link_fraction(&net.engine, &net.malicious_ids);
    let (cloning, _freq) = proofs_generated(&net.engine);
    assert!(cloning > 0, "cloning violations were proven");
    assert!(
        coverage > 0.95,
        "attackers are blacklisted network-wide: coverage {coverage}"
    );
    assert!(
        after < 0.02,
        "malicious links purged after eviction: {after}"
    );
}

#[test]
fn secure_cyclon_survives_forty_percent_attackers() {
    // Figure 5 bottom in miniature: 40% of the network is malicious.
    let mut params = SecureNetParams::new(120, 48, SecureAttack::Hub);
    params.cfg = small_secure_cfg();
    params.attack_start = 20;
    params.seed = 5;
    let mut net = build_secure_network(params);
    net.engine.run_cycles(100);
    let coverage = blacklist_coverage(&net.engine, &net.malicious_ids);
    let after = malicious_link_fraction(&net.engine, &net.malicious_ids);
    assert!(
        coverage > 0.8,
        "most attackers blacklisted even at 40%: {coverage}"
    );
    assert!(
        after < 0.25,
        "malicious link share collapses from its 40% baseline: {after}"
    );
}

// ----------------------------------------------------------------------
// Link depletion: the Figure 6 tit-for-tat comparison
// ----------------------------------------------------------------------

fn depletion_ns_fraction(tit_for_tat: bool, seed: u64) -> f64 {
    let mut params = SecureNetParams::new(150, 30, SecureAttack::Depletion);
    params.cfg = small_secure_cfg().with_tit_for_tat(tit_for_tat);
    params.attack_start = 20;
    params.seed = seed;
    let mut net = build_secure_network(params);
    net.engine.run_cycles(80);
    ns_link_fraction(&net.engine)
}

#[test]
fn tit_for_tat_limits_link_depletion() {
    let without = depletion_ns_fraction(false, 13);
    let with = depletion_ns_fraction(true, 13);
    assert!(
        without > 0.10,
        "depletion attack creates non-swappable links without TFT: {without}"
    );
    assert!(
        with < without / 2.0,
        "tit-for-tat at least halves depletion: with {with}, without {without}"
    );
}

#[test]
fn healthy_network_has_no_ns_links() {
    let mut params = SecureNetParams::new(100, 0, SecureAttack::None);
    params.cfg = small_secure_cfg();
    params.seed = 17;
    let mut net = build_secure_network(params);
    net.engine.run_cycles(60);
    let ns = ns_link_fraction(&net.engine);
    // At this toy scale responders occasionally run dry mid-exchange,
    // producing a handful of legitimate NS copies; at the paper's scale
    // (1k nodes, ℓ=20 — see experiments fig6) the baseline is ≈0.
    assert!(ns < 0.03, "Figure 6 pre-attack baseline ≈ 0: {ns}");
}

// ----------------------------------------------------------------------
// Cloning at target age: the Figure 7 machinery
// ----------------------------------------------------------------------

#[test]
fn age_targeted_clones_are_detected_and_logged() {
    let ledger = Arc::new(Mutex::new(CloneLedger::new()));
    let mut params = SecureNetParams::new(
        120,
        6,
        SecureAttack::Cloner {
            target_age: 3,
            ledger: Arc::clone(&ledger),
        },
    );
    params.cfg = small_secure_cfg();
    // Detection-ratio measurements keep eviction off so attackers survive
    // to produce many events (see EXPERIMENTS.md).
    params.cfg.eviction_enabled = false;
    params.attack_start = 15;
    params.seed = 23;
    let mut net = build_secure_network(params);
    net.engine.run_cycles(80);

    let events = ledger.lock().unwrap().events.clone();
    assert!(
        events.len() >= 10,
        "attackers performed duplications: {}",
        events.len()
    );
    for e in &events {
        assert!(e.age_cycles >= 3, "age at duplication honors target");
    }

    // Count events later matched by an honest cloning proof.
    let cloned_ids: HashSet<_> = events.iter().map(|e| e.desc).collect();
    let mut detected = HashSet::new();
    for (_, node) in net.engine.nodes() {
        let Some(h) = node.honest() else { continue };
        for rec in h.proof_log() {
            if rec.kind == ProofKind::Cloning {
                if let Some(id) = rec.descriptor {
                    if cloned_ids.contains(&id) {
                        detected.insert(id);
                    }
                }
            }
        }
    }
    let ratio = detected.len() as f64 / events.len() as f64;
    assert!(
        ratio > 0.3,
        "young clones are detected with good probability: {ratio} ({}/{})",
        detected.len(),
        events.len()
    );
}

// ----------------------------------------------------------------------
// Frequency violations
// ----------------------------------------------------------------------

#[test]
fn frequency_violators_are_proven_and_blacklisted() {
    let mut params = SecureNetParams::new(100, 4, SecureAttack::Frequency { extra: 2 });
    params.cfg = small_secure_cfg();
    params.attack_start = 15;
    params.seed = 29;
    let mut net = build_secure_network(params);
    net.engine.run_cycles(60);
    let (_cloning, freq) = proofs_generated(&net.engine);
    assert!(freq > 0, "frequency proofs generated");
    let coverage = blacklist_coverage(&net.engine, &net.malicious_ids);
    assert!(
        coverage > 0.9,
        "frequency violators blacklisted: {coverage}"
    );
}

#[test]
fn no_false_positives_with_malicious_control_group() {
    // Malicious nodes that never deviate must never be blacklisted.
    let mut params = SecureNetParams::new(100, 20, SecureAttack::None);
    params.cfg = small_secure_cfg();
    params.seed = 31;
    let mut net = build_secure_network(params);
    net.engine.run_cycles(60);
    let coverage = blacklist_coverage(&net.engine, &net.malicious_ids);
    assert_eq!(coverage, 0.0, "no accusations without violations");
    let (cloning, freq) = proofs_generated(&net.engine);
    assert_eq!((cloning, freq), (0, 0));
}
