//! `bench-report` — runs the verification-focused benchmark suite with a
//! plain `Instant`-based harness and writes a machine-readable JSON
//! baseline (`BENCH_<n>.json`).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sc-bench --bin bench-report             # full run, auto-numbered file
//! cargo run --release -p sc-bench --bin bench-report -- --quick  # CI smoke (~seconds)
//! cargo run --release -p sc-bench --bin bench-report -- --out BENCH_2.json
//! ```
//!
//! `--quick` shrinks the per-bench time budget so CI executes every
//! measured code path without burning minutes; committed baselines should
//! come from a full run on an idle machine.

use sc_attacks::{build_legacy_network, LegacyNetParams, SecureAttack};
use sc_bench::report::Report;
use sc_bench::{chained, pool, warmed_memo, CHAIN_LENGTHS};
use sc_core::SecureConfig;
use sc_crypto::{schnorr61, sha256, Keypair, Scheme};
use sc_cyclon::CyclonConfig;
use sc_testkit::{build_secure_network, SecureNetParams};
use std::time::Duration;

/// One past the highest existing `BENCH_<n>.json` index, so auto-numbered
/// baselines stay monotonic even when earlier indices are missing.
fn next_bench_path() -> String {
    let mut next = 0u32;
    if let Ok(entries) = std::fs::read_dir(".") {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let n = name
                .to_string_lossy()
                .strip_prefix("BENCH_")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<u32>().ok());
            if let Some(n) = n {
                next = next.max(n + 1);
            }
        }
    }
    format!("BENCH_{next}.json")
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(args.next().expect("--out requires a path")),
            "--help" | "-h" => {
                println!("usage: bench-report [--quick] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let (budget, samples, sim_budget) = if quick {
        (Duration::from_millis(30), 5, Duration::from_millis(200))
    } else {
        (Duration::from_millis(300), 11, Duration::from_secs(3))
    };

    let mut report = Report {
        mode: if quick { "quick" } else { "full" }.into(),
        ..Report::default()
    };

    // -- crypto substrate ---------------------------------------------
    let data = vec![0xabu8; 1024];
    report.bench("sha256/1024B", budget, samples, || {
        std::hint::black_box(sha256(std::hint::black_box(&data)));
    });
    // Multi-block throughput at a size where per-call fixed costs vanish.
    let big = vec![0xcdu8; 8192];
    report.bench("sha256/8KiB", budget, samples, || {
        std::hint::black_box(sha256(std::hint::black_box(&big)));
    });

    let kp = Keypair::from_seed(Scheme::Schnorr61, [7; 32]);
    let msg = [0x5au8; 128];
    let sig = kp.sign(&msg);
    let bytes = sig.as_bytes();
    let pk = u64::from_be_bytes(kp.public().as_bytes()[1..9].try_into().unwrap());
    let r = u64::from_be_bytes(bytes[1..9].try_into().unwrap());
    let s = u64::from_be_bytes(bytes[9..17].try_into().unwrap());
    report.bench("schnorr61/verify_legacy", budget, samples, || {
        assert!(schnorr61::reference::verify(
            pk,
            std::hint::black_box(&msg),
            std::hint::black_box(r),
            s
        ));
    });
    report.bench("schnorr61/verify_fast", budget, samples, || {
        assert!(schnorr61::verify_fast(
            pk,
            std::hint::black_box(&msg),
            std::hint::black_box(r),
            s
        ));
    });
    let mut e = 1u64;
    report.bench("schnorr61/powmod_g", budget, samples, || {
        e = e.wrapping_mul(6364136223846793005).wrapping_add(1);
        std::hint::black_box(schnorr61::powmod(schnorr61::G, std::hint::black_box(e)));
    });
    let mut e = 1u64;
    report.bench("schnorr61/g_powmod", budget, samples, || {
        e = e.wrapping_mul(6364136223846793005).wrapping_add(1);
        std::hint::black_box(schnorr61::g_powmod(std::hint::black_box(e)));
    });
    report.bench("schnorr61/sign", budget, samples, || {
        std::hint::black_box(kp.sign(std::hint::black_box(&msg)));
    });

    // Batched verification: one RLC multi-exponentiation pass over the
    // whole batch. Distinct keys and messages, like an exchange's intake.
    let batch_keys: Vec<Keypair> = (0..64)
        .map(|i| Keypair::from_seed(Scheme::Schnorr61, [i as u8 + 1; 32]))
        .collect();
    let batch_msgs: Vec<[u8; 32]> = (0..64u8).map(|i| [i; 32]).collect();
    let batch_sigs: Vec<(u64, u64, u64)> = batch_keys
        .iter()
        .zip(&batch_msgs)
        .map(|(k, m)| {
            let sig = k.sign(m);
            let bytes = sig.as_bytes();
            (
                u64::from_be_bytes(k.public().as_bytes()[1..9].try_into().unwrap()),
                u64::from_be_bytes(bytes[1..9].try_into().unwrap()),
                u64::from_be_bytes(bytes[9..17].try_into().unwrap()),
            )
        })
        .collect();
    for n in [8usize, 64] {
        let items: Vec<schnorr61::BatchItem<'_>> = batch_sigs[..n]
            .iter()
            .zip(&batch_msgs)
            .map(|(&(pk, r, s), m)| schnorr61::BatchItem { pk, msg: m, r, s })
            .collect();
        report.bench(
            &format!("schnorr61/batch_verify_{n}"),
            budget,
            samples,
            || {
                assert!(schnorr61::batch_verify(std::hint::black_box(&items)).is_ok());
            },
        );
    }

    // -- descriptor verification by chain length ----------------------
    let keys = pool(Scheme::Schnorr61, 16);
    for t in CHAIN_LENGTHS {
        let d = chained(&keys, t);
        report.bench(
            &format!("descriptor/verify_cold/{t}"),
            budget,
            samples,
            || {
                d.verify().unwrap();
            },
        );
        let mut memo = warmed_memo(&d, 1024);
        report.bench(
            &format!("descriptor/verify_memoized/{t}"),
            budget,
            samples,
            || {
                d.verify_with(&mut memo).unwrap();
            },
        );
    }
    // Incremental: one appended link over a memoized prefix (the memo is
    // cloned per iteration so the result never becomes an exact hit; the
    // clone itself is a few hundred nanoseconds of overhead). Measured at
    // two prefix lengths — since descriptors carry their prefix digests,
    // the cost must be flat in chain length (no O(chain) hash walk).
    for t in [16usize, 64] {
        let prefix = chained(&keys, t);
        let owner = &keys[t % keys.len()];
        let extended = prefix
            .transfer(owner, keys[(t + 1) % keys.len()].public())
            .unwrap();
        let memo = warmed_memo(&prefix, 1024);
        report.bench(
            &format!("descriptor/verify_extend_by_1/{t}"),
            budget,
            samples,
            || {
                let mut m = memo.clone();
                extended.verify_with(&mut m).unwrap();
            },
        );
    }

    // -- end-to-end simulation cycles, scaled by population -----------
    // Two series: the crypto-free Cyclon layer carries the engine to
    // 100k nodes; the full SecureCyclon protocol to 10k. Each records a
    // nodes-per-second derived metric below.
    let (cyclon_series, secure_series): (&[usize], &[usize]) = if quick {
        (&[32, 1_000], &[32, 1_000])
    } else {
        (&[200, 2_000, 20_000, 100_000], &[200, 1_000, 2_000, 10_000])
    };
    for &n in cyclon_series {
        let (mut engine, _) = build_legacy_network(LegacyNetParams {
            n,
            n_malicious: 0,
            cfg: CyclonConfig {
                view_len: 10,
                swap_len: 3,
            },
            attack_start: u64::MAX,
            seed: 1,
        });
        engine.run_cycles(5); // settle past the bootstrap topology
        report.bench(
            &format!("simulation/cyclon_cycle_{n}"),
            sim_budget,
            samples.min(7),
            || {
                engine.run_cycle();
            },
        );
    }
    for &n in secure_series {
        let mut params = SecureNetParams::new(n, 0, SecureAttack::None);
        params.cfg = SecureConfig::default().with_view_len(10).with_swap_len(3);
        let mut net = build_secure_network(params);
        net.engine.run_cycles(10); // warm up to steady state
        report.bench(
            &format!("simulation/secure_cycle_{n}"),
            sim_budget,
            samples.min(7),
            || {
                net.engine.run_cycle();
            },
        );
    }

    // -- derived ratios ------------------------------------------------
    report.derive_ratio(
        "memoized_speedup_16",
        "descriptor/verify_cold/16",
        "descriptor/verify_memoized/16",
    );
    report.derive_ratio(
        "memoized_speedup_64",
        "descriptor/verify_cold/64",
        "descriptor/verify_memoized/64",
    );
    // ≈1.0 when extend-by-one is chain-length independent.
    report.derive_ratio(
        "extend_64_vs_16",
        "descriptor/verify_extend_by_1/64",
        "descriptor/verify_extend_by_1/16",
    );
    report.derive_ratio(
        "verify_fast_speedup",
        "schnorr61/verify_legacy",
        "schnorr61/verify_fast",
    );
    // (`extend_speedup_16` and `g_powmod_speedup` were retired from the
    // derived set when SHA-NI hashing landed: both are ratios against a
    // cold path that got ~3x faster, so the ratios shrank while every
    // absolute number improved — exactly the shape the `bench-diff` gate
    // must not misread as a regression. The underlying benches are still
    // measured above; the invariants they encoded are asserted by tests.)
    // Amortized batch-verification cost per signature, absolute and
    // relative to the sequential fast path (<1.0 means batching wins).
    for n in [8u64, 64] {
        report.derive_per_item(
            &format!("batch_verify_ns_per_sig_{n}"),
            &format!("schnorr61/batch_verify_{n}"),
            n,
        );
        if let (Some(b), Some(f)) = (
            report.get(&format!("schnorr61/batch_verify_{n}")),
            report.get("schnorr61/verify_fast"),
        ) {
            let ratio = (b.ns_per_iter / n as f64) / f.ns_per_iter;
            println!(
                "{:<44} {ratio:>11.2}x",
                format!("batch_vs_fast_per_sig_{n}")
            );
            report
                .derived
                .push((format!("batch_vs_fast_per_sig_{n}"), ratio));
        }
    }
    // Throughput of one engine cycle, in simulated nodes per second.
    for &n in cyclon_series {
        report.derive_rate(
            &format!("cyclon_nodes_per_sec_{n}"),
            &format!("simulation/cyclon_cycle_{n}"),
            n as u64,
        );
    }
    for &n in secure_series {
        report.derive_rate(
            &format!("secure_nodes_per_sec_{n}"),
            &format!("simulation/secure_cycle_{n}"),
            n as u64,
        );
        // The headline end-to-end number: cost of one node-cycle of the
        // full secure protocol. PRs are gated on this not regressing.
        report.derive_per_item(
            &format!("secure_ns_per_node_cycle_{n}"),
            &format!("simulation/secure_cycle_{n}"),
            n as u64,
        );
    }

    if let Some((_, ratio)) = report
        .derived
        .iter()
        .find(|(k, _)| k == "memoized_speedup_16")
    {
        if *ratio < 5.0 {
            eprintln!(
                "WARNING: memoized re-verify of a 16-link chain is only {ratio:.2}x \
                 faster than cold verify (target: >=5x)"
            );
        }
    }

    let path = out.unwrap_or_else(next_bench_path);
    std::fs::write(&path, report.to_json()).expect("write bench report");
    println!("\nwrote {path}");
}
