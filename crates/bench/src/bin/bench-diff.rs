//! `bench-diff` — regression gate over committed benchmark baselines.
//!
//! Loads the two most recent `BENCH_<n>.json` files (or two explicit
//! paths) and compares every derived metric present in both. A metric
//! that regresses by more than the threshold (default 25%) fails the run,
//! so a PR cannot silently undo a committed performance win: landing a
//! new baseline with worse derived ratios turns CI red.
//!
//! Direction is inferred from the metric name: keys containing `ns_per`
//! or `_vs_` are costs/overhead ratios (lower is better); everything else
//! is a speedup or throughput (higher is better).
//!
//! ```text
//! cargo run --release -p sc-bench --bin bench-diff                 # two newest BENCH_<n>.json
//! cargo run --release -p sc-bench --bin bench-diff -- OLD NEW
//! cargo run --release -p sc-bench --bin bench-diff -- --threshold 10
//! ```

use std::process::ExitCode;

/// Extracts the `"derived"` object from a `bench-report` JSON file.
///
/// The files are produced by this workspace's own serializer
/// (`sc_bench::report::Report::to_json`), which writes one `"key": value`
/// pair per line inside the `"derived"` block — this parser relies on
/// that shape rather than pulling in a JSON dependency.
fn parse_derived(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(start) = text.find("\"derived\"") else {
        return out;
    };
    for line in text[start..].lines().skip(1) {
        let line = line.trim().trim_end_matches(',');
        if line.starts_with('}') {
            break;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

/// Whether `key` names a cost (lower is better) rather than a speedup.
fn lower_is_better(key: &str) -> bool {
    key.contains("ns_per") || key.contains("_vs_")
}

/// The two highest-numbered `BENCH_<n>.json` files in the current
/// directory, oldest first.
fn latest_two() -> Option<(String, String)> {
    let mut found: Vec<(u32, String)> = Vec::new();
    for entry in std::fs::read_dir(".").ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u32>().ok())
        {
            found.push((n, name));
        }
    }
    found.sort_unstable();
    let newest = found.pop()?;
    let previous = found.pop()?;
    Some((previous.1, newest.1))
}

fn main() -> ExitCode {
    let mut threshold_pct = 25.0f64;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold_pct = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--threshold requires a percentage");
            }
            "--help" | "-h" => {
                println!("usage: bench-diff [--threshold PCT] [OLD.json NEW.json]");
                return ExitCode::SUCCESS;
            }
            other => paths.push(other.to_string()),
        }
    }
    let (old_path, new_path) = match paths.len() {
        0 => match latest_two() {
            Some(pair) => pair,
            None => {
                println!("bench-diff: fewer than two BENCH_<n>.json baselines; nothing to compare");
                return ExitCode::SUCCESS;
            }
        },
        2 => (paths.swap_remove(0), paths.pop().unwrap()),
        _ => {
            eprintln!("usage: bench-diff [--threshold PCT] [OLD.json NEW.json]");
            return ExitCode::from(2);
        }
    };

    let read = |p: &str| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
    let old = parse_derived(&read(&old_path));
    let new = parse_derived(&read(&new_path));
    println!("bench-diff: {old_path} -> {new_path} (threshold {threshold_pct}%)\n");

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (key, new_v) in &new {
        let Some((_, old_v)) = old.iter().find(|(k, _)| k == key) else {
            continue; // metric introduced by the new baseline
        };
        compared += 1;
        // Change in the "goodness" direction: positive = improved.
        let change_pct = if lower_is_better(key) {
            (old_v - new_v) / old_v * 100.0
        } else {
            (new_v - old_v) / old_v * 100.0
        };
        let verdict = if change_pct < -threshold_pct {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("{verdict:<9} {key:<36} {old_v:>12.3} -> {new_v:>12.3}  ({change_pct:+.1}%)");
    }
    for (key, _) in &old {
        if !new.iter().any(|(k, _)| k == key) {
            println!("dropped   {key:<36} (present only in {old_path})");
        }
    }

    println!("\n{compared} metrics compared, {regressions} regression(s)");
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_reports_own_shape() {
        let json = "{\n  \"benches\": [\n  ],\n  \"derived\": {\n    \"a_speedup\": 2.500,\n    \"secure_ns_per_node_cycle_200\": 192183.169\n  }\n}\n";
        let derived = parse_derived(json);
        assert_eq!(derived.len(), 2);
        assert_eq!(derived[0], ("a_speedup".to_string(), 2.5));
        assert!((derived[1].1 - 192183.169).abs() < 1e-6);
    }

    #[test]
    fn direction_inference() {
        assert!(lower_is_better("secure_ns_per_node_cycle_200"));
        assert!(lower_is_better("batch_vs_fast_per_sig_64"));
        assert!(lower_is_better("extend_64_vs_16"));
        assert!(!lower_is_better("memoized_speedup_16"));
        assert!(!lower_is_better("cyclon_nodes_per_sec_1000"));
    }

    #[test]
    fn empty_or_absent_derived_is_harmless() {
        assert!(parse_derived("{}").is_empty());
        assert!(parse_derived("{\"derived\": {\n  }\n}").is_empty());
    }
}
