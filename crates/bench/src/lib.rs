//! Shared helpers for the benchmark suite (see the `benches/` directory).
#![forbid(unsafe_code)]
