//! Shared helpers for the benchmark suite (see the `benches/` directory)
//! and the `bench-report` runner: deterministic keypair pools, chain
//! builders, and a tiny timing/JSON harness for machine-readable
//! baselines.
#![forbid(unsafe_code)]

pub mod report;

use sc_core::{SecureDescriptor, Timestamp, VerifyMemo};
use sc_crypto::{Keypair, Scheme};

/// A deterministic pool of keypairs under `scheme`.
pub fn pool(scheme: Scheme, n: usize) -> Vec<Keypair> {
    (0..n)
        .map(|i| {
            let mut seed = [0u8; 32];
            seed[..8].copy_from_slice(&(i as u64).to_le_bytes());
            Keypair::from_seed(scheme, seed)
        })
        .collect()
}

/// A descriptor carried through `transfers` ownership hops over `keys`
/// (cyclically), starting from `keys[0]`.
pub fn chained(keys: &[Keypair], transfers: usize) -> SecureDescriptor {
    let mut d = SecureDescriptor::create(&keys[0], 0, Timestamp(0));
    for i in 0..transfers {
        let owner = &keys[i % keys.len()];
        let next = &keys[(i + 1) % keys.len()];
        d = d.transfer(owner, next.public()).unwrap();
    }
    d
}

/// A memo pre-warmed with `desc` fully verified into it.
pub fn warmed_memo(desc: &SecureDescriptor, capacity: usize) -> VerifyMemo {
    let mut memo = VerifyMemo::new(capacity);
    desc.verify_with(&mut memo).expect("bench chains are valid");
    memo
}

/// Chain lengths the verification benches and the bench-report runner
/// agree on (the paper's average descriptor sees 2s = 6 transfers; 64 is
/// the stress tail).
pub const CHAIN_LENGTHS: [usize; 4] = [1, 4, 16, 64];
