//! A minimal timing + JSON-report harness for the `bench-report` runner.
//!
//! Unlike the criterion benches (human-oriented, throwaway output), this
//! module produces **machine-readable baselines**: each run emits a
//! `BENCH_<n>.json` snapshot that is committed next to the code it
//! measured, giving the repository a performance trajectory that reviews
//! and future optimisation PRs can diff against.

use std::time::{Duration, Instant};

/// One measured entry.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Hierarchical benchmark name, e.g. `descriptor/verify_cold/16`.
    pub name: String,
    /// Median nanoseconds per iteration across samples.
    pub ns_per_iter: f64,
    /// Iterations per timed sample (after calibration).
    pub iters: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// A full report: measurements plus derived ratios.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// `"quick"` (CI smoke) or `"full"` (committed baseline).
    pub mode: String,
    /// Measured entries, in execution order.
    pub results: Vec<BenchResult>,
    /// Derived metrics, typically speedup ratios between entries.
    pub derived: Vec<(String, f64)>,
}

/// Times `f`, calibrating the per-sample iteration count to roughly fill
/// `budget / samples`, then reports the median ns/iteration.
pub fn time_median<F: FnMut()>(budget: Duration, samples: usize, mut f: F) -> (f64, u64, usize) {
    let samples = samples.max(3);
    let per_sample = budget / samples as u32;
    // Calibrate: double the iteration count until one batch fills the
    // per-sample slot (or we hit a sane cap).
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        if start.elapsed() >= per_sample || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    (per_iter[per_iter.len() / 2], iters, samples)
}

impl Report {
    /// Runs and records one benchmark.
    pub fn bench<F: FnMut()>(&mut self, name: &str, budget: Duration, samples: usize, f: F) {
        let (ns_per_iter, iters, samples) = time_median(budget, samples, f);
        println!(
            "{name:<44} {:>12}  (x{iters} iters)",
            format_ns(ns_per_iter)
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            ns_per_iter,
            iters,
            samples,
        });
    }

    /// Looks up a recorded result by name.
    pub fn get(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }

    /// Records the ratio `numerator / denominator` as a derived metric.
    pub fn derive_ratio(&mut self, label: &str, numerator: &str, denominator: &str) {
        if let (Some(n), Some(d)) = (self.get(numerator), self.get(denominator)) {
            if d.ns_per_iter > 0.0 {
                let ratio = n.ns_per_iter / d.ns_per_iter;
                println!("{label:<44} {ratio:>11.2}x");
                self.derived.push((label.to_string(), ratio));
            }
        }
    }

    /// Records a per-item cost: a recorded per-iteration time divided by
    /// the `count` of work items one iteration covers (e.g. ns per
    /// node-cycle from one engine cycle over `count` nodes, or ns per
    /// signature from one batch verification over `count` signatures).
    /// Lower is better; `bench-diff` keys off the `ns_per` naming.
    pub fn derive_per_item(&mut self, label: &str, bench: &str, count: u64) {
        if let Some(r) = self.get(bench) {
            if count > 0 {
                let per_item = r.ns_per_iter / count as f64;
                println!("{label:<44} {:>12}", format_ns(per_item));
                self.derived.push((label.to_string(), per_item));
            }
        }
    }

    /// Records a throughput metric: `count` work items per wall-clock
    /// second, from a recorded per-iteration time (e.g. nodes simulated
    /// per second from one engine cycle over `count` nodes).
    pub fn derive_rate(&mut self, label: &str, bench: &str, count: u64) {
        if let Some(r) = self.get(bench) {
            if r.ns_per_iter > 0.0 {
                let rate = count as f64 * 1e9 / r.ns_per_iter;
                println!("{label:<44} {rate:>11.0}/s");
                self.derived.push((label.to_string(), rate));
            }
        }
    }

    /// Serializes the report as pretty-printed JSON (schema version 1).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str("  \"suite\": \"sc-bench/bench-report\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", escape(&self.mode)));
        out.push_str("  \"benches\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ns_per_iter\": {:.2}, \"iters\": {}, \"samples\": {}}}{}\n",
                escape(&r.name),
                r.ns_per_iter,
                r.iters,
                r.samples,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"derived\": {\n");
        for (i, (k, v)) in self.derived.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {:.3}{}\n",
                escape(k),
                v,
                if i + 1 < self.derived.len() { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape() {
        let mut report = Report {
            mode: "quick".into(),
            ..Report::default()
        };
        report.bench("a/b", Duration::from_millis(2), 3, || {
            std::hint::black_box(1 + 1);
        });
        report.bench("a/c", Duration::from_millis(2), 3, || {
            std::hint::black_box(1 + 1);
        });
        report.derive_ratio("b_over_c", "a/b", "a/c");
        let json = report.to_json();
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"a/b\""));
        assert!(json.contains("\"b_over_c\""));
        assert!(json.ends_with("}\n"));
        // No trailing commas before closing brackets.
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n  }"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn time_median_measures_something() {
        let (ns, iters, samples) = time_median(Duration::from_millis(5), 3, || {
            std::hint::black_box((0..100u64).sum::<u64>());
        });
        assert!(ns > 0.0);
        assert!(iters >= 1);
        assert_eq!(samples, 3);
    }
}
