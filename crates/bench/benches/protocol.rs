//! Benchmarks of SecureCyclon's per-descriptor costs: chain construction,
//! full verification, the §IV-B checks, and the wire codec — the numbers
//! behind the paper's claim that the protocol has "very reasonable
//! resource demands".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_core::{wire, SampleCache, SecureDescriptor, Timestamp};
use sc_crypto::{Keypair, Scheme};

fn pool(n: usize) -> Vec<Keypair> {
    (0..n)
        .map(|i| {
            let mut seed = [0u8; 32];
            seed[..8].copy_from_slice(&(i as u64).to_le_bytes());
            Keypair::from_seed(Scheme::KeyedHash, seed)
        })
        .collect()
}

fn chained(keys: &[Keypair], transfers: usize) -> SecureDescriptor {
    let mut d = SecureDescriptor::create(&keys[0], 0, Timestamp(0));
    for i in 0..transfers {
        let owner = &keys[i % keys.len()];
        let next = &keys[(i + 1) % keys.len()];
        d = d.transfer(owner, next.public()).unwrap();
    }
    d
}

fn bench_transfer(c: &mut Criterion) {
    let keys = pool(16);
    // The paper's average descriptor sees 2s = 6 transfers (§VI-A).
    let d = chained(&keys, 6);
    let owner = &keys[6 % keys.len()];
    let next = keys[(7) % keys.len()].public();
    c.bench_function("descriptor/transfer_at_t6", |b| {
        b.iter(|| d.transfer(std::hint::black_box(owner), next).unwrap())
    });
}

fn bench_verify(c: &mut Criterion) {
    let keys = pool(16);
    let mut group = c.benchmark_group("descriptor/verify");
    for t in [0usize, 3, 6, 12] {
        let d = chained(&keys, t);
        group.bench_with_input(BenchmarkId::from_parameter(t), &d, |b, d| {
            b.iter(|| d.verify().unwrap())
        });
    }
    group.finish();
}

fn bench_observe(c: &mut Criterion) {
    let keys = pool(64);
    // A realistic sample stream: many distinct descriptors, repeat views.
    let descriptors: Vec<SecureDescriptor> = (0..256)
        .map(|i| {
            let mut d = SecureDescriptor::create(&keys[i % 64], 0, Timestamp(i as u64 * 1000));
            let owner = &keys[i % 64];
            d = d.transfer(owner, keys[(i + 1) % 64].public()).unwrap();
            d
        })
        .collect();
    c.bench_function("checks/observe_256_samples", |b| {
        b.iter(|| {
            let mut cache = SampleCache::new(60);
            for d in &descriptors {
                std::hint::black_box(cache.observe(d, 0, 1000));
            }
        })
    });
}

fn bench_wire(c: &mut Criterion) {
    let keys = pool(16);
    let d = chained(&keys, 6);
    let mut buf = Vec::new();
    wire::encode_descriptor(&d, &mut buf);
    c.bench_function("wire/encode_t6", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            wire::encode_descriptor(std::hint::black_box(&d), &mut out);
            out
        })
    });
    c.bench_function("wire/decode_t6", |b| {
        b.iter(|| wire::decode_descriptor(std::hint::black_box(&buf)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_transfer,
    bench_verify,
    bench_observe,
    bench_wire
);
criterion_main!(benches);
