//! Whole-simulation benchmarks: the per-cycle cost of the engine with
//! each protocol, and scaled-down versions of every figure's workload so
//! `cargo bench` exercises the entire evaluation pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_attacks::{build_legacy_network, CloneLedger, LegacyNetParams, SecureAttack};
use sc_core::SecureConfig;
use sc_cyclon::CyclonConfig;
use sc_testkit::{build_secure_network, SecureNetParams};
use std::sync::{Arc, Mutex};

const N: usize = 200;

fn small_cfg() -> SecureConfig {
    SecureConfig::default().with_view_len(10).with_swap_len(3)
}

fn bench_cycle_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.bench_function("legacy_200", |b| {
        let (mut engine, _) = build_legacy_network(LegacyNetParams {
            n: N,
            n_malicious: 0,
            cfg: CyclonConfig {
                view_len: 10,
                swap_len: 3,
            },
            attack_start: u64::MAX,
            seed: 1,
        });
        engine.run_cycles(20); // warm up
        b.iter(|| engine.run_cycle());
    });

    group.bench_function("secure_200", |b| {
        let mut params = SecureNetParams::new(N, 0, SecureAttack::None);
        params.cfg = small_cfg();
        let mut net = build_secure_network(params);
        net.engine.run_cycles(20);
        b.iter(|| net.engine.run_cycle());
    });

    group.bench_function("legacy_20000", |b| {
        let (mut engine, _) = build_legacy_network(LegacyNetParams {
            n: 20_000,
            n_malicious: 0,
            cfg: CyclonConfig {
                view_len: 10,
                swap_len: 3,
            },
            attack_start: u64::MAX,
            seed: 1,
        });
        engine.run_cycles(5);
        b.iter(|| engine.run_cycle());
    });

    group.bench_function("secure_2000", |b| {
        let mut params = SecureNetParams::new(2_000, 0, SecureAttack::None);
        params.cfg = small_cfg();
        let mut net = build_secure_network(params);
        net.engine.run_cycles(10);
        b.iter(|| net.engine.run_cycle());
    });

    group.bench_function("secure_200_under_hub_attack", |b| {
        let mut params = SecureNetParams::new(N, 20, SecureAttack::Hub);
        params.cfg = small_cfg();
        params.attack_start = 10;
        // Keep the attack "hot": eviction off so attackers stay active.
        params.cfg.eviction_enabled = false;
        let mut net = build_secure_network(params);
        net.engine.run_cycles(20);
        b.iter(|| net.engine.run_cycle());
    });
    group.finish();
}

/// Scaled-down end-to-end figure workloads (one sample each — these are
/// seconds-long; the point is pipeline coverage and coarse tracking).
fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));

    group.bench_function("fig3_takeover_smoke", |b| {
        b.iter(|| {
            let (mut engine, _) = build_legacy_network(LegacyNetParams {
                n: N,
                n_malicious: 10,
                cfg: CyclonConfig {
                    view_len: 10,
                    swap_len: 5,
                },
                attack_start: 10,
                seed: 2,
            });
            engine.run_cycles(60);
            engine.alive_count()
        })
    });

    group.bench_function("fig5_defense_smoke", |b| {
        b.iter(|| {
            let mut params = SecureNetParams::new(N, 10, SecureAttack::Hub);
            params.cfg = small_cfg();
            params.attack_start = 12;
            params.seed = 3;
            let mut net = build_secure_network(params);
            net.engine.run_cycles(40);
            net.engine.alive_count()
        })
    });

    group.bench_function("fig6_depletion_smoke", |b| {
        b.iter(|| {
            let mut params = SecureNetParams::new(N, 40, SecureAttack::Depletion);
            params.cfg = small_cfg();
            params.attack_start = 12;
            params.seed = 4;
            let mut net = build_secure_network(params);
            net.engine.run_cycles(40);
            net.engine.alive_count()
        })
    });

    group.bench_function("fig7_cloner_smoke", |b| {
        b.iter(|| {
            let ledger = Arc::new(Mutex::new(CloneLedger::new()));
            let mut params = SecureNetParams::new(
                N,
                10,
                SecureAttack::Cloner {
                    target_age: 4,
                    ledger,
                },
            );
            params.cfg = small_cfg();
            params.cfg.eviction_enabled = false;
            params.attack_start = 12;
            params.seed = 5;
            let mut net = build_secure_network(params);
            net.engine.run_cycles(40);
            net.engine.alive_count()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cycle_costs, bench_figures);
criterion_main!(benches);
