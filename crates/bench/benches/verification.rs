//! Verification benchmarks parameterized by chain length: cold
//! full-chain verification, memoized re-verification (exact copy), and
//! incremental verification of a one-link extension — the §VI-A cost
//! story that the verified-prefix memo is built to win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_bench::{chained, pool, warmed_memo, CHAIN_LENGTHS};
use sc_crypto::{schnorr61, Keypair, Scheme};

fn bench_cold_verify(c: &mut Criterion) {
    let keys = pool(Scheme::Schnorr61, 16);
    let mut group = c.benchmark_group("verify/cold");
    for t in CHAIN_LENGTHS {
        let d = chained(&keys, t);
        group.bench_with_input(BenchmarkId::from_parameter(t), &d, |b, d| {
            b.iter(|| d.verify().unwrap())
        });
    }
    group.finish();
}

fn bench_memoized_reverify(c: &mut Criterion) {
    let keys = pool(Scheme::Schnorr61, 16);
    let mut group = c.benchmark_group("verify/memoized");
    for t in CHAIN_LENGTHS {
        let d = chained(&keys, t);
        let mut memo = warmed_memo(&d, 1024);
        group.bench_with_input(BenchmarkId::from_parameter(t), &d, |b, d| {
            b.iter(|| d.verify_with(&mut memo).unwrap())
        });
    }
    group.finish();
}

fn bench_incremental_extend(c: &mut Criterion) {
    // Chain of length t+1 verified against a memo holding the t-link
    // prefix: only the appended link pays signature checks. The memo is
    // cloned per iteration so the extension never becomes an exact hit.
    let keys = pool(Scheme::Schnorr61, 16);
    let mut group = c.benchmark_group("verify/extend_by_1");
    for t in CHAIN_LENGTHS {
        let prefix = chained(&keys, t);
        let owner = &keys[t % keys.len()];
        let next = keys[(t + 1) % keys.len()].public();
        let extended = prefix.transfer(owner, next).unwrap();
        let memo = warmed_memo(&prefix, 1024);
        group.bench_with_input(BenchmarkId::from_parameter(t), &extended, |b, d| {
            b.iter(|| {
                let mut m = memo.clone();
                d.verify_with(&mut m).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_schnorr_paths(c: &mut Criterion) {
    let kp = Keypair::from_seed(Scheme::Schnorr61, [7; 32]);
    let msg = [0x5au8; 128];
    let sig = kp.sign(&msg);
    let bytes = sig.as_bytes();
    let pk = u64::from_be_bytes(kp.public().as_bytes()[1..9].try_into().unwrap());
    let r = u64::from_be_bytes(bytes[1..9].try_into().unwrap());
    let s = u64::from_be_bytes(bytes[9..17].try_into().unwrap());
    c.bench_function("schnorr61/verify_legacy", |b| {
        b.iter(|| {
            assert!(schnorr61::reference::verify(
                pk,
                std::hint::black_box(&msg),
                r,
                s
            ))
        })
    });
    c.bench_function("schnorr61/verify_fast", |b| {
        b.iter(|| assert!(schnorr61::verify_fast(pk, std::hint::black_box(&msg), r, s)))
    });
    c.bench_function("schnorr61/powmod_g", |b| {
        let mut e = 1u64;
        b.iter(|| {
            e = e.wrapping_mul(6364136223846793005).wrapping_add(1);
            schnorr61::powmod(schnorr61::G, std::hint::black_box(e))
        })
    });
    c.bench_function("schnorr61/g_powmod", |b| {
        let mut e = 1u64;
        b.iter(|| {
            e = e.wrapping_mul(6364136223846793005).wrapping_add(1);
            schnorr61::g_powmod(std::hint::black_box(e))
        })
    });
}

criterion_group!(
    benches,
    bench_cold_verify,
    bench_memoized_reverify,
    bench_incremental_extend,
    bench_schnorr_paths
);
criterion_main!(benches);
