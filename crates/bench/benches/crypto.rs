//! Microbenchmarks of the cryptographic substrate: hashing, signing,
//! verification under both schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sc_crypto::{sha256, Keypair, Scheme};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(std::hint::black_box(data)))
        });
    }
    group.finish();
}

fn bench_sign_verify(c: &mut Criterion) {
    let msg = vec![0x5au8; 128];
    for (name, scheme) in [
        ("schnorr61", Scheme::Schnorr61),
        ("keyed", Scheme::KeyedHash),
    ] {
        let kp = Keypair::from_seed(scheme, [7; 32]);
        let sig = kp.sign(&msg);
        c.bench_function(&format!("sign/{name}"), |b| {
            b.iter(|| kp.sign(std::hint::black_box(&msg)))
        });
        c.bench_function(&format!("verify/{name}"), |b| {
            b.iter(|| {
                assert!(kp
                    .public()
                    .verify(std::hint::black_box(&msg), std::hint::black_box(&sig)))
            })
        });
    }
}

fn bench_keygen(c: &mut Criterion) {
    c.bench_function("keygen/schnorr61", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut seed = [0u8; 32];
            seed[..8].copy_from_slice(&i.to_le_bytes());
            Keypair::from_seed(Scheme::Schnorr61, seed)
        })
    });
}

criterion_group!(benches, bench_sha256, bench_sign_verify, bench_keygen);
criterion_main!(benches);
