//! Fault-injection property tests.
//!
//! Two guarantees back the live matrix tier's replayability claim:
//!
//! 1. **Determinism** — [`FaultSpec::decide`] is a pure counter-mode
//!    function of `(spec, direction, src, dst, frame_index)`: the same
//!    spec over the same frame sequence makes byte-identical decisions,
//!    in any evaluation order. This is what lets a failing live run
//!    replay exactly from the printed seed.
//! 2. **Zero-rate transparency** — a spec with every rate at zero is an
//!    *exact* pass-through: decisions are all no-ops over arbitrary
//!    inputs, and over real sockets a [`FaultTransport`] delivers the
//!    identical frames a bare [`TcpTransport`] would, counting zero
//!    injected faults.
//!
//! The textual grammar also round-trips (`Display` → `parse`) for
//! arbitrary sanitized specs, so a spec printed in a failure message is
//! always a valid replay input.

use proptest::prelude::*;
use sc_core::{FaultDir, FaultSpec};
use sc_node::{FaultTransport, Frame, FrameKind, TcpTransport, Transport};
use sc_sim::Addr;
use std::net::TcpListener;
use std::time::Duration;

/// A spec from raw knobs, sanitized the way parse/decode would.
#[allow(clippy::too_many_arguments)]
fn spec(
    seed: u64,
    drop_in: f64,
    drop_out: f64,
    delay_prob: f64,
    delay_max_polls: u32,
    dup_prob: f64,
    reset_prob: f64,
    severed: Vec<Addr>,
) -> FaultSpec {
    FaultSpec {
        seed,
        drop_in,
        drop_out,
        delay_prob,
        delay_max_polls,
        dup_prob,
        reset_prob,
        bandwidth_bytes_per_sec: 0,
        severed,
    }
    .sanitized()
}

/// One frame's fault-relevant coordinates.
type FrameCoord = (bool, Addr, Addr, u64);

fn decide_all(s: &FaultSpec, frames: &[FrameCoord]) -> Vec<String> {
    frames
        .iter()
        .map(|&(inbound, src, dst, index)| {
            let dir = if inbound {
                FaultDir::Inbound
            } else {
                FaultDir::Outbound
            };
            format!("{:?}", s.decide(dir, src, dst, index))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decisions_replay_byte_identically(
        seed in proptest::any::<u64>(),
        drop_in in 0.0f64..1.0,
        drop_out in 0.0f64..1.0,
        delay_prob in 0.0f64..1.0,
        delay_max_polls in 1u32..64,
        dup_prob in 0.0f64..1.0,
        reset_prob in 0.0f64..1.0,
        frames in proptest::collection::vec(
            (proptest::any::<bool>(), 1u32..1000, 1u32..1000, 0u64..10_000),
            1..64,
        ),
    ) {
        let s = spec(
            seed, drop_in, drop_out, delay_prob, delay_max_polls,
            dup_prob, reset_prob, Vec::new(),
        );
        // Same spec, same frames → byte-identical decision sequence.
        let first = decide_all(&s, &frames);
        prop_assert_eq!(&first, &decide_all(&s.clone(), &frames));
        // Pure counter mode: evaluation order is irrelevant — deciding
        // the frames in reverse yields the same per-frame decisions.
        let reversed: Vec<FrameCoord> = frames.iter().rev().copied().collect();
        let mut back = decide_all(&s, &reversed);
        back.reverse();
        prop_assert_eq!(&first, &back);
        // The seed is load-bearing: some long-enough sequence under a
        // different seed diverges unless every rate rounds to inert.
        let other = FaultSpec { seed: seed.wrapping_add(1), ..s.clone() };
        if frames.len() >= 32 && (drop_in > 0.05 || drop_out > 0.05 || delay_prob > 0.05) {
            prop_assert_ne!(&first, &decide_all(&other, &frames));
        }
    }

    #[test]
    fn zero_rates_decide_nothing_anywhere(
        seed in proptest::any::<u64>(),
        frames in proptest::collection::vec(
            (proptest::any::<bool>(), 1u32..1000, 1u32..1000, 0u64..10_000),
            1..64,
        ),
    ) {
        let s = spec(seed, 0.0, 0.0, 0.0, 4, 0.0, 0.0, Vec::new());
        prop_assert!(s.is_noop());
        for &(inbound, src, dst, index) in &frames {
            let dir = if inbound { FaultDir::Inbound } else { FaultDir::Outbound };
            let d = s.decide(dir, src, dst, index);
            prop_assert!(!d.drop && !d.duplicate && !d.reset && d.delay_polls == 0);
        }
    }

    #[test]
    fn grammar_roundtrips_for_arbitrary_specs(
        seed in proptest::any::<u64>(),
        drop_in in 0.0f64..1.0,
        drop_out in 0.0f64..1.0,
        delay_prob in 0.0f64..1.0,
        delay_max_polls in 1u32..512,
        dup_prob in 0.0f64..1.0,
        reset_prob in 0.0f64..1.0,
        severed in proptest::collection::vec(1u32..100_000, 0..8),
    ) {
        let s = spec(
            seed, drop_in, drop_out, delay_prob, delay_max_polls,
            dup_prob, reset_prob, severed,
        );
        let text = s.to_string();
        let back = FaultSpec::parse(&text);
        prop_assert!(back.is_ok(), "{text:?} failed to re-parse: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), s);
    }
}

// -- zero-rate pass-through over real sockets ---------------------------
// Few cases: each spins up loopback listeners.

fn bind_any() -> TcpTransport {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener.local_addr().unwrap().port();
    drop(listener);
    TcpTransport::bind(port as Addr, Duration::from_millis(200), 1 << 20).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn zero_rate_transport_is_exact_pass_through(
        seed in proptest::any::<u64>(),
        payloads in proptest::collection::vec(
            proptest::collection::vec(proptest::any::<u8>(), 0..256),
            1..12,
        ),
    ) {
        // One faulted sender/receiver pair, one bare pair, fed the same
        // frame sequence: deliveries must match byte for byte and the
        // injected-fault counters must stay at zero.
        let noop = spec(seed, 0.0, 0.0, 0.0, 4, 0.0, 0.0, Vec::new());
        let mut faulted_tx = FaultTransport::new(bind_any(), noop.clone());
        let mut faulted_rx = FaultTransport::new(bind_any(), noop);
        let mut bare_tx = bind_any();
        let mut bare_rx = bind_any();

        for (i, p) in payloads.iter().enumerate() {
            let mut f = Frame::new(FrameKind::Oneway, faulted_tx.local_addr(), p.clone());
            f.req_id = i as u32;
            prop_assert!(faulted_tx.send_to(faulted_rx.local_addr(), &f));
            let mut g = Frame::new(FrameKind::Oneway, bare_tx.local_addr(), p.clone());
            g.req_id = i as u32;
            prop_assert!(bare_tx.send_to(bare_rx.local_addr(), &g));

            let via_fault = faulted_rx.recv(Duration::from_millis(500));
            let via_bare = bare_rx.recv(Duration::from_millis(500));
            prop_assert!(via_fault.is_some() && via_bare.is_some());
            let (a, b) = (via_fault.unwrap().frame, via_bare.unwrap().frame);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.req_id, b.req_id);
            prop_assert_eq!(&a.payload, &b.payload);
            prop_assert_eq!(&a.payload, p);
        }

        for stats in [faulted_tx.stats(), faulted_rx.stats()] {
            prop_assert_eq!(stats.frames_dropped_injected, 0);
            prop_assert_eq!(stats.frames_delayed, 0);
            prop_assert_eq!(stats.frames_duplicated, 0);
            prop_assert_eq!(stats.resets_injected, 0);
            prop_assert_eq!(stats.frames_throttled, 0);
        }
        prop_assert_eq!(faulted_rx.stats().frames_in, payloads.len() as u64);
        prop_assert_eq!(bare_rx.stats().frames_in, payloads.len() as u64);
    }
}
