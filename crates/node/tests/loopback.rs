//! The loopback cluster tier: real `sc-node` processes on 127.0.0.1,
//! audited by the same invariant oracles as the simulated matrix.
//!
//! The quick test spawns 16 OS processes, drives them through churn
//! (a kill plus a sponsored rejoin) and a hostile wire-speaking peer,
//! scrapes live state over the control sockets every few hundred
//! milliseconds, and runs the per-node oracles on every scrape. At the
//! shared `--stop-cycle` boundary the whole cluster quiesces (turns stop,
//! control stays up), which makes the cross-node oracles — unique
//! ownership, bounded in-degree, connectivity — sound to check.
//!
//! Replay: runs are parameterized by one seed. On failure the printed
//! line reruns the identical cluster:
//!
//! ```text
//! SC_NODE_SEED=1 cargo test --release -p sc-node --test loopback -- --nocapture
//! ```
//!
//! Wall-clock scheduling is the one non-deterministic input left, which
//! is why assertions are floors (completion fraction, connectivity) and
//! protocol invariants, never exact trajectories.

use sc_core::wire;
use sc_core::{RequestBody, SecureDescriptor, SecureMsg, Timestamp};
use sc_crypto::{Keypair, Scheme};
use sc_node::{Frame, FrameKind, StatusReport};
use sc_sim::Addr;
use sc_testkit::live::{check_final, drive, env_seed};
use sc_testkit::{ClusterConfig, ProcessCluster};
use std::io::Write;
use std::net::{Ipv4Addr, SocketAddrV4, TcpStream};
use std::time::{Duration, Instant};

fn replay_line(seed: u64, extra: &str) -> String {
    sc_testkit::live::replay_line("loopback", seed, extra)
}

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sc-node")
}

/// A wire-speaking attacker: opens raw TCP connections to `target` and
/// sends (1) bytes that are not a frame, (2) a frame header declaring an
/// oversized payload, (3) a well-formed frame whose payload is not a
/// decodable message, and (4) a decodable gossip request built from a
/// foreign identity whose descriptors carry no valid redemption for the
/// target. The daemon must poison (1) and (2), drop (3), and refuse (4)
/// at the protocol layer — never crash, and never blacklist anyone.
fn hostile_blast(target: Addr) {
    let sock = SocketAddrV4::new(Ipv4Addr::LOCALHOST, target as u16);
    let connect = || TcpStream::connect_timeout(&sock.into(), Duration::from_millis(500));

    // (1) not a frame at all
    if let Ok(mut s) = connect() {
        let _ = s.write_all(&[0xde, 0xad, 0xbe, 0xef].repeat(64));
    }
    // (2) valid magic/kind, 256 MiB declared payload
    if let Ok(mut s) = connect() {
        let mut f = Frame::new(FrameKind::Request, 1, vec![0u8; 8]);
        f.req_id = 7;
        let mut bytes = f.encode();
        bytes[13..17].copy_from_slice(&(256u32 << 20).to_be_bytes());
        let _ = s.write_all(&bytes[..17]);
    }
    // (3) a perfectly framed payload that is not a SecureMsg
    if let Ok(mut s) = connect() {
        let mut f = Frame::new(FrameKind::Request, 1, vec![0xa5; 200]);
        f.req_id = 8;
        let _ = s.write_all(&f.encode());
    }
    // (4) a decodable request from an identity outside the cluster: the
    // descriptors are self-consistent but were never created by the
    // target, so §IV-A redemption validation must refuse the exchange
    if let Ok(mut s) = connect() {
        let attacker = Keypair::from_seed(Scheme::KeyedHash, [0xEE; 32]);
        let d = SecureDescriptor::create(&attacker, 1, Timestamp(0));
        let msg = SecureMsg::Request(Box::new(RequestBody {
            redeemed: d.clone(),
            fresh: d,
            offered: Vec::new(),
            samples: Vec::new(),
            proofs: Vec::new(),
        }));
        let mut payload = Vec::new();
        wire::encode_message(&msg, &mut payload);
        let mut f = Frame::new(FrameKind::Request, 1, payload);
        f.req_id = 9;
        let _ = s.write_all(&f.encode());
    }
}

#[test]
fn loopback_cluster_survives_churn_and_hostile_peer() {
    let seed = env_seed();
    let replay = replay_line(seed, "");
    println!("replay: {replay}");

    let n = 16;
    let mut cfg = ClusterConfig::quick(n, seed);
    // A debug binary cannot hold the release-tuned 50 ms schedule; slow
    // the shared clock instead of weakening the oracles or the floors.
    if cfg!(debug_assertions) {
        cfg.cycle_ms = 200;
    }
    let start = cfg.view_len as u64; // ring-bootstrap start cycle
    let stop = start + 40;
    cfg.stop_cycle = stop;
    let view_len = cfg.view_len;
    let mut cluster = ProcessCluster::launch(bin(), cfg).expect("spawn cluster");
    let base = cluster.addrs()[0];

    assert!(
        cluster.wait_cycle(start + 4, Duration::from_secs(20)),
        "cluster never started gossiping\n  replay: {replay}"
    );

    let kill_target = base + (n as Addr) - 1;
    let sponsor = base + 1;
    let hostile_target = base + 2;
    let mut killed = false;
    let mut joiner: Option<Addr> = None;
    let mut blasted = false;

    let out = drive(
        &mut cluster,
        "loopback-quick",
        stop,
        view_len,
        &replay,
        |cluster, cycle| {
            if !killed && cycle >= start + 12 {
                assert!(cluster.kill(kill_target), "kill target already gone");
                killed = true;
            }
            if killed && joiner.is_none() {
                joiner = Some(cluster.spawn_joiner(sponsor).expect("spawn joiner"));
            }
            if !blasted && cycle >= start + 20 {
                hostile_blast(hostile_target);
                blasted = true;
            }
        },
    );

    assert!(killed && blasted, "scenario actions never fired");
    let joiner = joiner.expect("joiner spawned");
    assert!(out.scrapes >= 5, "too few live scrapes ({})", out.scrapes);

    // The cluster ends at full strength: 16 founders − 1 killed + 1 joiner.
    let snap = &out.final_snap;
    assert_eq!(snap.nodes.len(), n, "final membership\n  replay: {replay}");
    let joined = snap.nodes.iter().find(|nd| nd.addr == joiner).unwrap();
    assert!(
        !joined.view.is_empty(),
        "sponsored joiner never acquired a view\n  replay: {replay}"
    );
    assert!(
        joined.stats.initiated > 0,
        "joiner never gossiped\n  replay: {replay}"
    );

    // Full oracle suite on the quiescent state.
    check_final(snap, "loopback-quick", seed, view_len, 0.85, &replay);

    // The hostile peer left marks on the transport — and nothing else:
    // the unframeable connections were poisoned, the daemon kept serving
    // (it answered the quiescent scrape above), and nobody was
    // blacklisted over unattributable wire noise.
    let target = out
        .reports
        .iter()
        .find(|r| r.addr == hostile_target)
        .expect("hostile target report");
    assert!(
        target.transport.poisoned_conns >= 2,
        "hostile connections not poisoned (got {})\n  replay: {replay}",
        target.transport.poisoned_conns
    );
    for nd in &snap.nodes {
        assert!(
            nd.blacklist.is_empty(),
            "node {} blacklisted someone in an honest run\n  replay: {replay}",
            nd.addr
        );
    }

    // Liveness floor: most exchanges complete (phase-staggered turns keep
    // collisions rare; the timed-out remainder is §V-A-tolerated noise).
    let (ok, initiated) = snap.nodes.iter().fold((0, 0), |(c, i), nd| {
        (c + nd.stats.completed, i + nd.stats.initiated)
    });
    assert!(initiated > 0, "no exchanges initiated");
    let completion = ok as f64 / initiated as f64;
    assert!(
        completion >= 0.5,
        "exchange completion {completion:.2} below floor 0.5\n  replay: {replay}"
    );

    assert_eq!(
        out.summaries.len(),
        n,
        "every process prints its run summary"
    );
    println!(
        "loopback-quick: {n} nodes, {} scrapes, completion {completion:.2}, \
         final component {}/{}",
        out.scrapes,
        sc_testkit::largest_component(snap).0,
        snap.nodes.len(),
    );
}

#[test]
fn loopback_crash_restart_recovers_from_state_dir() {
    let seed = env_seed();
    let replay = replay_line(seed, "");
    println!("replay: {replay}");

    let n = 12;
    let mut cfg = ClusterConfig::quick(n, seed);
    // Slow cycles so the kill → respawn window fits inside one descriptor
    // period with margin: an amnesiac replacement would re-emit a fresh
    // descriptor for a period it already served, handing every peer a
    // frequency-violation proof against an honest node. The durable
    // emission marker is what makes the assertions below hold.
    cfg.cycle_ms = 500;
    let state_dir =
        std::env::temp_dir().join(format!("sc-loopback-state-{seed}-{}", std::process::id()));
    std::fs::create_dir_all(&state_dir).expect("create state dir");
    let start = cfg.view_len as u64;
    let stop = start + 16;
    cfg.stop_cycle = stop;
    let view_len = cfg.view_len;
    let cfg = cfg.with_state_dir(&state_dir);
    let mut cluster = ProcessCluster::launch(bin(), cfg).expect("spawn cluster");
    let base = cluster.addrs()[0];

    assert!(
        cluster.wait_cycle(start + 2, Duration::from_secs(30)),
        "cluster never started gossiping\n  replay: {replay}"
    );

    let victim = base + (n as Addr) - 1;
    let mut pre: Option<StatusReport> = None;
    let mut post: Option<StatusReport> = None;

    let out = drive(
        &mut cluster,
        "loopback-restart",
        stop,
        view_len,
        &replay,
        |cluster, cycle| {
            if pre.is_none() && cycle >= start + 6 {
                // Scrape the victim's live state, `kill -9` it mid-cycle,
                // and respawn it on the same address from the state dir.
                let before = cluster.status_of(victim).expect("victim alive pre-kill");
                let kill_at = Instant::now();
                assert!(
                    cluster.restart(victim).expect("restart victim"),
                    "victim vanished before the kill"
                );
                // First answer after respawn: recovery happens at boot, so
                // the very first report already shows the reloaded state.
                let deadline = Instant::now() + Duration::from_secs(10);
                let after = loop {
                    if let Some(r) = cluster.status_of(victim) {
                        break r;
                    }
                    assert!(
                        Instant::now() < deadline,
                        "restarted daemon never answered control scrapes\n  replay: {replay}"
                    );
                    std::thread::sleep(Duration::from_millis(50));
                };
                println!(
                    "restart window (kill → recovered control answer): {} ms",
                    kill_at.elapsed().as_millis()
                );
                pre = Some(before);
                post = Some(after);
            }
        },
    );

    let pre = pre.expect("restart fired");
    let post = post.expect("restart fired");

    // Identity and chain state survived the kill: same key, a recovered
    // (non-empty) view.
    assert_eq!(
        pre.id, post.id,
        "identity lost across restart\n  replay: {replay}"
    );
    assert!(
        post.joined && !post.view.is_empty(),
        "restarted daemon did not recover a view\n  replay: {replay}"
    );
    // When the first control answer beat the reborn daemon's first
    // exchange, its view is exactly the recovered checkpoint: it must
    // share token identities with the pre-kill holdings — an amnesiac
    // replacement would either come up viewless or re-install the
    // long-since-transferred bootstrap slice. Once gossip has resumed
    // (possible under debug-build timing), a single exchange can
    // legitimately turn over the whole recovery-trimmed view, so the
    // survived log itself is audited below instead.
    let gossiped = post.stats.initiated + post.stats.answered > 0;
    let overlap = if gossiped {
        println!("reborn daemon gossiped before the first scrape; auditing the log only");
        usize::MAX
    } else {
        let held_before: Vec<_> = pre
            .view
            .iter()
            .map(|(d, _)| d.id())
            .chain(pre.reserve.iter().map(|d| d.id()))
            .collect();
        let overlap = post
            .view
            .iter()
            .map(|(d, _)| d.id())
            .chain(post.reserve.iter().map(|d| d.id()))
            .filter(|id| held_before.contains(id))
            .count();
        assert!(
            overlap > 0,
            "recovered view shares no descriptor with the pre-kill state\n  replay: {replay}"
        );
        overlap
    };

    // The survived log replays on its own (the processes are dead by now,
    // so the fold sees exactly what the daemon left): the emission marker
    // and a non-trivial chain checkpoint must both be there — the two
    // things whose loss would make the reborn daemon provably Byzantine.
    let log = state_dir.join(format!("sc-node-{victim}.log"));
    let log_len = std::fs::metadata(&log).map(|m| m.len()).unwrap_or(0);
    assert!(
        log_len > 0,
        "state log {} is missing or empty",
        log.display()
    );
    let mut backend = sc_core::FileBackend::open(&log).expect("reopen survived log");
    let recovered = sc_core::StateBackend::load(
        &mut backend,
        sc_core::SecureConfig::default().ticks_per_cycle,
        &wire::WireLimits::DEFAULT,
    )
    .expect("fold survived log")
    .expect("survived log holds state");
    assert!(
        recovered.emitted_cycle.is_some(),
        "no durable emission marker in the survived log\n  replay: {replay}"
    );
    assert!(
        !recovered.view.is_empty(),
        "no durable view checkpoint in the survived log\n  replay: {replay}"
    );

    // Full oracle suite on the quiescent end state, at full strength.
    let snap = &out.final_snap;
    assert_eq!(snap.nodes.len(), n, "final membership\n  replay: {replay}");
    check_final(snap, "loopback-restart", seed, view_len, 0.85, &replay);

    // The heart of the bugfix: restarting an honest daemon mid-period must
    // not make a frequency (or cloning) violation provable against it.
    // Nobody generated or learned a proof, and every blacklist is empty.
    for r in &out.reports {
        assert_eq!(
            r.stats.proofs_generated_frequency, 0,
            "node {} proved a frequency violation in an honest run\n  replay: {replay}",
            r.addr
        );
        assert_eq!(
            r.stats.proofs_generated_cloning, 0,
            "node {} proved cloning in an honest run\n  replay: {replay}",
            r.addr
        );
        assert_eq!(
            r.stats.proofs_received, 0,
            "node {} learned a proof in an honest run\n  replay: {replay}",
            r.addr
        );
    }
    for nd in &snap.nodes {
        assert!(
            nd.blacklist.is_empty(),
            "node {} blacklisted someone after an honest restart\n  replay: {replay}",
            nd.addr
        );
    }

    // The reborn process kept gossiping (its counters restart at zero, so
    // any activity here is strictly post-restart).
    let reborn = out
        .reports
        .iter()
        .find(|r| r.addr == victim)
        .expect("victim report");
    assert!(
        reborn.stats.initiated > 0,
        "restarted daemon never gossiped again\n  replay: {replay}"
    );

    println!(
        "loopback-restart: {n} nodes, {} scrapes, victim {victim} recovered \
         {} view entries ({} overlapping pre-kill), log {log_len} B",
        out.scrapes,
        post.view.len(),
        if gossiped {
            "n/a".to_string()
        } else {
            overlap.to_string()
        },
    );
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
#[ignore = "multi-minute soak; run via CI node-integration or with -- --ignored"]
fn loopback_soak_under_churn() {
    let seed = env_seed();
    let replay = replay_line(seed, " --ignored");
    println!("replay: {replay}");

    let cycles: u64 = std::env::var("SC_SOAK_CYCLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(220)
        .max(100);
    let n = 20;
    let mut cfg = ClusterConfig::quick(n, seed);
    let start = cfg.view_len as u64;
    let stop = start + cycles;
    cfg.stop_cycle = stop;
    let view_len = cfg.view_len;
    let cycle_ms = cfg.cycle_ms;
    let mut cluster = ProcessCluster::launch(bin(), cfg).expect("spawn cluster");
    let base = cluster.addrs()[0];

    assert!(
        cluster.wait_cycle(start + 4, Duration::from_secs(20)),
        "cluster never started gossiping\n  replay: {replay}"
    );

    // Three churn waves spread across the run: kill a member, rejoin a
    // fresh identity through the §V-A sponsorship handshake.
    let sponsor = base + 1;
    let mut waves: Vec<u64> = (1..=3).map(|i| start + i * cycles / 4).collect();
    let mut victims: Vec<Addr> = (0..3).map(|i| base + (n as Addr) - 1 - i).collect();
    let started = Instant::now();

    let out = drive(
        &mut cluster,
        "loopback-soak",
        stop,
        view_len,
        &replay,
        |cluster, cycle| {
            if waves.first().is_some_and(|&w| cycle >= w) {
                waves.remove(0);
                let victim = victims.pop().expect("victim list");
                if cluster.kill(victim) {
                    cluster
                        .spawn_joiner(sponsor)
                        .expect("rejoin via sponsorship");
                }
            }
        },
    );
    let elapsed = started.elapsed().as_secs_f64();

    let snap = &out.final_snap;
    assert_eq!(
        snap.nodes.len(),
        n,
        "kills balanced by rejoins\n  replay: {replay}"
    );
    check_final(snap, "loopback-soak", seed, view_len, 0.85, &replay);

    // No fault spec was configured, so every injected-fault counter must
    // read zero — a nonzero here means the injection layer fired on a
    // clean network. Likewise nobody starved, so no §V-A rejoin pings.
    // (`retransmits`/`turns_skipped` are NOT asserted: lost RPCs and a
    // busy scheduler produce both legitimately on a clean run.)
    for r in &out.reports {
        for (counter, v) in [
            (
                "frames_dropped_injected",
                r.transport.frames_dropped_injected,
            ),
            ("frames_delayed", r.transport.frames_delayed),
            ("frames_duplicated", r.transport.frames_duplicated),
            ("resets_injected", r.transport.resets_injected),
            ("frames_throttled", r.transport.frames_throttled),
            ("rejoin_pings", r.stats.rejoin_pings),
        ] {
            assert_eq!(
                v, 0,
                "node {}: {counter} = {v} on a clean network\n  replay: {replay}",
                r.addr
            );
        }
    }

    // ---- measured soak numbers (ROADMAP anchors) ----------------------
    // Founders that survived the whole run fired nearly every cycle.
    for r in &out.reports {
        let is_surviving_founder = r.addr < base + n as Addr;
        if is_surviving_founder {
            assert!(
                r.cycles_run >= cycles * 7 / 10,
                "founder {} fired only {} of {cycles} cycles\n  replay: {replay}",
                r.addr,
                r.cycles_run,
            );
        }
    }
    let (ok, initiated) = snap.nodes.iter().fold((0, 0), |(c, i), nd| {
        (c + nd.stats.completed, i + nd.stats.initiated)
    });
    let completion = ok as f64 / initiated.max(1) as f64;
    assert!(
        completion >= 0.6,
        "soak completion {completion:.2} below floor\n  replay: {replay}"
    );

    // Connection pressure: the soak exercises a multi-hundred-connection
    // footprint across the fleet over its lifetime.
    let peak_conns: u64 = out.reports.iter().map(|r| r.transport.peak_conns).sum();
    assert!(
        peak_conns >= 100,
        "aggregate peak connections {peak_conns} below soak floor\n  replay: {replay}"
    );

    // Bytes accounting: the paper's §VI-A size model (stats.bytes_sent)
    // versus what actually crossed the framed TCP sockets.
    let mut paper_per_cycle = sc_metrics::Histogram::new();
    for r in &out.reports {
        paper_per_cycle.record(r.stats.bytes_sent / r.cycles_run.max(1));
    }
    let paper_total: u64 = out.reports.iter().map(|r| r.stats.bytes_sent).sum();
    let framed_total: u64 = out.reports.iter().map(|r| r.transport.bytes_out).sum();
    let overhead = framed_total as f64 / paper_total.max(1) as f64;
    let cycles_per_sec = cycles as f64 / elapsed;
    println!(
        "loopback-soak: {n} nodes, {cycles} cycles at {cycle_ms} ms \
         ({cycles_per_sec:.1} cycles/s wall), completion {completion:.2}, \
         aggregate peak conns {peak_conns}, paper bytes/cycle mean {:.0} \
         (p90 {}), framed/paper byte ratio {overhead:.2}, {} scrapes",
        paper_per_cycle.mean(),
        paper_per_cycle.quantile(0.9).unwrap_or(0),
        out.scrapes,
    );
    for line in &out.summaries {
        println!("  {line}");
    }
    assert_eq!(out.summaries.len(), n);
}
