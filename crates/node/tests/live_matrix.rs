//! The live fault matrix: real `sc-node` processes under deterministic
//! fault injection, audited by the same invariant oracles as the
//! simulated scenario matrix.
//!
//! Where the loopback tier proves the daemon works on a clean wire, this
//! tier ports the catalog's adversity axes — symmetric message loss,
//! partition with heal, loss under churn — onto real sockets through the
//! [`sc_node::FaultTransport`] layer. Faults arrive three ways, one per
//! test, covering every injection path: a `CtrlFault` broadcast mid-run,
//! a targeted per-member sever/heal, and the `--fault-spec` boot flag.
//!
//! Every injection decision derives from the printed seed
//! (`SC_NODE_SEED` convention), so a failing run replays with the same
//! drops, delays, and duplicates:
//!
//! ```text
//! SC_NODE_SEED=1 cargo test --release -p sc-node --test live_matrix -- --nocapture
//! ```
//!
//! Wall-clock scheduling is the remaining non-deterministic input, which
//! is why assertions are floors and protocol invariants plus the
//! injected-fault counters proving the faults actually fired — never
//! exact trajectories.

use sc_core::FaultSpec;
use sc_sim::Addr;
use sc_testkit::live::{check_final, drive, env_seed};
use sc_testkit::{ClusterConfig, ProcessCluster};
use std::time::Duration;

fn replay_line(seed: u64, extra: &str) -> String {
    sc_testkit::live::replay_line("live_matrix", seed, extra)
}

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sc-node")
}

/// Quick-tier sizing with the debug-build clock slowdown the loopback
/// tier uses: slow the shared schedule, never weaken oracles or floors.
fn quick_cfg(n: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::quick(n, seed);
    if cfg!(debug_assertions) {
        cfg.cycle_ms = 200;
    }
    cfg
}

/// Symmetric message loss at wire speed: every member drops ~12% of
/// inbound gossip frames (each frame crosses exactly one inbound filter,
/// so this is ~12% symmetric link loss). The spec lands mid-run through
/// a `CtrlFault` broadcast; the cluster must stay connected — the §IV-B
/// retransmission path resending the *same* request inside its deadline
/// is what keeps exchange completion up.
#[test]
fn live_cluster_rides_out_symmetric_loss() {
    let seed = env_seed();
    let replay = replay_line(seed, "");
    println!("replay: {replay}");

    let n = 12;
    let mut cfg = quick_cfg(n, seed);
    let start = cfg.view_len as u64;
    let stop = start + 36;
    cfg.stop_cycle = stop;
    let view_len = cfg.view_len;
    let mut cluster = ProcessCluster::launch(bin(), cfg).expect("spawn cluster");

    assert!(
        cluster.wait_cycle(start + 4, Duration::from_secs(20)),
        "cluster never started gossiping\n  replay: {replay}"
    );

    let loss = FaultSpec {
        seed,
        drop_in: 0.12,
        ..FaultSpec::default()
    };
    let mut injected = false;
    let out = drive(
        &mut cluster,
        "live-loss",
        stop,
        view_len,
        &replay,
        |cluster, cycle| {
            if !injected && cycle >= start + 8 {
                let acked = cluster.broadcast_fault(&loss);
                assert_eq!(acked, n, "every member acks the fault spec");
                injected = true;
            }
        },
    );
    assert!(injected, "fault broadcast never fired");

    let dropped: u64 = out
        .reports
        .iter()
        .map(|r| r.transport.frames_dropped_injected)
        .sum();
    assert!(
        dropped > 0,
        "loss spec installed but no frame was ever dropped\n  replay: {replay}"
    );
    let retransmits: u64 = out.reports.iter().map(|r| r.retransmits).sum();
    assert!(
        retransmits > 0,
        "12% loss but the retransmission path never fired\n  replay: {replay}"
    );

    let snap = &out.final_snap;
    assert_eq!(snap.nodes.len(), n, "final membership\n  replay: {replay}");
    check_final(snap, "live-loss", seed, view_len, 0.85, &replay);

    println!(
        "live-loss: {n} nodes, {} scrapes, {dropped} frames dropped, \
         {retransmits} retransmits, final component {}/{}",
        out.scrapes,
        sc_testkit::largest_component(snap).0,
        snap.nodes.len(),
    );
}

/// A full partition that outlasts the descriptor lifetime, then heals —
/// with no harness re-sponsorship. One member is severed from everyone
/// (both directions, at its own transport); its links all die redeeming
/// toward unreachable creators, it drains to starvation, and after the
/// sever is lifted it must re-enter through the protocol's own §V-A
/// rejoin pings. The runner never heals it: recovery is in-protocol or
/// the test fails.
#[test]
fn live_partition_heals_in_protocol() {
    let seed = env_seed();
    let replay = replay_line(seed, "");
    println!("replay: {replay}");

    let n = 12;
    let mut cfg = quick_cfg(n, seed);
    let start = cfg.view_len as u64;
    let sever_at = start + 4;
    let heal_at = start + 20; // 16 severed cycles ≫ descriptor lifetime ℓ
    let stop = start + 40;
    cfg.stop_cycle = stop;
    let view_len = cfg.view_len;
    let mut cluster = ProcessCluster::launch(bin(), cfg).expect("spawn cluster");
    let base = cluster.addrs()[0];
    let victim = base + (n as Addr) - 1;
    let others: Vec<Addr> = cluster
        .addrs()
        .into_iter()
        .filter(|&a| a != victim)
        .collect();

    assert!(
        cluster.wait_cycle(start + 2, Duration::from_secs(20)),
        "cluster never started gossiping\n  replay: {replay}"
    );

    let sever = FaultSpec {
        seed,
        severed: others,
        ..FaultSpec::default()
    };
    let mut severed = false;
    let mut healed = false;
    let mut starved_seen = false;
    let out = drive(
        &mut cluster,
        "live-partition",
        stop,
        view_len,
        &replay,
        |cluster, cycle| {
            if !severed && cycle >= sever_at {
                assert!(
                    cluster.set_fault(victim, &sever),
                    "victim never acked the sever (control frames are exempt)"
                );
                severed = true;
            }
            if severed && !healed {
                // The control channel still answers through the partition;
                // watch the victim drain. Starvation is irreversible while
                // severed, so one sighting is proof.
                if let Some(r) = cluster.status_of(victim) {
                    if r.view.is_empty() && r.reserve.is_empty() {
                        starved_seen = true;
                    }
                }
            }
            if !healed && cycle >= heal_at {
                assert!(
                    cluster.set_fault(
                        victim,
                        &FaultSpec {
                            seed,
                            ..FaultSpec::default()
                        }
                    ),
                    "victim never acked the heal"
                );
                healed = true;
            }
        },
    );
    assert!(severed && healed, "partition phases never fired");
    assert!(
        starved_seen,
        "victim never drained to starvation while severed — the rejoin \
         path was not exercised\n  replay: {replay}"
    );

    let victim_report = out
        .reports
        .iter()
        .find(|r| r.addr == victim)
        .expect("victim report");
    assert!(
        victim_report.transport.frames_dropped_injected > 0,
        "sever installed but no frame was cut\n  replay: {replay}"
    );
    assert!(
        victim_report.stats.rejoin_pings > 0,
        "starved victim never sent a §V-A rejoin ping\n  replay: {replay}"
    );
    let grants: u64 = out.reports.iter().map(|r| r.stats.rejoin_grants).sum();
    assert!(
        grants > 0,
        "no member granted the victim a rejoin sponsorship\n  replay: {replay}"
    );
    assert!(
        victim_report.joined && !victim_report.view.is_empty(),
        "victim did not reconnect in-protocol after the heal\n  replay: {replay}"
    );

    let snap = &out.final_snap;
    assert_eq!(snap.nodes.len(), n, "final membership\n  replay: {replay}");
    check_final(snap, "live-partition", seed, view_len, 0.9, &replay);

    println!(
        "live-partition: {n} nodes, {} scrapes, victim {victim} cut \
         {} frames, {} rejoin pings, {grants} grants, final component {}/{}",
        out.scrapes,
        victim_report.transport.frames_dropped_injected,
        victim_report.stats.rejoin_pings,
        sc_testkit::largest_component(snap).0,
        snap.nodes.len(),
    );
}

/// Loss, delay-reorder, and duplication from boot (`--fault-spec` on
/// every member's command line), plus real churn: a member is killed
/// mid-run and a fresh identity rejoins through the §V-A sponsorship
/// handshake — all under a degraded wire. Duplicated requests land on
/// the daemon's idempotent reply cache; delayed frames exercise the
/// bounded-reorder release queue.
#[test]
fn live_cluster_survives_loss_with_churn() {
    let seed = env_seed();
    let replay = replay_line(seed, "");
    println!("replay: {replay}");

    let n = 12;
    let mut cfg = quick_cfg(n, seed);
    let start = cfg.view_len as u64;
    let stop = start + 36;
    cfg.stop_cycle = stop;
    let view_len = cfg.view_len;
    let cfg = cfg.with_fault_spec(FaultSpec {
        seed,
        drop_in: 0.08,
        delay_prob: 0.2,
        delay_max_polls: 3,
        dup_prob: 0.05,
        ..FaultSpec::default()
    });
    let mut cluster = ProcessCluster::launch(bin(), cfg).expect("spawn cluster");
    let base = cluster.addrs()[0];
    let kill_target = base + (n as Addr) - 1;
    let sponsor = base + 1;

    assert!(
        cluster.wait_cycle(start + 4, Duration::from_secs(30)),
        "cluster never started gossiping under the boot fault spec\n  replay: {replay}"
    );

    let mut killed = false;
    let mut joiner: Option<Addr> = None;
    let out = drive(
        &mut cluster,
        "live-loss-churn",
        stop,
        view_len,
        &replay,
        |cluster, cycle| {
            if !killed && cycle >= start + 14 {
                assert!(cluster.kill(kill_target), "kill target already gone");
                killed = true;
            }
            if killed && joiner.is_none() {
                joiner = Some(cluster.spawn_joiner(sponsor).expect("spawn joiner"));
            }
        },
    );
    assert!(killed, "churn never fired");
    let joiner = joiner.expect("joiner spawned");

    let dropped: u64 = out
        .reports
        .iter()
        .map(|r| r.transport.frames_dropped_injected)
        .sum();
    let delayed: u64 = out.reports.iter().map(|r| r.transport.frames_delayed).sum();
    let duplicated: u64 = out
        .reports
        .iter()
        .map(|r| r.transport.frames_duplicated)
        .sum();
    assert!(dropped > 0, "boot spec dropped nothing\n  replay: {replay}");
    assert!(delayed > 0, "boot spec delayed nothing\n  replay: {replay}");
    assert!(
        duplicated > 0,
        "boot spec duplicated nothing\n  replay: {replay}"
    );

    let snap = &out.final_snap;
    assert_eq!(snap.nodes.len(), n, "final membership\n  replay: {replay}");
    let joined = snap.nodes.iter().find(|nd| nd.addr == joiner).unwrap();
    assert!(
        !joined.view.is_empty(),
        "sponsored joiner never acquired a view on a lossy wire\n  replay: {replay}"
    );
    check_final(snap, "live-loss-churn", seed, view_len, 0.85, &replay);

    println!(
        "live-loss-churn: {n} nodes, {} scrapes, {dropped} dropped / \
         {delayed} delayed / {duplicated} duplicated, final component {}/{}",
        out.scrapes,
        sc_testkit::largest_component(snap).0,
        snap.nodes.len(),
    );
}
