//! The daemon's transport abstraction and its loopback-TCP
//! implementation.
//!
//! [`Transport`] is deliberately small: the daemon's protocol logic only
//! needs "send a frame to the peer at address `a`", "answer on the
//! connection a frame arrived on", and "wait for the next inbound frame".
//! [`TcpTransport`] implements it over non-blocking `std::net` with
//! poll-style readiness (`WouldBlock` loops with short sleeps — the build
//! environment has no registry access, so no mio/tokio), per-connection
//! read budgets, connect/write timeouts, and deterministic exponential
//! backoff for unreachable peers.

use crate::frame::{Frame, FrameReader};
use sc_sim::Addr;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Identifies one accepted or dialed connection for the lifetime of the
/// transport. Never reused.
pub type ConnId = u64;

/// A frame received from some connection.
#[derive(Debug)]
pub struct Inbound {
    /// The connection it arrived on (for [`Transport::respond`]).
    pub conn: ConnId,
    /// The frame.
    pub frame: Frame,
}

/// Counters the control socket reports for soak accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames received.
    pub frames_in: u64,
    /// Frames sent.
    pub frames_out: u64,
    /// Payload + header bytes received.
    pub bytes_in: u64,
    /// Payload + header bytes sent.
    pub bytes_out: u64,
    /// Currently open connections.
    pub active_conns: u64,
    /// High-water mark of concurrently open connections.
    pub peak_conns: u64,
    /// Dial attempts that failed (feeding the backoff schedule).
    pub connect_failures: u64,
    /// Connections dropped for framing violations.
    pub poisoned_conns: u64,
    /// Frames dropped by injected faults (`FaultTransport` only; zero on
    /// a clean network).
    pub frames_dropped_injected: u64,
    /// Frames held back by injected delay/reorder.
    pub frames_delayed: u64,
    /// Frames sent twice by injected duplication.
    pub frames_duplicated: u64,
    /// Cached connections torn down by injected resets.
    pub resets_injected: u64,
    /// Frames stalled by the injected bandwidth throttle.
    pub frames_throttled: u64,
}

/// What the daemon requires from a byte-moving layer.
pub trait Transport {
    /// The protocol address this transport serves.
    fn local_addr(&self) -> Addr;
    /// Sends a frame to the peer at `to`, dialing if necessary. Returns
    /// whether the frame was handed to the OS; failures engage backoff.
    fn send_to(&mut self, to: Addr, frame: &Frame) -> bool;
    /// Sends a frame back on the connection `conn` arrived on (RPC
    /// replies, control responses, join grants).
    fn respond(&mut self, conn: ConnId, frame: &Frame) -> bool;
    /// Waits up to `timeout` for the next inbound frame.
    fn recv(&mut self, timeout: Duration) -> Option<Inbound>;
    /// Transport counters.
    fn stats(&self) -> TransportStats;
    /// Tears down any cached outbound connection to `peer`, forcing the
    /// next send to redial. Fault injection uses this to simulate
    /// connection resets; transports without connection caches may
    /// ignore it.
    fn reset(&mut self, peer: Addr) {
        let _ = peer;
    }
}

/// Per-peer dial backoff: deterministic exponential schedule
/// (`base · 2^min(failures-1, 5)`), reset on success.
#[derive(Debug)]
struct Backoff {
    failures: u32,
    retry_at: Instant,
}

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

/// [`Transport`] over loopback TCP: protocol address `a` ⇔
/// `127.0.0.1:a`.
pub struct TcpTransport {
    addr: Addr,
    listener: TcpListener,
    conns: HashMap<ConnId, Conn>,
    dialed: HashMap<Addr, ConnId>,
    backoff: HashMap<Addr, Backoff>,
    inbox: VecDeque<Inbound>,
    next_conn: ConnId,
    connect_timeout: Duration,
    write_timeout: Duration,
    /// Max bytes pulled from one connection per poll pass.
    read_budget: usize,
    max_frame_bytes: usize,
    stats: TransportStats,
}

const BACKOFF_BASE: Duration = Duration::from_millis(50);
const BACKOFF_MAX_SHIFT: u32 = 5;
/// Cap on tracked backoff entries: under heavy churn dead peers would
/// otherwise accumulate one entry each for the life of the transport.
const BACKOFF_MAX_ENTRIES: usize = 128;
const POLL_SLEEP: Duration = Duration::from_micros(500);

impl TcpTransport {
    /// Binds `127.0.0.1:addr`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port taken, permissions).
    pub fn bind(
        addr: Addr,
        connect_timeout: Duration,
        max_frame_bytes: usize,
    ) -> std::io::Result<TcpTransport> {
        let listener = TcpListener::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, addr as u16))?;
        listener.set_nonblocking(true)?;
        Ok(TcpTransport {
            addr,
            listener,
            conns: HashMap::new(),
            dialed: HashMap::new(),
            backoff: HashMap::new(),
            inbox: VecDeque::new(),
            next_conn: 1,
            connect_timeout,
            write_timeout: Duration::from_millis(500),
            read_budget: 64 << 10,
            max_frame_bytes,
            stats: TransportStats::default(),
        })
    }

    fn register(&mut self, stream: TcpStream) -> ConnId {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(true);
        let id = self.next_conn;
        self.next_conn += 1;
        self.conns.insert(
            id,
            Conn {
                stream,
                reader: FrameReader::new(self.max_frame_bytes),
            },
        );
        self.stats.active_conns = self.conns.len() as u64;
        self.stats.peak_conns = self.stats.peak_conns.max(self.stats.active_conns);
        id
    }

    fn drop_conn(&mut self, id: ConnId) {
        self.conns.remove(&id);
        self.dialed.retain(|_, &mut v| v != id);
        self.stats.active_conns = self.conns.len() as u64;
    }

    /// Writes all of `bytes`, looping on `WouldBlock` until the write
    /// timeout. Returns false (and drops the connection) on failure.
    fn write_all(&mut self, id: ConnId, bytes: &[u8]) -> bool {
        let deadline = Instant::now() + self.write_timeout;
        let mut off = 0;
        while off < bytes.len() {
            let Some(conn) = self.conns.get_mut(&id) else {
                return false;
            };
            match conn.stream.write(&bytes[off..]) {
                Ok(0) => {
                    self.drop_conn(id);
                    return false;
                }
                Ok(n) => off += n,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted =>
                {
                    if Instant::now() >= deadline {
                        self.drop_conn(id);
                        return false;
                    }
                    std::thread::sleep(POLL_SLEEP);
                }
                Err(_) => {
                    self.drop_conn(id);
                    return false;
                }
            }
        }
        self.stats.bytes_out += bytes.len() as u64;
        self.stats.frames_out += 1;
        true
    }

    /// Existing dialed connection to `to`, or a fresh dial respecting the
    /// backoff schedule.
    fn conn_to(&mut self, to: Addr) -> Option<ConnId> {
        if let Some(&id) = self.dialed.get(&to) {
            if self.conns.contains_key(&id) {
                return Some(id);
            }
            self.dialed.remove(&to);
        }
        let now = Instant::now();
        if let Some(b) = self.backoff.get(&to) {
            if now < b.retry_at {
                return None;
            }
        }
        let sock = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, to as u16));
        match TcpStream::connect_timeout(&sock, self.connect_timeout) {
            Ok(stream) => {
                self.backoff.remove(&to);
                let id = self.register(stream);
                self.dialed.insert(to, id);
                Some(id)
            }
            Err(_) => {
                self.stats.connect_failures += 1;
                let failures = self.backoff.get(&to).map_or(0, |b| b.failures) + 1;
                let delay = BACKOFF_BASE * 2u32.pow((failures - 1).min(BACKOFF_MAX_SHIFT));
                if !self.backoff.contains_key(&to) && self.backoff.len() >= BACKOFF_MAX_ENTRIES {
                    self.prune_backoff(now);
                }
                self.backoff.insert(
                    to,
                    Backoff {
                        failures,
                        retry_at: now + delay,
                    },
                );
                None
            }
        }
    }

    /// Frees backoff slots: first every entry whose retry window already
    /// passed (it carries no schedule the next dial wouldn't recompute
    /// from scratch anyway — losing the failure count just restarts the
    /// exponential ladder at its shortest rung), then, if none had, the
    /// entry closest to expiry.
    fn prune_backoff(&mut self, now: Instant) {
        let before = self.backoff.len();
        self.backoff.retain(|_, b| b.retry_at > now);
        if self.backoff.len() == before {
            if let Some(&victim) = self
                .backoff
                .iter()
                .min_by_key(|(_, b)| b.retry_at)
                .map(|(a, _)| a)
            {
                self.backoff.remove(&victim);
            }
        }
    }

    /// Number of peers currently tracked by the backoff schedule
    /// (bounded by the eviction policy; exposed for regression tests).
    pub fn backoff_len(&self) -> usize {
        self.backoff.len()
    }

    /// One non-blocking pass: accept pending dials, then read up to the
    /// budget from every connection, queueing completed frames.
    fn poll_once(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.register(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        let ids: Vec<ConnId> = self.conns.keys().copied().collect();
        let mut chunk = [0u8; 4096];
        for id in ids {
            let mut budget = self.read_budget;
            while let Some(conn) = self.conns.get_mut(&id) {
                let want = chunk.len().min(budget);
                if want == 0 {
                    break;
                }
                match conn.stream.read(&mut chunk[..want]) {
                    Ok(0) => {
                        self.drop_conn(id);
                        break;
                    }
                    Ok(n) => {
                        budget -= n;
                        self.stats.bytes_in += n as u64;
                        conn.reader.feed(&chunk[..n]);
                        loop {
                            match conn.reader.next_frame() {
                                Ok(Some(frame)) => {
                                    self.stats.frames_in += 1;
                                    self.inbox.push_back(Inbound { conn: id, frame });
                                }
                                Ok(None) => break,
                                Err(_) => {
                                    self.stats.poisoned_conns += 1;
                                    self.drop_conn(id);
                                    break;
                                }
                            }
                        }
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock
                            || e.kind() == ErrorKind::Interrupted =>
                    {
                        break;
                    }
                    Err(_) => {
                        self.drop_conn(id);
                        break;
                    }
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn local_addr(&self) -> Addr {
        self.addr
    }

    fn send_to(&mut self, to: Addr, frame: &Frame) -> bool {
        let Some(id) = self.conn_to(to) else {
            return false;
        };
        let bytes = frame.encode();
        if self.write_all(id, &bytes) {
            true
        } else {
            // One immediate redial: the cached connection may have been
            // closed by the peer since its last use.
            let Some(id) = self.conn_to(to) else {
                return false;
            };
            self.write_all(id, &bytes)
        }
    }

    fn respond(&mut self, conn: ConnId, frame: &Frame) -> bool {
        self.write_all(conn, &frame.encode())
    }

    fn recv(&mut self, timeout: Duration) -> Option<Inbound> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(i) = self.inbox.pop_front() {
                return Some(i);
            }
            self.poll_once();
            if let Some(i) = self.inbox.pop_front() {
                return Some(i);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(POLL_SLEEP);
        }
    }

    fn stats(&self) -> TransportStats {
        let mut s = self.stats;
        s.active_conns = self.conns.len() as u64;
        s
    }

    fn reset(&mut self, peer: Addr) {
        if let Some(id) = self.dialed.remove(&peer) {
            self.drop_conn(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameKind;

    fn bind_any(connect_timeout: Duration) -> TcpTransport {
        // Bind port 0 and read back the ephemeral port as the Addr.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        drop(listener);
        TcpTransport::bind(port as Addr, connect_timeout, 1 << 20).unwrap()
    }

    #[test]
    fn frames_flow_between_two_transports() {
        let mut a = bind_any(Duration::from_millis(200));
        let mut b = bind_any(Duration::from_millis(200));
        let f = Frame::new(FrameKind::Oneway, a.local_addr(), b"ping".to_vec());
        assert!(a.send_to(b.local_addr(), &f));
        let got = b.recv(Duration::from_millis(500)).expect("delivered");
        assert_eq!(got.frame, f);
        // Reply on the same connection.
        let r = Frame::new(FrameKind::Reply, b.local_addr(), b"pong".to_vec());
        assert!(b.respond(got.conn, &r));
        let back = a.recv(Duration::from_millis(500)).expect("answered");
        assert_eq!(back.frame, r);
        assert_eq!(a.stats().frames_out, 1);
        assert_eq!(a.stats().frames_in, 1);
    }

    #[test]
    fn dial_failures_engage_backoff() {
        let mut a = bind_any(Duration::from_millis(30));
        // Nothing listens on the target port.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port() as Addr
        };
        let f = Frame::new(FrameKind::Oneway, a.local_addr(), vec![]);
        assert!(!a.send_to(dead, &f));
        let failures = a.stats().connect_failures;
        assert_eq!(failures, 1);
        // Within the backoff window the dial is skipped entirely.
        assert!(!a.send_to(dead, &f));
        assert_eq!(a.stats().connect_failures, failures);
    }

    #[test]
    fn backoff_map_stays_bounded_under_long_churn() {
        let mut a = bind_any(Duration::from_millis(10));
        // Reserve a block of ports nothing listens on, then dial each
        // one: every attempt fails (immediate ECONNREFUSED on loopback)
        // and wants a backoff slot.
        let dead: Vec<Addr> = (0..BACKOFF_MAX_ENTRIES + 200)
            .map(|_| {
                let l = TcpListener::bind("127.0.0.1:0").unwrap();
                l.local_addr().unwrap().port() as Addr
            })
            .collect();
        let f = Frame::new(FrameKind::Oneway, a.local_addr(), vec![]);
        for &port in &dead {
            assert!(!a.send_to(port, &f));
        }
        assert!(
            a.backoff_len() <= BACKOFF_MAX_ENTRIES,
            "backoff map grew to {} entries",
            a.backoff_len()
        );
        // A successful dial clears its own entry.
        let mut c = bind_any(Duration::from_millis(200));
        let target = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port() as Addr
        };
        assert!(!c.send_to(target, &f));
        assert_eq!(c.backoff_len(), 1);
        let mut d = TcpTransport::bind(target, Duration::from_millis(200), 1 << 20).unwrap();
        std::thread::sleep(2 * BACKOFF_BASE);
        assert!(c.send_to(target, &f));
        assert_eq!(c.backoff_len(), 0, "successful dial evicts its entry");
        assert!(d.recv(Duration::from_millis(500)).is_some());
    }

    #[test]
    fn reset_drops_the_cached_dial() {
        let mut a = bind_any(Duration::from_millis(200));
        let mut b = bind_any(Duration::from_millis(200));
        let f = Frame::new(FrameKind::Oneway, a.local_addr(), b"x".to_vec());
        assert!(a.send_to(b.local_addr(), &f));
        assert_eq!(a.stats().active_conns, 1);
        a.reset(b.local_addr());
        assert_eq!(a.stats().active_conns, 0);
        // The next send redials transparently.
        assert!(a.send_to(b.local_addr(), &f));
        assert!(b.recv(Duration::from_millis(500)).is_some());
        assert!(b.recv(Duration::from_millis(500)).is_some());
    }

    #[test]
    fn poisoned_streams_are_dropped() {
        let mut a = bind_any(Duration::from_millis(200));
        let sock = SocketAddrV4::new(Ipv4Addr::LOCALHOST, a.local_addr() as u16);
        let mut raw = TcpStream::connect(sock).unwrap();
        raw.write_all(&[0xde; 64]).unwrap();
        raw.flush().unwrap();
        assert!(a.recv(Duration::from_millis(200)).is_none());
        assert_eq!(a.stats().poisoned_conns, 1);
        assert_eq!(a.stats().active_conns, 0);
    }
}
