//! The `sc-node` binary: run one SecureCyclon daemon process.
//!
//! ```text
//! sc-node --addr 41000 --base-addr 41000 --index 0 --cluster-size 16 \
//!         --seed 7 --cycle-ms 50 --view-len 8 --scheme keyed \
//!         --epoch-millis 1754650000000 --run-cycles 200
//! ```
//!
//! Founding members (`--index < --cluster-size`, no `--sponsor`) derive
//! the whole ring bootstrap from `--seed` locally. A fresh process joins
//! a running cluster with `--sponsor <addr>` instead; it acquires its
//! first descriptor through the §V-A sponsorship handshake.
//!
//! The same port serves gossip *and* the control channel: a harness
//! scrapes live state with `ControlClient::status` and stops the daemon
//! with `ControlClient::shutdown`.

use sc_node::{Daemon, NodeConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", HELP);
        return;
    }
    let cfg = match NodeConfig::parse(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("sc-node: {e}");
            eprintln!("run `sc-node --help` for usage");
            std::process::exit(2);
        }
    };
    let addr = cfg.addr;
    let mut daemon = match Daemon::new(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sc-node: bind 127.0.0.1:{addr} failed: {e}");
            std::process::exit(1);
        }
    };
    let summary = daemon.run();
    println!(
        "sc-node {addr}: {} cycles in {:.1}s ({:.1} cycles/s), \
         exchanges {}/{} ok, {} timeouts, peak {} conns, \
         {} frames in / {} out, {} wire bytes in / {} out",
        summary.cycles_run,
        summary.elapsed_secs,
        summary.cycles_run as f64 / summary.elapsed_secs.max(f64::EPSILON),
        summary.stats.completed,
        summary.stats.initiated,
        summary.stats.timeouts,
        summary.transport.peak_conns,
        summary.transport.frames_in,
        summary.transport.frames_out,
        summary.transport.bytes_in,
        summary.transport.bytes_out,
    );
}

const HELP: &str = "\
sc-node — run one SecureCyclon daemon on 127.0.0.1

Usage: sc-node --addr <port> [flags]

Identity and bootstrap:
  --addr <port>          protocol address == TCP port (required)
  --seed <u64>           cluster seed; all keys derive from it (default 1)
  --index <n>            this node's key-schedule index (default 0)
  --cluster-size <n>     ring-bootstrap member count (founding members)
  --base-addr <port>     port of ring member 0 (default: addr - index)
  --sponsor <port>       join through this sponsor instead of the ring

Timing:
  --cycle-ms <n>         wall-clock gossip period in ms (default 100)
  --epoch-millis <n>     shared UNIX-ms epoch for cycle numbering
                         (default: process start; clusters must share one)
  --run-cycles <n>       exit after n gossip cycles (default 0 = forever)
  --stop-cycle <n>       stop gossiping at shared-clock cycle n, then
                         linger serving control scrapes (default 0 = off)
  --linger-ms <n>        max linger before self-exit (default 30000)
  --rpc-timeout-ms <n>   per-RPC reply deadline (default 40)
  --rpc-retransmits <n>  byte-identical resends of an unanswered RPC
                         request inside its deadline (default 1; never a
                         re-emission, so §IV-B stays intact)

Protocol:
  --view-len <n>         view size l (default 20)
  --swap-len <n>         gossip length g (default 3)
  --scheme keyed|schnorr signature scheme (default schnorr)
  --max-frame-bytes <n>  frame payload cap (default 1 MiB)

Durability:
  --state-dir <dir>      append durable state to <dir>/sc-node-<addr>.log
                         and recover from it on boot; a kill -9'd daemon
                         restarted here cannot self-incriminate
                         (default: in-memory only)

Fault injection (deterministic; every decision replays from the seed):
  --fault-spec <spec>    comma-separated key=value entries:
                           seed=<u64>        decision seed
                           drop=<p>          drop probability, both ways
                           drop_in=<p>       inbound drop probability
                           drop_out=<p>      outbound drop probability
                           delay=<p>:<w>     delay probability : max held
                                             receive polls (reorder bound)
                           dup=<p>           outbound duplication
                           reset=<p>         forced connection resets
                           bw=<bytes/s>      outbound bandwidth throttle
                           sever=<p1>+<p2>   cut these peers off entirely
                         control frames are always exempt; harnesses can
                         replace the spec mid-run via CtrlFault frames,
                         applied at the next cycle boundary
";
